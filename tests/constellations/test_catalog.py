"""Tests for the constellation catalog (paper Table 3)."""

import pytest

from satiot.constellations.catalog import (CONSTELLATION_SPECS,
                                           DtSRadioProfile,
                                           build_all_constellations,
                                           build_constellation)


class TestSpecsMatchPaperTable3:
    def test_four_constellations(self):
        assert set(CONSTELLATION_SPECS) == {"tianqi", "fossa", "pico",
                                            "cstp"}

    @pytest.mark.parametrize("name,count", [
        ("tianqi", 22), ("fossa", 3), ("pico", 9), ("cstp", 5)])
    def test_satellite_counts(self, name, count):
        assert CONSTELLATION_SPECS[name].satellite_count == count

    @pytest.mark.parametrize("name,freq_mhz", [
        ("tianqi", 400.45), ("fossa", 401.7),
        ("pico", 436.26), ("cstp", 437.985)])
    def test_dts_frequencies(self, name, freq_mhz):
        spec = CONSTELLATION_SPECS[name]
        assert spec.radio.frequency_hz == pytest.approx(freq_mhz * 1e6)

    def test_tianqi_shells(self):
        shells = CONSTELLATION_SPECS["tianqi"].shells
        assert [s.count for s in shells] == [16, 4, 2]
        assert [s.inclination_deg for s in shells] == [49.97, 35.00, 97.61]
        assert shells[0].altitude_min_km == 815.7
        assert shells[0].altitude_max_km == 897.5

    def test_regions(self):
        regions = {k: v.operator_region
                   for k, v in CONSTELLATION_SPECS.items()}
        assert regions == {"tianqi": "China", "fossa": "EU",
                           "pico": "US", "cstp": "Russia"}


class TestBuild:
    def test_build_all(self):
        cons = build_all_constellations()
        assert sum(len(c) for c in cons.values()) == 39  # paper: 39 sats

    def test_case_insensitive(self):
        assert build_constellation("Tianqi").name == "Tianqi"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown constellation"):
            build_constellation("starlink")

    def test_satellite_names_unique(self):
        con = build_constellation("tianqi")
        names = [s.name for s in con]
        assert len(set(names)) == len(names)

    def test_satellite_by_norad(self):
        con = build_constellation("pico")
        sat = con.satellites[3]
        assert con.satellite_by_norad(sat.norad_id) is sat
        with pytest.raises(KeyError):
            con.satellite_by_norad(1)

    def test_norad_ranges_disjoint(self):
        cons = build_all_constellations()
        ids = [s.norad_id for c in cons.values() for s in c]
        assert len(set(ids)) == len(ids)

    def test_deterministic(self):
        a = build_constellation("cstp", seed=3)
        b = build_constellation("cstp", seed=3)
        assert [s.tle.to_lines() for s in a] == [s.tle.to_lines() for s in b]

    def test_footprints_match_paper_scale(self):
        # Paper Table 3 footprints: Tianqi main shell 3.27e7 km^2,
        # FOSSA 1.27e7, PICO 1.31e7, CSTP 1.24e7.  The paper mixes 0-5
        # degree masks, so allow a generous band around each.
        tq = build_constellation("tianqi").footprint_areas_km2()
        assert 2.4e7 < tq["TQ-A"] < 3.6e7
        fossa = build_constellation("fossa").footprint_areas_km2()
        assert 1.0e7 < fossa["FOSSA"] < 2.1e7

    def test_satellite_altitude_accessor(self):
        con = build_constellation("fossa")
        for sat in con:
            assert 500.0 < sat.mean_altitude_km < 520.0

    def test_propagator_cached(self):
        sat = build_constellation("fossa").satellites[0]
        assert sat.propagator is sat.propagator


class TestRadioProfileValidation:
    def test_bad_sf(self):
        with pytest.raises(ValueError):
            DtSRadioProfile(frequency_hz=400e6, spreading_factor=4)

    def test_bad_frequency(self):
        with pytest.raises(ValueError):
            DtSRadioProfile(frequency_hz=0.0)

    def test_bad_beacon_period(self):
        with pytest.raises(ValueError):
            DtSRadioProfile(frequency_hz=400e6, beacon_period_s=0.0)
