"""Tests for footprint geometry."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.constellations.footprint import (earth_central_angle_rad,
                                             footprint_area_km2,
                                             footprint_radius_km,
                                             slant_range_km)
from satiot.orbits.constants import EARTH_RADIUS_KM


class TestCentralAngle:
    def test_horizon_value(self):
        lam = earth_central_angle_rad(850.0, 0.0)
        expected = math.acos(EARTH_RADIUS_KM / (EARTH_RADIUS_KM + 850.0))
        assert lam == pytest.approx(expected)

    @given(alt=st.floats(200.0, 2000.0), el=st.floats(0.0, 60.0))
    @settings(max_examples=100)
    def test_mask_shrinks_angle(self, alt, el):
        assert earth_central_angle_rad(alt, el) \
            <= earth_central_angle_rad(alt, 0.0) + 1e-12

    def test_invalid_altitude(self):
        with pytest.raises(ValueError):
            earth_central_angle_rad(0.0)


class TestFootprintArea:
    def test_monotonic_in_altitude(self):
        assert footprint_area_km2(900.0) > footprint_area_km2(500.0)

    def test_tianqi_shell_scale(self):
        # Paper Table 3: ~3.27e7 km^2 for the 815-898 km shell.
        area = footprint_area_km2(856.6)
        assert 2.8e7 < area < 3.4e7

    def test_fraction_of_earth(self):
        # A 500 km satellite sees a few percent of the Earth's surface.
        earth = 4 * math.pi * EARTH_RADIUS_KM ** 2
        assert 0.02 < footprint_area_km2(500.0) / earth < 0.05

    def test_radius_consistent_with_area(self):
        # Small-cap approximation: area ~ pi * radius^2 within ~10 %.
        area = footprint_area_km2(500.0)
        radius = footprint_radius_km(500.0)
        assert area == pytest.approx(math.pi * radius ** 2, rel=0.1)


class TestSlantRange:
    def test_zenith_equals_altitude(self):
        assert slant_range_km(850.0, 90.0) == pytest.approx(850.0)

    def test_horizon_longer_than_altitude(self):
        assert slant_range_km(850.0, 0.0) > 2.5 * 850.0

    def test_paper_distances(self):
        # Paper Fig. 8: 500 km satellites are 600-2,000 km away for most
        # receptions; Tianqi (~900 km) reaches 3,500 km at low elevation.
        assert 2000.0 < slant_range_km(500.0, 2.0) < 2800.0
        assert 3000.0 < slant_range_km(900.0, 2.0) < 3700.0

    @given(alt=st.floats(300.0, 1500.0),
           el1=st.floats(0.0, 89.0))
    @settings(max_examples=100)
    def test_monotonic_decreasing_in_elevation(self, alt, el1):
        el2 = min(el1 + 1.0, 90.0)
        assert slant_range_km(alt, el1) >= slant_range_km(alt, el2) - 1e-9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            slant_range_km(-100.0, 45.0)
        with pytest.raises(ValueError):
            slant_range_km(500.0, 95.0)
