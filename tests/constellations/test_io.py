"""Tests for constellation TLE import/export."""

import pytest

from satiot.constellations.catalog import DtSRadioProfile, \
    build_constellation
from satiot.constellations.io import export_tle_file, import_tle_file


class TestRoundTrip:
    def test_export_import(self, tmp_path):
        original = build_constellation("pico")
        path = tmp_path / "pico.tle"
        count = export_tle_file(original, path)
        assert count == 9

        back = import_tle_file(path, "PICO",
                               radio=original.radio)
        assert len(back) == len(original)
        for a, b in zip(original, back):
            assert a.norad_id == b.norad_id
            assert a.tle.inclination_deg \
                == pytest.approx(b.tle.inclination_deg, abs=1e-4)
            assert a.tle.mean_motion_rev_day \
                == pytest.approx(b.tle.mean_motion_rev_day, abs=1e-7)

    def test_imported_names(self, tmp_path):
        original = build_constellation("fossa")
        path = tmp_path / "fossa.tle"
        export_tle_file(original, path)
        back = import_tle_file(path, "FOSSA", radio=original.radio)
        assert [s.name for s in back] == [s.name for s in original]

    def test_imported_satellites_propagate(self, tmp_path):
        import numpy as np
        original = build_constellation("cstp")
        path = tmp_path / "cstp.tle"
        export_tle_file(original, path)
        back = import_tle_file(path, "CSTP", radio=original.radio)
        r, _ = back.satellites[0].propagator.propagate(3600.0)
        assert 6700.0 < np.linalg.norm(r) < 7000.0

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.tle"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no element sets"):
            import_tle_file(path, "X",
                            radio=DtSRadioProfile(frequency_hz=400e6))
