"""Tests for the synthetic shell generator."""

import numpy as np
import pytest

from satiot.constellations.shells import ShellSpec, generate_shell_tles
from satiot.orbits.sgp4 import SGP4


def make_spec(**kwargs):
    defaults = dict(name="TEST", count=8, altitude_min_km=500.0,
                    altitude_max_km=550.0, inclination_deg=97.5)
    defaults.update(kwargs)
    return ShellSpec(**defaults)


class TestShellSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_spec(count=0)
        with pytest.raises(ValueError):
            make_spec(altitude_max_km=400.0)
        with pytest.raises(ValueError):
            make_spec(inclination_deg=190.0)
        with pytest.raises(ValueError):
            make_spec(eccentricity=0.2)

    def test_mean_altitude(self):
        assert make_spec().mean_altitude_km == 525.0

    def test_plane_count_default(self):
        assert make_spec(count=9).plane_count() == 3
        assert make_spec(count=1).plane_count() == 1

    def test_plane_count_explicit(self):
        assert make_spec(count=8, planes=4).plane_count() == 4
        with pytest.raises(ValueError):
            make_spec(planes=0).plane_count()


class TestGenerateShellTles:
    def test_count_and_identity(self):
        tles = generate_shell_tles(make_spec(), 24, 250.0, norad_base=50000)
        assert len(tles) == 8
        assert sorted(t.norad_id for t in tles) == list(range(50000, 50008))
        assert len({t.norad_id for t in tles}) == 8

    def test_altitude_band_respected(self):
        from satiot.orbits.kepler import semi_major_axis_km
        from satiot.orbits.constants import EARTH_RADIUS_KM
        tles = generate_shell_tles(make_spec(), 24, 250.0, norad_base=50000)
        altitudes = [semi_major_axis_km(t.mean_motion_rev_day)
                     - EARTH_RADIUS_KM for t in tles]
        assert min(altitudes) == pytest.approx(500.0, abs=1.0)
        assert max(altitudes) == pytest.approx(550.0, abs=1.0)

    def test_inclination_uniform(self):
        tles = generate_shell_tles(make_spec(), 24, 250.0, norad_base=50000)
        assert all(t.inclination_deg == pytest.approx(97.5) for t in tles)

    def test_deterministic(self):
        a = generate_shell_tles(make_spec(), 24, 250.0, 50000, seed=5)
        b = generate_shell_tles(make_spec(), 24, 250.0, 50000, seed=5)
        assert [t.to_lines() for t in a] == [t.to_lines() for t in b]

    def test_seed_changes_geometry(self):
        a = generate_shell_tles(make_spec(), 24, 250.0, 50000, seed=5)
        b = generate_shell_tles(make_spec(), 24, 250.0, 50000, seed=6)
        assert any(x.raan_deg != y.raan_deg for x, y in zip(a, b))

    def test_raan_spread(self):
        # Eight satellites on ~3 planes should span a wide RAAN range.
        tles = generate_shell_tles(make_spec(count=9), 24, 250.0, 50000)
        raans = sorted(t.raan_deg for t in tles)
        assert raans[-1] - raans[0] > 90.0

    def test_all_propagatable(self):
        tles = generate_shell_tles(make_spec(), 24, 250.0, 50000)
        for tle in tles:
            r, _ = SGP4(tle).propagate(3600.0)
            assert 6800.0 < np.linalg.norm(r) < 7000.0

    def test_single_satellite_mid_altitude(self):
        from satiot.orbits.kepler import semi_major_axis_km
        from satiot.orbits.constants import EARTH_RADIUS_KM
        tles = generate_shell_tles(make_spec(count=1), 24, 250.0, 50000)
        alt = semi_major_axis_km(tles[0].mean_motion_rev_day) \
            - EARTH_RADIUS_KM
        assert alt == pytest.approx(525.0, abs=1.0)
