"""Tests for the provider registry and provider-routed cost math.

Two regression contracts live here.  First, the hand-computed tariff
fixtures for each built-in provider (Swarm- and Iridium-style archetype
numbers worked out from their datasheet tariffs).  Second — the bug
this registry exists to fix — the comparison layer's ``satellite=``
arguments resolve through the registry instead of a hardcoded
``TIANQI_COSTS`` default, and the default route stays bit-identical to
the pre-registry behaviour.
"""

from __future__ import annotations

import pytest

from satiot.constellations.catalog import CONSTELLATION_SPECS
from satiot.econ.comparison import tco_crossover_months, tco_usd
from satiot.econ.pricing import TIANQI_COSTS, SatelliteCostModel
from satiot.econ.providers import (PROVIDERS, ProviderSpec,
                                   get_provider, provider_names,
                                   register_provider, resolve_costs)


# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_providers_present(self):
        assert set(provider_names()) >= {"tianqi", "swarm", "iridium"}

    def test_names_sorted(self):
        assert list(provider_names()) == sorted(provider_names())

    def test_lookup_is_case_and_whitespace_insensitive(self):
        assert get_provider("Swarm") is PROVIDERS["swarm"]
        assert get_provider("  IRIDIUM ") is PROVIDERS["iridium"]

    def test_unknown_provider_lists_the_valid_set(self):
        with pytest.raises(ValueError) as excinfo:
            get_provider("starlink")
        message = str(excinfo.value)
        assert "starlink" in message
        for name in provider_names():
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_provider(PROVIDERS["swarm"])

    def test_provider_name_must_be_lowercase(self):
        spec = PROVIDERS["swarm"]
        with pytest.raises(ValueError, match="lowercase"):
            ProviderSpec(name="Swarm", display_name="x",
                         constellation=spec.constellation)
        with pytest.raises(ValueError, match="lowercase"):
            ProviderSpec(name="", display_name="x",
                         constellation=spec.constellation)

    def test_tianqi_provider_reuses_catalog_spec_and_costs(self):
        """The measured-service provider must alias, not copy: same
        constellation spec, same cost model object, so provider-routed
        paths are bit-identical to the legacy hardcoded ones."""
        tianqi = get_provider("tianqi")
        assert tianqi.constellation is CONSTELLATION_SPECS["tianqi"]
        assert tianqi.costs is TIANQI_COSTS

    def test_registered_constellations_stay_out_of_the_catalog(self):
        """Providers are what-if alternatives; the catalog remains the
        paper's four measured systems."""
        assert "swarm" not in CONSTELLATION_SPECS
        assert "iridium" not in CONSTELLATION_SPECS

    def test_provider_shells_are_distinct_fleets(self):
        swarm = get_provider("swarm").constellation
        iridium = get_provider("iridium").constellation
        assert sum(s.count for s in swarm.shells) == 120
        assert sum(s.count for s in iridium.shells) == 66
        assert swarm.norad_base != iridium.norad_base


# ----------------------------------------------------------------------
class TestResolveCosts:
    def test_none_is_the_measured_service(self):
        assert resolve_costs(None) is TIANQI_COSTS

    def test_model_passes_through(self):
        model = SatelliteCostModel(device_cost_usd=1.0)
        assert resolve_costs(model) is model

    def test_string_routes_through_registry(self):
        assert resolve_costs("swarm") is get_provider("swarm").costs
        assert resolve_costs("tianqi") is TIANQI_COSTS

    def test_unknown_string_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown provider"):
            resolve_costs("sputnik")

    def test_wrong_type_raises_type_error(self):
        with pytest.raises(TypeError, match="satellite"):
            resolve_costs(42)


# ----------------------------------------------------------------------
class TestTariffFixtures:
    """Hand-computed tariff numbers for each built-in provider.

    All fixtures assume the paper's reference workload: 48 packets per
    day of 20-byte readings, 30-day months.
    """

    def test_tianqi_monthly(self):
        # 48 pkt/day * 30 day / 1000 * 16.5 USD = 23.76 USD
        costs = get_provider("tianqi").costs
        assert costs.monthly_data_cost_usd(48.0, 20) \
            == pytest.approx(23.76)

    def test_swarm_monthly(self):
        # 20 B fits one 192 B packet: 48 * 30 / 1000 * 6.67 = 9.6048
        costs = get_provider("swarm").costs
        assert costs.monthly_data_cost_usd(48.0, 20) \
            == pytest.approx(9.6048)

    def test_iridium_monthly(self):
        # 20 B fits one 340 B packet: 48 * 30 / 1000 * 95 = 136.8
        costs = get_provider("iridium").costs
        assert costs.monthly_data_cost_usd(48.0, 20) \
            == pytest.approx(136.8)

    def test_packet_fragmentation_boundaries(self):
        swarm = get_provider("swarm").costs
        iridium = get_provider("iridium").costs
        assert swarm.packets_for_payload(192) == 1
        assert swarm.packets_for_payload(200) == 2
        assert iridium.packets_for_payload(340) == 1
        assert iridium.packets_for_payload(350) == 2

    def test_device_costs(self):
        assert get_provider("swarm").costs \
            .construction_cost_usd(3) == pytest.approx(357.0)
        assert get_provider("iridium").costs \
            .construction_cost_usd(2) == pytest.approx(498.0)


# ----------------------------------------------------------------------
class TestComparisonRouting:
    """``satellite=`` in the comparison layer resolves via the
    registry — the hardcoded-default regression."""

    def test_default_unchanged_by_registry(self):
        # 3 nodes, 12 months: 3*220 + 3*12*23.76 = 1515.36 satellite;
        # 3*35 + 219 + 12*4.9 = 382.8 terrestrial.
        tco = tco_usd(12, node_count=3, packets_per_day=48.0,
                      payload_bytes=20)
        assert tco["satellite_usd"] == pytest.approx(1515.36)
        assert tco["terrestrial_usd"] == pytest.approx(382.8)
        explicit = tco_usd(12, node_count=3, packets_per_day=48.0,
                           payload_bytes=20, satellite=TIANQI_COSTS)
        named = tco_usd(12, node_count=3, packets_per_day=48.0,
                        payload_bytes=20, satellite="tianqi")
        assert tco == explicit == named

    def test_provider_name_switches_the_tariff(self):
        # Swarm: 3*119 + 3*12*9.6048 = 702.7728
        tco = tco_usd(12, node_count=3, packets_per_day=48.0,
                      payload_bytes=20, satellite="swarm")
        assert tco["satellite_usd"] == pytest.approx(702.7728)
        # Terrestrial side is provider-independent.
        assert tco["terrestrial_usd"] == pytest.approx(382.8)

    def test_unknown_provider_name_raises(self):
        with pytest.raises(ValueError, match="unknown provider"):
            tco_usd(12, satellite="nonesuch")
        with pytest.raises(ValueError, match="unknown provider"):
            tco_crossover_months(satellite="nonesuch")

    def test_crossover_moves_with_the_tariff(self):
        """A cheaper per-packet tariff pushes the satellite-loses-
        to-terrestrial crossover later (or out of the horizon)."""
        flips_tq, month_tq = tco_crossover_months(satellite="tianqi")
        flips_sw, month_sw = tco_crossover_months(satellite="swarm")
        assert flips_tq
        if flips_sw:
            assert month_sw > month_tq
