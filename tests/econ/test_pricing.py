"""Tests for the cost models (paper Table 2)."""

import pytest

from satiot.econ.pricing import TERRESTRIAL_COSTS, TIANQI_COSTS


class TestSatelliteCosts:
    def test_paper_monthly_charge(self):
        # Paper: 48 packets/day at 16.5 USD per thousand packets
        # -> 23.76 USD per month per sensor.
        monthly = TIANQI_COSTS.monthly_data_cost_usd(48.0, 20)
        assert monthly == pytest.approx(23.76)

    def test_device_cost(self):
        assert TIANQI_COSTS.device_cost_usd == 220.0

    def test_payload_over_max_bills_extra_packets(self):
        assert TIANQI_COSTS.packets_for_payload(120) == 1
        assert TIANQI_COSTS.packets_for_payload(121) == 2
        assert TIANQI_COSTS.packets_for_payload(240) == 2

    def test_construction(self):
        assert TIANQI_COSTS.construction_cost_usd(3) == pytest.approx(660.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TIANQI_COSTS.packets_for_payload(0)
        with pytest.raises(ValueError):
            TIANQI_COSTS.monthly_data_cost_usd(-1.0)
        with pytest.raises(ValueError):
            TIANQI_COSTS.construction_cost_usd(0)


class TestTerrestrialCosts:
    def test_paper_values(self):
        assert TERRESTRIAL_COSTS.end_node_cost_usd == 35.0
        assert TERRESTRIAL_COSTS.gateway_cost_usd == 219.0
        assert TERRESTRIAL_COSTS.lte_plan_usd_per_month == 4.9
        assert TERRESTRIAL_COSTS.lte_bandwidth_mbps == 42.0

    def test_construction_includes_gateway(self):
        cost = TERRESTRIAL_COSTS.construction_cost_usd(3, gateway_count=3)
        assert cost == pytest.approx(3 * 35.0 + 3 * 219.0)

    def test_gateway_autoscaling(self):
        cost = TERRESTRIAL_COSTS.construction_cost_usd(600)
        assert cost == pytest.approx(600 * 35.0 + 2 * 219.0)

    def test_monthly(self):
        assert TERRESTRIAL_COSTS.monthly_data_cost_usd(2) \
            == pytest.approx(9.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            TERRESTRIAL_COSTS.construction_cost_usd(0)
        with pytest.raises(ValueError):
            TERRESTRIAL_COSTS.monthly_data_cost_usd(0)
