"""Tests for the expenditure comparison and TCO curves."""


import pytest

from satiot.econ.comparison import (expenditure_table, tco_crossover_months,
                                    tco_usd)


class TestExpenditureTable:
    def test_reproduces_paper_rows(self):
        rows = {r.network: r for r in expenditure_table()}
        terr = rows["Terrestrial IoT"]
        sat = rows["Satellite IoT"]
        assert terr.device_cost_usd == 35.0
        assert terr.infrastructure_cost_usd == 219.0
        assert terr.operational_usd_per_month == pytest.approx(4.9)
        assert sat.device_cost_usd == 220.0
        assert sat.infrastructure_cost_usd == 0.0
        assert sat.operational_usd_per_month == pytest.approx(23.76)


class TestTco:
    def test_zero_months_is_construction_only(self):
        tco = tco_usd(0, node_count=1)
        assert tco["satellite_usd"] == pytest.approx(220.0)
        assert tco["terrestrial_usd"] == pytest.approx(35.0 + 219.0)

    def test_monotonic_in_time(self):
        a = tco_usd(1)
        b = tco_usd(12)
        assert b["satellite_usd"] > a["satellite_usd"]
        assert b["terrestrial_usd"] > a["terrestrial_usd"]

    def test_satellite_starts_cheaper_then_flips(self):
        # Single node: satellite saves the gateway up-front (paper's
        # "saves infrastructure construction costs") but the per-packet
        # billing overtakes within a couple of months.
        start = tco_usd(0)
        assert start["satellite_usd"] < start["terrestrial_usd"]
        flips, month = tco_crossover_months()
        assert flips
        assert 1 <= month <= 6

    def test_negative_months_rejected(self):
        with pytest.raises(ValueError):
            tco_usd(-1)

    def test_many_nodes_terrestrial_wins_immediately(self):
        # Ten nodes share one gateway: terrestrial construction is
        # already cheaper than ten satellite devices.
        tco = tco_usd(0, node_count=10)
        assert tco["terrestrial_usd"] < tco["satellite_usd"]
