"""Property tests: v2 shard spill is a value-exact, blocking-invariant
round trip.

For arbitrary trace tables — any finite floats, any int64 ids, unicode
strings — spilling through the sharded writer and reloading must
reproduce the exact row sequence, with per-shard string tables
canonicalized across whatever shard boundaries the row count dictates.
The shard *bytes* must depend only on the row stream, never on how the
producer blocked its writes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.groundstation.traces import BeaconTrace, TraceColumns
from satiot.streams.spill import ShardedTraceReader, ShardSpillWriter
from tests.streams.conftest import sha_tree

pytestmark = pytest.mark.property

TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="\x00"),
    min_size=0, max_size=8)

FINITE = st.floats(allow_nan=False, allow_infinity=False, width=64)
INT64 = st.integers(min_value=-(2 ** 62), max_value=2 ** 62)


@st.composite
def traces(draw):
    return BeaconTrace(
        time_s=draw(FINITE),
        station_id=draw(TEXT),
        site=draw(TEXT),
        constellation=draw(TEXT),
        satellite=draw(TEXT),
        norad_id=draw(INT64),
        frequency_hz=draw(FINITE),
        rssi_dbm=draw(FINITE),
        snr_db=draw(FINITE),
        elevation_deg=draw(FINITE),
        azimuth_deg=draw(FINITE),
        range_km=draw(FINITE),
        doppler_hz=draw(FINITE),
        raining=draw(st.booleans()),
        pass_id=draw(TEXT),
    )


#: A row stream pre-split into arbitrary producer blocks.
BLOCKED_ROWS = st.lists(
    st.lists(traces(), min_size=0, max_size=10),
    min_size=0, max_size=5)

ROWS_PER_SHARD = st.integers(min_value=1, max_value=17)


def _spill(root, blocks, rows_per_shard):
    writer = ShardSpillWriter(root, rows_per_shard=rows_per_shard,
                              fingerprint="prop")
    for block in blocks:
        if block.n:
            writer.write(block)
    return writer.finalize()


@settings(max_examples=50, deadline=None)
@given(BLOCKED_ROWS, ROWS_PER_SHARD)
def test_spill_roundtrip_exact(tmp_path_factory, blocked, rows_per_shard):
    root = tmp_path_factory.mktemp("spill")
    blocks = [TraceColumns.from_rows(rows) for rows in blocked]
    manifest = _spill(root, blocks, rows_per_shard)
    expected = TraceColumns.concat(blocks)
    assert manifest["total_rows"] == expected.n

    reader = ShardedTraceReader(root)
    assert reader.verify() == expected.n
    assert reader.load().columns.equals(expected)

    # Every shard's string tables are canonical (first-appearance
    # interned within the shard) regardless of where boundaries fell.
    for shard in reader.iter_blocks():
        for name in ("station_id", "site", "constellation",
                     "satellite", "pass_id"):
            column = shard.string_column(name)
            assert column.table == column.canonicalized().table

    # Shard sizing: every shard except the last holds exactly
    # rows_per_shard rows.
    rows = [entry["rows"] for entry in manifest["shards"]]
    assert all(r == rows_per_shard for r in rows[:-1])
    assert sum(rows) == expected.n


@settings(max_examples=30, deadline=None)
@given(st.lists(traces(), min_size=0, max_size=24),
       ROWS_PER_SHARD,
       st.integers(min_value=1, max_value=9))
def test_shard_bytes_invariant_under_blocking(tmp_path_factory, rows,
                                              rows_per_shard, step):
    root = tmp_path_factory.mktemp("blocking")
    whole = TraceColumns.from_rows(rows)
    _spill(root / "one", [whole], rows_per_shard)
    pieces = [whole.slice(slice(i, i + step))
              for i in range(0, whole.n, step)]
    _spill(root / "many", pieces, rows_per_shard)
    assert sha_tree(root / "one") == sha_tree(root / "many")
