"""Checkpoint persistence: exact round trips, fingerprint safety."""

from __future__ import annotations

import json

import pytest

from satiot.core.contacts import ContactWindowStats
from satiot.core.longitudinal import WeeklySample
from satiot.streams.checkpoint import (CHECKPOINT_FORMAT, CHECKPOINT_NAME,
                                       campaign_fingerprint,
                                       clear_checkpoint, load_checkpoint,
                                       sample_from_state, sample_to_state,
                                       save_checkpoint)


def make_sample(week: int = 2) -> WeeklySample:
    stats = ContactWindowStats(
        span_s=86400.0,
        theoretical_durations_s=[600.5, 481.25],
        effective_durations_s=[55.125, 0.1],
        theoretical_intervals_s=[(0.0, 600.5), (1000.0, 1481.25)],
        effective_intervals_s=[(10.0, 65.125)],
        theoretical_daily_hours=0.30048611111,
        effective_daily_hours=0.015340277,
    )
    return WeeklySample(week=week, start_day_offset=week * 7.0,
                        traces=123, stats_by_constellation={"tianqi": stats})


class TestFingerprint:
    def test_stable_and_key_order_insensitive(self):
        a = campaign_fingerprint({"weeks": 4, "seed": 7})
        b = campaign_fingerprint({"seed": 7, "weeks": 4})
        assert a == b
        assert len(a) == 64

    def test_any_parameter_changes_it(self):
        base = campaign_fingerprint({"weeks": 4, "seed": 7})
        assert campaign_fingerprint({"weeks": 4, "seed": 8}) != base
        assert campaign_fingerprint({"weeks": 5, "seed": 7}) != base


class TestSampleState:
    def test_roundtrip_is_value_exact(self):
        sample = make_sample()
        state = sample_to_state(sample)
        # Through JSON, as the checkpoint file does: float repr
        # round-trips float64 exactly.
        restored = sample_from_state(json.loads(json.dumps(state)))
        assert restored.week == sample.week
        assert restored.start_day_offset == sample.start_day_offset
        assert restored.traces == sample.traces
        theirs = restored.stats_by_constellation["tianqi"]
        ours = sample.stats_by_constellation["tianqi"]
        assert theirs.effective_daily_hours == ours.effective_daily_hours
        assert theirs.theoretical_durations_s == ours.theoretical_durations_s


class TestSaveLoad:
    STATE = {"fingerprint": "f" * 64, "weeks_done": 3,
             "samples": [], "sent": {"hk/tianqi": 10},
             "received": {"hk/tianqi": 7},
             "writer": {"shards": []}}

    def test_roundtrip(self, tmp_path):
        save_checkpoint(tmp_path, self.STATE)
        state = load_checkpoint(tmp_path)
        assert state["format"] == CHECKPOINT_FORMAT
        assert state["weeks_done"] == 3
        assert state["sent"] == {"hk/tianqi": 10}

    def test_missing_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path) is None

    def test_clear(self, tmp_path):
        save_checkpoint(tmp_path, self.STATE)
        clear_checkpoint(tmp_path)
        assert load_checkpoint(tmp_path) is None
        clear_checkpoint(tmp_path)  # idempotent

    def test_fingerprint_match_accepts(self, tmp_path):
        save_checkpoint(tmp_path, self.STATE)
        assert load_checkpoint(tmp_path, "f" * 64) is not None

    def test_fingerprint_mismatch_refuses(self, tmp_path):
        save_checkpoint(tmp_path, self.STATE)
        with pytest.raises(ValueError, match="refusing to resume"):
            load_checkpoint(tmp_path, "0" * 64)

    def test_corrupt_json_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_NAME).write_text("{torn write")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_checkpoint(tmp_path)

    def test_foreign_format_raises(self, tmp_path):
        (tmp_path / CHECKPOINT_NAME).write_text(
            json.dumps({"format": "not-a-checkpoint"}))
        with pytest.raises(ValueError, match="unsupported checkpoint"):
            load_checkpoint(tmp_path)
