"""Out-of-core longitudinal runs: spill, resume, streaming KPIs.

The end-to-end contracts: a spilled run computes the same weekly
samples as an in-RAM run; a completed archive short-circuits resume;
and the streaming reducers folded over the spilled shards reproduce
the fold over the reloaded dataset exactly.
"""

from __future__ import annotations

from satiot.core.longitudinal import LongitudinalCampaign
from satiot.streams.reducers import reduce_blocks
from satiot.streams.spill import ShardedTraceReader, is_stream_archive
from tests.streams.conftest import sha_tree
from tests.streams.test_reducers import assert_kpis_equal

WEEKS, SAMPLE_DAYS, SEED = 2, 0.15, 7
CONSTELLATIONS = ("tianqi",)


def campaign(**kwargs) -> LongitudinalCampaign:
    return LongitudinalCampaign(weeks=WEEKS, sample_days=SAMPLE_DAYS,
                                seed=SEED,
                                constellations=CONSTELLATIONS, **kwargs)


def test_spilled_run_matches_in_ram_samples(tmp_path):
    in_ram = campaign().run()
    spilled = campaign(spill_dir=tmp_path / "spill",
                       rows_per_shard=300).run()
    assert spilled.samples == in_ram.samples
    assert spilled.archive_dir == str(tmp_path / "spill")
    assert is_stream_archive(spilled.archive_dir)

    reader = ShardedTraceReader(spilled.archive_dir)
    assert reader.verify() == sum(s.traces for s in spilled.samples)
    assert spilled.manifest["meta"]["params"]["weeks"] == WEEKS
    # Weekly pass ids are disambiguated across the whole span.
    pass_ids = set()
    for block in reader.iter_blocks():
        pass_ids.update(block.string_column("pass_id").table)
    assert all(p.startswith("w") and "/" in p for p in pass_ids)


def test_telemetry_reports_spill_volume(tmp_path):
    result = campaign(spill_dir=tmp_path, rows_per_shard=300).run()
    telemetry = result.telemetry
    assert telemetry is not None
    assert telemetry.spilled_shards == len(result.manifest["shards"])
    assert telemetry.spilled_bytes > 0
    assert f"spilled {telemetry.spilled_shards}" in telemetry.render()


def test_resume_short_circuits_completed_archive(tmp_path):
    first = campaign(spill_dir=tmp_path, rows_per_shard=300).run()
    before = sha_tree(tmp_path)
    again = campaign(spill_dir=tmp_path, rows_per_shard=300,
                     resume=True).run()
    assert sha_tree(tmp_path) == before  # nothing rewritten
    assert again.samples == first.samples
    assert again.manifest == first.manifest


def test_fresh_run_clears_stale_state(tmp_path):
    campaign(spill_dir=tmp_path, rows_per_shard=300).run()
    stale = tmp_path / "shards" / "shard-999999.npz"
    stale.write_bytes(b"stale garbage from an older run")
    reference = campaign(spill_dir=tmp_path, rows_per_shard=300).run()
    assert not stale.exists()
    assert ShardedTraceReader(tmp_path).verify() \
        == sum(s.traces for s in reference.samples)


def test_streaming_kpis_match_reloaded_fold(tmp_path):
    result = campaign(spill_dir=tmp_path, rows_per_shard=300).run()
    meta = result.manifest["meta"]
    reader = ShardedTraceReader(tmp_path)
    sent = {key: int(value) for key, value in meta["sent"].items()}
    streamed = reduce_blocks(reader.iter_blocks(), meta["span_s"],
                             sent=sent)
    in_ram = reduce_blocks([reader.load().columns], meta["span_s"],
                           sent=sent)
    assert_kpis_equal(streamed, in_ram)
    assert sum(v["traces"] for v in streamed.values()) \
        == reader.total_rows


def test_parallel_spill_matches_serial_bytes(tmp_path):
    serial = campaign(spill_dir=tmp_path / "serial",
                      rows_per_shard=300, workers=1).run()
    parallel = campaign(spill_dir=tmp_path / "parallel",
                        rows_per_shard=300, workers=2).run()
    assert parallel.samples == serial.samples
    assert sha_tree(tmp_path / "serial") == sha_tree(tmp_path / "parallel")
