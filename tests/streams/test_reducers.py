"""Streaming KPI reducers: exact equality with the in-RAM computation.

The contract is *bitwise*, not approximate: however a campaign's rows
are partitioned into blocks — per shard, per week, or one consolidated
block — the reducer's finalized KPIs are identical floats.  ExactSum
carries that guarantee for the RSSI mean (float addition is not
associative; an exact rational accumulator is).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.groundstation.traces import TraceColumns
from satiot.streams.reducers import (ExactSum, StreamingKpiReducer,
                                     reduce_blocks)
from tests.streams.conftest import make_block


def assert_kpis_equal(a, b):
    """Dict equality that treats NaN == NaN (loss without sent counts)."""
    assert set(a) == set(b)
    for subject in a:
        assert set(a[subject]) == set(b[subject])
        for kpi, value in a[subject].items():
            other = b[subject][kpi]
            if isinstance(value, float) and math.isnan(value):
                assert math.isnan(other), (subject, kpi)
            else:
                assert value == other, (subject, kpi)


class TestExactSum:
    def test_partition_invariance_exhaustive(self):
        rng = np.random.default_rng(0)
        # Wildly mixed exponents: the worst case for float summation.
        values = rng.uniform(-1.0, 1.0, 700) * 10.0 ** \
            rng.integers(-30, 30, 700)
        whole = ExactSum()
        whole.update(values)
        for parts in (2, 7, 37):
            split = ExactSum()
            for chunk in np.array_split(values, parts):
                split.update(chunk)
            assert split.value() == whole.value()
            assert split.mean() == whole.mean()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              width=64), min_size=0, max_size=40),
           st.integers(min_value=1, max_value=8))
    def test_partition_invariance_property(self, values, parts):
        array = np.asarray(values, dtype=np.float64)
        whole = ExactSum()
        whole.update(array)
        split = ExactSum()
        for chunk in np.array_split(array, parts):
            split.update(chunk)
        assert split.count == whole.count
        assert np.array_equal(np.float64(split.value()),
                              np.float64(whole.value()))

    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=300)
        whole = ExactSum()
        whole.update(values)
        left, right = ExactSum(), ExactSum()
        left.update(values[:100])
        right.update(values[100:])
        left.merge(right)
        assert left.value() == whole.value()
        assert left.count == whole.count

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            ExactSum().update(np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            ExactSum().update(np.array([np.inf]))

    def test_empty_mean_is_nan(self):
        assert math.isnan(ExactSum().mean())
        assert ExactSum().value() == 0.0


class TestStreamingKpiReducer:
    BLOCKS = [make_block(150, seed=20),
              make_block(90, seed=21, site="SYD"),
              make_block(60, seed=22, constellation="FOSSA")]
    SENT = {"hk/tianqi": 1000, "syd/tianqi": 500, "hk/fossa": 200}
    SPAN = 86400.0

    def test_streaming_equals_in_ram(self):
        streamed = reduce_blocks(self.BLOCKS, self.SPAN, sent=self.SENT)
        in_ram = reduce_blocks([TraceColumns.concat(self.BLOCKS)],
                               self.SPAN, sent=self.SENT)
        assert_kpis_equal(streamed, in_ram)

    def test_invariant_under_fine_blocking(self):
        whole = TraceColumns.concat(self.BLOCKS)
        fine = [whole.slice(slice(i, i + 11))
                for i in range(0, whole.n, 11)]
        assert_kpis_equal(reduce_blocks(fine, self.SPAN, sent=self.SENT),
                          reduce_blocks([whole], self.SPAN,
                                        sent=self.SENT))

    def test_merge_equals_single_reducer(self):
        single = StreamingKpiReducer()
        for block in self.BLOCKS:
            single.update(block)
        left, right = StreamingKpiReducer(), StreamingKpiReducer()
        left.update(self.BLOCKS[0])
        for block in self.BLOCKS[1:]:
            right.update(block)
        left.merge(right)
        assert left.rows == single.rows
        assert_kpis_equal(left.finalize(self.SPAN, sent=self.SENT),
                          single.finalize(self.SPAN, sent=self.SENT))

    def test_subjects_and_counts(self):
        kpis = reduce_blocks(self.BLOCKS, self.SPAN, sent=self.SENT)
        assert set(kpis) == {("HK", "Tianqi"), ("SYD", "Tianqi"),
                             ("HK", "FOSSA")}
        assert kpis[("HK", "Tianqi")]["traces"] == 150
        assert kpis[("SYD", "Tianqi")]["traces"] == 90

    def test_loss_rate_uses_sent_counts(self):
        kpis = reduce_blocks(self.BLOCKS, self.SPAN, sent=self.SENT)
        assert kpis[("HK", "Tianqi")]["beacon_loss_rate"] \
            == 1.0 - 150 / 1000
        without = reduce_blocks(self.BLOCKS, self.SPAN)
        assert math.isnan(
            without[("HK", "Tianqi")]["beacon_loss_rate"])

    def test_gap_and_availability_kpis_are_bounded(self):
        kpis = reduce_blocks(self.BLOCKS, self.SPAN, sent=self.SENT)
        for values in kpis.values():
            assert 0.0 <= values["effective_daily_hours"] <= 24.0
            assert 0.0 <= values["max_gap_s"] <= self.SPAN
            assert values["passes"] >= values["contacts"] >= 1
            assert values["tco_satellite_usd"] > 0
            assert values["tco_terrestrial_usd"] > 0

    def test_empty_block_is_a_noop(self):
        reducer = StreamingKpiReducer()
        reducer.update(TraceColumns.empty())
        assert reducer.rows == 0
        assert reducer.finalize(self.SPAN) == {}

    def test_span_must_be_positive(self):
        with pytest.raises(ValueError):
            StreamingKpiReducer().finalize(0.0)
