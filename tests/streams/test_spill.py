"""Sharded spill writer/reader: determinism, durability, error paths.

The format contract under test (docs/streams.md): shard boundaries and
shard bytes are pure functions of the row stream and ``rows_per_shard``
— never of how the producer blocked its writes — and every corruption
mode surfaces as :class:`TraceArchiveError` naming the offending file.
"""

from __future__ import annotations

import json

import pytest

from satiot.groundstation.traces import TraceColumns, TraceDataset
from satiot.streams.spill import (DEFAULT_ROWS_PER_SHARD, MANIFEST_NAME,
                                  SHARD_FORMAT, STREAM_FORMAT,
                                  ShardedTraceReader, ShardSpillWriter,
                                  TraceArchiveError, is_stream_archive,
                                  read_stream_manifest)
from tests.streams.conftest import make_block, sha_tree


def spill(root, blocks, rows_per_shard=100, fingerprint="fp"):
    writer = ShardSpillWriter(root, rows_per_shard=rows_per_shard,
                              fingerprint=fingerprint)
    for block in blocks:
        writer.write(block)
    return writer.finalize(meta={"engine": "test"})


class TestRoundTrip:
    def test_multi_block_roundtrip_is_value_exact(self, tmp_path):
        blocks = [make_block(137, seed=1), make_block(251, seed=2),
                  make_block(13, seed=3, site="SYD")]
        manifest = spill(tmp_path, blocks)
        assert manifest["total_rows"] == 401
        assert len(manifest["shards"]) == 5  # 4 full + 1 remainder
        reader = ShardedTraceReader(tmp_path)
        assert reader.verify() == 401
        assert reader.load().columns.equals(TraceColumns.concat(blocks))

    def test_row_order_is_write_order(self, tmp_path):
        blocks = [make_block(30, seed=4), make_block(30, seed=5)]
        spill(tmp_path, blocks, rows_per_shard=25)
        loaded = ShardedTraceReader(tmp_path).load()
        expected = TraceColumns.concat(blocks)
        assert loaded.columns.column("time_s").tolist() \
            == expected.column("time_s").tolist()

    def test_empty_archive(self, tmp_path):
        manifest = spill(tmp_path, [])
        assert manifest["total_rows"] == 0
        assert manifest["shards"] == []
        reader = ShardedTraceReader(tmp_path)
        assert reader.verify() == 0
        assert len(reader.load()) == 0

    def test_shard_string_tables_are_canonical(self, tmp_path):
        spill(tmp_path, [make_block(40, seed=6),
                         make_block(40, seed=7, site="SYD")],
              rows_per_shard=30)
        for block in ShardedTraceReader(tmp_path).iter_blocks():
            for name in ("site", "constellation", "pass_id"):
                column = block.string_column(name)
                assert column.equals(column.canonicalized())
                assert column.table == column.canonicalized().table


class TestDeterminism:
    def test_bytes_independent_of_producer_blocking(self, tmp_path):
        rows = make_block(180, seed=8)
        one = tmp_path / "one"
        many = tmp_path / "many"
        spill(one, [rows], rows_per_shard=50)
        pieces = [rows.slice(slice(i, i + 7)) for i in range(0, 180, 7)]
        spill(many, pieces, rows_per_shard=50)
        assert sha_tree(one) == sha_tree(many)

    def test_equal_runs_spill_byte_identically(self, tmp_path):
        for sub in ("a", "b"):
            spill(tmp_path / sub, [make_block(90, seed=9)],
                  rows_per_shard=40)
        assert sha_tree(tmp_path / "a") == sha_tree(tmp_path / "b")


class TestManifest:
    def test_read_is_manifest_only(self, tmp_path):
        spill(tmp_path, [make_block(10, seed=10)])
        # Corrupting the shard must not affect a manifest-only read.
        shard = next((tmp_path / "shards").glob("shard-*.npz"))
        shard.write_bytes(b"garbage")
        manifest = read_stream_manifest(tmp_path)
        assert manifest["format"] == STREAM_FORMAT
        assert manifest["total_rows"] == 10
        assert manifest["fingerprint"] == "fp"
        assert manifest["meta"] == {"engine": "test"}

    def test_is_stream_archive(self, tmp_path):
        assert not is_stream_archive(tmp_path)
        spill(tmp_path, [make_block(5, seed=11)])
        assert is_stream_archive(tmp_path)

    def test_schema_and_string_fingerprints_recorded(self, tmp_path):
        manifest = spill(tmp_path, [make_block(12, seed=12)])
        assert set(manifest["schema"]) >= {"time_s", "rssi_dbm", "site"}
        entry = manifest["shards"][0]
        assert set(entry["string_tables"]) \
            == {"station_id", "site", "constellation", "satellite",
                "pass_id"}

    def test_rejects_foreign_manifest(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"format": "something-else"}))
        with pytest.raises(TraceArchiveError):
            read_stream_manifest(tmp_path)
        assert not is_stream_archive(tmp_path)


class TestCorruption:
    def test_truncated_shard_names_the_file(self, tmp_path):
        spill(tmp_path, [make_block(60, seed=13)], rows_per_shard=30)
        shard = sorted((tmp_path / "shards").glob("shard-*.npz"))[1]
        shard.write_bytes(shard.read_bytes()[:100])
        reader = ShardedTraceReader(tmp_path)
        with pytest.raises(TraceArchiveError, match=shard.name):
            reader.verify()

    def test_trace_archive_error_is_a_value_error(self):
        # The dataset CLI catches ValueError; the subclass must flow
        # through that handler (exit 2, no traceback).
        assert issubclass(TraceArchiveError, ValueError)

    def test_missing_shard_file(self, tmp_path):
        spill(tmp_path, [make_block(20, seed=14)], rows_per_shard=10)
        next((tmp_path / "shards").glob("shard-*.npz")).unlink()
        with pytest.raises(TraceArchiveError):
            ShardedTraceReader(tmp_path).verify()

    def test_v1_loader_points_at_v2_reader(self, tmp_path):
        spill(tmp_path, [make_block(8, seed=15)])
        shard = next((tmp_path / "shards").glob("shard-*.npz"))
        with pytest.raises(ValueError, match="ShardedTraceReader"):
            TraceDataset.from_npz(shard)


class TestSnapshotResume:
    def test_resume_continues_byte_identically(self, tmp_path):
        first = make_block(130, seed=16)
        second = make_block(80, seed=17)
        clean = tmp_path / "clean"
        spill(clean, [first, second])

        resumed = tmp_path / "resumed"
        writer = ShardSpillWriter(resumed, rows_per_shard=100,
                                  fingerprint="fp")
        writer.write(first)           # 1 shard + 30 pending rows
        state = writer.snapshot_state()
        writer = ShardSpillWriter.resume(resumed, state)
        writer.write(second)
        writer.finalize(meta={"engine": "test"})
        assert sha_tree(clean) == sha_tree(resumed)

    def test_resume_prunes_shards_past_the_checkpoint(self, tmp_path):
        clean = tmp_path / "clean"
        spill(clean, [make_block(130, seed=18)], rows_per_shard=50)

        crashed = tmp_path / "crashed"
        writer = ShardSpillWriter(crashed, rows_per_shard=50,
                                  fingerprint="fp")
        writer.write(make_block(130, seed=18).slice(slice(0, 60)))
        state = writer.snapshot_state()
        # A shard that landed after the checkpoint (torn crash window).
        stray = crashed / "shards" / "shard-000001.npz"
        stray.write_bytes(b"half-written garbage")
        writer = ShardSpillWriter.resume(crashed, state)
        writer.write(make_block(130, seed=18).slice(slice(60, 130)))
        writer.finalize(meta={"engine": "test"})
        assert sha_tree(clean) == sha_tree(crashed)

    def test_resume_verifies_inventoried_shards(self, tmp_path):
        writer = ShardSpillWriter(tmp_path, rows_per_shard=10,
                                  fingerprint="fp")
        writer.write(make_block(25, seed=19))
        state = writer.snapshot_state()
        shard = next((tmp_path / "shards").glob("shard-*.npz"))
        shard.write_bytes(shard.read_bytes()[:64])
        with pytest.raises(TraceArchiveError):
            ShardSpillWriter.resume(tmp_path, state)


def test_default_shard_size_is_sane():
    assert DEFAULT_ROWS_PER_SHARD == 100_000
    assert SHARD_FORMAT.startswith(STREAM_FORMAT)
