"""Shared builders for stream-plane tests: synthetic trace blocks."""

from __future__ import annotations

import hashlib
from pathlib import Path

import numpy as np

from satiot.groundstation.traces import BeaconTrace, TraceColumns


def make_block(n: int, seed: int = 0, site: str = "HK",
               constellation: str = "Tianqi",
               t0: float = 0.0) -> TraceColumns:
    """A deterministic block of ``n`` plausible beacon traces."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        rows.append(BeaconTrace(
            time_s=t0 + i * 10.0 + float(rng.uniform(0.0, 5.0)),
            station_id=f"st-{i % 3}",
            site=site,
            constellation=constellation,
            satellite=f"SAT-{i % 4}",
            norad_id=70000 + (i % 4),
            frequency_hz=401.0e6,
            rssi_dbm=float(rng.uniform(-130.0, -90.0)),
            snr_db=float(rng.uniform(-5.0, 15.0)),
            elevation_deg=float(rng.uniform(0.0, 90.0)),
            azimuth_deg=float(rng.uniform(0.0, 360.0)),
            range_km=float(rng.uniform(400.0, 2500.0)),
            doppler_hz=float(rng.uniform(-8000.0, 8000.0)),
            raining=bool(rng.random() < 0.2),
            pass_id=f"{site}-{70000 + i % 4}-{i % 5}",
        ))
    return TraceColumns.from_rows(rows)


def sha_tree(root) -> dict:
    """Relative-path -> sha256 of every file under ``root``."""
    return {
        str(path.relative_to(root)):
            hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(root).rglob("*")) if path.is_file()}
