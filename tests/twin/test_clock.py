"""Tests for the digital-twin clock and the start-query parser.

The serving layer's byte-identity guarantees rest on two contracts
pinned here: :class:`SimClock` is monotonic and quantized (every fleet
worker inside one quantum resolves ``start=now`` to the same offset),
and :func:`parse_time_query` maps every malformed start value to a
``ValueError`` with an actionable message — never an exception the
server would turn into a 500.
"""

from __future__ import annotations

import math
import threading

import pytest

from satiot.orbits.timebase import Epoch, jday
from satiot.twin import (MAX_QUERY_HORIZON_S, SKEW_TOLERANCE_S,
                         SimClock, parse_time_query)


class FakeTime:
    """An injectable wall clock driven explicitly by the test."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = float(t)

    def __call__(self) -> float:
        return self.t


EPOCH = Epoch(jday(2024, 9, 6, 12, 0, 0.0))


# ----------------------------------------------------------------------
class TestSimClock:
    def test_offset_is_elapsed_time_times_rate(self):
        wall = FakeTime(1000.0)
        clock = SimClock(rate=2.0, anchor=1000.0, time_source=wall)
        assert clock.now_offset_s() == 0.0
        wall.t = 1030.0
        assert clock.now_offset_s() == 60.0

    def test_anchor_defaults_to_construction_instant(self):
        wall = FakeTime(500.0)
        clock = SimClock(time_source=wall)
        wall.t = 512.5
        assert clock.now_offset_s() == pytest.approx(12.5)

    def test_pre_anchor_wall_time_clamps_to_zero(self):
        wall = FakeTime(1000.0)
        clock = SimClock(anchor=2000.0, time_source=wall)
        assert clock.now_offset_s() == 0.0

    def test_monotonic_under_backwards_wall_step(self):
        wall = FakeTime(1000.0)
        clock = SimClock(anchor=1000.0, time_source=wall)
        wall.t = 1100.0
        assert clock.now_offset_s() == 100.0
        wall.t = 1040.0  # NTP stepped the wall clock back
        assert clock.now_offset_s() == 100.0
        wall.t = 1150.0
        assert clock.now_offset_s() == 150.0

    def test_query_offset_floors_to_quantum(self):
        wall = FakeTime(1000.0)
        clock = SimClock(anchor=1000.0, time_source=wall,
                         quantum_s=60.0)
        wall.t = 1119.0
        assert clock.query_offset_s() == 60.0
        wall.t = 1120.0
        assert clock.query_offset_s() == 120.0

    def test_workers_sharing_anchor_agree_within_quantum(self):
        """The fleet contract: same anchor + same quantum =>
        byte-identical ``start=now`` resolution, regardless of the
        small wall-clock skew between workers."""
        a = SimClock(anchor=1000.0, time_source=FakeTime(1130.0),
                     quantum_s=60.0)
        b = SimClock(anchor=1000.0, time_source=FakeTime(1171.0),
                     quantum_s=60.0)
        assert a.query_offset_s() == b.query_offset_s() == 120.0

    def test_now_epoch_advances_the_epoch(self):
        wall = FakeTime(0.0)
        clock = SimClock(anchor=0.0, time_source=wall)
        wall.t = 3600.0
        assert float(clock.now_epoch(EPOCH) - EPOCH) \
            == pytest.approx(3600.0)

    def test_thread_safety_high_water_never_decreases(self):
        wall = FakeTime(1000.0)
        clock = SimClock(anchor=1000.0, time_source=wall)
        seen = []

        def worker():
            prev = 0.0
            for _ in range(200):
                now = clock.now_offset_s()
                assert now >= prev
                prev = now
            seen.append(prev)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        wall.t = 1500.0
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(v == 500.0 for v in seen)

    @pytest.mark.parametrize("rate", [0.0, -1.0, math.inf, math.nan])
    def test_invalid_rate_rejected(self, rate):
        with pytest.raises(ValueError, match="rate"):
            SimClock(rate=rate)

    def test_invalid_quantum_rejected(self):
        with pytest.raises(ValueError, match="quantum"):
            SimClock(quantum_s=0.0)


# ----------------------------------------------------------------------
class TestParseTimeQuery:
    def clock(self, offset: float, quantum_s: float = 60.0) -> SimClock:
        return SimClock(anchor=0.0, time_source=FakeTime(offset),
                        quantum_s=quantum_s)

    def test_none_and_empty_resolve_to_epoch(self):
        assert parse_time_query(None) == (0.0, "offset")
        assert parse_time_query("") == (0.0, "offset")
        assert parse_time_query("   ") == (0.0, "offset")

    def test_numeric_offsets(self):
        assert parse_time_query(1800) == (1800.0, "offset")
        assert parse_time_query(1800.5) == (1800.5, "offset")
        assert parse_time_query("3600") == (3600.0, "offset")
        assert parse_time_query(" 7200.0 ") == (7200.0, "offset")

    def test_now_uses_quantized_clock_offset(self):
        offset, mode = parse_time_query("now", clock=self.clock(130.0))
        assert (offset, mode) == (120.0, "now")
        # Case-insensitive.
        assert parse_time_query("NOW", clock=self.clock(130.0)) \
            == (120.0, "now")

    def test_next_is_its_own_mode(self):
        offset, mode = parse_time_query("next", clock=self.clock(61.0))
        assert (offset, mode) == (60.0, "next")

    def test_next_rejected_where_meaningless(self):
        with pytest.raises(ValueError, match="now"):
            parse_time_query("next", clock=self.clock(0.0),
                             allow_next=False)

    def test_now_without_clock_names_the_fix(self):
        for value in ("now", "next"):
            with pytest.raises(ValueError, match="--realtime"):
                parse_time_query(value)

    def test_iso_resolves_against_epoch(self):
        offset, mode = parse_time_query("2024-09-06T13:00:00Z",
                                        epoch=EPOCH)
        # Julian-date differencing carries ~1e-5 s float error.
        assert offset == pytest.approx(3600.0, abs=1e-3)
        assert mode == "iso"
        # Space separator and fractional seconds also accepted.
        offset, _ = parse_time_query("2024-09-06 12:00:01.5",
                                     epoch=EPOCH)
        assert offset == pytest.approx(1.5, abs=1e-3)

    def test_iso_without_epoch_rejected(self):
        with pytest.raises(ValueError, match="epoch"):
            parse_time_query("2024-09-06T13:00:00Z")

    def test_skewed_client_clock_clamps_to_zero(self):
        offset, _ = parse_time_query("2024-09-06T11:59:01Z",
                                     epoch=EPOCH)
        assert offset == 0.0

    def test_pre_epoch_beyond_skew_tolerance_rejected(self):
        with pytest.raises(ValueError, match="predates"):
            parse_time_query("2024-09-06T10:00:00Z", epoch=EPOCH)
        assert SKEW_TOLERANCE_S < 7200.0

    def test_calendar_garbage_is_a_clear_error(self):
        for value in ("2024-13-06T00:00:00Z", "2024-09-40T00:00:00Z",
                      "2024-09-06T99:99:99Z", "1850-01-01T00:00:00Z",
                      "2150-01-01T00:00:00Z"):
            with pytest.raises(ValueError, match="timestamp"):
                parse_time_query(value, epoch=EPOCH)

    def test_beyond_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            parse_time_query(MAX_QUERY_HORIZON_S + 1.0)
        with pytest.raises(ValueError, match="horizon"):
            parse_time_query(500.0, horizon_s=400.0)

    def test_negative_and_nonfinite_offsets_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            parse_time_query(-10.0)
        for value in (math.inf, math.nan, "inf", "nan"):
            with pytest.raises(ValueError, match="finite"):
                parse_time_query(value)

    def test_garbage_strings_list_the_accepted_forms(self):
        for value in ("soon", "tomorrow", "12:00", "True", "1e", "--"):
            with pytest.raises(ValueError, match="expected"):
                parse_time_query(value)
