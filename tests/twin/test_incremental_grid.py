"""Bit-identity of incremental ephemeris extension.

The digital-twin serving mode grows its time grid as the clock
advances; :meth:`EphemerisCache.constellation_grid` serves each growth
step by propagating only the new suffix instants and concatenating
onto the recorded prefix stack.  The contract pinned here: **however a
grid is assembled — cold, one extension, K extensions, a prefix pulled
back from the mmap'd segment tier, or a fresh cache re-attached over
an existing disk directory — the bytes are identical to one cold
full-range propagation.**  SGP4 is memoryless in ``tsince``, which is
what makes the concatenation exact rather than approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from satiot.orbits.sgp4 import SGP4
from satiot.runtime.ephemeris_cache import EphemerisCache
from tests.conftest import make_test_tle

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is baked in
    HAS_HYPOTHESIS = False


def make_fleet(n: int = 3, **overrides):
    """A small deterministic fleet of SGP4 propagators."""
    props = []
    for i in range(n):
        tle = make_test_tle(norad_id=52000 + i,
                            raan_deg=(17.0 + 113.0 * i) % 360.0,
                            mean_anomaly_deg=(29.0 * i) % 360.0,
                            **overrides)
        props.append(SGP4(tle))
    return props


def grids_equal(a, b) -> bool:
    """Byte-level equality of two ``(r, v)`` grid pairs."""
    return (np.asarray(a[0]).tobytes() == np.asarray(b[0]).tobytes()
            and np.asarray(a[1]).tobytes() == np.asarray(b[1]).tobytes())


def cold_grid(props, epoch, offsets):
    """Reference: a full-range propagation through a fresh cache."""
    return EphemerisCache().constellation_grid(props, epoch, offsets)


# ----------------------------------------------------------------------
class TestIncrementalExtension:
    def test_three_step_growth_bit_identical_to_cold(self):
        props = make_fleet()
        epoch = props[0].tle.epoch
        full = np.arange(600, dtype=float) * 30.0
        cache = EphemerisCache()
        cache.constellation_grid(props, epoch, full[:100])
        cache.constellation_grid(props, epoch, full[:350])
        got = cache.constellation_grid(props, epoch, full)
        assert cache.stats.grid_extensions == 2
        assert grids_equal(got, cold_grid(props, epoch, full))

    def test_extension_counts_as_miss_not_hit(self):
        props = make_fleet(2)
        epoch = props[0].tle.epoch
        full = np.arange(80, dtype=float) * 60.0
        cache = EphemerisCache()
        cache.constellation_grid(props, epoch, full[:40])
        before = cache.stats.grid_hits
        cache.constellation_grid(props, epoch, full)
        assert cache.stats.grid_hits == before
        assert cache.stats.grid_extensions == 1
        # Cold fill counts one miss per satellite; the extension adds
        # a single grid-level miss on top.
        assert cache.stats.grid_misses == len(props) + 1

    def test_extended_rows_serve_single_satellite_lookups(self):
        """Row views of the extended stack are published under the
        per-satellite grid keys."""
        props = make_fleet(2)
        epoch = props[0].tle.epoch
        full = np.arange(90, dtype=float) * 45.0
        cache = EphemerisCache()
        cache.constellation_grid(props, epoch, full[:30])
        r, v = cache.constellation_grid(props, epoch, full)
        hits = cache.stats.grid_hits
        r0, v0 = cache.propagation_grid(props[0], epoch, full)
        assert cache.stats.grid_hits == hits + 1
        assert r0.tobytes() == r[0].tobytes()
        assert v0.tobytes() == v[0].tobytes()

    def test_mismatched_prefix_degrades_to_full_fill(self):
        """A recorded grid that is not a byte-prefix never extends —
        and the answer is still exact."""
        props = make_fleet(2)
        epoch = props[0].tle.epoch
        cache = EphemerisCache()
        cache.constellation_grid(props, epoch,
                                 np.arange(50, dtype=float) * 31.0)
        full = np.arange(100, dtype=float) * 30.0
        got = cache.constellation_grid(props, epoch, full)
        assert cache.stats.grid_extensions == 0
        assert grids_equal(got, cold_grid(props, epoch, full))

    def test_shrinking_grid_never_extends(self):
        props = make_fleet(2)
        epoch = props[0].tle.epoch
        full = np.arange(120, dtype=float) * 30.0
        cache = EphemerisCache()
        cache.constellation_grid(props, epoch, full)
        got = cache.constellation_grid(props, epoch, full[:60])
        assert cache.stats.grid_extensions == 0
        assert grids_equal(got, cold_grid(props, epoch, full[:60]))

    def test_extension_output_is_private_and_contiguous(self):
        """The combined stack must be writable C-contiguous memory —
        never a view into an mmap'd segment."""
        props = make_fleet(2)
        epoch = props[0].tle.epoch
        full = np.arange(64, dtype=float) * 30.0
        cache = EphemerisCache()
        cache.constellation_grid(props, epoch, full[:32])
        r, v = cache.constellation_grid(props, epoch, full)
        assert r.flags["C_CONTIGUOUS"] and v.flags["C_CONTIGUOUS"]


# ----------------------------------------------------------------------
class TestSegmentTierExtension:
    def test_prefix_recovered_from_mmap_segment(self, tmp_path):
        """With the memory tier dropped, the prefix stack comes back
        through the mmap'd segment and extension still applies."""
        props = make_fleet()
        epoch = props[0].tle.epoch
        full = np.arange(200, dtype=float) * 30.0
        cache = EphemerisCache(disk_dir=tmp_path, readonly=True)
        cache.constellation_grid(props, epoch, full[:80])
        cache.clear_memory()
        got = cache.extend_constellation_grid(
            props, epoch, full, prefix_offsets_s=full[:80])
        assert cache.stats.grid_extensions == 1
        assert grids_equal(got, cold_grid(props, epoch, full))

    def test_fresh_cache_reattaches_over_existing_disk_dir(self,
                                                          tmp_path):
        """The restarted-worker path: a brand-new cache over the same
        ``disk_dir`` names the prefix it expects and extends from the
        segment its predecessor wrote."""
        props = make_fleet()
        epoch = props[0].tle.epoch
        full = np.arange(150, dtype=float) * 60.0
        first = EphemerisCache(disk_dir=tmp_path, readonly=True)
        first.constellation_grid(props, epoch, full[:90])

        reborn = EphemerisCache(disk_dir=tmp_path, readonly=True)
        got = reborn.extend_constellation_grid(
            props, epoch, full, prefix_offsets_s=full[:90])
        assert reborn.stats.grid_extensions == 1
        assert reborn.stats.disk_hits >= 1
        assert grids_equal(got, cold_grid(props, epoch, full))

    def test_extended_segment_serves_yet_another_cache(self, tmp_path):
        """Extension republishes the *full* grid as a segment, so a
        third cache hits it outright — no propagation at all."""
        props = make_fleet(2)
        epoch = props[0].tle.epoch
        full = np.arange(100, dtype=float) * 30.0
        writer = EphemerisCache(disk_dir=tmp_path, readonly=True)
        writer.constellation_grid(props, epoch, full[:50])
        writer.constellation_grid(props, epoch, full)
        assert writer.stats.grid_extensions == 1

        reader = EphemerisCache(disk_dir=tmp_path, readonly=True)
        got = reader.constellation_grid(props, epoch, full)
        assert reader.stats.grid_misses == 0
        assert reader.stats.grid_extensions == 0
        assert grids_equal(got, cold_grid(props, epoch, full))

    def test_bogus_prefix_hint_is_ignored(self, tmp_path):
        """A prefix hint that is not actually a byte-prefix of the
        requested grid must not poison the extent record."""
        props = make_fleet(2)
        epoch = props[0].tle.epoch
        full = np.arange(60, dtype=float) * 30.0
        cache = EphemerisCache(disk_dir=tmp_path, readonly=True)
        bogus = np.arange(30, dtype=float) * 31.0
        got = cache.extend_constellation_grid(
            props, epoch, full, prefix_offsets_s=bogus)
        assert cache.stats.grid_extensions == 0
        assert grids_equal(got, cold_grid(props, epoch, full))


# ----------------------------------------------------------------------
if HAS_HYPOTHESIS:

    @st.composite
    def fleets(draw):
        n = draw(st.integers(min_value=2, max_value=4))
        props = []
        for i in range(n):
            props.append(SGP4(make_test_tle(
                altitude_km=draw(st.floats(min_value=400.0,
                                           max_value=1400.0)),
                inclination_deg=draw(st.floats(min_value=0.0,
                                               max_value=98.0)),
                eccentricity=draw(st.floats(min_value=0.0,
                                            max_value=0.02)),
                raan_deg=draw(st.floats(min_value=0.0,
                                        max_value=359.9)),
                mean_anomaly_deg=draw(st.floats(min_value=0.0,
                                                max_value=359.9)),
                norad_id=60000 + i)))
        return props

    @st.composite
    def grid_splits(draw):
        total = draw(st.integers(min_value=8, max_value=200))
        step = draw(st.floats(min_value=5.0, max_value=120.0))
        k = draw(st.integers(min_value=1, max_value=3))
        splits = draw(st.lists(
            st.integers(min_value=1, max_value=total - 1),
            min_size=k, max_size=k, unique=True))
        return np.arange(total, dtype=float) * step, sorted(splits)

    @pytest.mark.property
    class TestExtensionProperties:
        """Random fleets, grid shapes, and split points: K-step
        incremental assembly is bit-identical to one cold pass."""

        @settings(max_examples=15, deadline=None)
        @given(props=fleets(), grid=grid_splits())
        def test_k_step_extension_bit_identical(self, props, grid):
            full, splits = grid
            epoch = props[0].tle.epoch
            cache = EphemerisCache()
            for t in splits:
                cache.constellation_grid(props, epoch, full[:t])
            got = cache.constellation_grid(props, epoch, full)
            assert cache.stats.grid_extensions == len(splits)
            assert grids_equal(got, cold_grid(props, epoch, full))

        @settings(max_examples=10, deadline=None)
        @given(props=fleets(), grid=grid_splits())
        def test_reopen_extension_bit_identical(self, props, grid,
                                                tmp_path_factory):
            """Prefix through the segment tier after a cache-dir
            reopen — the restarted-worker path, randomized."""
            full, splits = grid
            t = splits[0]
            epoch = props[0].tle.epoch
            disk = tmp_path_factory.mktemp("twin-reopen")
            first = EphemerisCache(disk_dir=disk, readonly=True)
            first.constellation_grid(props, epoch, full[:t])

            reborn = EphemerisCache(disk_dir=disk, readonly=True)
            got = reborn.extend_constellation_grid(
                props, epoch, full, prefix_offsets_s=full[:t])
            assert reborn.stats.grid_extensions == 1
            assert grids_equal(got, cold_grid(props, epoch, full))
