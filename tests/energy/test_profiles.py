"""Tests for power profiles."""

import pytest

from satiot.energy.profiles import (TERRESTRIAL_NODE_PROFILE,
                                    TIANQI_NODE_PROFILE, PowerProfile,
                                    RadioMode)


class TestPaperValues:
    def test_terrestrial_matches_figure_10(self):
        p = TERRESTRIAL_NODE_PROFILE
        assert p.tx_mw == pytest.approx(1630.0)
        assert p.rx_mw == pytest.approx(265.0)
        assert p.standby_mw == pytest.approx(146.0)
        assert p.sleep_mw == pytest.approx(19.1)

    def test_tianqi_tx_premium(self):
        # Paper Section 3.2: the DtS transmit draws 2.2x more power.
        ratio = TIANQI_NODE_PROFILE.tx_mw / TERRESTRIAL_NODE_PROFILE.tx_mw
        assert ratio == pytest.approx(2.2, abs=0.01)


class TestPowerProfile:
    def test_mode_lookup(self):
        p = TERRESTRIAL_NODE_PROFILE
        assert p.power_mw(RadioMode.TX) == p.tx_mw
        assert p.power_mw(RadioMode.SLEEP) == p.sleep_mw

    def test_as_dict(self):
        d = TERRESTRIAL_NODE_PROFILE.as_dict()
        assert set(d) == {"sleep", "standby", "rx", "tx"}

    def test_validation_positive(self):
        with pytest.raises(ValueError):
            PowerProfile("x", sleep_mw=0.0, standby_mw=1.0, rx_mw=2.0,
                         tx_mw=3.0)

    def test_validation_ordering(self):
        with pytest.raises(ValueError):
            PowerProfile("x", sleep_mw=10.0, standby_mw=5.0, rx_mw=20.0,
                         tx_mw=30.0)
