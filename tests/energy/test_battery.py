"""Tests for battery lifetime estimation."""

import pytest

from satiot.energy.accounting import ModeTimeline
from satiot.energy.battery import DEFAULT_BATTERY_MWH, Battery
from satiot.energy.profiles import TERRESTRIAL_NODE_PROFILE, RadioMode


class TestBattery:
    def test_lifetime_arithmetic(self):
        battery = Battery(capacity_mwh=2400.0)
        # 100 mW drain: 24 hours -> one day.
        assert battery.lifetime_days(100.0) == pytest.approx(1.0)

    def test_higher_drain_shorter_life(self):
        battery = Battery()
        assert battery.lifetime_days(300.0) < battery.lifetime_days(20.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            Battery(capacity_mwh=0.0)
        with pytest.raises(ValueError):
            Battery().lifetime_days(0.0)

    def test_default_capacity_calibration(self):
        # A node idling near the terrestrial average draw (~19.8 mW)
        # lasts about the paper's 718 days on the default pack.
        days = Battery().lifetime_days(19.8)
        assert days == pytest.approx(718.0, rel=0.02)

    def test_from_breakdown(self):
        tl = ModeTimeline(TERRESTRIAL_NODE_PROFILE)
        tl.add(RadioMode.SLEEP, 86400.0)
        battery = Battery()
        days = battery.lifetime_days_from_breakdown(tl.breakdown())
        assert days == pytest.approx(DEFAULT_BATTERY_MWH / 19.1 / 24.0)
