"""Tests for mode-timeline energy accounting."""

import pytest

from satiot.energy.accounting import ModeTimeline
from satiot.energy.profiles import TERRESTRIAL_NODE_PROFILE, RadioMode


class TestModeTimeline:
    def test_accumulates(self):
        tl = ModeTimeline(TERRESTRIAL_NODE_PROFILE)
        tl.add(RadioMode.SLEEP, 100.0)
        tl.add(RadioMode.SLEEP, 50.0)
        assert tl.time_in(RadioMode.SLEEP) == 150.0
        assert tl.total_time_s == 150.0

    def test_negative_duration_rejected(self):
        tl = ModeTimeline(TERRESTRIAL_NODE_PROFILE)
        with pytest.raises(ValueError):
            tl.add(RadioMode.TX, -1.0)

    def test_energy_from_power_and_time(self):
        tl = ModeTimeline(TERRESTRIAL_NODE_PROFILE)
        tl.add(RadioMode.TX, 3600.0)  # one hour of Tx
        breakdown = tl.breakdown()
        assert breakdown.energy_mwh[RadioMode.TX] == pytest.approx(1630.0)

    def test_average_power(self):
        tl = ModeTimeline(TERRESTRIAL_NODE_PROFILE)
        tl.add(RadioMode.SLEEP, 1800.0)
        tl.add(RadioMode.RX, 1800.0)
        breakdown = tl.breakdown()
        assert breakdown.average_power_mw \
            == pytest.approx(0.5 * (19.1 + 265.0))

    def test_fractions_sum_to_one(self):
        tl = ModeTimeline(TERRESTRIAL_NODE_PROFILE)
        tl.add(RadioMode.SLEEP, 1000.0)
        tl.add(RadioMode.STANDBY, 200.0)
        tl.add(RadioMode.RX, 100.0)
        tl.add(RadioMode.TX, 10.0)
        breakdown = tl.breakdown()
        assert sum(breakdown.time_fraction(m) for m in RadioMode) \
            == pytest.approx(1.0)
        assert sum(breakdown.energy_fraction(m) for m in RadioMode) \
            == pytest.approx(1.0)

    def test_tx_dominates_energy_despite_short_time(self):
        # The paper's Fig. 11 effect: Tx+Rx take >70 % of energy from
        # <5 % of time.
        tl = ModeTimeline(TERRESTRIAL_NODE_PROFILE)
        tl.add(RadioMode.SLEEP, 95000.0)
        tl.add(RadioMode.TX, 1000.0)
        breakdown = tl.breakdown()
        assert breakdown.time_fraction(RadioMode.TX) < 0.05
        assert breakdown.energy_fraction(RadioMode.TX) > 0.4
