"""Tests for the receiver wake-plan optimizer."""

import pytest

from satiot.energy.optimizer import WakePlan, plan_wake_windows
from satiot.orbits.passes import ContactWindow

DAY = 86400.0


def window(rise, duration=600.0, max_el=45.0):
    return ContactWindow(rise_s=rise, set_s=rise + duration,
                         culmination_s=rise + duration / 2,
                         max_elevation_deg=max_el)


def hourly_windows(count=24, max_el=45.0):
    return [window(3600.0 * i + 600.0, max_el=max_el)
            for i in range(count)]


class TestPlanWakeWindows:
    def test_validation(self):
        with pytest.raises(ValueError):
            plan_wake_windows([], 0.0, 3600.0)
        with pytest.raises(ValueError):
            plan_wake_windows([], DAY, 0.0)
        with pytest.raises(ValueError):
            plan_wake_windows([], DAY, 3600.0, guard_s=-1.0)

    def test_latency_budget_respected_when_feasible(self):
        windows = hourly_windows()
        plan = plan_wake_windows(windows, DAY, latency_budget_s=4 * 3600.0)
        assert plan.worst_gap_s() <= 4 * 3600.0 + 1200.0

    def test_tighter_budget_more_wakes(self):
        windows = hourly_windows()
        loose = plan_wake_windows(windows, DAY, 8 * 3600.0)
        tight = plan_wake_windows(windows, DAY, 2 * 3600.0)
        assert len(tight.selected) > len(loose.selected)
        assert tight.rx_on_s > loose.rx_on_s

    def test_duty_cycle_far_below_always_on(self):
        windows = hourly_windows()
        plan = plan_wake_windows(windows, DAY, 4 * 3600.0)
        # The whole point: a few passes per day instead of 78 % Rx duty.
        assert plan.rx_duty_cycle < 0.2

    def test_low_elevation_passes_skipped(self):
        windows = hourly_windows(max_el=5.0)
        plan = plan_wake_windows(windows, DAY, 4 * 3600.0,
                                 min_max_elevation_deg=10.0)
        assert plan.selected == []
        assert plan.worst_gap_s() == DAY

    def test_prefers_high_elevation(self):
        low = window(1000.0, max_el=15.0)
        high = window(2000.0, max_el=80.0)
        plan = plan_wake_windows([low, high], 10_000.0,
                                 latency_budget_s=10_000.0)
        assert plan.selected == [high]

    def test_selected_ordered_disjoint(self):
        windows = hourly_windows()
        plan = plan_wake_windows(windows, DAY, 3 * 3600.0)
        for a, b in zip(plan.selected, plan.selected[1:]):
            assert a.set_s <= b.rise_s


class TestWakePlan:
    def test_rx_on_includes_guard(self):
        plan = WakePlan(span_s=DAY, selected=[window(0.0, 600.0)],
                        guard_s=60.0)
        assert plan.rx_on_s == pytest.approx(600.0 + 120.0)

    def test_empty_plan_gap_is_span(self):
        plan = WakePlan(span_s=DAY, selected=[], guard_s=60.0)
        assert plan.worst_gap_s() == DAY
        assert plan.rx_duty_cycle == 0.0
