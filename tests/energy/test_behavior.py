"""Tests for duty-cycle builders."""

import pytest

from satiot.energy.behavior import TerrestrialBehavior, TianqiBehavior
from satiot.energy.profiles import RadioMode

DAY = 86400.0


class TestTerrestrialBehavior:
    def test_mostly_asleep(self):
        # Paper Fig. 11: 95 % of terrestrial node time is sleep/standby.
        behavior = TerrestrialBehavior()
        tl = behavior.timeline(DAY, [20] * 48)
        breakdown = tl.breakdown()
        low_power = (breakdown.time_fraction(RadioMode.SLEEP)
                     + breakdown.time_fraction(RadioMode.STANDBY))
        assert low_power > 0.95

    def test_radio_energy_share_dominates(self):
        # >70 % of battery goes to Tx+Rx despite the tiny duty cycle...
        # for our 48-packet/day profile the share is lower but still
        # disproportionate versus the time share.
        behavior = TerrestrialBehavior()
        breakdown = behavior.timeline(DAY, [20] * 48).breakdown()
        radio_energy = (breakdown.energy_fraction(RadioMode.TX)
                        + breakdown.energy_fraction(RadioMode.RX))
        radio_time = (breakdown.time_fraction(RadioMode.TX)
                      + breakdown.time_fraction(RadioMode.RX))
        assert radio_energy > 5 * radio_time

    def test_total_time_preserved(self):
        behavior = TerrestrialBehavior()
        tl = behavior.timeline(DAY, [20] * 48)
        assert tl.total_time_s == pytest.approx(DAY)

    def test_activity_exceeding_span_rejected(self):
        behavior = TerrestrialBehavior()
        with pytest.raises(ValueError):
            behavior.timeline(100.0, [20] * 1000)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            TerrestrialBehavior().timeline(0.0, [])


class TestTianqiBehavior:
    def test_monitoring_dominates_rx(self):
        behavior = TianqiBehavior()
        tl = behavior.timeline(DAY, monitoring_rx_s=0.8 * DAY,
                               attempts=[(i * 1800.0, 20)
                                         for i in range(48)])
        breakdown = tl.breakdown()
        assert breakdown.time_fraction(RadioMode.RX) > 0.7

    def test_tx_time_scales_with_attempts(self):
        behavior = TianqiBehavior()
        few = behavior.timeline(DAY, 0.5 * DAY, [(0.0, 20)] * 10)
        many = behavior.timeline(DAY, 0.5 * DAY, [(0.0, 20)] * 100)
        assert many.time_in(RadioMode.TX) \
            == pytest.approx(10 * few.time_in(RadioMode.TX))

    def test_tx_carved_from_monitoring(self):
        behavior = TianqiBehavior()
        tl = behavior.timeline(DAY, 0.5 * DAY, [(0.0, 20)] * 50)
        active = (tl.time_in(RadioMode.RX) + tl.time_in(RadioMode.TX)
                  + tl.time_in(RadioMode.STANDBY))
        assert active == pytest.approx(0.5 * DAY)

    def test_monitoring_bounds(self):
        behavior = TianqiBehavior()
        with pytest.raises(ValueError):
            behavior.timeline(DAY, -1.0, [])
        with pytest.raises(ValueError):
            behavior.timeline(DAY, 2 * DAY, [])

    def test_total_time_preserved(self):
        behavior = TianqiBehavior()
        tl = behavior.timeline(DAY, 0.7 * DAY, [(0.0, 20)] * 20)
        assert tl.total_time_s == pytest.approx(DAY)
