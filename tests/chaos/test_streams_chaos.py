"""Stream-plane determinism under injected faults and SIGKILL.

Two capstone contracts of the spill plane:

* a seeded ``stream.shard_write`` storm (torn shard writes) costs
  rewrites, never bytes — the finished archive is identical to the
  clean run's;
* SIGKILLing a spilled longitudinal run right after a shard lands —
  *before* the checkpoint records it, the worst crash window — and
  resuming produces an archive byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import satiot
from satiot.core.longitudinal import LongitudinalCampaign
from satiot.streams.spill import (KILL_AFTER_SHARD_ENV, ShardSpillWriter,
                                  ShardedTraceReader)
from tests.chaos.conftest import armed
from tests.streams.conftest import make_block, sha_tree

pytestmark = pytest.mark.chaos

SRC_DIR = str(Path(satiot.__file__).resolve().parent.parent)


class TestShardWriteStorm:
    def spill(self, root):
        writer = ShardSpillWriter(root, rows_per_shard=40,
                                  fingerprint="storm")
        for seed in range(4):
            writer.write(make_block(55, seed=seed))
        writer.finalize(meta={"engine": "chaos"})
        return writer

    def test_torn_writes_cost_rewrites_never_bytes(self, tmp_path):
        clean = self.spill(tmp_path / "clean")
        assert clean.rewrites == 0
        with armed("seed=3;stream.shard_write=p0.9"):
            stormy = self.spill(tmp_path / "stormy")
        assert stormy.rewrites > 0, \
            "storm never fired; the site is not consulted"
        assert sha_tree(tmp_path / "clean") == sha_tree(tmp_path / "stormy")
        assert ShardedTraceReader(tmp_path / "stormy").verify() \
            == clean.total_rows

    def test_every_nth_schedule_also_heals(self, tmp_path):
        clean = self.spill(tmp_path / "clean")
        with armed("seed=5;stream.shard_write=n2"):
            stormy = self.spill(tmp_path / "n2")
        assert stormy.rewrites > 0
        assert sha_tree(tmp_path / "clean") == sha_tree(tmp_path / "n2")


class TestSigkillResume:
    WEEKS, SAMPLE_DAYS, SEED, ROWS = 2, 0.15, 7, 100

    def campaign(self, spill_dir, resume=False):
        return LongitudinalCampaign(
            weeks=self.WEEKS, sample_days=self.SAMPLE_DAYS,
            seed=self.SEED, constellations=("tianqi",),
            spill_dir=spill_dir, rows_per_shard=self.ROWS,
            resume=resume)

    def test_kill_mid_shard_then_resume_is_byte_identical(self, tmp_path):
        reference = tmp_path / "reference"
        self.campaign(reference).run()

        killed = tmp_path / "killed"
        script = (
            "from satiot.core.longitudinal import LongitudinalCampaign\n"
            f"LongitudinalCampaign(weeks={self.WEEKS}, "
            f"sample_days={self.SAMPLE_DAYS}, seed={self.SEED}, "
            "constellations=('tianqi',), "
            f"spill_dir={str(killed)!r}, "
            f"rows_per_shard={self.ROWS}).run()\n")
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        env[KILL_AFTER_SHARD_ENV] = "1"
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == -signal.SIGKILL, \
            f"run survived its kill switch: {proc.stderr[-500:]}"
        # Crash window: the shard landed, the checkpoint may or may not
        # have recorded it — either way resume must reconcile.
        assert (killed / "shards" / "shard-000000.npz").exists()
        assert not (killed / "manifest.json").exists()

        result = self.campaign(killed, resume=True).run()
        assert sha_tree(reference) == sha_tree(killed)
        assert result.manifest["total_rows"] \
            == sum(s.traces for s in result.samples)
