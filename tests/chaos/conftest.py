"""Chaos-harness fixtures: fault-schedule arming and failure forensics.

Every chaos test runs a workload under a seeded fault schedule and
asserts the output is byte-identical to the clean run.  The fixtures
here guarantee isolation (no schedule or cache leaks between tests),
zero retry backoff (chaos tests exercise the retry *logic*, not its
pacing), and — the part that matters at 3 a.m. — a failure report that
carries the exact ``SATIOT_FAULTS`` spec needed to replay the failing
schedule locally.
"""

import os
from contextlib import contextmanager
from pathlib import Path

import pytest

from satiot.faults import (FAULTS_ENV, install_plane,
                           reset_default_plane)
from satiot.runtime.ephemeris_cache import reset_default_cache
from satiot.runtime.executor import BACKOFF_ENV

#: Directory for disk-tier caches used by chaos tests.  CI points this
#: at a workspace path so quarantined ``*.bad`` entries survive the run
#: and can be uploaded as failure artifacts.
CHAOS_CACHE_DIR_ENV = "SATIOT_CHAOS_CACHE_DIR"

#: The schedule the current test armed last (for failure reporting).
_last_schedule = {"spec": None}


@contextmanager
def armed(spec: str):
    """Arm ``spec`` process-wide (env + parsed plane) for a with-block.

    The spec goes through the environment so shard worker processes
    rebuild the same schedule; the parent parses it eagerly so a bad
    spec fails the test at the arming site, not deep in a worker.
    """
    from satiot.faults import FaultPlane
    _last_schedule["spec"] = spec
    plane = FaultPlane.from_spec(spec)  # validate before arming
    os.environ[FAULTS_ENV] = spec
    install_plane(plane)
    try:
        yield plane
    finally:
        os.environ.pop(FAULTS_ENV, None)
        install_plane(None)
        reset_default_plane()


@pytest.fixture(autouse=True)
def _chaos_isolation(monkeypatch):
    """Clean plane/cache state and instant retries around every test."""
    _last_schedule["spec"] = None
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.setenv(BACKOFF_ENV, "0")
    install_plane(None)
    reset_default_plane()
    reset_default_cache()
    yield
    install_plane(None)
    reset_default_plane()
    reset_default_cache()


@pytest.fixture
def chaos_cache_dir(tmp_path, request):
    """A disk-cache directory; CI redirects it to an uploadable path."""
    root = os.environ.get(CHAOS_CACHE_DIR_ENV, "").strip()
    if not root:
        return tmp_path / "ephemeris"
    safe = request.node.name.replace("/", "_").replace("[", "_") \
        .replace("]", "")
    path = Path(root) / safe
    path.mkdir(parents=True, exist_ok=True)
    return path


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Attach the armed fault schedule to failure reports.

    A chaos failure is only actionable if it can be replayed; the
    section printed here gives the exact spec:
    ``SATIOT_FAULTS='...' pytest <nodeid>``.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when == "call" and report.failed:
        spec = _last_schedule.get("spec")
        if spec:
            report.sections.append(
                ("fault schedule (replay with this)",
                 f"{FAULTS_ENV}={spec!r}"))
