"""Campaign determinism under seeded fault schedules.

The capstone contract of the fault plane: any campaign run that
survives its fault schedule produces **byte-identical** trace columns
to the clean run.  Faults are allowed to cost wall time and telemetry
(retries, fallbacks, quarantined cache entries) — never output.

Workload: the paper's passive campaign at 2 sites x the 5-satellite
CSTP fleet, 2 shard workers — small enough for CI, large enough that
every fault site on the campaign path (disk cache, shard task, worker
kill) gets consulted many times.
"""

import numpy as np
import pytest

from satiot.core.campaign import PassiveCampaign, PassiveCampaignConfig
from satiot.core.fleet import passive_fleet_sweep
from satiot.groundstation.traces import NUMERIC_FIELDS, STRING_FIELDS
from tests.chaos.conftest import armed

pytestmark = pytest.mark.chaos

#: 2 sites x 5 CSTP satellites, quarter day, parallel shards.
CFG = PassiveCampaignConfig(sites=("HK", "SYD"),
                            constellations=("cstp",),
                            days=0.25, seed=9)
WORKERS = 2

_reference = {}


def fingerprint(dataset):
    """Byte-level identity of every trace column."""
    prints = {}
    for name in NUMERIC_FIELDS:
        column = dataset.column(name)
        prints[name] = (str(column.dtype), column.tobytes())
    for name in STRING_FIELDS:
        prints[name] = tuple(dataset.column(name).tolist())
    return prints


def clean_fingerprint():
    """The fault-free reference run (computed once per module)."""
    if "campaign" not in _reference:
        result = PassiveCampaign(CFG, workers=WORKERS).run()
        assert len(result.dataset) > 0
        _reference["campaign"] = fingerprint(result.dataset)
    return _reference["campaign"]


def assert_identical(dataset, reference=None):
    reference = reference or clean_fingerprint()
    actual = fingerprint(dataset)
    assert set(actual) == set(reference)
    for name, expected in reference.items():
        assert actual[name] == expected, \
            f"column {name!r} diverged under faults"


class TestCampaignSchedules:
    """>= 3 distinct seeded schedules, all byte-identical to clean."""

    def test_disk_cache_corruption_storm(self, chaos_cache_dir):
        # Pre-warm the disk tier with a clean run so the faulted run
        # actually reads (and therefore can corrupt) on-disk entries.
        reference = clean_fingerprint()
        warm = PassiveCampaign(
            CFG, workers=1,
            ephemeris_cache=str(chaos_cache_dir)).run()
        assert_identical(warm.dataset, reference)
        assert any(chaos_cache_dir.glob("*.npz"))

        from satiot.runtime.ephemeris_cache import reset_default_cache
        reset_default_cache()
        spec = "seed=101;cache.disk_read=p0.6;cache.disk_write=n1"
        with armed(spec) as plane:
            result = PassiveCampaign(
                CFG, workers=1,
                ephemeris_cache=str(chaos_cache_dir)).run()
            fired = plane.summary()["sites"]
        assert_identical(result.dataset, reference)
        # The schedule really fired, and corrupt entries really were
        # quarantined — the run degraded, it did not dodge the faults.
        assert fired["cache.disk_read"]["fired"] >= 1
        assert any(chaos_cache_dir.glob("*.bad"))

    def test_worker_task_faults_are_retried(self):
        reference = clean_fingerprint()
        with armed("seed=102;executor.task=n1"):
            result = PassiveCampaign(CFG, workers=WORKERS).run()
        assert_identical(result.dataset, reference)
        telemetry = result.telemetry
        assert telemetry is not None
        # The first task consult failed somewhere (pool worker or, if
        # the pool could not start, the parent) and was absorbed.
        assert telemetry.retries + telemetry.fallbacks >= 1

    def test_task_fault_bursts_absorbed(self):
        reference = clean_fingerprint()
        # n2 per process: each worker's (and, on fallback, the
        # parent's) first two task consults fail.  The layered
        # retry-then-fallback budget absorbs every possible
        # distribution of those failures across the pool.
        with armed("seed=103;executor.task=n2"):
            result = PassiveCampaign(CFG, workers=WORKERS).run()
        assert_identical(result.dataset, reference)
        telemetry = result.telemetry
        assert telemetry is not None
        assert telemetry.retries + telemetry.fallbacks >= 1

    def test_probabilistic_task_faults(self):
        reference = clean_fingerprint()
        with armed("seed=104;executor.task=p0.5"):
            result = PassiveCampaign(CFG, workers=WORKERS).run()
        assert_identical(result.dataset, reference)


class TestWorkerKill:
    """A SIGKILLed pool worker never loses or duplicates a pass id."""

    SWEEP = PassiveCampaignConfig(sites=("HK",),
                                  constellations=("fossa", "cstp"),
                                  days=0.25, seed=9)

    def test_sigkilled_worker_mid_shard(self):
        clean = passive_fleet_sweep(self.SWEEP, workers=WORKERS)
        with armed("seed=105;executor.worker_kill=@1"):
            chaotic = passive_fleet_sweep(self.SWEEP, workers=WORKERS)

        assert list(chaotic) == list(clean)
        for name in clean:
            ref_ids = clean[name].dataset.column("pass_id").tolist()
            got_ids = chaotic[name].dataset.column("pass_id").tolist()
            # Byte-identical id sequence: nothing lost, nothing
            # duplicated, nothing reordered.
            assert got_ids == ref_ids
            assert len(set(got_ids)) == len(set(ref_ids))
            assert_identical(chaotic[name].dataset,
                             fingerprint(clean[name].dataset))

    def test_campaign_survives_worker_kill(self):
        reference = clean_fingerprint()
        with armed("seed=106;executor.worker_kill=@1"):
            result = PassiveCampaign(CFG, workers=WORKERS).run()
        assert_identical(result.dataset, reference)
        telemetry = result.telemetry
        assert telemetry is not None
        if telemetry.mode == "process":
            # The kill only lands when a real pool ran; the broken
            # shard must have been recomputed in the parent.
            assert telemetry.fallbacks >= 1


class TestScheduleIndependence:
    def test_serial_equals_parallel_under_faults(self):
        """The PR-1 contract holds even with faults armed."""
        reference = clean_fingerprint()
        with armed("seed=107;executor.task=n1"):
            serial = PassiveCampaign(CFG, workers=1).run()
        assert_identical(serial.dataset, reference)
