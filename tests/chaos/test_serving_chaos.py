"""Serving determinism under seeded fault schedules.

A 64-request burst of unique queries against a live server must
produce byte-identical response bodies to the fault-free burst, under
every schedule the server survives:

* ``serving.handler`` faults are absorbed by whole-batch re-dispatch
  inside the micro-batcher (clients never see them);
* ``serving.connection`` drops happen *after* the response is computed
  and result-cached, so a retrying client replays into a cache hit and
  receives the exact same bytes;
* ``batcher.flush`` deferrals cost one coalescing window of latency
  and nothing else.

Throughout, ``/healthz`` keeps answering — chaos never reaches the
accept loop.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from satiot.serving import ServingConfig, ServingServer
from tests.chaos.conftest import armed

pytestmark = pytest.mark.chaos

BURST = 64
#: Unique coordinates per request: every response body is distinct, so
#: byte-identity is checked per query, not collapsed by the cache.
BODIES = [{"lat": round(-30.0 + i * 0.9, 3),
           "lon": round(10.0 + i * 1.7, 3), "horizon_s": 3600}
          for i in range(BURST)]

_reference = {}


def config(**overrides) -> ServingConfig:
    defaults = dict(port=0, coarse_step_s=120.0, window_s=0.01,
                    cache_decimals=6, write_timeout_s=5.0)
    defaults.update(overrides)
    return ServingConfig(**defaults)


# ----------------------------------------------------------------------
# A retrying client: connection drops, 429s and 500s are retried —
# the determinism contract is about the bytes a *persistent* client
# ends up with.
# ----------------------------------------------------------------------
async def fetch(port: int, body: dict, attempts: int = 10) -> bytes:
    encoded = json.dumps(body).encode()
    raw = (f"POST /v1/passes HTTP/1.1\r\nHost: t\r\n"
           f"Content-Length: {len(encoded)}\r\n"
           f"Connection: close\r\n\r\n").encode() + encoded
    failures = []
    for attempt in range(attempts):
        data = b""
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            try:
                writer.write(raw)
                await writer.drain()
                data = await reader.read()
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        except (ConnectionError, OSError) as error:
            failures.append(f"connect: {error}")
        if data:
            head, _, payload = data.partition(b"\r\n\r\n")
            status_line = head.split(b"\r\n", 1)[0]
            status = int(status_line.split()[1])
            if status == 200:
                return payload
            failures.append(f"status {status}")
        else:
            failures.append("dropped")
        await asyncio.sleep(0.01 * (attempt + 1))
    raise AssertionError(
        f"request never succeeded after {attempts} attempts: "
        f"{failures}")


async def healthz_ok(port: int) -> bool:
    # /healthz is a GET; done by hand (fetch() is POST /v1/passes).
    raw = b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    for attempt in range(10):
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port)
            try:
                writer.write(raw)
                await writer.drain()
                data = await reader.read()
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        except (ConnectionError, OSError):
            data = b""
        if data.startswith(b"HTTP/1.1 200"):
            return True
        await asyncio.sleep(0.01 * (attempt + 1))
    return False


async def run_burst(server: ServingServer):
    port = server.bound_port
    payloads = await asyncio.gather(*(fetch(port, body)
                                      for body in BODIES))
    alive = await healthz_ok(port)
    return dict(enumerate(payloads)), alive


def burst_against(cfg: ServingConfig):
    async def scenario():
        server = ServingServer(cfg)
        await server.start()
        try:
            payloads, alive = await run_burst(server)
        finally:
            await server.close()
        return payloads, alive, server.metrics
    return asyncio.run(scenario())


def clean_reference():
    if "burst" not in _reference:
        payloads, alive, _ = burst_against(config())
        assert alive and len(payloads) == BURST
        _reference["burst"] = payloads
    return _reference["burst"]


def assert_identical(payloads):
    reference = clean_reference()
    assert len(payloads) == len(reference)
    for i, expected in reference.items():
        assert payloads[i] == expected, \
            f"request {i} body diverged under faults"


# ----------------------------------------------------------------------
class TestServingSchedules:
    """>= 3 distinct seeded schedules, all byte-identical to clean."""

    def test_handler_faults_absorbed_by_batch_retry(self):
        clean_reference()
        with armed("seed=201;serving.handler=n1") as plane:
            payloads, alive, metrics = burst_against(config())
            fired = plane.summary()["sites"]
        assert alive
        assert_identical(payloads)
        assert fired["serving.handler"]["fired"] >= 1
        retries = sum(em.handler_retries
                      for em in metrics.endpoints.values())
        assert retries >= 1
        # The retry absorbed the fault server-side: no 500 ever left.
        assert all(em.server_errors == 0
                   for em in metrics.endpoints.values())

    def test_connection_drops_are_retried_into_cache_hits(self):
        clean_reference()
        with armed("seed=202;serving.connection=p0.15"):
            payloads, alive, metrics = burst_against(config())
        assert alive
        assert_identical(payloads)
        assert metrics.dropped_connections >= 1
        hits = sum(em.cache_hits for em in metrics.endpoints.values())
        assert hits >= 1  # retried queries landed in the result cache

    def test_flush_deferrals_cost_latency_only(self):
        clean_reference()
        with armed("seed=203;batcher.flush=n2") as plane:
            payloads, alive, metrics = burst_against(config())
            fired = plane.summary()["sites"]
        assert alive
        assert_identical(payloads)
        assert fired["batcher.flush"]["fired"] >= 1
        assert all(em.server_errors == 0
                   for em in metrics.endpoints.values())

    def test_handler_fault_storm_exhausts_into_contained_500s(self):
        """Beyond the retry budget, clients see 500s — and a later,
        fault-free request succeeds: the loop never died."""
        cfg = config()
        with armed("seed=204;serving.handler=n100"):
            async def scenario():
                server = ServingServer(cfg)
                await server.start()
                port = server.bound_port
                try:
                    with pytest.raises(AssertionError,
                                       match="status 500"):
                        await fetch(port, BODIES[0], attempts=2)
                    alive = await healthz_ok(port)
                finally:
                    await server.close()
                return alive, server.metrics
            alive, metrics = asyncio.run(scenario())
        assert alive
        assert sum(em.server_errors
                   for em in metrics.endpoints.values()) >= 1
