"""Chaos: the digital twin stays byte-exact under storms.

Two layers of the twin serving mode are stormed here:

* **cache layer** — seeded ``cache.disk_write`` failures and
  ``twin.extend`` fast-path abandonments while an incremental grid
  chain grows.  The extension tier may lose its disk tier or its fast
  path at any step; the assembled grids must stay bit-identical to a
  clean cold propagation (degrade to recompute, never to drift);
* **fleet layer** — ``serving.worker_kill`` + ``cache.disk_write``
  while a realtime fleet answers ``start=now`` / ``start=next``
  queries.  Killed workers are respawned, re-attach to the shared
  ephemeris tier, rebuild the same :class:`SimClock` mapping from the
  pickled anchor, and the fleet's answers stay byte-identical to a
  clean single-process server on the same (quantized) clock.

The wide clock quantum pins ``start=now`` to one offset for the whole
test, so byte-identity is meaningful rather than racy.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from satiot.orbits.sgp4 import SGP4
from satiot.runtime.ephemeris_cache import EphemerisCache
from satiot.serving import FleetConfig, ServingFleet, fork_available

from tests.chaos.conftest import armed
from tests.conftest import make_test_tle
from tests.serving.test_fleet import fast_config, fetch
from tests.serving.test_server import request, run, with_server

pytestmark = pytest.mark.chaos

CACHE_STORM = "seed=5;cache.disk_write=p0.4;twin.extend=p0.5"
FLEET_STORM = "seed=11;serving.worker_kill=@3;cache.disk_write=p0.3"

#: start=now resolves to exactly 7200 s for every process in the test:
#: the anchor places "now" two hours past the epoch and the one-hour
#: quantum swallows the test's real elapsed time.
TWIN_CLOCK = dict(realtime=True, clock_quantum_s=3600.0)

REALTIME_PROBES = (
    "/v1/passes?constellation=pico&lat=22.3&lon=114.2"
    "&horizon_s=3600&min_elevation_deg=10&start=now",
    "/v1/passes?constellation=pico&lat=-33.9&lon=18.4"
    "&horizon_s=3600&min_elevation_deg=10&start=next",
    "/v1/presence?constellation=pico&lat=64.1&lon=-21.9"
    "&horizon_s=3600&start=now",
)


def make_fleet_props(n: int = 3):
    return [SGP4(make_test_tle(norad_id=53000 + i,
                               raan_deg=(31.0 + 101.0 * i) % 360.0))
            for i in range(n)]


# ----------------------------------------------------------------------
class TestCacheStorm:
    """Incremental extension under disk-write + fast-path faults."""

    def test_extension_chain_exact_under_storm(self, chaos_cache_dir):
        props = make_fleet_props()
        epoch = props[0].tle.epoch
        full = np.arange(240, dtype=float) * 30.0
        reference = EphemerisCache().constellation_grid(
            props, epoch, full)

        with armed(CACHE_STORM):
            cache = EphemerisCache(disk_dir=chaos_cache_dir,
                                   readonly=True)
            for t in (60, 120, 180):
                r, v = cache.constellation_grid(props, epoch, full[:t])
                assert r.shape == (len(props), t, 3)
            r, v = cache.constellation_grid(props, epoch, full)
        assert r.tobytes() == reference[0].tobytes()
        assert v.tobytes() == reference[1].tobytes()

    def test_abandoned_fast_path_recomputes_identically(self):
        """twin.extend=p1.0: the fast path is *always* abandoned, so
        zero extensions happen — and nothing changes in the bytes."""
        props = make_fleet_props(2)
        epoch = props[0].tle.epoch
        full = np.arange(100, dtype=float) * 60.0
        reference = EphemerisCache().constellation_grid(
            props, epoch, full)

        with armed("seed=3;twin.extend=p1.0"):
            cache = EphemerisCache()
            cache.constellation_grid(props, epoch, full[:50])
            r, v = cache.constellation_grid(props, epoch, full)
        assert cache.stats.grid_extensions == 0
        assert r.tobytes() == reference[0].tobytes()
        assert v.tobytes() == reference[1].tobytes()

    def test_storm_still_extends_sometimes(self, chaos_cache_dir):
        """The p0.5 storm must leave the fast path alive part of the
        time — otherwise the chaos coverage is an illusion."""
        props = make_fleet_props(2)
        epoch = props[0].tle.epoch
        full = np.arange(200, dtype=float) * 30.0
        with armed(CACHE_STORM):
            cache = EphemerisCache(disk_dir=chaos_cache_dir,
                                   readonly=True)
            for t in range(20, 201, 20):
                cache.constellation_grid(props, epoch, full[:t])
        assert cache.stats.grid_extensions > 0


# ----------------------------------------------------------------------
@pytest.mark.skipif(not fork_available(),
                    reason="fleet workers require the fork start method")
class TestRealtimeFleetStorm:
    """worker_kill + disk_write under an advancing (quantized) clock."""

    def twin_config(self, anchor: float):
        return fast_config(clock_anchor=anchor, **TWIN_CLOCK)

    def single_reference(self, anchor: float):
        async def scenario(server):
            bodies = []
            for path in REALTIME_PROBES:
                status, _, payload = await request(server.bound_port,
                                                   path)
                assert status == 200
                bodies.append(payload)
            return bodies

        return run(with_server(self.twin_config(anchor), scenario))

    def test_fleet_answers_survive_kill_storm_byte_identical(self):
        anchor = time.time() - 7200.0
        reference = self.single_reference(anchor)
        # start=now resolved inside the quantum: offset pinned at 7200.
        assert all(b.get("start_s") == 7200.0 for b in reference)

        with armed(FLEET_STORM):
            with ServingFleet(self.twin_config(anchor),
                              FleetConfig(workers=2,
                                          restart_backoff_s=0.01)
                              ) as fleet:
                fleet.wait_ready()
                bodies = []
                for round_index in range(3):
                    for pos, path in enumerate(REALTIME_PROBES):
                        status, body = fetch(fleet.bound_port, path,
                                             retries=300,
                                             backoff_s=0.05)
                        assert status == 200, (status, body[:200])
                        if round_index == 0:
                            bodies.append(json.loads(body))
                        else:
                            # Restarted workers must converge on the
                            # same bytes, not just the first round.
                            assert json.loads(body) == bodies[pos]
                restarts = fleet.total_restarts
        assert bodies == reference
        assert restarts > 0, "kill schedule never fired"

    def test_next_clamps_to_single_pass_under_storm(self):
        anchor = time.time() - 7200.0
        with armed(FLEET_STORM):
            with ServingFleet(self.twin_config(anchor),
                              FleetConfig(workers=2,
                                          restart_backoff_s=0.01)
                              ) as fleet:
                fleet.wait_ready()
                for _ in range(4):
                    status, body = fetch(fleet.bound_port,
                                         REALTIME_PROBES[1],
                                         retries=300, backoff_s=0.05)
                    assert status == 200
                    assert json.loads(body)["count"] <= 1
