"""Chaos: SIGKILL'ing fleet workers mid-accept never corrupts answers.

``serving.worker_kill`` arms the harshest serving failure mode — a
worker process dies with no cleanup exactly as it accepts a client.
The contract under that storm:

* retrying clients eventually get every answer, all 200s;
* every payload is **byte-identical** to a clean, fault-free run —
  under any worker count (restarted workers rebuild their service from
  the same shared on-disk ephemeris tier, so recovery can't drift);
* the supervisor actually restarted workers (the storm was real);
* the fault site is fleet-gated: a plain single-process server armed
  with the same schedule never fires it.

The spec travels through ``SATIOT_FAULTS`` (see ``armed``), which is
exactly how forked fleet workers — and their *restarted* replacements —
rebuild the schedule.
"""

from __future__ import annotations

import json

import pytest

from satiot.serving import FleetConfig, ServingFleet, fork_available

from tests.chaos.conftest import armed
from tests.serving.test_fleet import (PROBE_PATHS, fast_config, fetch,
                                      single_server_bodies)

pytestmark = [
    pytest.mark.chaos,
    pytest.mark.skipif(
        not fork_available(),
        reason="fleet workers require the fork start method"),
]

KILL_SPEC = "seed=11;serving.worker_kill=@3"


def storm_bodies(workers: int, rounds: int = 1):
    """Run the probe set (``rounds`` times) against an armed fleet;
    return (first-round bodies, restarts)."""
    with ServingFleet(fast_config(),
                      FleetConfig(workers=workers,
                                  restart_backoff_s=0.01)) as fleet:
        fleet.wait_ready()
        bodies = []
        for round_index in range(rounds):
            for path in PROBE_PATHS:
                status, body = fetch(fleet.bound_port, path,
                                     retries=300, backoff_s=0.05)
                assert status == 200, (status, body[:200])
                if round_index == 0:
                    bodies.append(json.loads(body))
        restarts = fleet.total_restarts
    return bodies, restarts


class TestWorkerKillStorm:
    def test_converges_byte_identical_any_worker_count(self):
        reference = single_server_bodies()
        with armed(KILL_SPEC):
            for workers in (1, 2):
                # @3 kills the third accepted connection per worker
                # life; two rounds = 8+ connections, so by pigeonhole
                # some worker reaches its third accept whatever the
                # reuseport hash does.
                bodies, restarts = storm_bodies(workers, rounds=2)
                assert bodies == reference, \
                    f"payload drift under kill storm ({workers=})"
                assert restarts > 0, \
                    f"kill schedule never fired ({workers=})"

    def test_restarted_workers_rearm_the_schedule(self):
        """Respawned workers rebuild the plane from the env: the storm
        keeps firing after the first restart (> 1 restart total)."""
        with armed(KILL_SPEC):
            _, restarts = storm_bodies(2, rounds=4)
        assert restarts > 1

    def test_site_is_gated_to_fleet_workers(self):
        """A single-process server (worker_id=None) armed with the same
        schedule never consults the kill site: every request survives
        with zero retries."""
        from tests.serving.test_server import request, run, with_server

        async def scenario(server):
            statuses = []
            for path in PROBE_PATHS:
                status, _, _ = await request(server.bound_port, path)
                statuses.append(status)
            return statuses

        with armed(KILL_SPEC):
            statuses = run(with_server(fast_config(), scenario))
        assert statuses == [200] * len(PROBE_PATHS)
