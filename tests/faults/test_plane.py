"""Unit tests for the seeded fault plane (spec grammar, determinism)."""

import pytest

from satiot.faults import (FAULTS_ENV, SITES, FaultInjected, FaultPlane,
                           FaultRule, fault_fires, get_default_plane,
                           install_plane, reset_default_plane)


@pytest.fixture(autouse=True)
def _clean_plane(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    reset_default_plane()
    yield
    reset_default_plane()


class TestFaultRule:
    def test_parse_probability(self):
        rule = FaultRule.parse("cache.disk_read", "p0.25")
        assert rule.probability == 0.25
        assert rule.enabled

    def test_parse_count_and_bare_int(self):
        assert FaultRule.parse("executor.task", "n3").count == 3
        assert FaultRule.parse("executor.task", "3").count == 3

    def test_parse_at(self):
        assert FaultRule.parse("serving.handler", "@2").at == 2

    def test_parse_off(self):
        for token in ("off", "0", ""):
            assert not FaultRule.parse("batcher.flush", token).enabled

    def test_token_roundtrip(self):
        for token in ("p0.5", "n2", "@7", "off"):
            rule = FaultRule.parse("executor.task", token)
            assert FaultRule.parse("executor.task", rule.token()) == rule

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule.parse("no.such.site", "p0.5")

    def test_bad_token_rejected(self):
        with pytest.raises(ValueError, match="bad fault rule"):
            FaultRule.parse("executor.task", "pxyz")

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultRule.parse("executor.task", "p1.5")

    def test_all_catalog_sites_parse(self):
        for site in SITES:
            assert FaultRule.parse(site, "n1").enabled


class TestSpecParsing:
    def test_from_spec_roundtrip(self):
        spec = "seed=7;cache.disk_read=p0.5;executor.task=n1"
        plane = FaultPlane.from_spec(spec)
        assert plane.seed == 7
        assert set(plane.rules) == {"cache.disk_read", "executor.task"}
        assert FaultPlane.from_spec(plane.to_spec()).to_spec() \
            == plane.to_spec()

    def test_comma_separator_and_whitespace(self):
        plane = FaultPlane.from_spec(
            " seed=3 , serving.handler=@2 ,, batcher.flush=off ")
        assert plane.seed == 3
        assert set(plane.rules) == {"serving.handler"}

    def test_bad_entry_rejected(self):
        with pytest.raises(ValueError, match="bad fault spec entry"):
            FaultPlane.from_spec("cache.disk_read")

    def test_bad_seed_rejected(self):
        with pytest.raises(ValueError, match="bad fault seed"):
            FaultPlane.from_spec("seed=abc")


class TestSchedules:
    def test_count_rule_fires_first_k(self):
        plane = FaultPlane.from_spec("executor.task=n2")
        fires = [plane.should_fire("executor.task") for _ in range(5)]
        assert fires == [True, True, False, False, False]

    def test_at_rule_fires_exactly_once(self):
        plane = FaultPlane.from_spec("executor.task=@3")
        fires = [plane.should_fire("executor.task") for _ in range(5)]
        assert fires == [False, False, True, False, False]

    def test_probability_rule_is_seed_deterministic(self):
        a = FaultPlane.from_spec("seed=11;cache.disk_read=p0.5")
        b = FaultPlane.from_spec("seed=11;cache.disk_read=p0.5")
        pattern_a = [a.should_fire("cache.disk_read") for _ in range(64)]
        pattern_b = [b.should_fire("cache.disk_read") for _ in range(64)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_different_seeds_different_patterns(self):
        a = FaultPlane.from_spec("seed=1;cache.disk_read=p0.5")
        b = FaultPlane.from_spec("seed=2;cache.disk_read=p0.5")
        assert [a.should_fire("cache.disk_read") for _ in range(64)] \
            != [b.should_fire("cache.disk_read") for _ in range(64)]

    def test_sites_have_independent_streams(self):
        plane = FaultPlane.from_spec(
            "seed=5;cache.disk_read=p0.5;cache.disk_write=p0.5")
        r = [plane.should_fire("cache.disk_read") for _ in range(64)]
        w = [plane.should_fire("cache.disk_write") for _ in range(64)]
        assert r != w

    def test_unruled_site_never_fires_but_is_counted(self):
        plane = FaultPlane.from_spec("executor.task=n1")
        assert not plane.should_fire("cache.disk_read")
        assert plane.summary()["sites"]["cache.disk_read"]["consults"] \
            == 1

    def test_summary_counts(self):
        plane = FaultPlane.from_spec("seed=4;executor.task=n2")
        for _ in range(5):
            plane.should_fire("executor.task")
        site = plane.summary()["sites"]["executor.task"]
        assert site == {"rule": "n2", "consults": 5, "fired": 2}


class TestDefaultPlane:
    def test_no_plane_by_default(self):
        assert get_default_plane() is None
        assert fault_fires("executor.task") is False

    def test_env_spec_parsed_once(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed=9;executor.task=n1")
        plane = get_default_plane()
        assert plane is not None and plane.seed == 9
        assert get_default_plane() is plane

    def test_env_spec_change_rebuilds(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed=1;executor.task=n1")
        first = get_default_plane()
        monkeypatch.setenv(FAULTS_ENV, "seed=2;executor.task=n1")
        second = get_default_plane()
        assert second is not first and second.seed == 2

    def test_installed_plane_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "seed=1;executor.task=n1")
        mine = FaultPlane.from_spec("seed=3;serving.handler=n1")
        install_plane(mine)
        assert get_default_plane() is mine
        install_plane(None)
        assert get_default_plane() is not mine

    def test_fault_fires_consults_installed_plane(self):
        install_plane(FaultPlane.from_spec("executor.task=n1"))
        assert fault_fires("executor.task") is True
        assert fault_fires("executor.task") is False

    def test_fault_injected_carries_site(self):
        error = FaultInjected("executor.task")
        assert error.site == "executor.task"
        assert "executor.task" in str(error)


class TestCLIWiring:
    def test_install_faults_exports_env_and_installs(self, monkeypatch):
        import argparse

        from satiot.cli import _install_faults
        args = argparse.Namespace(faults="seed=6;executor.task=n1")
        _install_faults(args)
        try:
            import os
            assert os.environ[FAULTS_ENV] == "seed=6;executor.task=n1"
            plane = get_default_plane()
            assert plane is not None and plane.seed == 6
        finally:
            monkeypatch.delenv(FAULTS_ENV, raising=False)
            install_plane(None)

    def test_install_faults_rejects_bad_spec(self):
        import argparse

        from satiot.cli import _install_faults
        args = argparse.Namespace(faults="seed=6;bogus.site=n1")
        with pytest.raises(SystemExit, match="unknown fault site"):
            _install_faults(args)

    def test_parser_accepts_faults_flag(self):
        from satiot.cli import build_parser
        args = build_parser().parse_args(
            ["passive", "--faults", "executor.task=n1"])
        assert args.faults == "executor.task=n1"
