"""Micro-batcher unit tests: coalescing, flush triggers, backpressure."""

from __future__ import annotations

import asyncio

import pytest

from satiot.serving import MicroBatcher, QueueFullError
from satiot.serving.metrics import EndpointMetrics


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_window_coalesces_concurrent_requests(self):
        batches = []

        def handler(requests):
            batches.append(list(requests))
            return [r * 10 for r in requests]

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=64,
                                   window_s=0.02)
            futures = [batcher.submit(i) for i in range(5)]
            results = await asyncio.gather(*futures)
            await batcher.close()
            return results

        assert run(scenario()) == [0, 10, 20, 30, 40]
        assert batches == [[0, 1, 2, 3, 4]]  # one coalesced batch

    def test_max_batch_triggers_immediate_flush(self):
        batches = []

        def handler(requests):
            batches.append(len(requests))
            return list(requests)

        async def scenario():
            # Long window: only the size trigger can flush the first 4.
            batcher = MicroBatcher(handler, max_batch=4, window_s=5.0)
            futures = [batcher.submit(i) for i in range(4)]
            await asyncio.gather(*futures)
            await batcher.close()

        run(scenario())
        assert batches[0] == 4

    def test_overflow_batch_drains_without_new_arrivals(self):
        sizes = []

        def handler(requests):
            sizes.append(len(requests))
            return list(requests)

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=3, window_s=5.0,
                                   max_pending=100)
            futures = [batcher.submit(i) for i in range(7)]
            results = await asyncio.gather(*futures)
            await batcher.close()
            return results

        assert run(scenario()) == list(range(7))
        assert sum(sizes) == 7
        assert sizes[0] == 3  # size-triggered first flush

    def test_serial_mode_is_one_request_per_batch(self):
        sizes = []

        def handler(requests):
            sizes.append(len(requests))
            return list(requests)

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=1, window_s=0.05)
            await asyncio.gather(*[batcher.submit(i) for i in range(4)])
            await batcher.close()

        run(scenario())
        assert sizes == [1, 1, 1, 1]


class TestBackpressure:
    def test_queue_full_raises_and_batch_metrics_recorded(self):
        metrics = EndpointMetrics("t")

        def handler(requests):
            return list(requests)

        async def scenario():
            batcher = MicroBatcher(handler, max_batch=100, window_s=0.5,
                                   max_pending=3, retry_after_s=0.25,
                                   metrics=metrics)
            accepted = [batcher.submit(i) for i in range(3)]
            rejections = []
            for i in range(4):
                try:
                    batcher.submit(100 + i)
                except QueueFullError as exc:
                    rejections.append(exc.retry_after_s)
            results = await asyncio.gather(*accepted)
            await batcher.close()
            return results, rejections

        results, rejections = run(scenario())
        assert results == [0, 1, 2]
        assert rejections == [0.25] * 4  # exactly the overflow
        assert metrics.batches == 1
        assert metrics.batched_requests == 3

    def test_pending_drains_after_flush(self):
        async def scenario():
            batcher = MicroBatcher(lambda reqs: list(reqs),
                                   max_batch=8, window_s=0.01,
                                   max_pending=2)
            first = [batcher.submit(i) for i in range(2)]
            assert batcher.pending == 2
            await asyncio.gather(*first)
            assert batcher.pending == 0
            # capacity is available again
            second = batcher.submit(99)
            assert await second == 99
            await batcher.close()

        run(scenario())


class TestFailureContainment:
    def test_handler_exception_fails_batch_not_loop(self):
        async def scenario():
            def handler(requests):
                raise RuntimeError("kaboom")

            batcher = MicroBatcher(handler, max_batch=4, window_s=0.01)
            futures = [batcher.submit(i) for i in range(2)]
            outcomes = await asyncio.gather(*futures,
                                            return_exceptions=True)
            # The batcher survives a handler fault: next batch works.
            ok = MicroBatcher(lambda reqs: list(reqs), max_batch=1,
                              window_s=0.01)
            value = await ok.submit(7)
            await batcher.close()
            await ok.close()
            return outcomes, value

        outcomes, value = run(scenario())
        assert all(isinstance(o, RuntimeError) for o in outcomes)
        assert value == 7

    def test_result_count_mismatch_is_an_error(self):
        async def scenario():
            batcher = MicroBatcher(lambda reqs: [1], max_batch=4,
                                   window_s=0.01)
            futures = [batcher.submit(i) for i in range(3)]
            outcomes = await asyncio.gather(*futures,
                                            return_exceptions=True)
            await batcher.close()
            return outcomes

        outcomes = run(scenario())
        assert all(isinstance(o, RuntimeError) for o in outcomes)

    def test_transient_handler_failure_is_retried(self):
        metrics = EndpointMetrics("t")
        calls = []

        def flaky(requests):
            calls.append(list(requests))
            if len(calls) == 1:
                raise RuntimeError("transient")
            return [r * 10 for r in requests]

        async def scenario():
            batcher = MicroBatcher(flaky, max_batch=4, window_s=0.01,
                                   max_retries=2,
                                   retry_backoff_s=0.001,
                                   metrics=metrics)
            results = await asyncio.gather(
                *[batcher.submit(i) for i in range(3)])
            await batcher.close()
            return results

        assert run(scenario()) == [0, 10, 20]
        # The whole batch was re-dispatched once, with the same
        # requests in the same order.
        assert len(calls) == 2 and calls[0] == calls[1]
        assert metrics.handler_retries == 1

    def test_retry_budget_exhaustion_fails_futures(self):
        metrics = EndpointMetrics("t")
        attempts = []

        def broken(requests):
            attempts.append(len(requests))
            raise RuntimeError("permanent")

        async def scenario():
            batcher = MicroBatcher(broken, max_batch=4, window_s=0.01,
                                   max_retries=2,
                                   retry_backoff_s=0.001,
                                   metrics=metrics)
            outcomes = await asyncio.gather(
                *[batcher.submit(i) for i in range(2)],
                return_exceptions=True)
            await batcher.close()
            return outcomes

        outcomes = run(scenario())
        assert all(isinstance(o, RuntimeError) for o in outcomes)
        assert attempts == [2, 2, 2]  # initial + max_retries
        assert metrics.handler_retries == 2

    def test_max_retries_zero_fails_fast(self):
        attempts = []

        def broken(requests):
            attempts.append(1)
            raise RuntimeError("no retries for me")

        async def scenario():
            batcher = MicroBatcher(broken, max_batch=2, window_s=0.01,
                                   max_retries=0)
            outcome = await asyncio.gather(batcher.submit(1),
                                           return_exceptions=True)
            await batcher.close()
            return outcome

        outcome = run(scenario())
        assert isinstance(outcome[0], RuntimeError)
        assert attempts == [1]

    def test_count_mismatch_retries_then_fails(self):
        """A mismatch is treated as transient, like an exception."""
        calls = []

        def miscounting(requests):
            calls.append(1)
            return [1]  # always wrong for 3 requests

        async def scenario():
            batcher = MicroBatcher(miscounting, max_batch=4,
                                   window_s=0.01, max_retries=1,
                                   retry_backoff_s=0.001)
            outcomes = await asyncio.gather(
                *[batcher.submit(i) for i in range(3)],
                return_exceptions=True)
            await batcher.close()
            return outcomes

        outcomes = run(scenario())
        assert all(isinstance(o, RuntimeError) for o in outcomes)
        assert len(calls) == 2

    def test_submit_after_close_rejected(self):
        async def scenario():
            batcher = MicroBatcher(lambda reqs: list(reqs))
            await batcher.close()
            with pytest.raises(RuntimeError):
                batcher.submit(1)

        run(scenario())

    def test_invalid_configuration_rejected(self):
        handler = list
        with pytest.raises(ValueError):
            MicroBatcher(handler, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(handler, window_s=-1.0)
        with pytest.raises(ValueError):
            MicroBatcher(handler, max_pending=0)
