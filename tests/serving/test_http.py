"""HTTP/1.1 reader/writer tests over in-memory asyncio streams."""

from __future__ import annotations

import asyncio
import json

import pytest

from satiot.serving.http import (HTTPError, json_response, read_request,
                                 text_response)


def parse(raw: bytes):
    """Parse one request from raw bytes via a fed StreamReader."""
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(scenario())


class TestRequestParsing:
    def test_get_with_query(self):
        request = parse(b"GET /v1/passes?lat=1.5&lon=-2&x= HTTP/1.1\r\n"
                        b"Host: h\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/passes"
        assert request.query == {"lat": "1.5", "lon": "-2", "x": ""}
        assert request.keep_alive

    def test_post_with_json_body(self):
        body = json.dumps({"lat": 22.3}).encode()
        request = parse(b"POST /v1/passes HTTP/1.1\r\n"
                        b"Content-Length: %d\r\n"
                        b"Connection: close\r\n\r\n" % len(body) + body)
        assert request.json() == {"lat": 22.3}
        assert not request.keep_alive

    def test_params_merges_query_and_body(self):
        body = json.dumps({"lon": 114.2}).encode()
        request = parse(b"POST /v1/passes?lat=22.3&lon=0 HTTP/1.1\r\n"
                        b"Content-Length: %d\r\n\r\n" % len(body) + body)
        params = request.params()
        assert params["lat"] == "22.3"
        assert params["lon"] == 114.2  # body wins over query

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_header_names_case_insensitive(self):
        request = parse(b"GET / HTTP/1.1\r\nX-ThInG: v\r\n\r\n")
        assert request.headers["x-thing"] == "v"


class TestRequestErrors:
    @pytest.mark.parametrize("raw, status", [
        (b"NONSENSE\r\n\r\n", 400),                       # no 3 tokens
        (b"GET / SPDY/3\r\n\r\n", 400),                   # bad protocol
        (b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n", 400),    # no colon
        (b"GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n", 400),
        (b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
        (b"GET / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", 413),
        (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
    ])
    def test_malformed_requests(self, raw, status):
        with pytest.raises(HTTPError) as excinfo:
            parse(raw)
        assert excinfo.value.status == status

    def test_truncated_body(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert excinfo.value.status == 400

    def test_invalid_json_body(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\n"
                        b"{x}")
        with pytest.raises(HTTPError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_non_object_json_body(self):
        request = parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\n"
                        b"[]")
        with pytest.raises(HTTPError):
            request.json()


class TestResponses:
    def test_json_response_shape(self):
        raw = json_response(200, {"a": 1})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"a": 1}

    def test_extra_headers_and_close(self):
        raw = json_response(429, {"error": "busy"},
                            extra_headers={"Retry-After": "0.5"},
                            keep_alive=False)
        head = raw.partition(b"\r\n\r\n")[0]
        assert b"HTTP/1.1 429 Too Many Requests" in head
        assert b"Retry-After: 0.5" in head
        assert b"Connection: close" in head

    def test_text_response(self):
        raw = text_response(200, "metrics table")
        assert b"text/plain" in raw
        assert raw.endswith(b"metrics table")
