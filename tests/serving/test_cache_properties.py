"""Property-based tests for the serving TTL+LRU result cache.

Random operation sequences (put / get / clock advance) against a
reference model, checking the cache's three load-bearing invariants:

1. the entry count never exceeds capacity;
2. a TTL-expired entry is never served (and a served value is always
   the *latest* value put under its key);
3. the hit/miss/expiration counters reconcile exactly with the
   observed operation outcomes.

With expiry out of the picture (infinite TTL) the cache must agree
*exactly* with a textbook LRU model — both the values served and the
eviction order.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from collections import OrderedDict  # noqa: E402

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from satiot.serving.cache import ResultCache, quantize_coord  # noqa: E402

pytestmark = pytest.mark.property


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


KEYS = st.integers(min_value=0, max_value=11)
VALUES = st.integers(min_value=0, max_value=999)

#: One cache operation: ("put", key, value) | ("get", key) | ("tick", dt).
OPS = st.one_of(
    st.tuples(st.just("put"), KEYS, VALUES),
    st.tuples(st.just("get"), KEYS),
    st.tuples(st.just("tick"),
              st.floats(min_value=0.0, max_value=7.0,
                        allow_nan=False, allow_infinity=False)),
)


class TestInvariantsUnderRandomWorkloads:
    @settings(max_examples=200, deadline=None)
    @given(ops=st.lists(OPS, max_size=80),
           capacity=st.integers(min_value=1, max_value=6),
           ttl=st.floats(min_value=0.5, max_value=10.0,
                         allow_nan=False, allow_infinity=False))
    def test_capacity_ttl_and_counters(self, ops, capacity, ttl):
        clock = FakeClock()
        cache = ResultCache(max_entries=capacity, ttl_s=ttl,
                            clock=clock)
        #: Reference model: latest (stamp, value) per key, never evicted.
        model = {}
        gets = hits = 0

        for op in ops:
            if op[0] == "put":
                _, key, value = op
                cache.put(key, value)
                model[key] = (clock.now, value)
            elif op[0] == "get":
                _, key = op
                result = cache.get(key)
                gets += 1
                stamped = model.get(key)
                fresh = (stamped is not None
                         and clock.now - stamped[0] <= ttl)
                if result is not None:
                    hits += 1
                    # Invariant 2: never expired, never stale values.
                    assert fresh, \
                        f"served an expired entry for key {key}"
                    assert result == stamped[1], \
                        f"served a stale value for key {key}"
                elif not fresh:
                    pass  # expired/absent in the model too: consistent
                # (fresh-but-None is legal: LRU may have evicted it.)
            else:
                clock.advance(op[1])

            # Invariant 1: the bound holds after *every* operation.
            assert len(cache) <= capacity

        # Invariant 3: the counters saw exactly what we saw.
        assert cache.hits == hits
        assert cache.misses == gets - hits
        assert cache.hits + cache.misses == gets
        rate = cache.hit_rate
        assert rate == (hits / gets if gets else 0.0)

    @settings(max_examples=150, deadline=None)
    @given(ops=st.lists(OPS, max_size=80),
           ttl=st.floats(min_value=0.5, max_value=10.0,
                         allow_nan=False, allow_infinity=False))
    def test_expired_keys_all_die_together(self, ops, ttl):
        """Advancing past the TTL kills every resident entry."""
        clock = FakeClock()
        cache = ResultCache(max_entries=64, ttl_s=ttl, clock=clock)
        touched = set()
        for op in ops:
            if op[0] == "put":
                cache.put(op[1], op[2])
                touched.add(op[1])
            elif op[0] == "get":
                cache.get(op[1])
            else:
                clock.advance(op[1])
        clock.advance(ttl + 0.001)
        for key in sorted(touched):
            assert cache.get(key) is None
        assert len(cache) == 0

    @settings(max_examples=150, deadline=None)
    @given(ops=st.lists(OPS.filter(lambda op: op[0] != "tick"),
                        max_size=100),
           capacity=st.integers(min_value=1, max_value=5))
    def test_agrees_exactly_with_model_lru_when_nothing_expires(
            self, ops, capacity):
        """Infinite TTL: the cache *is* an LRU — values and evictions."""
        cache = ResultCache(max_entries=capacity, ttl_s=1e9,
                            clock=FakeClock())
        lru: "OrderedDict[int, int]" = OrderedDict()

        for op in ops:
            if op[0] == "put":
                _, key, value = op
                cache.put(key, value)
                lru[key] = value
                lru.move_to_end(key)
                while len(lru) > capacity:
                    lru.popitem(last=False)
            else:
                _, key = op
                expected = lru.get(key)
                if expected is not None:
                    lru.move_to_end(key)
                assert cache.get(key) == expected
            assert len(cache) == len(lru)

    @settings(max_examples=100, deadline=None)
    @given(value=st.floats(min_value=-180.0, max_value=180.0,
                           allow_nan=False),
           decimals=st.integers(min_value=0, max_value=6))
    def test_quantize_coord_idempotent(self, value, decimals):
        once = quantize_coord(value, decimals)
        assert quantize_coord(once, decimals) == once


class TestConstructionContracts:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)

    def test_nonpositive_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(ttl_s=0.0)
