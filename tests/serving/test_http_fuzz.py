"""Malformed-input fuzz tests for the hand-rolled HTTP parser.

Contract under test: whatever bytes arrive, ``read_request`` either
returns ``None`` (clean EOF), returns a parsed :class:`HTTPRequest`,
or raises :class:`HTTPError` with a 4xx status — never an unhandled
exception and never a hang.  End-to-end, the server maps every
malformed input to a 4xx response and stays alive.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from satiot.serving.http import (HTTPError, HTTPRequest,
                                 MAX_BODY_BYTES, MAX_HEADERS,
                                 MAX_REQUEST_LINE, read_request)
from tests.serving.test_server import (fast_config, raw_request,
                                       request, run, with_server)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is baked in
    HAS_HYPOTHESIS = False


def parse_bytes(data: bytes, timeout_s: float = 2.0):
    """Feed raw bytes to the parser with a hang watchdog."""
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await asyncio.wait_for(read_request(reader), timeout_s)
    return asyncio.run(scenario())


def parse_error(data: bytes) -> HTTPError:
    with pytest.raises(HTTPError) as excinfo:
        parse_bytes(data)
    return excinfo.value


# ----------------------------------------------------------------------
class TestMalformedRequests:
    def test_empty_stream_is_clean_eof(self):
        assert parse_bytes(b"") is None

    def test_truncated_request_line(self):
        assert parse_error(b"GET /v1/passes").status == 400

    def test_request_line_with_missing_parts(self):
        assert parse_error(b"GET\r\n\r\n").status == 400
        assert parse_error(b"GET /path\r\n\r\n").status == 400
        assert parse_error(b"\r\n\r\n").status == 400

    def test_non_ascii_request_line(self):
        assert parse_error("GET /päth HTTP/1.1\r\n\r\n"
                           .encode("utf-8")).status == 400

    def test_unsupported_protocol_version(self):
        assert parse_error(b"GET / SPDY/3\r\n\r\n").status == 400
        assert parse_error(b"GET / HTTP/2\r\n\r\n").status == 400

    def test_oversized_request_line(self):
        line = b"GET /" + b"a" * (MAX_REQUEST_LINE + 10) \
            + b" HTTP/1.1\r\n\r\n"
        assert parse_error(line).status == 413

    def test_header_without_colon(self):
        data = b"GET / HTTP/1.1\r\nNotAHeader\r\n\r\n"
        assert parse_error(data).status == 400

    def test_too_many_headers(self):
        headers = b"".join(b"X-H%d: v\r\n" % i
                           for i in range(MAX_HEADERS + 5))
        data = b"GET / HTTP/1.1\r\n" + headers + b"\r\n"
        assert parse_error(data).status == 413

    def test_oversized_header_block(self):
        # Few headers, huge values: the byte limit must trip even when
        # the header *count* limit does not.
        headers = b"".join(b"X-Pad%d: " % i + b"p" * 4000 + b"\r\n"
                           for i in range(8))
        data = b"GET / HTTP/1.1\r\n" + headers + b"\r\n"
        assert parse_error(data).status == 413

    def test_bad_content_length_values(self):
        for value in (b"abc", b"-5", b"1e3", b"0x10", b""):
            data = (b"POST / HTTP/1.1\r\nContent-Length: " + value
                    + b"\r\n\r\n")
            assert parse_error(data).status == 400, value

    def test_body_larger_than_limit_rejected_before_read(self):
        data = (b"POST / HTTP/1.1\r\nContent-Length: "
                + str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n")
        assert parse_error(data).status == 413

    def test_truncated_body(self):
        data = (b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n"
                b"short")
        assert parse_error(data).status == 400

    def test_chunked_bodies_rejected(self):
        data = (b"POST / HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n")
        assert parse_error(data).status == 400

    def test_non_utf8_json_body_parses_then_400s_on_json(self):
        body = b"\xff\xfe{\x00b\x00a\x00d\x00"
        data = (b"POST / HTTP/1.1\r\nContent-Length: "
                + str(len(body)).encode() + b"\r\n\r\n" + body)
        request = parse_bytes(data)
        assert isinstance(request, HTTPRequest)
        with pytest.raises(HTTPError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_valid_request_still_parses(self):
        """The fuzz hardening must not break the happy path."""
        body = json.dumps({"lat": 1.0}).encode()
        data = (b"POST /v1/passes?x=1 HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: " + str(len(body)).encode()
                + b"\r\n\r\n" + body)
        request = parse_bytes(data)
        assert request.method == "POST"
        assert request.path == "/v1/passes"
        assert request.query == {"x": "1"}
        assert request.json() == {"lat": 1.0}


# ----------------------------------------------------------------------
if HAS_HYPOTHESIS:

    @pytest.mark.property
    class TestParserFuzz:
        """Arbitrary bytes: parse, 4xx, or clean EOF — nothing else."""

        @settings(max_examples=300, deadline=None)
        @given(data=st.binary(max_size=512))
        def test_arbitrary_bytes_never_crash_or_hang(self, data):
            try:
                result = parse_bytes(data)
            except HTTPError as error:
                assert 400 <= error.status < 500
            else:
                assert result is None \
                    or isinstance(result, HTTPRequest)

        @settings(max_examples=150, deadline=None)
        @given(prefix=st.binary(max_size=64),
               garbage=st.binary(min_size=1, max_size=256))
        def test_valid_line_with_garbage_headers(self, prefix, garbage):
            data = b"GET / HTTP/1.1\r\n" + prefix + garbage
            try:
                result = parse_bytes(data)
            except HTTPError as error:
                assert 400 <= error.status < 500
            else:
                assert result is None \
                    or isinstance(result, HTTPRequest)

        @settings(max_examples=100, deadline=None)
        @given(body=st.binary(max_size=256))
        def test_json_of_arbitrary_body_is_dict_or_400(self, body):
            request = HTTPRequest(method="POST", path="/", body=body)
            try:
                payload = request.json()
            except HTTPError as error:
                assert error.status == 400
            else:
                assert isinstance(payload, dict)


# ----------------------------------------------------------------------
class TestTimeQueryEndToEnd:
    """``start=`` abuse maps to 4xx with a reason — never 500/hang.

    Covers the query classes of the twin serving mode: ``now`` /
    ``next`` with and without ``--realtime``, ISO-8601 instants that
    are clock-skewed, pre-epoch or beyond the serving horizon, and
    plain garbage.
    """

    BAD_STARTS = (
        ("now", "--realtime"),            # needs the realtime clock
        ("next", "--realtime"),
        ("2024-01-01T00:00:00Z", "predates"),   # months pre-epoch
        ("2025-06-01T00:00:00Z", "horizon"),    # beyond 7-day horizon
        ("2024-13-40T99:99:99Z", "timestamp"),  # calendar garbage
        ("1850-01-01T00:00:00Z", "timestamp"),  # outside 1901-2099
        ("-3600", "non-negative"),
        ("inf", "finite"),
        ("nan", "finite"),
        ("soon", "expected"),
        ("%20tomorrow%20", "expected"),
    )

    def test_bad_start_values_get_400_with_reason(self):
        async def scenario(server):
            port = server.bound_port
            results = []
            for value, _ in self.BAD_STARTS:
                results.append(await request(
                    port, f"/v1/passes?lat=22.3&lon=114.2"
                          f"&horizon_s=3600&start={value}"))
            health = await request(port, "/healthz")
            return results, health

        results, (hs, _, _) = run(with_server(fast_config(), scenario))
        for (status, _, payload), (value, fragment) \
                in zip(results, self.BAD_STARTS):
            assert status == 400, (value, status, payload)
            assert fragment in payload["error"], (value, payload)
        assert hs == 200  # still alive after the battery

    def test_now_and_next_work_under_realtime(self):
        config = fast_config(realtime=True, clock_quantum_s=60.0)

        async def scenario(server):
            port = server.bound_port
            now = await request(
                port, "/v1/passes?lat=22.3&lon=114.2"
                      "&horizon_s=7200&start=now")
            nxt = await request(
                port, "/v1/passes?lat=22.3&lon=114.2"
                      "&horizon_s=7200&start=next")
            presence = await request(
                port, "/v1/presence?lat=22.3&lon=114.2"
                      "&horizon_s=3600&start=now")
            return now, nxt, presence

        (s1, _, now), (s2, _, nxt), (s3, _, presence) = run(
            with_server(config, scenario))
        assert s1 == s2 == s3 == 200
        assert nxt["count"] <= 1  # 'next' clamps to one pass
        assert 0.0 <= presence["coverage_fraction"] <= 1.0

    def test_next_rejected_for_presence(self):
        config = fast_config(realtime=True)

        async def scenario(server):
            return await request(
                server.bound_port,
                "/v1/presence?lat=22.3&lon=114.2&start=next")

        status, _, payload = run(with_server(config, scenario))
        assert status == 400
        assert "now" in payload["error"]

    def test_skewed_iso_clamps_instead_of_400(self):
        """An ISO instant slightly before the epoch answers like
        start=0 (client clock skew tolerance)."""
        async def scenario(server):
            port = server.bound_port
            base = "/v1/passes?lat=22.3&lon=114.2&horizon_s=7200"
            zero = await request(port, base)
            # The serving epoch is 2024 day 245.0 = Sep 1 00:00:00.
            skewed = await request(
                port, base + "&start=2024-08-31T23:59:30Z")
            return zero, skewed

        (s1, _, zero), (s2, _, skewed) = run(
            with_server(fast_config(), scenario))
        assert s1 == s2 == 200
        assert skewed == zero


if HAS_HYPOTHESIS:

    from satiot.twin import SimClock, parse_time_query

    @pytest.mark.property
    class TestTimeQueryFuzz:
        """Arbitrary start strings: a (offset, mode) pair or a
        ValueError — never any other exception."""

        @settings(max_examples=300, deadline=None)
        @given(value=st.text(max_size=40))
        def test_arbitrary_text_parses_or_value_errors(self, value):
            clock = SimClock(anchor=0.0, time_source=lambda: 120.0)
            try:
                offset, mode = parse_time_query(value, clock=clock)
            except ValueError as error:
                assert str(error)  # reason is never empty
            else:
                assert offset >= 0.0
                assert mode in ("offset", "now", "next", "iso")

        @settings(max_examples=150, deadline=None)
        @given(value=st.floats(allow_nan=True, allow_infinity=True))
        def test_arbitrary_floats_parse_or_value_error(self, value):
            try:
                offset, mode = parse_time_query(value)
            except ValueError as error:
                assert str(error)
            else:
                assert 0.0 <= offset and mode == "offset"


# ----------------------------------------------------------------------
class TestEndToEndMalformedInput:
    """The live server turns garbage into 4xx and keeps serving."""

    def test_non_utf8_body_gets_400_not_500(self):
        async def scenario(server):
            port = server.bound_port
            body = b"\xff\xfe\xfd not json"
            data = await raw_request(
                port,
                b"POST /v1/passes HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: " + str(len(body)).encode()
                + b"\r\nConnection: close\r\n\r\n" + body)
            healthz = await raw_request(
                port, b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                      b"Connection: close\r\n\r\n")
            return data, healthz

        data, healthz = run(with_server(fast_config(), scenario))
        assert data.startswith(b"HTTP/1.1 400")
        assert healthz.startswith(b"HTTP/1.1 200")

    def test_bad_content_length_gets_400_and_close(self):
        async def scenario(server):
            return await raw_request(
                server.bound_port,
                b"POST /v1/passes HTTP/1.1\r\n"
                b"Content-Length: banana\r\n\r\n")

        data = run(with_server(fast_config(), scenario))
        assert data.startswith(b"HTTP/1.1 400")
        assert b"Connection: close" in data

    def test_garbage_request_line_gets_4xx(self):
        async def scenario(server):
            port = server.bound_port
            bad = await raw_request(
                port, b"\x00\x01\x02 garbage \xff\r\n\r\n")
            ok = await raw_request(
                port, b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                      b"Connection: close\r\n\r\n")
            return bad, ok

        bad, ok = run(with_server(fast_config(), scenario))
        assert bad.startswith(b"HTTP/1.1 4")
        assert ok.startswith(b"HTTP/1.1 200")
