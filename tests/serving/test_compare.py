"""Tests for the ``/v1/compare`` multi-provider endpoint.

Contract: one request names a site and a provider list; the response
carries one entry per provider — availability, latency, energy and
cost, all derived from a single shared geometry pass per provider —
plus ``cheapest`` / ``most_available`` verdicts.  The payload must be
deterministic: byte-identical between GET and POST, across repeated
requests, and across fleet worker counts (the fleet test at the
bottom).  Cost figures are golden-tested against the hand-computed
tariff fixtures in ``tests/econ/test_providers.py``.
"""

from __future__ import annotations

import json

import pytest

from satiot.serving import (FleetConfig, ServingConfig, ServingFleet,
                            fork_available)

from tests.serving.test_fleet import fetch
from tests.serving.test_server import HK, fast_config, request, run, \
    with_server

COMPARE_QS = ("lat=22.3&lon=114.2&horizon_s=7200"
              "&providers=tianqi,swarm")


def compare_config(**overrides) -> ServingConfig:
    """Service with only the two cheap-to-build providers loaded."""
    defaults = dict(providers=("tianqi", "swarm"))
    defaults.update(overrides)
    return fast_config(**defaults)


def get_compare(qs: str = COMPARE_QS, config: ServingConfig = None):
    async def scenario(server):
        return await request(server.bound_port, f"/v1/compare?{qs}")

    return run(with_server(config or compare_config(), scenario))


# ----------------------------------------------------------------------
class TestComparePayload:
    def test_schema_and_provider_order(self):
        status, _, payload = get_compare()
        assert status == 200
        assert payload["site"]["latitude_deg"] == 22.3
        assert payload["horizon_s"] == 7200.0
        assert [e["provider"] for e in payload["providers"]] \
            == ["tianqi", "swarm"]
        for entry in payload["providers"]:
            assert set(entry) >= {"provider", "display_name",
                                  "constellation", "satellites",
                                  "availability", "latency", "energy",
                                  "cost"}
            avail = entry["availability"]
            assert 0.0 <= avail["coverage_fraction"] <= 1.0
            assert avail["covered_s"] <= 7200.0
            assert entry["latency"]["mean_uplink_latency_s"] >= 0.0
            assert entry["energy"]["energy_j_per_day"] > 0.0
        assert payload["cheapest"] in ("tianqi", "swarm")
        assert payload["most_available"] in ("tianqi", "swarm")
        # start=0 must not leak a start_s key (payload byte-compat).
        assert "start_s" not in payload

    def test_cost_entries_match_tariff_fixtures(self):
        """The cost block is pure tariff math — golden-pinned to the
        hand-computed fixtures (48 pkt/day, 20 B)."""
        _, _, payload = get_compare()
        by_name = {e["provider"]: e["cost"]
                   for e in payload["providers"]}
        assert by_name["tianqi"] == {
            "device_usd": 220.0, "monthly_usd": 23.76,
            "usd_per_thousand_packets": 16.5,
            "tco_12mo_usd": 505.12}
        assert by_name["swarm"] == {
            "device_usd": 119.0, "monthly_usd": 9.6048,
            "usd_per_thousand_packets": 6.67,
            "tco_12mo_usd": 234.2576}
        assert payload["cheapest"] == "swarm"

    def test_get_and_post_agree(self):
        async def scenario(server):
            port = server.bound_port
            get = await request(port, f"/v1/compare?{COMPARE_QS}")
            post = await request(port, "/v1/compare", body={
                **HK, "horizon_s": 7200,
                "providers": "tianqi,swarm"})
            return get, post

        (s1, _, p1), (s2, _, p2) = run(
            with_server(compare_config(), scenario))
        assert s1 == s2 == 200
        assert p1 == p2

    def test_repeated_requests_identical(self):
        async def scenario(server):
            port = server.bound_port
            first = await request(port, f"/v1/compare?{COMPARE_QS}")
            second = await request(port, f"/v1/compare?{COMPARE_QS}")
            return first, second

        first, second = run(with_server(compare_config(), scenario))
        assert first == second

    def test_provider_order_follows_the_request(self):
        reversed_qs = COMPARE_QS.replace("tianqi,swarm",
                                         "swarm,tianqi")
        _, _, payload = get_compare(reversed_qs)
        assert [e["provider"] for e in payload["providers"]] \
            == ["swarm", "tianqi"]

    def test_default_is_every_loaded_provider_sorted(self):
        _, _, payload = get_compare("lat=22.3&lon=114.2&horizon_s=7200")
        assert [e["provider"] for e in payload["providers"]] \
            == ["swarm", "tianqi"]

    def test_compare_does_not_leak_into_healthz(self):
        """Provider fleets are serving internals: /healthz keeps
        reporting only the loaded constellations."""
        async def scenario(server):
            port = server.bound_port
            await request(port, f"/v1/compare?{COMPARE_QS}")
            return await request(port, "/healthz")

        _, _, payload = run(with_server(compare_config(), scenario))
        assert payload["constellations"] == ["tianqi"]


# ----------------------------------------------------------------------
class TestCompareValidation:
    @pytest.mark.parametrize("qs, fragment", [
        ("lat=22.3&lon=114.2&providers=starlink", "unknown provider"),
        ("lat=22.3&lon=114.2&providers=%2C%2C", "empty"),
        ("lon=114.2", "required"),
        ("lat=22.3&lon=114.2&horizon_s=0", "horizon_s"),
        ("lat=22.3&lon=114.2&packets_per_day=0", "packets_per_day"),
        ("lat=22.3&lon=114.2&payload_bytes=0", "payload_bytes"),
        ("lat=22.3&lon=114.2&payload_bytes=9999", "payload_bytes"),
        ("lat=22.3&lon=114.2&start=next", "now"),
        ("lat=22.3&lon=114.2&start=now", "--realtime"),
    ])
    def test_bad_parameters_get_400_with_reason(self, qs, fragment):
        status, _, payload = get_compare(qs)
        assert status == 400
        assert fragment in payload["error"]

    def test_unknown_provider_respects_loaded_subset(self):
        """A provider that exists in the registry but was not loaded
        into this server is still a 400."""
        status, _, payload = get_compare(
            "lat=22.3&lon=114.2&providers=iridium",
            config=compare_config())
        assert status == 400
        assert "iridium" in payload["error"]


# ----------------------------------------------------------------------
@pytest.mark.skipif(not fork_available(),
                    reason="fleet workers require the fork start method")
class TestCompareAcrossWorkers:
    """The acceptance gate: /v1/compare is byte-identical whether one
    process answers or a multi-worker fleet does."""

    PATH = f"/v1/compare?{COMPARE_QS}"

    def single_body(self):
        async def scenario(server):
            status, _, payload = await request(server.bound_port,
                                               self.PATH)
            assert status == 200
            return payload

        return run(with_server(compare_config(), scenario))

    def test_workers_1_vs_2_byte_identical(self):
        reference = self.single_body()
        bodies = []
        for workers in (1, 2):
            with ServingFleet(compare_config(),
                              FleetConfig(workers=workers,
                                          reuseport=False)) as fleet:
                fleet.wait_ready()
                status, body = fetch(fleet.bound_port, self.PATH)
                assert status == 200
                bodies.append(body)
        assert bodies[0] == bodies[1]
        assert json.loads(bodies[0]) == reference
