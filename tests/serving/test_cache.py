"""TTL+LRU result cache tests (deterministic via injected clock)."""

from __future__ import annotations

import pytest

from satiot.serving import ResultCache, quantize_coord


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestTTL:
    def test_fresh_entry_hits(self, clock):
        cache = ResultCache(ttl_s=10.0, clock=clock)
        cache.put("k", {"v": 1})
        clock.advance(9.9)
        assert cache.get("k") == {"v": 1}
        assert cache.hits == 1

    def test_expired_entry_misses_and_is_evicted(self, clock):
        cache = ResultCache(ttl_s=10.0, clock=clock)
        cache.put("k", "stale")
        clock.advance(10.1)
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_put_refreshes_timestamp(self, clock):
        cache = ResultCache(ttl_s=10.0, clock=clock)
        cache.put("k", "v1")
        clock.advance(8.0)
        cache.put("k", "v2")
        clock.advance(8.0)  # 16 s after first put, 8 s after second
        assert cache.get("k") == "v2"

    def test_insert_sweeps_expired_head(self, clock):
        cache = ResultCache(ttl_s=5.0, clock=clock)
        cache.put("old", 1)
        clock.advance(6.0)
        cache.put("new", 2)
        assert len(cache) == 1  # "old" swept during the insert


class TestLRU:
    def test_capacity_bound_evicts_oldest(self, clock):
        cache = ResultCache(max_entries=2, ttl_s=100.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self, clock):
        cache = ResultCache(max_entries=2, ttl_s=100.0, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1   # now most-recent
        cache.put("c", 3)            # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1

    def test_hit_rate(self, clock):
        cache = ResultCache(clock=clock)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hit_rate == 0.5

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_s=0.0)


class TestQuantization:
    def test_quantize_groups_nearby_coordinates(self):
        assert quantize_coord(47.3712) == quantize_coord(47.3748)
        assert quantize_coord(47.3712) != quantize_coord(47.3851)

    def test_decimals_parameter(self):
        assert quantize_coord(47.123456, decimals=4) == 47.1235
