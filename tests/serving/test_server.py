"""End-to-end server tests over real sockets (ephemeral ports).

Covers the serving layer's operational contract:

* request/response happy paths for every endpoint, GET and POST;
* result-cache hits for geographically-identical queries;
* micro-batch coalescing visible in /metrics;
* **backpressure**: with queue capacity K, K+N simultaneous requests
  yield exactly N 429s (with Retry-After), zero server errors, and
  ``/healthz`` keeps answering throughout;
* client disconnects mid-request never take the server down.
"""

from __future__ import annotations

import asyncio
import json


from satiot.serving import ServingConfig, ServingServer


# ----------------------------------------------------------------------
# Minimal asyncio HTTP client
# ----------------------------------------------------------------------
async def raw_request(port: int, payload: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        return await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass


async def request(port: int, path: str, body: dict = None,
                  method: str = None):
    method = method or ("POST" if body is not None else "GET")
    encoded = json.dumps(body).encode() if body is not None else b""
    raw = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
           f"Content-Length: {len(encoded)}\r\n"
           f"Connection: close\r\n\r\n").encode() + encoded
    data = await raw_request(port, raw)
    head, _, payload = data.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(payload) if payload else None


def run(coro):
    return asyncio.run(coro)


async def with_server(config: ServingConfig, scenario):
    server = ServingServer(config)
    await server.start()
    try:
        return await scenario(server)
    finally:
        await server.close()


def fast_config(**overrides) -> ServingConfig:
    defaults = dict(port=0, coarse_step_s=120.0, window_s=0.01,
                    cache_decimals=6)
    defaults.update(overrides)
    return ServingConfig(**defaults)


HK = {"lat": 22.3, "lon": 114.2}


# ----------------------------------------------------------------------
class TestEndpoints:
    def test_healthz(self):
        async def scenario(server):
            return await request(server.bound_port, "/healthz")

        status, _, payload = run(with_server(fast_config(), scenario))
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["constellations"] == ["tianqi"]

    def test_passes_get_and_post_agree(self):
        async def scenario(server):
            port = server.bound_port
            get = await request(
                port, "/v1/passes?lat=22.3&lon=114.2&horizon_s=7200")
            post = await request(port, "/v1/passes",
                                 body={**HK, "horizon_s": 7200})
            return get, post

        (s1, _, p1), (s2, _, p2) = run(
            with_server(fast_config(), scenario))
        assert s1 == s2 == 200
        assert p1 == p2
        assert p1["count"] == len(p1["passes"])

    def test_link_budget_and_presence(self):
        async def scenario(server):
            port = server.bound_port
            lb = await request(port, "/v1/link_budget",
                               body={**HK, "t_offset_s": 1200})
            pr = await request(port, "/v1/presence",
                               body={**HK, "horizon_s": 7200})
            return lb, pr

        (s1, _, lb), (s2, _, pr) = run(
            with_server(fast_config(), scenario))
        assert s1 == s2 == 200
        assert "satellites" in lb and "sensitivity_dbm" in lb
        assert 0.0 <= pr["coverage_fraction"] <= 1.0

    def test_validation_and_routing_errors(self):
        async def scenario(server):
            port = server.bound_port
            bad = await request(port, "/v1/passes", body={"lat": 95,
                                                          "lon": 0})
            missing = await request(port, "/nope")
            method = await request(port, "/v1/passes", body=HK,
                                   method="DELETE")
            return bad, missing, method

        (s1, _, p1), (s2, _, _), (s3, _, _) = run(
            with_server(fast_config(), scenario))
        assert s1 == 400 and "lat" in p1["error"]
        assert s2 == 404
        assert s3 == 405

    def test_metrics_json_and_text(self):
        async def scenario(server):
            port = server.bound_port
            await request(port, "/v1/passes",
                          body={**HK, "horizon_s": 3600})
            js = await request(port, "/metrics")
            raw = await raw_request(
                port, b"GET /metrics?format=text HTTP/1.1\r\n"
                      b"Host: t\r\nConnection: close\r\n\r\n")
            return js, raw

        (status, _, payload), raw = run(
            with_server(fast_config(), scenario))
        assert status == 200
        assert payload["passes"]["requests"] == 1
        assert "_cache" in payload
        assert b"endpoint" in raw and b"p99 ms" in raw

    def test_result_cache_serves_repeat_queries(self):
        async def scenario(server):
            port = server.bound_port
            first = await request(port, "/v1/passes",
                                  body={**HK, "horizon_s": 3600})
            second = await request(port, "/v1/passes",
                                   body={**HK, "horizon_s": 3600})
            stats = server.metrics.endpoint("passes")
            return first, second, stats.cache_hits, server.cache.hits

        first, second, hits, cache_hits = run(
            with_server(fast_config(), scenario))
        assert first[2] == second[2]
        assert hits == 1 and cache_hits == 1

    def test_keep_alive_connection_reuse(self):
        async def scenario(server):
            port = server.bound_port
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            try:
                for _ in range(2):
                    writer.write(b"GET /healthz HTTP/1.1\r\n"
                                 b"Host: t\r\n\r\n")
                    await writer.drain()
                    header = await reader.readuntil(b"\r\n\r\n")
                    length = int([ln.split(b":")[1]
                                  for ln in header.split(b"\r\n")
                                  if ln.lower().startswith(
                                      b"content-length")][0])
                    body = await reader.readexactly(length)
                    assert b"ok" in body
            finally:
                writer.close()
                await writer.wait_closed()
            return True

        assert run(with_server(fast_config(), scenario))


# ----------------------------------------------------------------------
class TestBatching:
    def test_concurrent_requests_coalesce(self):
        async def scenario(server):
            port = server.bound_port
            bodies = [{"lat": 10.0 + i, "lon": 20.0 + i,
                       "horizon_s": 3600} for i in range(8)]
            responses = await asyncio.gather(*(
                request(port, "/v1/passes", body=b) for b in bodies))
            stats = server.metrics.endpoint("passes")
            return responses, stats.batches, stats.batched_requests

        config = fast_config(window_s=0.05)
        responses, batches, batched = run(with_server(config, scenario))
        assert all(status == 200 for status, _, _ in responses)
        assert batched == 8
        assert batches < 8  # at least some coalescing happened

    def test_unbatched_mode_still_serves(self):
        async def scenario(server):
            port = server.bound_port
            responses = await asyncio.gather(*(
                request(port, "/v1/passes",
                        body={"lat": 1.0 * i, "lon": 2.0 * i,
                              "horizon_s": 3600}) for i in range(4)))
            stats = server.metrics.endpoint("passes")
            return responses, stats.batch_histogram

        config = fast_config(batching=False)
        responses, histogram = run(with_server(config, scenario))
        assert all(status == 200 for status, _, _ in responses)
        assert set(histogram) == {1}  # every batch had size 1


# ----------------------------------------------------------------------
class TestBackpressure:
    K = 4
    N = 3

    def test_exactly_n_rejections_and_healthz_alive(self):
        """Queue capacity K, K+N simultaneous requests → exactly N 429s,
        zero server errors, /healthz answers during the overload."""
        config = fast_config(
            max_pending=self.K,
            window_s=0.5,          # hold the batch open: queue must fill
            max_batch=64,          # size trigger must not drain early
            retry_after_s=0.123)

        async def scenario(server):
            port = server.bound_port
            bodies = [{"lat": 5.0 + i * 0.5, "lon": 100.0 + i,
                       "horizon_s": 3600} for i in range(self.K + self.N)]
            tasks = [asyncio.create_task(
                request(port, "/v1/passes", body=b)) for b in bodies]
            await asyncio.sleep(0.1)  # mid-window: queue is full
            health = await request(port, "/healthz")
            responses = await asyncio.gather(*tasks)
            health_after = await request(port, "/healthz")
            stats = server.metrics.endpoint("passes")
            return responses, health, health_after, stats

        responses, health, health_after, stats = run(
            with_server(config, scenario))
        statuses = sorted(status for status, _, _ in responses)
        assert statuses.count(200) == self.K
        assert statuses.count(429) == self.N
        assert health[0] == 200 and health_after[0] == 200
        assert stats.server_errors == 0
        assert stats.rejected == self.N
        for status, headers, payload in responses:
            if status == 429:
                assert headers["retry-after"] == "0.123"
                assert payload["retry_after_s"] == 0.123

    def test_recovers_after_burst(self):
        config = fast_config(max_pending=2, window_s=0.2, max_batch=64)

        async def scenario(server):
            port = server.bound_port
            burst = await asyncio.gather(*(
                request(port, "/v1/passes",
                        body={"lat": 1.0 + i, "lon": 3.0 + i,
                              "horizon_s": 3600}) for i in range(5)))
            # After the burst drains, fresh requests succeed again.
            later = await request(port, "/v1/passes",
                                  body={"lat": 42.0, "lon": 42.0,
                                        "horizon_s": 3600})
            return burst, later

        burst, later = run(with_server(config, scenario))
        assert sorted(s for s, _, _ in burst).count(429) == 3
        assert later[0] == 200


# ----------------------------------------------------------------------
class TestDisconnects:
    def test_half_request_disconnect_keeps_server_alive(self):
        async def scenario(server):
            port = server.bound_port
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(b"POST /v1/passes HTTP/1.1\r\nContent-Le")
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)
            return await request(port, "/healthz")

        status, _, payload = run(with_server(fast_config(), scenario))
        assert status == 200 and payload["status"] == "ok"

    def test_disconnect_before_response_keeps_server_alive(self):
        """Client fires a query and vanishes while it's in the batcher."""
        async def scenario(server):
            port = server.bound_port
            body = json.dumps({**HK, "horizon_s": 3600}).encode()
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(
                b"POST /v1/passes HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body)
            await writer.drain()
            writer.close()          # gone before the batch flushes
            await writer.wait_closed()
            await asyncio.sleep(0.2)
            health = await request(port, "/healthz")
            still = await request(port, "/v1/passes",
                                  body={"lat": -5.0, "lon": 9.0,
                                        "horizon_s": 3600})
            stats = server.metrics.endpoint("passes")
            return health, still, stats.server_errors

        health, still, server_errors = run(
            with_server(fast_config(window_s=0.1), scenario))
        assert health[0] == 200
        assert still[0] == 200
        assert server_errors == 0

    def test_many_disconnects_under_load(self):
        async def scenario(server):
            port = server.bound_port

            async def rude_client(i: int):
                body = json.dumps({"lat": float(i), "lon": float(i),
                                   "horizon_s": 3600}).encode()
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write(
                    b"POST /v1/passes HTTP/1.1\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body)
                await writer.drain()
                writer.close()
                await writer.wait_closed()

            await asyncio.gather(*(rude_client(i) for i in range(10)))
            await asyncio.sleep(0.3)
            health = await request(port, "/healthz")
            stats = server.metrics.endpoint("passes")
            return health, stats.server_errors

        health, server_errors = run(
            with_server(fast_config(window_s=0.05), scenario))
        assert health[0] == 200
        assert server_errors == 0


# ----------------------------------------------------------------------
class TestSlowClients:
    class StuckWriter:
        """A writer whose drain never completes (zero-window client)."""

        def __init__(self) -> None:
            self.aborted = False
            self.written = b""

        @property
        def transport(self):
            return self

        def abort(self) -> None:
            self.aborted = True

        def write(self, data: bytes) -> None:
            self.written += data

        async def drain(self) -> None:
            await asyncio.sleep(3600.0)

    def test_write_timeout_aborts_stuck_client(self):
        server = ServingServer(fast_config(write_timeout_s=0.02))
        writer = self.StuckWriter()

        async def scenario():
            ok = await server._write(writer, b"payload")
            await server.close()
            return ok

        assert run(scenario()) is False
        assert writer.aborted
        assert server.metrics.write_timeouts == 1

    def test_fast_drain_is_untouched(self):
        server = ServingServer(fast_config(write_timeout_s=0.02))

        class QuickWriter(self.StuckWriter):
            async def drain(self) -> None:
                return None

        writer = QuickWriter()

        async def scenario():
            ok = await server._write(writer, b"payload")
            await server.close()
            return ok

        assert run(scenario()) is True
        assert not writer.aborted
        assert writer.written == b"payload"
        assert server.metrics.write_timeouts == 0
