"""Multi-worker serving fleet: routing modes, supervision, metrics.

The :class:`~satiot.serving.supervisor.ServingFleet` must behave like
one server with more capacity, whatever the routing mode:

* ``SO_REUSEPORT`` mode (kernel load balancing) and the pre-accepted
  round-robin **fallback** serve byte-identical payloads — to each
  other AND to a plain single-process :class:`ServingServer`;
* the fallback's round-robin provably spreads connections over every
  worker (reuseport's 4-tuple hash may not, with one test client);
* a SIGKILL'ed worker is respawned by the monitor and the fleet keeps
  answering;
* the supervisor's merged ``/metrics`` view sums worker counters and
  carries per-worker ``_workers`` / fleet-level ``_fleet`` sections;
* ``SATIOT_SERVE_WORKERS`` / ``SATIOT_SERVE_REUSEPORT`` env knobs
  resolve (and reject garbage) as documented.

These tests fork real processes; they keep fleets small (2 workers,
"pico" constellation, coarse sampling) to stay fast on tiny CI boxes.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import time

import pytest

from satiot.serving import (FleetConfig, ServingConfig, ServingFleet,
                            default_workers, fork_available,
                            reuseport_available)
from satiot.serving.supervisor import REUSEPORT_ENV, WORKERS_ENV

from tests.serving.test_server import request, run, with_server

pytestmark = pytest.mark.skipif(
    not fork_available(),
    reason="fleet workers require the fork start method")

# Deterministic probe set: same coordinates → byte-identical bodies
# across modes (cache_decimals below makes quantization exact).
PROBE_PATHS = tuple(
    f"/v1/passes?constellation=pico&lat={lat:.6f}&lon={lon:.6f}"
    f"&horizon_s=3600&min_elevation_deg=10"
    for lat, lon in ((22.3, 114.2), (-33.9, 18.4), (64.1, -21.9),
                     (1.35, 103.8)))


def fast_config(**overrides) -> ServingConfig:
    defaults = dict(port=0, constellations=("pico",),
                    coarse_step_s=120.0, window_s=0.01,
                    cache_decimals=6)
    defaults.update(overrides)
    return ServingConfig(**defaults)


def fetch(port: int, path: str, retries: int = 100,
          backoff_s: float = 0.05):
    """GET with retries: worker restarts leave short accept gaps."""
    last: Exception = None
    for _ in range(retries):
        try:
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=10.0) as sock:
                sock.sendall((f"GET {path} HTTP/1.1\r\nHost: t\r\n"
                              f"Connection: close\r\n\r\n").encode())
                data = b""
                while chunk := sock.recv(65536):
                    data += chunk
            head, sep, body = data.partition(b"\r\n\r\n")
            if not sep:
                raise OSError("truncated response")
            return int(head.split(b" ", 2)[1]), body
        except (OSError, IndexError, ValueError) as error:
            last = error
            time.sleep(backoff_s)
    raise AssertionError(f"fleet unreachable after {retries} tries: "
                         f"{last}")


def probe_bodies(port: int):
    bodies = []
    for path in PROBE_PATHS:
        status, body = fetch(port, path)
        assert status == 200, (status, body[:200])
        bodies.append(body)
    return bodies


def single_server_bodies():
    async def scenario(server):
        bodies = []
        for path in PROBE_PATHS:
            status, _, payload = await request(server.bound_port, path)
            assert status == 200
            bodies.append(payload)
        return bodies

    return run(with_server(fast_config(), scenario))


# ----------------------------------------------------------------------
class TestEnvKnobs:
    def test_default_workers_resolution(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() == 1
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert default_workers() == 4
        monkeypatch.setenv(WORKERS_ENV, "  2  ")
        assert default_workers() == 2

    @pytest.mark.parametrize("bad", ["zero", "0", "-3", "2.5"])
    def test_default_workers_rejects_garbage(self, monkeypatch, bad):
        monkeypatch.setenv(WORKERS_ENV, bad)
        with pytest.raises(ValueError, match=WORKERS_ENV):
            default_workers()

    def test_reuseport_env_veto(self, monkeypatch):
        monkeypatch.setenv(REUSEPORT_ENV, "0")
        assert reuseport_available() is False
        monkeypatch.setenv(REUSEPORT_ENV, "off")
        assert reuseport_available() is False

    def test_fleet_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(workers=0)
        with pytest.raises(ValueError):
            FleetConfig(max_restarts=-1)


# ----------------------------------------------------------------------
@pytest.mark.skipif(not reuseport_available(),
                    reason="kernel lacks SO_REUSEPORT")
class TestReuseportMode:
    def test_serves_identical_payloads_to_single_server(self):
        reference = single_server_bodies()
        with ServingFleet(fast_config(),
                          FleetConfig(workers=2,
                                      reuseport=True)) as fleet:
            fleet.wait_ready()
            assert fleet.mode == "reuseport"
            bodies = probe_bodies(fleet.bound_port)
        assert [json.loads(b) for b in bodies] == reference

    def test_healthz_reports_worker_identity(self):
        with ServingFleet(fast_config(),
                          FleetConfig(workers=2,
                                      reuseport=True)) as fleet:
            fleet.wait_ready()
            status, body = fetch(fleet.bound_port, "/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ok"
            assert payload["worker"] in (0, 1)


# ----------------------------------------------------------------------
class TestFallbackMode:
    """Forced fallback must work even where SO_REUSEPORT exists."""

    def test_forced_fallback_round_robin_spreads_and_matches(self):
        reference = single_server_bodies()
        with ServingFleet(fast_config(),
                          FleetConfig(workers=2,
                                      reuseport=False)) as fleet:
            fleet.wait_ready()
            assert fleet.mode == "fallback"
            bodies = probe_bodies(fleet.bound_port)
            # Round-robin: consecutive connections land on alternating
            # workers — /healthz tags each reply with the worker id.
            seen = {json.loads(fetch(fleet.bound_port,
                                     "/healthz")[1])["worker"]
                    for _ in range(4)}
            assert seen == {0, 1}
        assert [json.loads(b) for b in bodies] == reference

    def test_fallback_matches_reuseport_fleet(self):
        if not reuseport_available():
            pytest.skip("kernel lacks SO_REUSEPORT")
        with ServingFleet(fast_config(),
                          FleetConfig(workers=2,
                                      reuseport=True)) as fleet:
            fleet.wait_ready()
            via_reuseport = probe_bodies(fleet.bound_port)
        with ServingFleet(fast_config(),
                          FleetConfig(workers=2,
                                      reuseport=False)) as fleet:
            fleet.wait_ready()
            via_fallback = probe_bodies(fleet.bound_port)
        assert via_fallback == via_reuseport


# ----------------------------------------------------------------------
class TestSupervision:
    def test_sigkilled_worker_is_respawned(self):
        with ServingFleet(fast_config(),
                          FleetConfig(workers=2)) as fleet:
            fleet.wait_ready()
            victim = fleet.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                pids = fleet.worker_pids()
                if pids[0] is not None and pids[0] != victim:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("worker was not respawned")
            fleet.wait_ready()
            assert fleet.total_restarts >= 1
            status, _ = fetch(fleet.bound_port, PROBE_PATHS[0])
            assert status == 200

    def test_stop_is_idempotent_and_reaps_workers(self):
        fleet = ServingFleet(fast_config(), FleetConfig(workers=2))
        fleet.start()
        fleet.wait_ready()
        pids = fleet.worker_pids()
        fleet.stop()
        fleet.stop()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)


# ----------------------------------------------------------------------
class TestFleetMetrics:
    def test_merged_view_sums_workers(self):
        with ServingFleet(fast_config(),
                          FleetConfig(workers=2,
                                      reuseport=False)) as fleet:
            fleet.wait_ready()
            for path in PROBE_PATHS:
                status, _ = fetch(fleet.bound_port, path)
                assert status == 200
            merged = fleet.fleet_metrics()

        workers = merged["_workers"]
        assert set(workers) == {"0", "1"}
        # The requests were round-robined over both workers (proven in
        # TestFallbackMode); the merged endpoint counter must equal the
        # total across the fleet, and each worker's raw snapshot is
        # retained for the sum.
        per_worker = [slot.last_metrics["metrics"]["endpoints"]
                       ["passes"]["counters"]["requests"]
                      for slot in fleet._slots]
        assert sum(per_worker) == len(PROBE_PATHS)
        assert all(count > 0 for count in per_worker)
        assert merged["passes"]["requests"] == len(PROBE_PATHS)
        assert "_server" in merged
        for worker in workers.values():
            assert worker["alive"]
            assert worker["pid"] > 0
            assert worker["rss_max_kib"] > 0
            assert worker["ephemeris"]["grid_bytes"] >= 0

        info = merged["_fleet"]
        assert info["workers"] == 2
        assert info["mode"] == "fallback"
        assert info["port"] == fleet.bound_port
