"""Serving over catalog-built constellations (`extra=` + `known=`)."""

from __future__ import annotations

import pytest

from satiot.catalog import TleDb, constellation_from_catalog
from satiot.catalog.synth import MegaConstellationSpec
from satiot.catalog.synth import synthesize_mega_constellation
from satiot.constellations.shells import ShellSpec
from satiot.serving.service import (ConstellationService, PassesRequest,
                                    PresenceRequest)

HK = {"lat": 22.3, "lon": 114.2}

SPEC = MegaConstellationSpec(
    name="MINI",
    shells=(ShellSpec("S1", count=6, altitude_min_km=540.0,
                      altitude_max_km=560.0, inclination_deg=53.0,
                      planes=3),),
    norad_base=63000)


@pytest.fixture(scope="module")
def service():
    db = TleDb()
    db.insert(synthesize_mega_constellation(SPEC, seed=9),
              group_from_name=True)
    const = constellation_from_catalog(db, name="minicat")
    return ConstellationService(constellations=("tianqi",),
                                coarse_step_s=60.0, extra=[const])


class TestExtraConstellations:
    def test_loaded_alongside_named(self, service):
        assert service.constellation_names == ["minicat", "tianqi"]
        assert len(service.constellation("minicat")) == 6

    def test_epoch_is_newest_member_epoch(self, service):
        const = service.constellation("minicat")
        assert service.epoch("minicat").jd == \
            max(s.tle.epoch.jd for s in const.satellites)

    def test_passes_and_presence_answer(self, service):
        request = PassesRequest.from_params(
            {**HK, "constellation": "minicat", "horizon_s": 21600,
             "min_elevation_deg": 10.0},
            known=service.constellation_names)
        payload = service.passes_batch([request])[0]
        assert payload["constellation"] == "minicat"
        assert payload["count"] == len(payload["passes"])
        presence = service.presence_batch([PresenceRequest.from_params(
            {**HK, "constellation": "minicat", "horizon_s": 21600},
            known=service.constellation_names)])[0]
        assert 0.0 <= presence["coverage_fraction"] <= 1.0

    def test_duplicate_name_rejected(self, service):
        const = _renamed(service.constellation("minicat"), "tianqi")
        with pytest.raises(ValueError, match="already loaded"):
            ConstellationService(constellations=("tianqi",),
                                 extra=[const])

    def test_empty_service_rejected(self):
        with pytest.raises(ValueError, match="no constellations"):
            ConstellationService(constellations=(), extra=())


def _renamed(const, name):
    import dataclasses
    spec = dataclasses.replace(const.spec, name=name)
    return dataclasses.replace(const, spec=spec)


class TestKnownValidation:
    def test_known_overrides_builtin_specs(self, service):
        request = PassesRequest.from_params(
            {**HK, "constellation": "minicat"},
            known=service.constellation_names)
        assert request.constellation == "minicat"

    def test_unknown_name_rejected_with_loaded_list(self, service):
        with pytest.raises(ValueError, match="minicat"):
            PassesRequest.from_params(
                {**HK, "constellation": "argos"},
                known=service.constellation_names)

    def test_default_still_validates_against_specs(self):
        with pytest.raises(ValueError, match="unknown constellation"):
            PassesRequest.from_params({**HK,
                                       "constellation": "minicat"})
