"""ConstellationService tests: validation, payloads, batch grouping."""

from __future__ import annotations

import numpy as np
import pytest

from satiot.serving import (ConstellationService, LinkBudgetRequest,
                            PassesRequest, PresenceRequest)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def service():
    return ConstellationService(coarse_step_s=60.0)


HK = {"lat": 22.3, "lon": 114.2}


class TestRequestValidation:
    def test_defaults(self):
        request = PassesRequest.from_params(dict(HK))
        assert request.horizon_s == 86400.0
        assert request.min_elevation_deg == 10.0
        assert request.constellation == "tianqi"

    def test_missing_location_rejected(self):
        with pytest.raises(ValueError, match="lat"):
            PassesRequest.from_params({"lon": 1.0})

    @pytest.mark.parametrize("overrides", [
        {"lat": 91.0}, {"lon": -999}, {"alt_km": 99},
        {"horizon_s": 0}, {"horizon_s": 1e9},
        {"min_elevation_deg": 95}, {"max_passes": -1},
        {"constellation": "starlink"}, {"lat": "abc"},
    ])
    def test_bad_parameters_rejected(self, overrides):
        params = dict(HK)
        params.update(overrides)
        with pytest.raises(ValueError):
            PassesRequest.from_params(params)

    def test_link_budget_validation(self):
        with pytest.raises(ValueError):
            LinkBudgetRequest.from_params({**HK,
                                           "spreading_factor": 4})
        with pytest.raises(ValueError):
            LinkBudgetRequest.from_params({**HK, "t_offset_s": -1})
        request = LinkBudgetRequest.from_params(
            {**HK, "raining": "true", "spreading_factor": 12})
        assert request.raining is True
        assert request.spreading_factor == 12

    def test_string_params_coerced(self):
        request = PresenceRequest.from_params(
            {"lat": "22.3", "lon": "114.2", "horizon_s": "3600"})
        assert request.horizon_s == 3600.0

    def test_cache_key_quantizes_location(self):
        a = PassesRequest.from_params({"lat": 22.3001, "lon": 114.2004})
        b = PassesRequest.from_params({"lat": 22.3049, "lon": 114.1951})
        assert a.cache_key(decimals=2) == b.cache_key(decimals=2)
        assert a.cache_key(decimals=4) != b.cache_key(decimals=4)


class TestPasses:
    def test_payload_shape_and_ordering(self, service):
        request = PassesRequest.from_params(
            {**HK, "horizon_s": 6 * 3600.0})
        [payload] = service.passes_batch([request])
        assert payload["constellation"] == "Tianqi"
        assert payload["count"] == len(payload["passes"])
        rises = [p["rise_s"] for p in payload["passes"]]
        assert rises == sorted(rises)
        if payload["passes"]:
            assert payload["next_pass"] == payload["passes"][0]
            first = payload["passes"][0]
            assert first["set_s"] > first["rise_s"]
            assert first["max_elevation_deg"] >= 10.0 - 0.5

    def test_max_passes_truncates(self, service):
        request = PassesRequest.from_params(
            {**HK, "horizon_s": 86400.0, "max_passes": 2})
        [payload] = service.passes_batch([request])
        assert payload["count"] <= 2

    def test_batch_identical_to_serial(self, service):
        """The grouped multi-observer path returns exactly what each
        request would get on its own — the serving bit-identity check."""
        params = [{**HK}, {"lat": -33.9, "lon": 151.2},
                  {"lat": 51.5, "lon": -0.1}]
        requests = [PassesRequest.from_params(
            {**p, "horizon_s": 6 * 3600.0}) for p in params]
        batched = service.passes_batch(requests)
        for request, together in zip(requests, batched):
            [alone] = service.passes_batch([request])
            assert alone == together

    def test_mixed_groups_keep_request_order(self, service):
        requests = [
            PassesRequest.from_params({**HK, "horizon_s": 3600.0}),
            PassesRequest.from_params(
                {"lat": -33.9, "lon": 151.2, "horizon_s": 7200.0}),
            PassesRequest.from_params(
                {"lat": 51.5, "lon": -0.1, "horizon_s": 3600.0}),
        ]
        results = service.passes_batch(requests)
        assert [r["horizon_s"] for r in results] == \
            [3600.0, 7200.0, 3600.0]
        assert [r["site"]["latitude_deg"] for r in results] == \
            [22.3, -33.9, 51.5]


class TestPresence:
    def test_statistics_are_consistent(self, service):
        request = PresenceRequest.from_params(
            {**HK, "horizon_s": 12 * 3600.0, "min_elevation_deg": 10})
        [payload] = service.presence_batch([request])
        assert 0.0 <= payload["coverage_fraction"] <= 1.0
        assert payload["covered_s"] == pytest.approx(
            payload["coverage_fraction"] * payload["horizon_s"],
            rel=1e-4)
        assert payload["windows"] <= payload["raw_passes"]
        if payload["windows"]:
            assert payload["mean_window_s"] > 0
        assert payload["max_gap_s"] <= payload["horizon_s"]

    def test_tighter_mask_reduces_coverage(self, service):
        low = PresenceRequest.from_params(
            {**HK, "horizon_s": 12 * 3600.0, "min_elevation_deg": 5})
        high = PresenceRequest.from_params(
            {**HK, "horizon_s": 12 * 3600.0, "min_elevation_deg": 40})
        [low_p], [high_p] = (service.presence_batch([low]),
                             service.presence_batch([high]))
        assert high_p["coverage_fraction"] <= low_p["coverage_fraction"]


class TestLinkBudget:
    def test_payload_physics(self, service):
        request = LinkBudgetRequest.from_params(
            {**HK, "t_offset_s": 1200.0, "min_elevation_deg": 0.0})
        [payload] = service.link_budget_batch([request])
        assert payload["spreading_factor"] == 10  # tianqi default
        assert payload["sensitivity_dbm"] < -120
        assert payload["airtime_s"] > 0
        assert payload["visible_count"] == len(payload["satellites"])
        for entry in payload["satellites"]:
            assert entry["elevation_deg"] >= 0.0
            assert entry["range_km"] > 400
            assert entry["rssi_dbm"] < -80
            assert entry["link_margin_db"] == pytest.approx(
                entry["rssi_dbm"] - payload["sensitivity_dbm"],
                abs=2e-3)
            assert abs(entry["doppler_hz"]) < 12000
        if payload["satellites"]:
            rssi = [e["rssi_dbm"] for e in payload["satellites"]]
            assert rssi == sorted(rssi, reverse=True)
            assert payload["best"] == payload["satellites"][0]

    def test_rain_reduces_rssi(self, service):
        base = {**HK, "t_offset_s": 1200.0, "min_elevation_deg": 0.0}
        [dry] = service.link_budget_batch(
            [LinkBudgetRequest.from_params(base)])
        [wet] = service.link_budget_batch(
            [LinkBudgetRequest.from_params({**base, "raining": True})])
        assert dry["visible_count"] == wet["visible_count"]
        for d, w in zip(dry["satellites"], wet["satellites"]):
            assert w["rssi_dbm"] == pytest.approx(d["rssi_dbm"] - 3.0,
                                                  abs=1e-6)

    def test_batch_identical_to_serial(self, service):
        requests = [LinkBudgetRequest.from_params(
            {"lat": float(lat), "lon": float(lon),
             "t_offset_s": 600.0, "min_elevation_deg": -5.0})
            for lat, lon in [(22.3, 114.2), (-33.9, 151.2),
                             (51.5, -0.1), (0.0, 0.0)]]
        batched = service.link_budget_batch(requests)
        for request, together in zip(requests, batched):
            [alone] = service.link_budget_batch([request])
            assert alone == together

    def test_unknown_constellation_is_service_error(self, service):
        with pytest.raises(ValueError):
            service.constellation("starlink")

    def test_empty_sky_at_high_mask(self, service):
        request = LinkBudgetRequest.from_params(
            {**HK, "t_offset_s": 0.0, "min_elevation_deg": 89.0})
        [payload] = service.link_budget_batch([request])
        assert payload["visible_count"] == 0
        assert payload["best"] is None


def test_numpy_scalars_not_leaked(service):
    """Payloads must be plain-JSON serializable (no numpy types)."""
    import json
    request = PassesRequest.from_params({**HK, "horizon_s": 3600.0})
    [payload] = service.passes_batch([request])
    json.dumps(payload)  # raises TypeError on numpy leakage
    lb = LinkBudgetRequest.from_params({**HK, "t_offset_s": 900.0})
    [lb_payload] = service.link_budget_batch([lb])
    json.dumps(lb_payload)
    assert isinstance(lb_payload["visible_count"], int)
    assert not isinstance(np.float64(1.0), type(None))  # sanity
