"""Tests for multi-site contact-statistics aggregation."""

import pytest

from satiot.core.contacts import ContactWindowStats, aggregate_stats


def make_stats(span=86400.0, theo_daily=10.0, eff_daily=2.0,
               durations=(600.0,), eff_durations=(100.0,),
               intervals=(1000.0,), eff_intervals=(4000.0,)):
    return ContactWindowStats(
        span_s=span,
        theoretical_durations_s=list(durations),
        effective_durations_s=list(eff_durations),
        theoretical_intervals_s=list(intervals),
        effective_intervals_s=list(eff_intervals),
        theoretical_daily_hours=theo_daily,
        effective_daily_hours=eff_daily)


class TestAggregateStats:
    def test_daily_hours_averaged_not_summed(self):
        combined = aggregate_stats([
            make_stats(theo_daily=10.0, eff_daily=2.0),
            make_stats(theo_daily=20.0, eff_daily=4.0),
        ])
        assert combined.theoretical_daily_hours == pytest.approx(15.0)
        assert combined.effective_daily_hours == pytest.approx(3.0)

    def test_durations_pooled(self):
        combined = aggregate_stats([
            make_stats(durations=(600.0, 700.0)),
            make_stats(durations=(500.0,)),
        ])
        assert sorted(combined.theoretical_durations_s) \
            == [500.0, 600.0, 700.0]

    def test_intervals_pooled(self):
        combined = aggregate_stats([
            make_stats(eff_intervals=(4000.0,)),
            make_stats(eff_intervals=(8000.0, 2000.0)),
        ])
        assert len(combined.effective_intervals_s) == 3

    def test_single_site_identity(self):
        single = make_stats()
        combined = aggregate_stats([single])
        assert combined.theoretical_daily_hours \
            == single.theoretical_daily_hours
        assert combined.theoretical_durations_s \
            == single.theoretical_durations_s

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_stats([])

    def test_mismatched_spans_rejected(self):
        with pytest.raises(ValueError, match="different spans"):
            aggregate_stats([make_stats(span=86400.0),
                             make_stats(span=43200.0)])

    def test_derived_metrics_still_work(self):
        combined = aggregate_stats([make_stats(), make_stats()])
        assert 0.0 < combined.duration_shrinkage < 1.0
        assert combined.interval_inflation > 1.0
