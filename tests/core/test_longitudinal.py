"""Tests for the longitudinal (multi-week) campaign sampler."""

import pytest

from satiot.core.longitudinal import LongitudinalCampaign


@pytest.fixture(scope="module")
def longitudinal():
    campaign = LongitudinalCampaign(weeks=3, site="HK",
                                    sample_days=0.5, period_days=7.0,
                                    seed=9,
                                    constellations=("tianqi",))
    return campaign.run()


class TestLongitudinalCampaign:
    def test_validation(self):
        with pytest.raises(ValueError):
            LongitudinalCampaign(weeks=0)
        with pytest.raises(ValueError):
            LongitudinalCampaign(sample_days=2.0, period_days=1.0)

    def test_one_sample_per_week(self, longitudinal):
        assert len(longitudinal.samples) == 3
        assert [s.week for s in longitudinal.samples] == [0, 1, 2]
        offsets = [s.start_day_offset for s in longitudinal.samples]
        assert offsets == [0.0, 7.0, 14.0]

    def test_every_week_collects_traces(self, longitudinal):
        for traces in longitudinal.traces_per_week():
            assert traces > 0

    def test_shrinkage_stable_across_weeks(self, longitudinal):
        # The headline finding holds week over week (paper: consistent
        # over seven months); weekly estimates stay within a band.
        series = longitudinal.shrinkage_series("tianqi")
        assert all(0.6 < s < 1.0 for s in series)
        assert longitudinal.shrinkage_stability("tianqi") < 0.25

    def test_weeks_differ_in_geometry(self, longitudinal):
        # Different epochs and seeds: the samples are not clones.
        traces = longitudinal.traces_per_week()
        assert len(set(traces)) > 1


class TestStartOffsetPlumbing:
    def test_offset_shifts_epoch(self):
        from satiot.core.campaign import (PassiveCampaign,
                                          PassiveCampaignConfig)
        base = PassiveCampaign(PassiveCampaignConfig(
            sites=("HK",), constellations=("fossa",), days=0.25,
            seed=1)).run()
        shifted = PassiveCampaign(PassiveCampaignConfig(
            sites=("HK",), constellations=("fossa",), days=0.25,
            seed=1, start_day_offset=10.0)).run()
        assert shifted.epoch - base.epoch == pytest.approx(10 * 86400.0)
        # Geometry differs: window sets are not identical.
        base_rises = sorted(p.scheduled.window.rise_s
                            for p in base.site_results["HK"].receptions)
        shifted_rises = sorted(
            p.scheduled.window.rise_s
            for p in shifted.site_results["HK"].receptions)
        assert base_rises != shifted_rises
