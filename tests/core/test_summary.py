"""Tests for the one-call reproduction report."""

import pytest

from satiot.core.summary import ReportScale, full_report


class TestReportScale:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReportScale(passive_days=0.0)
        with pytest.raises(ValueError):
            ReportScale(active_days=-1.0)


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return full_report(ReportScale(passive_days=0.5,
                                       active_days=1.0, seed=7))

    def test_contains_all_sections(self, report):
        assert "Network availability" in report
        assert "Tianqi agriculture deployment" in report
        assert "Energy (paper Fig. 6)" in report
        assert "Costs (paper Table 2)" in report

    def test_mentions_all_constellations(self, report):
        for name in ("Tianqi", "FOSSA", "PICO", "CSTP"):
            assert name in report

    def test_paper_anchors_present(self, report):
        assert "85.7-92.2" in report
        assert "643.6x" in report
        assert "14.9x" in report

    def test_renders_values_not_placeholders(self, report):
        # Every key: value line carries a number or a slash triple.
        for line in report.splitlines():
            if " : " in line:
                value = line.split(" : ", 1)[1].strip()
                assert value and value != "nan", line
