"""Tests for constellation capacity estimation."""

import pytest

from satiot.core.capacity import estimate_regional_capacity
from satiot.phy.lora import LoRaModulation


class TestEstimateRegionalCapacity:
    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_regional_capacity(-1.0)
        with pytest.raises(ValueError):
            estimate_regional_capacity(3600.0, aloha_efficiency=0.0)
        with pytest.raises(ValueError):
            estimate_regional_capacity(3600.0, guard_factor=0.5)
        with pytest.raises(ValueError):
            estimate_regional_capacity(3600.0,
                                       packets_per_device_day=0.0)

    def test_paper_scale_tianqi(self):
        # Tianqi's measured ~1.8 h/day effective contact at SF10/20 B
        # under ALOHA supports only a few hundred paper-profile sensors
        # per region — quantifying the paper's capacity concern.
        estimate = estimate_regional_capacity(1.8 * 3600.0)
        assert 1000.0 < estimate.packets_per_day < 10_000.0
        assert 20.0 < estimate.supported_devices < 200.0

    def test_more_contact_more_capacity(self):
        small = estimate_regional_capacity(1800.0)
        large = estimate_regional_capacity(7200.0)
        assert large.packets_per_day == pytest.approx(
            4 * small.packets_per_day)

    def test_coordinated_mac_multiplier(self):
        aloha = estimate_regional_capacity(3600.0,
                                           aloha_efficiency=0.18)
        slotted = estimate_regional_capacity(3600.0,
                                             aloha_efficiency=0.9)
        assert slotted.packets_per_day \
            == pytest.approx(5 * aloha.packets_per_day)

    def test_bigger_payload_less_capacity(self):
        small = estimate_regional_capacity(3600.0, payload_bytes=10)
        large = estimate_regional_capacity(3600.0, payload_bytes=120)
        assert large.packets_per_day < small.packets_per_day

    def test_faster_sf_more_capacity(self):
        sf10 = estimate_regional_capacity(
            3600.0, modulation=LoRaModulation(spreading_factor=10))
        sf7 = estimate_regional_capacity(
            3600.0, modulation=LoRaModulation(
                spreading_factor=7, low_data_rate_optimize=False))
        assert sf7.packets_per_day > 3 * sf10.packets_per_day

    def test_utilisation(self):
        estimate = estimate_regional_capacity(1.8 * 3600.0)
        half = estimate.utilisation(
            int(estimate.supported_devices // 2), 48.0)
        assert 0.4 < half < 0.6
