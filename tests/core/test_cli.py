"""Tests for the command-line interface."""

import pytest

from satiot.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_constellation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tle", "starlink"])


class TestTleCommand:
    def test_prints_element_sets(self, capsys):
        assert main(["tle", "fossa"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln]
        assert len(lines) == 9  # 3 satellites x 3 lines
        assert lines[1].startswith("1 ")
        assert lines[2].startswith("2 ")


class TestPassesCommand:
    def test_site_lookup(self, capsys):
        assert main(["passes", "fossa", "--site", "HK",
                     "--days", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "FOSSA passes" in out
        assert "passes" in out.splitlines()[-1]

    def test_lat_lon(self, capsys):
        assert main(["passes", "fossa", "--lat", "0.0", "--lon", "0.0",
                     "--days", "0.25"]) == 0

    def test_missing_location(self):
        with pytest.raises(SystemExit):
            main(["passes", "fossa", "--days", "0.5"])


class TestPresenceCommand:
    def test_table_printed(self, capsys):
        assert main(["presence", "--site", "HK", "--days", "0.5"]) == 0
        out = capsys.readouterr().out
        for name in ("Tianqi", "FOSSA", "PICO", "CSTP"):
            assert name in out


class TestPassiveCommand:
    def test_runs_and_writes_csv(self, capsys, tmp_path):
        out_file = tmp_path / "traces.csv"
        assert main(["passive", "--sites", "HK", "--days", "0.25",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "collected" in out
        assert out_file.exists()


class TestCoverageCommand:
    def test_fossa_coverage(self, capsys):
        assert main(["coverage", "fossa", "--hours", "3",
                     "--grid", "20", "--step", "240"]) == 0
        out = capsys.readouterr().out
        assert "covered fraction" in out


class TestActiveCommand:
    def test_runs_and_reports(self, capsys):
        assert main(["active", "--days", "0.5", "--retx", "2"]) == 0
        out = capsys.readouterr().out
        assert "satellite reliability" in out
        assert "latency ratio" in out


class TestValidateCommand:
    def test_all_checks_pass(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "4/4 checks passed" in out


class TestCoverageMap:
    def test_ascii_map_printed(self, capsys):
        assert main(["coverage", "fossa", "--hours", "2",
                     "--grid", "30", "--step", "300", "--map"]) == 0
        out = capsys.readouterr().out
        # Map rows follow the summary: 6 rows for a 30-degree grid.
        lines = out.splitlines()
        map_rows = [ln for ln in lines if ln and set(ln) <= set(" .:-=+*#%@")]
        assert len(map_rows) >= 6
