"""Tests for the plottable figure-series builders."""

import numpy as np
import pytest

from satiot.core.figures import (FigureSeries, fig3a_presence_bars,
                                 fig3b_rssi_cdfs,
                                 fig3c_rssi_vs_distance_curve,
                                 fig4a_duration_cdfs, fig4b_interval_cdfs,
                                 fig5b_retransmission_cdf,
                                 fig5c_latency_cdfs, fig8_distance_cdfs,
                                 fig9_window_histogram)


def assert_valid_cdf(x, p):
    assert np.all(np.diff(x) >= 0)
    assert np.all(np.diff(p) > 0)
    assert p[-1] == pytest.approx(1.0)


class TestFigureSeries:
    def test_shape_mismatch_rejected(self):
        fig = FigureSeries("x", "a", "b")
        with pytest.raises(ValueError):
            fig.add("s", np.zeros(3), np.zeros(4))

    def test_names(self):
        fig = FigureSeries("x", "a", "b")
        fig.add("s", np.zeros(3), np.zeros(3))
        assert fig.names() == ["s"]


class TestPassiveFigures:
    def test_fig3a(self, passive_result_small):
        fig = fig3a_presence_bars(passive_result_small)
        assert len(fig.series) == 4
        for x, hours in fig.series.values():
            assert np.all(hours >= 0.0) and np.all(hours <= 24.0)

    def test_fig3b(self, passive_result_small):
        fig = fig3b_rssi_cdfs(passive_result_small)
        assert "Tianqi" in fig.series
        for x, p in fig.series.values():
            assert_valid_cdf(x, p)
            assert x.max() < -90.0  # weak-signal regime

    def test_fig3c(self, passive_result_small):
        fig = fig3c_rssi_vs_distance_curve(passive_result_small)
        x, medians = fig.series["Tianqi"]
        assert len(x) >= 3
        assert medians[0] > medians[-1]  # decline with distance

    def test_fig4a(self, passive_result_small):
        fig = fig4a_duration_cdfs(passive_result_small)
        assert "Tianqi theoretical" in fig.series
        assert "Tianqi effective" in fig.series
        theo_x, _ = fig.series["Tianqi theoretical"]
        eff_x, _ = fig.series["Tianqi effective"]
        # Effective durations stochastically dominate downward.
        assert np.median(eff_x) < np.median(theo_x)

    def test_fig4b(self, passive_result_small):
        fig = fig4b_interval_cdfs(passive_result_small)
        theo_x, _ = fig.series["Tianqi theoretical"]
        eff_x, _ = fig.series["Tianqi effective"]
        assert np.mean(eff_x) > np.mean(theo_x)

    def test_fig8(self, passive_result_small):
        fig = fig8_distance_cdfs(passive_result_small)
        for x, p in fig.series.values():
            assert_valid_cdf(x, p)
            assert x.min() > 400.0

    def test_fig9(self, passive_result_small):
        fig = fig9_window_histogram(passive_result_small)
        centers, fractions = fig.series["all constellations"]
        assert fractions.sum() == pytest.approx(1.0)
        # Middle bins dominate the edges (paper Appendix C).
        assert fractions[4] + fractions[5] > fractions[0] + fractions[-1]


class TestActiveFigures:
    def test_fig5b(self, active_result_small):
        fig = fig5b_retransmission_cdf(
            active_result_small.all_satellite_records())
        x, p = fig.series["Tianqi"]
        assert_valid_cdf(x, p)
        assert x.min() >= 0

    def test_fig5c(self, active_result_small):
        fig = fig5c_latency_cdfs(
            active_result_small.all_satellite_records(),
            active_result_small.all_terrestrial_records())
        sat_x, _ = fig.series["satellite"]
        terr_x, _ = fig.series["terrestrial"]
        assert np.median(sat_x) > 50 * np.median(terr_x)
