"""Tests for the passive campaign orchestration."""

import pytest

from satiot.core.campaign import PassiveCampaignConfig


class TestConfigValidation:
    def test_unknown_site(self):
        with pytest.raises(ValueError, match="unknown sites"):
            PassiveCampaignConfig(sites=("ATLANTIS",))

    def test_nonpositive_days(self):
        with pytest.raises(ValueError):
            PassiveCampaignConfig(days=0.0)

    def test_duration(self):
        assert PassiveCampaignConfig(days=2.0).duration_s == 172800.0


class TestCampaignResult:
    def test_station_count_matches_site(self, passive_result_small):
        site_result = passive_result_small.site_results["HK"]
        assert len(site_result.stations) == 6  # paper Table 1: HK has 6

    def test_all_constellations_observed(self, passive_result_small):
        constellations = {
            r.scheduled.satellite.constellation_name
            for r in passive_result_small.site_results["HK"].receptions}
        assert constellations == {"Tianqi", "FOSSA", "PICO", "CSTP"}

    def test_dataset_collects_all_traces(self, passive_result_small):
        per_site = sum(sr.trace_count for sr
                       in passive_result_small.site_results.values())
        assert passive_result_small.total_traces == per_site
        assert passive_result_small.total_traces > 100

    def test_trace_sites_consistent(self, passive_result_small):
        assert passive_result_small.dataset.sites() == ["HK"]

    def test_pass_ids_unique(self, passive_result_small):
        ids = [r.pass_id for sr
               in passive_result_small.site_results.values()
               for r in sr.receptions]
        assert len(ids) == len(set(ids))

    def test_pass_ids_are_shard_invariant_format(self,
                                                 passive_result_small):
        """Ids are "{site}-{norad}-{k}" with a per-satellite counter."""
        for code, sr in passive_result_small.site_results.items():
            per_sat = {}
            for r in sr.receptions:
                norad = r.scheduled.satellite.norad_id
                k = per_sat.get(norad, 0)
                per_sat[norad] = k + 1
                assert r.pass_id == f"{code}-{norad}-{k}"
                for t in r.traces:
                    assert t.pass_id == r.pass_id

    def test_receptions_filter(self, passive_result_small):
        tianqi = passive_result_small.receptions("HK", "tianqi")
        assert all(r.scheduled.satellite.constellation_name == "Tianqi"
                   for r in tianqi)
        assert len(tianqi) > 0

    def test_weather_process_spans_campaign(self, passive_result_small):
        weather = passive_result_small.site_results["HK"].weather
        assert weather.duration_s \
            == passive_result_small.config.duration_s

    def test_deterministic_rerun(self):
        from satiot.core.campaign import PassiveCampaign
        config = PassiveCampaignConfig(sites=("HK",),
                                       constellations=("fossa",),
                                       days=0.5, seed=3)
        a = PassiveCampaign(config).run()
        b = PassiveCampaign(config).run()
        assert a.total_traces == b.total_traces
        if a.total_traces:
            assert a.dataset[0] == b.dataset[0]

    def test_empty_constellation_selection(self):
        with pytest.raises(ValueError):
            PassiveCampaignConfig(sites=("HK",),
                                  constellations=("nope",))


class TestShardInvariance:
    """Running a subset of sites must reproduce the shared sites
    exactly — ids, RNG draws and all (the runtime determinism
    contract's prerequisite)."""

    def test_site_subset_yields_identical_traces(self):
        from satiot.core.campaign import PassiveCampaign
        full_cfg = PassiveCampaignConfig(
            sites=("HK", "SYD"), constellations=("tianqi",),
            days=0.5, seed=9)
        sub_cfg = PassiveCampaignConfig(
            sites=("SYD",), constellations=("tianqi",),
            days=0.5, seed=9)
        full = PassiveCampaign(full_cfg, workers=1).run()
        sub = PassiveCampaign(sub_cfg, workers=1).run()

        full_syd = [t for t in full.dataset if t.site == "SYD"]
        assert full_syd == list(sub.dataset)
        assert len(full_syd) > 0

        ids_full = [r.pass_id
                    for r in full.site_results["SYD"].receptions]
        ids_sub = [r.pass_id
                   for r in sub.site_results["SYD"].receptions]
        assert ids_full == ids_sub

    def test_site_order_does_not_matter(self):
        from satiot.core.campaign import PassiveCampaign
        a = PassiveCampaign(PassiveCampaignConfig(
            sites=("HK", "SYD"), constellations=("fossa",),
            days=0.5, seed=9), workers=1).run()
        b = PassiveCampaign(PassiveCampaignConfig(
            sites=("SYD", "HK"), constellations=("fossa",),
            days=0.5, seed=9), workers=1).run()
        for code in ("HK", "SYD"):
            assert [t for t in a.dataset if t.site == code] \
                == [t for t in b.dataset if t.site == code]
