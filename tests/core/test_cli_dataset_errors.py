"""Dataset CLI error paths: exit code 2 + clear message, no traceback."""

from __future__ import annotations

import json

import pytest

from satiot.cli import main


class TestDatasetInfoErrors:
    def test_missing_archive_exits_2(self, tmp_path, capsys):
        target = tmp_path / "does-not-exist"
        assert main(["dataset", "info", str(target)]) == 2
        err = capsys.readouterr().err
        assert "error: cannot read dataset archive" in err
        assert str(target) in err

    def test_corrupt_manifest_exits_2(self, tmp_path, capsys):
        (tmp_path / "manifest.json").write_text("{not json!")
        assert main(["dataset", "info", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error: cannot read dataset archive" in err

    def test_malformed_manifest_fields_exit_2(self, tmp_path, capsys):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"unexpected_key": 1}))
        assert main(["dataset", "info", str(tmp_path)]) == 2
        assert "error: cannot read" in capsys.readouterr().err

    def test_manifest_pointing_at_missing_traces_exits_2(
            self, tmp_path, capsys):
        (tmp_path / "manifest.json").write_text(json.dumps({
            "name": "x", "seed": 1, "days": 1.0,
            "trace_format": "csv", "total_traces": 3,
            "sites": {"HK": 3}}))
        assert main(["dataset", "info", str(tmp_path)]) == 2
        assert "error: cannot read" in capsys.readouterr().err


class TestDatasetExportErrors:
    def test_unwritable_root_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        assert main(["dataset", "export", str(blocker),
                     "--sites", "HK", "--days", "0.05"]) == 2
        err = capsys.readouterr().err
        assert "error: cannot write dataset archive" in err
        assert str(blocker) in err

    def test_export_then_info_roundtrip_still_works(self, tmp_path,
                                                    capsys):
        """The error wrapping must not break the happy path."""
        root = tmp_path / "archive"
        assert main(["dataset", "export", str(root), "--sites", "HK",
                     "--days", "0.05"]) == 0
        capsys.readouterr()
        assert main(["dataset", "info", str(root)]) == 0
        out = capsys.readouterr().out
        assert "Dataset archive" in out


def _spill_archive(root):
    """A tiny sharded satiot-traces-v2 archive."""
    from satiot.streams.spill import ShardSpillWriter
    from tests.streams.conftest import make_block
    writer = ShardSpillWriter(root, rows_per_shard=20, fingerprint="cli")
    writer.write(make_block(50, seed=30))
    writer.finalize(meta={"engine": "test"})


class TestStreamArchiveInfo:
    def test_info_is_manifest_only(self, tmp_path, capsys):
        _spill_archive(tmp_path)
        # O(1) contract: info must not read the (corrupted) shards.
        for shard in (tmp_path / "shards").glob("shard-*.npz"):
            shard.write_bytes(b"garbage")
        assert main(["dataset", "info", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Dataset archive" in out
        assert "satiot-traces-v2" in out
        assert "shard-000000.npz" in out

    def test_verify_passes_on_intact_archive(self, tmp_path, capsys):
        _spill_archive(tmp_path)
        assert main(["dataset", "info", str(tmp_path),
                     "--verify"]) == 0
        assert "checksums OK" in capsys.readouterr().out

    def test_truncated_shard_exits_2_naming_file(self, tmp_path,
                                                 capsys):
        _spill_archive(tmp_path)
        shard = sorted((tmp_path / "shards").glob("shard-*.npz"))[1]
        shard.write_bytes(shard.read_bytes()[:80])
        assert main(["dataset", "info", str(tmp_path),
                     "--verify"]) == 2
        err = capsys.readouterr().err
        assert "error: cannot read dataset archive" in err
        assert shard.name in err
        assert "Traceback" not in err

    def test_corrupt_stream_manifest_exits_2(self, tmp_path, capsys):
        _spill_archive(tmp_path)
        manifest = tmp_path / "manifest.json"
        manifest.write_text(json.dumps(
            {"format": "satiot-traces-v2"}))  # required keys missing
        assert main(["dataset", "info", str(tmp_path)]) == 2
        assert "error: cannot read" in capsys.readouterr().err


class TestSinetInfoIsManifestOnly:
    def test_info_never_parses_trace_files(self, tmp_path, capsys):
        assert main(["dataset", "export", str(tmp_path), "--sites",
                     "HK", "--days", "0.05"]) == 0
        capsys.readouterr()
        # Corrupt the rows; a manifest-plus-stat read must not notice.
        (tmp_path / "HK" / "traces.csv").write_text("not,a,trace\n")
        assert main(["dataset", "info", str(tmp_path)]) == 0
        assert "Dataset archive" in capsys.readouterr().out

    def test_verify_catches_row_count_mismatch(self, tmp_path, capsys):
        assert main(["dataset", "export", str(tmp_path), "--sites",
                     "HK", "--days", "0.05"]) == 0
        capsys.readouterr()
        csv_path = tmp_path / "HK" / "traces.csv"
        lines = csv_path.read_text().splitlines()
        csv_path.write_text("\n".join(lines[:-1]) + "\n")
        assert main(["dataset", "info", str(tmp_path),
                     "--verify"]) == 2
        assert "manifest says" in capsys.readouterr().err


@pytest.mark.parametrize("argv", [
    ["dataset", "info", "/nonexistent/archive"],
])
def test_no_traceback_on_stderr(argv, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "Traceback" not in err
