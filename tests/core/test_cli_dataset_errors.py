"""Dataset CLI error paths: exit code 2 + clear message, no traceback."""

from __future__ import annotations

import json

import pytest

from satiot.cli import main


class TestDatasetInfoErrors:
    def test_missing_archive_exits_2(self, tmp_path, capsys):
        target = tmp_path / "does-not-exist"
        assert main(["dataset", "info", str(target)]) == 2
        err = capsys.readouterr().err
        assert "error: cannot read dataset archive" in err
        assert str(target) in err

    def test_corrupt_manifest_exits_2(self, tmp_path, capsys):
        (tmp_path / "manifest.json").write_text("{not json!")
        assert main(["dataset", "info", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "error: cannot read dataset archive" in err

    def test_malformed_manifest_fields_exit_2(self, tmp_path, capsys):
        (tmp_path / "manifest.json").write_text(
            json.dumps({"unexpected_key": 1}))
        assert main(["dataset", "info", str(tmp_path)]) == 2
        assert "error: cannot read" in capsys.readouterr().err

    def test_manifest_pointing_at_missing_traces_exits_2(
            self, tmp_path, capsys):
        (tmp_path / "manifest.json").write_text(json.dumps({
            "name": "x", "seed": 1, "days": 1.0,
            "trace_format": "csv", "total_traces": 3,
            "sites": {"HK": 3}}))
        assert main(["dataset", "info", str(tmp_path)]) == 2
        assert "error: cannot read" in capsys.readouterr().err


class TestDatasetExportErrors:
    def test_unwritable_root_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        assert main(["dataset", "export", str(blocker),
                     "--sites", "HK", "--days", "0.05"]) == 2
        err = capsys.readouterr().err
        assert "error: cannot write dataset archive" in err
        assert str(blocker) in err

    def test_export_then_info_roundtrip_still_works(self, tmp_path,
                                                    capsys):
        """The error wrapping must not break the happy path."""
        root = tmp_path / "archive"
        assert main(["dataset", "export", str(root), "--sites", "HK",
                     "--days", "0.05"]) == 0
        capsys.readouterr()
        assert main(["dataset", "info", str(root)]) == 0
        out = capsys.readouterr().out
        assert "Dataset archive" in out


@pytest.mark.parametrize("argv", [
    ["dataset", "info", "/nonexistent/archive"],
])
def test_no_traceback_on_stderr(argv, capsys):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert "Traceback" not in err
