"""Tests for the statistics toolkit."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.core.stats import (bootstrap_mean_ci, empirical_cdf,
                               interval_gaps, merge_intervals, summarize,
                               total_length)

interval_strategy = st.lists(
    st.tuples(st.floats(0.0, 1000.0), st.floats(0.0, 500.0)).map(
        lambda p: (p[0], p[0] + p[1])),
    max_size=30)


class TestMergeIntervals:
    def test_overlapping_merge(self):
        assert merge_intervals([(0, 10), (5, 15)]) == [(0, 15)]

    def test_touching_merge(self):
        assert merge_intervals([(0, 10), (10, 20)]) == [(0, 20)]

    def test_disjoint_preserved(self):
        assert merge_intervals([(0, 1), (5, 6)]) == [(0, 1), (5, 6)]

    def test_unsorted_input(self):
        assert merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            merge_intervals([(5, 1)])

    @given(interval_strategy)
    @settings(max_examples=200)
    def test_properties(self, intervals):
        merged = merge_intervals(intervals)
        # Output is sorted and strictly disjoint.
        for a, b in zip(merged, merged[1:]):
            assert a[1] < b[0]
        # Total length never exceeds the sum of the inputs and never
        # shrinks below the longest single input.
        if intervals:
            assert total_length(merged) \
                <= sum(e - s for s, e in intervals) + 1e-9
            assert total_length(merged) \
                >= max(e - s for s, e in intervals) - 1e-9
        # Every input point stays covered.
        for s, e in intervals:
            assert any(ms <= s and e <= me for ms, me in merged)


class TestIntervalGaps:
    def test_interior_gaps(self):
        merged = [(10.0, 20.0), (30.0, 40.0), (70.0, 80.0)]
        assert interval_gaps(merged, 0.0, 100.0) == [10.0, 30.0]

    def test_edges_included(self):
        merged = [(10.0, 20.0)]
        gaps = interval_gaps(merged, 0.0, 100.0, include_edges=True)
        assert gaps == [10.0, 80.0]

    def test_empty_intervals(self):
        assert interval_gaps([], 0.0, 100.0) == []
        assert interval_gaps([], 0.0, 100.0, include_edges=True) == [100.0]

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            interval_gaps([], 10.0, 0.0)

    @given(interval_strategy)
    @settings(max_examples=100)
    def test_gaps_plus_intervals_cover_span(self, intervals):
        merged = merge_intervals(intervals)
        span = 2000.0
        merged = [(s, min(e, span)) for s, e in merged if s < span]
        gaps = interval_gaps(merged, 0.0, span, include_edges=True)
        assert sum(gaps) + total_length(merged) \
            == pytest.approx(span, abs=1e-6)


class TestEmpiricalCdf:
    def test_basic(self):
        x, p = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(p, [1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, p = empirical_cdf([])
        assert len(x) == 0 and len(p) == 0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_properties(self, values):
        x, p = empirical_cdf(values)
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(p) > 0)
        assert p[-1] == pytest.approx(1.0)


class TestSummarize:
    def test_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.count == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0

    def test_empty_is_nan(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)


class TestBootstrap:
    def test_interval_contains_mean(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10.0, 2.0, size=200)
        lo, hi = bootstrap_mean_ci(sample, seed=1)
        assert lo < 10.0 < hi
        assert hi - lo < 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)
