"""Tests for the availability analysis (paper Figure 3)."""

import math

import pytest

from satiot.constellations.catalog import build_constellation
from satiot.core.availability import (daily_presence_hours, rssi_stats,
                                      rssi_vs_distance)
from satiot.core.sites import SITES


class TestDailyPresence:
    @pytest.fixture(scope="class")
    def tianqi(self):
        return build_constellation("tianqi")

    def test_tianqi_paper_band(self, tianqi):
        # Paper Fig. 3a: Tianqi with 22 satellites is present
        # 13.4-19.1 hours per day.
        epoch = tianqi.satellites[0].tle.epoch
        hours = daily_presence_hours(tianqi, SITES["HK"].location, epoch)
        assert 13.0 < hours < 21.0

    def test_fossa_paper_band(self):
        # Paper Fig. 3a: FOSSA's three satellites give 1.1-3.0 h/day.
        fossa = build_constellation("fossa")
        epoch = fossa.satellites[0].tle.epoch
        hours = daily_presence_hours(fossa, SITES["HK"].location, epoch)
        assert 0.8 < hours < 3.5

    def test_larger_constellation_longer_presence(self, tianqi):
        pico = build_constellation("pico")
        epoch = tianqi.satellites[0].tle.epoch
        hk = SITES["HK"].location
        assert daily_presence_hours(tianqi, hk, epoch) \
            > daily_presence_hours(pico, hk, epoch)

    def test_bounded_by_24h(self, tianqi):
        epoch = tianqi.satellites[0].tle.epoch
        hours = daily_presence_hours(tianqi, SITES["SYD"].location, epoch)
        assert 0.0 <= hours <= 24.0

    def test_invalid_days(self, tianqi):
        epoch = tianqi.satellites[0].tle.epoch
        with pytest.raises(ValueError):
            daily_presence_hours(tianqi, SITES["HK"].location, epoch,
                                 days=0.0)


class TestRssiStats:
    def test_stats_on_fixture(self, passive_result_small):
        receptions = passive_result_small.receptions("HK", "tianqi")
        stats = rssi_stats(receptions)
        assert stats.count > 0
        assert stats.p10_dbm < stats.median_dbm < stats.p90_dbm
        # Weak-signal regime (paper Fig. 3b).
        assert -145.0 < stats.median_dbm < -105.0

    def test_empty(self):
        stats = rssi_stats([])
        assert stats.count == 0
        assert math.isnan(stats.mean_dbm)


class TestRssiVsDistance:
    def test_monotonic_decline(self, passive_result_small):
        receptions = passive_result_small.receptions("HK", "tianqi")
        bins = rssi_vs_distance(receptions,
                                [500, 1000, 1500, 2000, 3000, 4000])
        assert len(bins) >= 3
        # Paper Fig. 3c: signal strength falls with distance.  Compare
        # first and last populated bins.
        assert bins[0][1] > bins[-1][1]

    def test_counts_sum_to_traces(self, passive_result_small):
        receptions = passive_result_small.receptions("HK", "tianqi")
        bins = rssi_vs_distance(receptions, [0, 10000])
        total = sum(len(r.traces) for r in receptions)
        assert bins[0][2] == total

    def test_invalid_bins(self, passive_result_small):
        receptions = passive_result_small.receptions("HK", "tianqi")
        with pytest.raises(ValueError):
            rssi_vs_distance(receptions, [1000])
        with pytest.raises(ValueError):
            rssi_vs_distance(receptions, [1000, 500])
