"""Tests for contact-window analysis on a small campaign fixture."""

import numpy as np
import pytest

from satiot.core.contacts import (analyze_contacts, mid_window_fraction,
                                  reception_rates_by_weather,
                                  trace_distances_km,
                                  window_position_fractions)


@pytest.fixture(scope="module")
def tianqi_receptions(passive_result_small):
    return passive_result_small.receptions("HK", "tianqi")


@pytest.fixture(scope="module")
def stats(passive_result_small, tianqi_receptions):
    return analyze_contacts(tianqi_receptions,
                            passive_result_small.duration_s)


class TestAnalyzeContacts:
    def test_effective_below_theoretical_daily(self, stats):
        assert stats.effective_daily_hours < stats.theoretical_daily_hours

    def test_daily_hours_bounded(self, stats):
        assert 0.0 <= stats.effective_daily_hours <= 24.0
        assert 0.0 < stats.theoretical_daily_hours <= 24.0

    def test_shrinkage_in_unit_interval(self, stats):
        assert 0.0 < stats.duration_shrinkage < 1.0
        assert 0.0 < stats.mean_duration_shrinkage < 1.0

    def test_paper_shape_heavy_shrinkage(self, stats):
        # Paper Sec. 3.1: effective durations shrink by >70 %.
        assert stats.duration_shrinkage > 0.6

    def test_intervals_inflate(self, stats):
        # Paper Fig. 4b: effective intervals are several times longer.
        assert stats.interval_inflation > 1.5

    def test_every_unclipped_window_counted(self, stats,
                                            tianqi_receptions):
        unclipped = [r for r in tianqi_receptions
                     if not (r.scheduled.window.clipped_start
                             or r.scheduled.window.clipped_end)]
        assert len(stats.theoretical_durations_s) == len(unclipped)
        assert len(stats.effective_durations_s) == len(unclipped)

    def test_summaries(self, stats):
        theo = stats.theoretical_summary()
        eff = stats.effective_summary()
        assert theo.mean > eff.mean
        assert theo.count == eff.count


class TestWindowPositions:
    def test_positions_in_unit_interval(self, tianqi_receptions):
        positions = window_position_fractions(tianqi_receptions)
        assert len(positions) > 0
        assert np.all(positions >= 0.0) and np.all(positions <= 1.0)

    def test_mid_window_concentration(self, tianqi_receptions):
        # Paper Appendix C: ~70 % of receptions in the middle 30-70 %.
        fraction = mid_window_fraction(tianqi_receptions)
        assert fraction > 0.5

    def test_empty_gives_nan(self):
        import math
        assert math.isnan(mid_window_fraction([]))


class TestWeatherSplit:
    def test_rates_bounded(self, tianqi_receptions):
        sunny, rainy = reception_rates_by_weather(tianqi_receptions)
        for rate in sunny + rainy:
            assert 0.0 <= rate <= 1.0
        assert len(sunny) + len(rainy) > 0

    def test_high_loss_even_sunny(self, tianqi_receptions):
        # Paper Fig. 3d: >50 % of beacons dropped even on sunny days.
        sunny, _rainy = reception_rates_by_weather(tianqi_receptions)
        assert np.mean(sunny) < 0.5


class TestTraceDistances:
    def test_paper_distance_band(self, tianqi_receptions):
        # Paper Appendix C: Tianqi beacons arrive from 1,100-3,500 km.
        distances = trace_distances_km(tianqi_receptions)
        assert len(distances) > 0
        assert np.percentile(distances, 10) > 500.0
        assert np.percentile(distances, 90) < 3600.0
