"""Tests for end-to-end performance analysis on the active fixture."""

import numpy as np
import pytest

from satiot.core.performance import (compare_systems, per_node_reliability,
                                     reliability_by_concurrency,
                                     retransmission_histogram)


@pytest.fixture(scope="module")
def comparison(active_result_small):
    return compare_systems(active_result_small.all_satellite_records(),
                           active_result_small.all_terrestrial_records())


class TestCompareSystems:
    def test_terrestrial_near_perfect(self, comparison):
        assert comparison.terrestrial_reliability > 0.99

    def test_satellite_reliability_high_but_lower(self, comparison):
        # Paper Fig. 5a: >90 % but below terrestrial.
        assert 0.7 < comparison.satellite_reliability \
            <= comparison.terrestrial_reliability

    def test_latency_orders_of_magnitude(self, comparison):
        # Paper Fig. 5c: 643.6x. Any two-orders-plus gap is on shape.
        assert comparison.latency_ratio > 100.0
        assert comparison.terrestrial_latency_min < 1.0
        assert comparison.satellite_latency_min > 30.0

    def test_decomposition_sums(self, comparison):
        total = (comparison.wait_min + comparison.dts_min
                 + comparison.delivery_min)
        assert total == pytest.approx(comparison.satellite_latency_min,
                                      rel=0.01)

    def test_wait_and_delivery_dominate(self, comparison):
        # Paper Fig. 5d: waiting for a pass and the operator's delivery
        # are the big segments; the DtS hop itself is minutes.
        assert comparison.wait_min > comparison.dts_min
        assert comparison.delivery_min > comparison.dts_min


class TestRetransmissionHistogram:
    def test_fractions_sum_to_one(self, active_result_small):
        hist = retransmission_histogram(
            active_result_small.all_satellite_records())
        assert sum(hist.values()) == pytest.approx(1.0)

    def test_substantial_zero_retx_share(self, active_result_small):
        # Paper Fig. 5b: around half of packets need no retransmission.
        hist = retransmission_histogram(
            active_result_small.all_satellite_records())
        assert 0.2 < hist[0] < 0.8

    def test_empty(self):
        hist = retransmission_histogram([])
        assert all(np.isnan(v) for v in hist.values())


class TestConcurrency:
    def test_groups_present(self, active_result_small):
        groups = reliability_by_concurrency(
            active_result_small.all_satellite_records())
        assert 1 in groups
        for rel, count in groups.values():
            assert 0.0 <= rel <= 1.0
            assert count > 0

    def test_single_node_reliability_high(self, active_result_small):
        groups = reliability_by_concurrency(
            active_result_small.all_satellite_records())
        rel, _count = groups[1]
        assert rel > 0.7  # paper Fig. 12b: 94 %


class TestPerNode:
    def test_three_nodes(self, active_result_small):
        rel = per_node_reliability(active_result_small.satellite_records)
        assert len(rel) == 3
        for value in rel.values():
            assert 0.5 < value <= 1.0
