"""Tests for report formatting."""

import pytest

from satiot.core.report import fmt, format_kv, format_table


class TestFmt:
    def test_float_precision(self):
        assert fmt(3.14159, 2) == "3.14"

    def test_none_dash(self):
        assert fmt(None) == "-"

    def test_nan(self):
        assert fmt(float("nan")) == "nan"

    def test_bool(self):
        assert fmt(True) == "yes"
        assert fmt(False) == "no"

    def test_int_passthrough(self):
        assert fmt(42) == "42"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"],
                           [["a", 1.0], ["longer", 123.456]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_contains_values(self):
        out = format_table(["metric"], [[3.14159]], precision=3)
        assert "3.142" in out


class TestFormatKv:
    def test_aligned(self):
        out = format_kv([("short", 1), ("a longer key", 2)])
        lines = out.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv([]) == ""
