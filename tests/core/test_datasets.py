"""Tests for dataset archival in the SINet layout."""

import hashlib
import json

import pytest

from satiot.datasets import (DatasetManifest, export_dataset,
                             load_dataset, read_manifest)


class TestExportLoad:
    def test_roundtrip(self, passive_result_small, tmp_path):
        manifest = export_dataset(passive_result_small, tmp_path)
        assert manifest.total_traces == passive_result_small.total_traces
        assert set(manifest.sites) == {"HK"}

        loaded_manifest, datasets = load_dataset(tmp_path)
        assert loaded_manifest == manifest
        assert len(datasets["HK"]) == manifest.sites["HK"]

    def test_layout_on_disk(self, passive_result_small, tmp_path):
        export_dataset(passive_result_small, tmp_path, name="my-run")
        assert (tmp_path / "manifest.json").exists()
        assert (tmp_path / "HK" / "traces.csv").exists()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["name"] == "my-run"
        assert manifest["seed"] == passive_result_small.config.seed

    def test_traces_sorted_by_time(self, passive_result_small, tmp_path):
        export_dataset(passive_result_small, tmp_path)
        _manifest, datasets = load_dataset(tmp_path)
        times = [t.time_s for t in datasets["HK"]]
        assert times == sorted(times)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path)

    def test_count_mismatch_detected(self, passive_result_small,
                                     tmp_path):
        export_dataset(passive_result_small, tmp_path)
        # Corrupt the site file by truncating one line.
        csv_path = tmp_path / "HK" / "traces.csv"
        lines = csv_path.read_text().splitlines()
        csv_path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="manifest says"):
            load_dataset(tmp_path)

    def test_manifest_json_roundtrip(self):
        manifest = DatasetManifest(
            name="x", seed=1, days=2.0, sites={"HK": 10},
            constellations={"Tianqi": 22}, total_traces=10)
        assert DatasetManifest.from_json(manifest.to_json()) == manifest


class TestReadManifest:
    def test_reads_only_the_manifest(self, passive_result_small,
                                     tmp_path):
        written = export_dataset(passive_result_small, tmp_path)
        # Corrupt the trace file: a manifest-only read must not care.
        (tmp_path / "HK" / "traces.csv").write_text("garbage")
        assert read_manifest(tmp_path) == written

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="manifest.json"):
            read_manifest(tmp_path)


class TestStreamingTextExport:
    """The block-streaming CSV/JSONL export is byte-identical to a
    consolidated sort-then-save."""

    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    def test_byte_identical_to_consolidated_path(
            self, passive_result_small, tmp_path, fmt):
        export_dataset(passive_result_small, tmp_path / "streamed",
                       trace_format=fmt)
        reference = tmp_path / "reference"
        for code in passive_result_small.site_results:
            site_dir = reference / code
            site_dir.mkdir(parents=True)
            dataset = passive_result_small.dataset.by_site(code) \
                .sorted_by_time()
            dataset.save(site_dir / f"traces.{fmt}", trace_format=fmt)
        for code in passive_result_small.site_results:
            streamed = tmp_path / "streamed" / code / f"traces.{fmt}"
            expected = reference / code / f"traces.{fmt}"
            assert hashlib.sha256(streamed.read_bytes()).hexdigest() \
                == hashlib.sha256(expected.read_bytes()).hexdigest()

    @pytest.mark.parametrize("fmt", ["csv", "jsonl"])
    def test_streamed_archive_loads_with_exact_counts(
            self, passive_result_small, tmp_path, fmt):
        export_dataset(passive_result_small, tmp_path, trace_format=fmt)
        manifest, datasets = load_dataset(tmp_path)
        assert sum(len(d) for d in datasets.values()) \
            == passive_result_small.total_traces
        assert manifest.trace_format == fmt
