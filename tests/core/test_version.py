"""Version single-source-of-truth: package, CLI, and pyproject agree."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import satiot
from satiot.cli import main

PYPROJECT = Path(__file__).resolve().parents[2] / "pyproject.toml"


def pyproject_version() -> str:
    text = PYPROJECT.read_text()
    try:
        import tomllib  # Python 3.11+
    except ImportError:
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
        assert match, "no version field in pyproject.toml"
        return match.group(1)
    return tomllib.loads(text)["project"]["version"]


def test_dunder_version_matches_pyproject():
    assert satiot.__version__ == pyproject_version()


def test_cli_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out.strip()
    assert out == f"satiot {satiot.__version__}"


def test_python_m_satiot_version():
    import os
    import subprocess
    import sys
    env = dict(os.environ)
    src = str(PYPROJECT.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "satiot", "--version"],
        capture_output=True, text=True, env=env, timeout=60)
    assert proc.returncode == 0
    assert proc.stdout.strip() == f"satiot {satiot.__version__}"


def test_version_is_pep440ish():
    assert re.fullmatch(r"\d+\.\d+\.\d+([a-z0-9.+-]*)?",
                        satiot.__version__)
