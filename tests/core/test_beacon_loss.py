"""Tests for the Appendix C loss-attribution analysis."""

import pytest

from satiot.core.beacon_loss import attribute_losses


@pytest.fixture(scope="module")
def attribution(passive_result_small):
    receptions = passive_result_small.receptions("HK", "tianqi")
    radio = passive_result_small.constellations["tianqi"].radio
    return attribute_losses(receptions,
                            eirp_dbm=radio.beacon_eirp_dbm,
                            frequency_hz=radio.frequency_hz)


class TestAttribution:
    def test_conservation(self, attribution):
        lost = attribution.total_beacons - attribution.received
        attributed = (attribution.lost_to_distance
                      + attribution.lost_to_elevation
                      + attribution.lost_to_fading)
        assert attributed == lost

    def test_counts_match_campaign(self, attribution,
                                   passive_result_small):
        receptions = passive_result_small.receptions("HK", "tianqi")
        assert attribution.total_beacons \
            == sum(r.beacons_sent for r in receptions)
        assert attribution.received \
            == sum(r.beacons_received for r in receptions)

    def test_heavy_loss_regime(self, attribution):
        # The calibrated channel drops most beacons (paper Fig. 3d).
        assert attribution.reception_rate < 0.5

    def test_deterministic_factors_dominate(self, attribution):
        # Appendix C: distance and low elevation are the main causes.
        shares = attribution.shares()
        assert shares["distance"] + shares["elevation"] > 0.3
        assert shares["fading"] > 0.0

    def test_shares_sum_to_one(self, attribution):
        shares = attribution.shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_input(self):
        result = attribute_losses([], eirp_dbm=10.0, frequency_hz=400e6)
        assert result.total_beacons == 0
        import math
        assert math.isnan(result.reception_rate)
