"""Tests for the measurement-site registry (paper Table 1)."""

import pytest

from satiot.core.sites import (CONTINENT_SITES, SITES, deployment_months)


class TestSitesMatchPaperTable1:
    def test_eight_sites(self):
        assert len(SITES) == 8
        assert set(SITES) == {"HK", "SYD", "LDN", "PGH", "SH", "GZ",
                              "NC", "YC"}

    def test_twenty_seven_stations_total(self):
        assert sum(s.station_count for s in SITES.values()) == 27

    @pytest.mark.parametrize("code,count", [
        ("PGH", 3), ("LDN", 5), ("SH", 2), ("GZ", 2),
        ("SYD", 4), ("HK", 6), ("NC", 1), ("YC", 4)])
    def test_station_counts(self, code, count):
        assert SITES[code].station_count == count

    def test_paper_trace_counts_total(self):
        total = sum(s.paper_trace_count for s in SITES.values())
        assert total == 121744  # paper Section 2.2

    def test_continent_representatives(self):
        assert set(CONTINENT_SITES) == {"HK", "SYD", "LDN", "PGH"}
        continents = {SITES[c].continent for c in CONTINENT_SITES}
        assert continents == {"Asia", "Australia", "Europe",
                              "North America"}

    def test_four_continents_overall(self):
        continents = {s.continent for s in SITES.values()}
        assert len(continents) == 4

    def test_coordinates_plausible(self):
        assert SITES["SYD"].location.latitude_deg < 0  # southern
        assert SITES["LDN"].location.longitude_deg < 5
        assert SITES["HK"].location.latitude_deg == pytest.approx(22.3,
                                                                  abs=0.5)


class TestDeploymentMonths:
    def test_hk_seven_months(self):
        # HK started 2024/09; campaign ended 2025/03.
        assert SITES["HK"].deployment_months == 6

    def test_late_sites_shorter(self):
        assert SITES["LDN"].deployment_months \
            < SITES["YC"].deployment_months

    def test_future_start_rejected(self):
        with pytest.raises(ValueError):
            deployment_months(2026, 1)
