"""Tests for the fleet-congestion model."""

import pytest

from satiot.constellations.catalog import build_constellation
from satiot.core.fleet import (FleetModel, congested_mac_config,
                               delivery_delay_under_load_s)
from satiot.network.downlink import DownlinkConfig
from satiot.network.mac import MacConfig
from satiot.network.store_forward import GroundSegment


@pytest.fixture(scope="module")
def segment():
    constellation = build_constellation("tianqi")
    epoch = constellation.satellites[0].tle.epoch
    return constellation, GroundSegment(constellation, epoch, 86400.0)


class TestFleetModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetModel(device_density_per_mkm2=-1.0)
        with pytest.raises(ValueError):
            FleetModel(duty_factor=1.5)

    def test_footprint_scaling(self):
        fleet = FleetModel(device_density_per_mkm2=100.0)
        # Tianqi main shell footprint ~3e7 km^2 -> ~3000 devices.
        devices = fleet.devices_in_footprint(856.0)
        assert 2000.0 < devices < 4000.0

    def test_higher_orbit_more_contenders(self):
        fleet = FleetModel()
        assert fleet.expected_contenders(900.0) \
            > fleet.expected_contenders(500.0)

    def test_load_proportional_to_density(self):
        low = FleetModel(device_density_per_mkm2=10.0)
        high = FleetModel(device_density_per_mkm2=100.0)
        assert high.uplink_packets_per_hour(850.0) \
            == pytest.approx(10 * low.uplink_packets_per_hour(850.0))


class TestCongestedMac:
    def test_capture_degrades_with_fleet(self):
        base = MacConfig()
        sparse = congested_mac_config(
            FleetModel(device_density_per_mkm2=1.0), 850.0, base)
        dense = congested_mac_config(
            FleetModel(device_density_per_mkm2=500.0), 850.0, base)
        assert dense.capture_probability[1] \
            < sparse.capture_probability[1] \
            <= base.capture_probability[1]

    def test_satellite_loss_grows_and_caps(self):
        base = MacConfig()
        extreme = congested_mac_config(
            FleetModel(device_density_per_mkm2=1e7,
                       packets_per_hour=100.0), 850.0, base)
        assert base.satellite_loss_probability \
            < extreme.satellite_loss_probability <= 0.5

    def test_zero_fleet_is_identity(self):
        base = MacConfig()
        out = congested_mac_config(
            FleetModel(device_density_per_mkm2=0.0), 850.0, base)
        assert out.capture_probability == base.capture_probability
        assert out.satellite_loss_probability \
            == base.satellite_loss_probability


class TestDeliveryUnderLoad:
    def test_load_delays_delivery(self):
        # Compare without data-centre batching, which otherwise rounds
        # both arrivals to the same release slot.
        constellation = build_constellation("tianqi")
        epoch = constellation.satellites[0].tle.epoch
        ground_segment = GroundSegment(constellation, epoch, 86400.0,
                                       processing_batch_s=0.0)
        norad = constellation.satellites[0].norad_id
        quiet = delivery_delay_under_load_s(
            ground_segment, FleetModel(device_density_per_mkm2=0.0),
            constellation, 1000.0, norad)
        busy = delivery_delay_under_load_s(
            ground_segment,
            FleetModel(device_density_per_mkm2=2000.0,
                       packets_per_hour=10.0),
            constellation, 1000.0, norad,
            downlink=DownlinkConfig(throughput_bytes_s=1000.0))
        assert quiet is not None and busy is not None
        assert busy > quiet + 600.0  # queueing adds tens of minutes

    def test_quiet_fleet_matches_base_segment(self, segment):
        constellation, ground_segment = segment
        norad = constellation.satellites[0].norad_id
        base = ground_segment.delivery_time_s(norad, 1000.0)
        quiet = delivery_delay_under_load_s(
            ground_segment, FleetModel(device_density_per_mkm2=0.0),
            constellation, 1000.0, norad)
        assert quiet == pytest.approx(base)

    def test_past_span_returns_none(self, segment):
        constellation, ground_segment = segment
        norad = constellation.satellites[0].norad_id
        assert delivery_delay_under_load_s(
            ground_segment, FleetModel(), constellation,
            90_000.0, norad) is None
