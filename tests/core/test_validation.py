"""Tests for the cross-implementation self-checks."""

from satiot.core.validation import CheckResult, run_self_checks


class TestSelfChecks:
    def test_all_pass(self):
        results = run_self_checks()
        failing = [r for r in results if not r.passed]
        assert failing == [], [f"{r.name}: {r.detail}" for r in failing]

    def test_reports_are_descriptive(self):
        for result in run_self_checks():
            assert isinstance(result, CheckResult)
            assert result.name
            assert result.detail

    def test_covers_the_four_axes(self):
        names = " ".join(r.name for r in run_self_checks())
        assert "SGP4" in names
        assert "coverage" in names
        assert "airtime" in names
        assert "speed" in names
