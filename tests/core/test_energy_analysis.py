"""Tests for the energy comparison (paper Figures 6, 10, 11)."""

import pytest

from satiot.core.energy_analysis import compare_energy, mode_table
from satiot.energy.profiles import RadioMode


@pytest.fixture(scope="module")
def energy_pair(active_result_small):
    tianqi = next(iter(active_result_small.tianqi_energy.values()))
    terrestrial = next(iter(
        active_result_small.terrestrial_energy.values()))
    return tianqi, terrestrial


class TestCompareEnergy:
    def test_drain_ratio_paper_scale(self, energy_pair):
        comparison = compare_energy(*energy_pair)
        # Paper: 14.9x greater battery drain.
        assert 8.0 < comparison.drain_ratio < 25.0

    def test_tx_power_ratio(self, energy_pair):
        comparison = compare_energy(*energy_pair)
        assert comparison.tx_power_ratio == pytest.approx(2.2, abs=0.01)

    def test_battery_lifetimes_paper_scale(self, energy_pair):
        comparison = compare_energy(*energy_pair)
        # Paper Fig. 6d: 48 days vs 718 days.
        assert 25.0 < comparison.tianqi_battery_days < 90.0
        assert 500.0 < comparison.terrestrial_battery_days < 900.0

    def test_satellite_rx_time_much_longer(self, energy_pair):
        comparison = compare_energy(*energy_pair)
        # The DtS node keeps its receiver on waiting for passes.
        assert comparison.rx_time_ratio > 10.0

    def test_rx_dominates_tianqi_energy(self, energy_pair):
        comparison = compare_energy(*energy_pair)
        assert comparison.rx_energy_share_tianqi > 0.5


class TestModeTable:
    def test_structure(self, energy_pair):
        tianqi, _ = energy_pair
        table = mode_table(tianqi)
        assert set(table) == {m.value for m in RadioMode}
        for row in table.values():
            assert set(row) == {"time_h", "time_share", "energy_mwh",
                                "energy_share"}

    def test_shares_sum(self, energy_pair):
        tianqi, _ = energy_pair
        table = mode_table(tianqi)
        assert sum(r["time_share"] for r in table.values()) \
            == pytest.approx(1.0)
        assert sum(r["energy_share"] for r in table.values()) \
            == pytest.approx(1.0)
