"""Integration tests: the active campaign reproduces the paper's
qualitative Section 3.2 findings end-to-end."""

import numpy as np
import pytest

from satiot.core.active import ActiveCampaignConfig
from satiot.network.server import reliability_report


class TestActiveCampaignShape:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ActiveCampaignConfig(days=0.0)
        with pytest.raises(ValueError):
            ActiveCampaignConfig(node_count=0)
        with pytest.raises(ValueError):
            ActiveCampaignConfig(antenna_name="yagi")
        with pytest.raises(ValueError):
            ActiveCampaignConfig(reading_interval_s=0.0)

    def test_three_nodes_with_readings(self, active_result_small):
        assert len(active_result_small.readings) == 3
        for readings in active_result_small.readings.values():
            # 30-minute cadence: ~48 readings per day.
            per_day = len(readings) / active_result_small.config.days
            assert 40.0 < per_day < 50.0

    def test_sequence_ids_unique_per_node(self, active_result_small):
        for readings in active_result_small.readings.values():
            seqs = [r.seq for r in readings]
            assert seqs == sorted(set(seqs))

    def test_reliability_above_ninety(self, active_result_small):
        report = reliability_report(
            active_result_small.all_satellite_records())
        assert report.reliability > 0.85  # paper: 96 % with 5 retx

    def test_satellite_latency_hour_scale(self, active_result_small):
        latencies = [r.total_latency_s / 60.0
                     for r in active_result_small.all_satellite_records()
                     if r.delivered]
        # Paper: 135.2 minutes average.
        assert 40.0 < np.mean(latencies) < 300.0

    def test_monitoring_time_majority_of_day(self, active_result_small):
        fraction = (active_result_small.monitoring_rx_s
                    / active_result_small.config.duration_s)
        # Tianqi presence at the site is most of the day (paper: 18.5 h).
        assert 0.5 < fraction < 0.95

    def test_records_reference_real_satellites(self, active_result_small):
        norads = {s.norad_id
                  for s in active_result_small.constellation}
        for record in active_result_small.all_satellite_records():
            if record.satellite_norad is not None:
                assert record.satellite_norad in norads

    def test_delivery_uses_ground_segment(self, active_result_small):
        for record in active_result_small.all_satellite_records():
            if record.delivered:
                assert record.delivered_s > record.satellite_received_s

    def test_duplicates_absorbed_somewhere(self, active_result_small):
        # ACK losses should have produced at least some duplicate
        # uplinks over two days (paper's spurious retransmissions).
        retx = active_result_small.retransmission_counts()
        assert sum(retx) > 0

    def test_energy_accounted_for_all_nodes(self, active_result_small):
        assert set(active_result_small.tianqi_energy) \
            == set(active_result_small.readings)
        assert set(active_result_small.terrestrial_energy) \
            == set(active_result_small.readings)
