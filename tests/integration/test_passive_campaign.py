"""Integration tests: the passive campaign reproduces Section 3.1's
qualitative findings end-to-end."""

import numpy as np

from satiot.core.contacts import analyze_contacts, mid_window_fraction


class TestPassiveCampaignShape:
    def test_all_four_constellations_shrink_heavily(
            self, passive_result_small):
        # Paper Fig. 4a: effective contact durations shrink 73.7-89.2 %
        # relative to theoretical across all constellations.
        for name in ("tianqi", "fossa", "pico", "cstp"):
            receptions = passive_result_small.receptions("HK", name)
            stats = analyze_contacts(receptions,
                                     passive_result_small.duration_s)
            assert stats.duration_shrinkage > 0.6, name

    def test_tianqi_daily_effective_hours_scale(self,
                                                passive_result_small):
        # Paper: 18.5 h theoretical vs 1.8 h effective for Tianqi.
        receptions = passive_result_small.receptions("HK", "tianqi")
        stats = analyze_contacts(receptions,
                                 passive_result_small.duration_s)
        assert 13.0 < stats.theoretical_daily_hours < 22.0
        assert 0.5 < stats.effective_daily_hours < 7.0

    def test_constellation_size_orders_availability(
            self, passive_result_small):
        # Larger constellations have longer theoretical daily presence
        # (paper Fig. 3a: Tianqi > PICO > FOSSA).
        hours = {}
        for name in ("tianqi", "pico", "fossa"):
            receptions = passive_result_small.receptions("HK", name)
            stats = analyze_contacts(receptions,
                                     passive_result_small.duration_s)
            hours[name] = stats.theoretical_daily_hours
        assert hours["tianqi"] > hours["pico"] > hours["fossa"]

    def test_mid_window_concentration_global(self, passive_result_small):
        receptions = [r for sr
                      in passive_result_small.site_results.values()
                      for r in sr.receptions]
        fraction = mid_window_fraction(receptions)
        # Paper Appendix C: 70.4 %.
        assert 0.5 < fraction < 0.95

    def test_traces_have_weak_rssi(self, passive_result_small):
        rssi = np.array([t.rssi_dbm for t in passive_result_small.dataset])
        assert np.median(rssi) < -110.0  # weak-signal regime

    def test_dataset_round_trips_through_csv(self, passive_result_small,
                                             tmp_path):
        path = tmp_path / "dataset.csv"
        passive_result_small.dataset.to_csv(path)
        from satiot.groundstation.traces import TraceDataset
        back = TraceDataset.from_csv(path)
        assert len(back) == passive_result_small.total_traces
