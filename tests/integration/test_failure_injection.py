"""Failure-injection tests: the system degrades gracefully, and the
accounting stays consistent, under hostile configurations."""

import numpy as np

from satiot.core.active import ActiveCampaign, ActiveCampaignConfig
from satiot.network.mac import BeaconOpportunity, DtSMac, MacConfig
from satiot.network.packets import SensorReading
from satiot.network.server import reliability_report
from satiot.network.store_forward import SatelliteBuffer
from satiot.orbits.frames import GeodeticPoint
from satiot.phy.channel import ChannelParams


class TestDeafNode:
    def test_huge_rx_penalty_yields_zero_but_consistent(self):
        # A node that cannot decode any beacon generates readings that
        # are never attempted — reliability 0, no crashes, no attempts.
        config = ActiveCampaignConfig(days=1.0, seed=5,
                                      node_rx_penalty_db=60.0)
        result = ActiveCampaign(config).run()
        records = result.all_satellite_records()
        report = reliability_report(records)
        assert report.delivered == 0
        assert all(not r.attempts for r in records)
        # The terrestrial system still works.
        terrestrial = result.all_terrestrial_records()
        assert np.mean([r.delivered for r in terrestrial]) > 0.99


class TestDeadUplink:
    def test_all_attempts_fail_abandoned(self):
        config = ActiveCampaignConfig(days=1.0, seed=5,
                                      uplink_advantage_db=-60.0,
                                      max_retransmissions=2)
        result = ActiveCampaign(config).run()
        records = result.all_satellite_records()
        attempted = [r for r in records if r.attempts]
        assert attempted, "nodes should still hear beacons"
        report = reliability_report(records)
        assert report.delivered == 0
        for record in attempted:
            assert record.satellite_received_s is None
            assert len(record.attempts) <= 3


class TestBufferOverflowPressure:
    def test_tiny_satellite_buffers_drop_but_account(self):
        # Satellite buffers of size 1: most uplinks that succeed at the
        # PHY get dropped on-board; delivered <= reached_satellite and
        # the overflow counters record the loss.
        sat = 44100
        buffers = {sat: SatelliteBuffer(sat, capacity_packets=1)}
        mac = DtSMac(MacConfig(max_retransmissions=0,
                               satellite_loss_probability=0.0), buffers)
        readings = {"n1": [SensorReading("n1", i, i * 10.0, 20)
                           for i in range(50)]}
        beacons = {"n1": [BeaconOpportunity(1000.0 + 5.0 * i, sat,
                                            1.0, 1.0)
                          for i in range(200)]}
        records = mac.run(readings, beacons,
                          np.random.default_rng(0), 10_000.0)
        stored = [r for r in records["n1"]
                  if r.satellite_received_s is not None]
        assert len(stored) == 1
        assert buffers[sat].dropped_overflow > 0


class TestPermanentRain:
    def test_always_raining_degrades_but_runs(self):
        from satiot.sim.weather import WeatherParams
        dry_cfg = ActiveCampaignConfig(days=1.0, seed=5)
        wet_cfg = ActiveCampaignConfig(
            days=1.0, seed=5,
            weather=WeatherParams(mean_dry_hours=0.001,
                                  mean_rain_hours=1000.0,
                                  start_raining=True))
        dry = ActiveCampaign(dry_cfg).run()
        wet = ActiveCampaign(wet_cfg).run()
        dry_heard = sum(len(v) for v in dry.heard_beacons.values())
        wet_heard = sum(len(v) for v in wet.heard_beacons.values())
        assert wet_heard < dry_heard


class TestHostileChannel:
    def test_extreme_shadowing_still_consistent(self):
        config = ActiveCampaignConfig(
            days=1.0, seed=5,
            channel_params=ChannelParams(shadowing_sigma_db=15.0,
                                         pass_sigma_db=15.0))
        result = ActiveCampaign(config).run()
        records = result.all_satellite_records()
        report = reliability_report(records)
        assert 0.0 <= report.reliability <= 1.0
        # Delivered packets always have complete causal timestamps.
        for record in records:
            if record.delivered:
                assert record.satellite_received_s is not None
                assert record.first_attempt_s \
                    <= record.satellite_received_s <= record.delivered_s


class TestRemoteOceanSite:
    def test_far_from_china_delivery_still_bounded(self):
        # A site in the South Atlantic: DtS works, but every delivery
        # must wait for the satellite to reach China.
        config = ActiveCampaignConfig(
            days=2.0, seed=5,
            site=GeodeticPoint(-30.0, -25.0, 0.0))
        result = ActiveCampaign(config).run()
        records = [r for r in result.all_satellite_records()
                   if r.delivered]
        if records:  # some deliveries happen within two days
            delays = [r.delivery_delay_s / 60.0 for r in records]
            # Delivery now includes an intercontinental orbit leg; it
            # should be distinctly slower than the Yunnan deployment's
            # ~50 minutes on average.
            assert np.mean(delays) > 40.0
