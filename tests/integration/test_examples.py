"""Smoke tests: every runnable example executes end to end.

Each ``examples/*.py`` script is run as a subprocess — exactly the way
a user invokes it — with the smallest duration its CLI accepts, so a
broken public API or import cycle surfaces here before a user hits it.
A discovery test pins the example inventory: adding an example without
a smoke case fails the suite.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"

#: script name -> (argv override, substrings the stdout must contain).
#: Scripts taking a duration run at the smallest sensible value.
EXAMPLE_CASES = {
    "quickstart": ((), ("passes over Hong Kong", "beacons")),
    "energy_budget": ((), ("Terrestrial reference", "battery")),
    "fleet_congestion": ((), ("Fleet congestion",)),
    "agriculture_tianqi": (("0.25",), ("End-to-end performance",
                                       "Costs (paper Table 2)")),
    "passive_global_availability": (("0.25",),
                                    ("Contact-window statistics",)),
    "figures_export": (("{tmp}/figs",), ("series files",)),
    "community_downlink": ((), ("Community downlink coverage",
                                "Operator baseline")),
    "constellation_planning": ((), ("Constellation sizing",
                                    "presence (h/day)")),
}


def run_example(name: str, argv, tmp_path: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    args = [arg.format(tmp=tmp_path) for arg in argv]
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / f"{name}.py"), *args],
        capture_output=True, text=True, env=env, cwd=tmp_path,
        timeout=900)


def test_every_example_has_a_smoke_case():
    scripts = {path.stem for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLE_CASES), (
        "examples/ and EXAMPLE_CASES disagree — add a smoke case for "
        f"new scripts: {sorted(scripts ^ set(EXAMPLE_CASES))}")


@pytest.mark.parametrize("name", sorted(EXAMPLE_CASES))
def test_example_runs(name, tmp_path):
    argv, expected = EXAMPLE_CASES[name]
    proc = run_example(name, argv, tmp_path)
    assert proc.returncode == 0, (
        f"{name}.py exited {proc.returncode}\n--- stdout ---\n"
        f"{proc.stdout}\n--- stderr ---\n{proc.stderr}")
    for text in expected:
        assert text in proc.stdout, (
            f"{name}.py stdout missing {text!r}\n{proc.stdout}")


def test_passive_example_writes_csv(tmp_path):
    proc = run_example("passive_global_availability", ("0.25",),
                       tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert (tmp_path / "passive_traces.csv").exists()


def test_figures_export_writes_series(tmp_path):
    proc = run_example("figures_export", ("{tmp}/figs",), tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert any((tmp_path / "figs").iterdir())
