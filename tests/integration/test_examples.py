"""Smoke tests: the runnable examples execute end to end.

Each example's ``main()`` is imported and driven with small arguments,
so a broken public API surfaces here before a user hits it.
"""

import importlib.util
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_energy_budget(self, capsys):
        load_example("energy_budget").main()
        out = capsys.readouterr().out
        assert "Terrestrial reference" in out
        assert "battery" in out

    def test_fleet_congestion(self, capsys):
        load_example("fleet_congestion").main()
        out = capsys.readouterr().out
        assert "Fleet congestion" in out

    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "passes over Hong Kong" in out
        assert "beacons" in out

    def test_passive_availability_small(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.chdir(tmp_path)  # the example writes a CSV
        load_example("passive_global_availability").main(days=0.25)
        out = capsys.readouterr().out
        assert "Contact-window statistics" in out
        assert (tmp_path / "passive_traces.csv").exists()

    def test_figures_export(self, capsys, tmp_path):
        load_example("figures_export").main(str(tmp_path / "figs"))
        out = capsys.readouterr().out
        assert "series files" in out
        assert any((tmp_path / "figs").iterdir())


class TestAgricultureExample:
    def test_runs_one_day(self, capsys):
        load_example("agriculture_tianqi").main(days=1.0)
        out = capsys.readouterr().out
        assert "End-to-end performance" in out
        assert "Costs (paper Table 2)" in out
