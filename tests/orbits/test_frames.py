"""Tests for frame conversions (TEME/ECEF/geodetic)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.orbits.constants import EARTH_RADIUS_KM
from satiot.orbits.frames import (GeodeticPoint, ecef_to_geodetic,
                                  ecef_velocity_from_teme, geodetic_to_ecef,
                                  teme_to_ecef)
from satiot.orbits.timebase import gmst


class TestGeodeticPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            GeodeticPoint(95.0, 0.0)
        with pytest.raises(ValueError):
            GeodeticPoint(0.0, 200.0)

    def test_ecef_equator_prime_meridian(self):
        p = GeodeticPoint(0.0, 0.0, 0.0)
        np.testing.assert_allclose(
            p.ecef(), [EARTH_RADIUS_KM, 0.0, 0.0], atol=1e-9)

    def test_ecef_north_pole(self):
        p = GeodeticPoint(90.0, 0.0, 0.0)
        x, y, z = p.ecef()
        assert abs(x) < 1e-6 and abs(y) < 1e-6
        # Polar radius is ~6356.75 km.
        assert z == pytest.approx(6356.75, abs=0.01)


class TestGeodeticRoundtrip:
    @given(lat=st.floats(-89.0, 89.0), lon=st.floats(-179.9, 179.9),
           alt=st.floats(0.0, 2000.0))
    @settings(max_examples=200)
    def test_roundtrip(self, lat, lon, alt):
        r = geodetic_to_ecef(lat, lon, alt)
        lat2, lon2, alt2 = ecef_to_geodetic(r)
        assert lat2 == pytest.approx(lat, abs=1e-6)
        assert lon2 == pytest.approx(lon, abs=1e-6)
        assert alt2 == pytest.approx(alt, abs=1e-6)

    def test_vectorized(self):
        lats = np.array([0.0, 45.0, -60.0])
        lons = np.array([0.0, 120.0, -80.0])
        alts = np.array([0.0, 500.0, 850.0])
        r = geodetic_to_ecef(lats, lons, alts)
        assert r.shape == (3, 3)
        lat2, lon2, alt2 = ecef_to_geodetic(r)
        np.testing.assert_allclose(lat2, lats, atol=1e-6)
        np.testing.assert_allclose(alt2, alts, atol=1e-6)


class TestTemeToEcef:
    def test_norm_preserved(self):
        r = np.array([7000.0, 100.0, 500.0])
        out = teme_to_ecef(r, 2460000.5)
        assert np.linalg.norm(out) == pytest.approx(np.linalg.norm(r))

    def test_z_unchanged(self):
        r = np.array([7000.0, 100.0, 500.0])
        assert teme_to_ecef(r, 2460000.5)[2] == pytest.approx(500.0)

    def test_rotation_angle(self):
        # A point on the TEME x-axis lands at longitude -gmst.
        jd = 2460000.5
        out = teme_to_ecef(np.array([7000.0, 0.0, 0.0]), jd)
        lon = math.atan2(out[1], out[0])
        expected = -gmst(jd)
        # Compare as angles modulo 2 pi.
        diff = (lon - expected + math.pi) % (2 * math.pi) - math.pi
        assert abs(diff) < 1e-9

    def test_batched(self):
        r = np.tile([7000.0, 0.0, 0.0], (4, 1))
        jds = 2460000.5 + np.arange(4) / 24.0
        out = teme_to_ecef(r, jds)
        assert out.shape == (4, 3)
        # Earth rotates under the fixed inertial point: ECEF longitude
        # decreases hour over hour.
        lons = np.degrees(np.arctan2(out[:, 1], out[:, 0]))
        unwrapped = np.unwrap(np.radians(lons))
        assert np.all(np.diff(unwrapped) < 0)


class TestEcefVelocity:
    def test_corotating_point_has_zero_velocity(self):
        # An inertial point moving exactly with the Earth's rotation has
        # no ECEF-relative velocity.
        jd = 2460000.5
        omega = 7.292115e-5
        r_teme = np.array([7000.0, 0.0, 0.0])
        v_teme = np.array([0.0, omega * 7000.0, 0.0])
        v_ecef = ecef_velocity_from_teme(r_teme, v_teme, jd)
        assert np.linalg.norm(v_ecef) < 1e-9

    def test_stationary_inertial_point_moves_in_ecef(self):
        jd = 2460000.5
        v_ecef = ecef_velocity_from_teme(
            np.array([7000.0, 0.0, 0.0]), np.zeros(3), jd)
        # Speed = omega * r.
        assert np.linalg.norm(v_ecef) \
            == pytest.approx(7.292115e-5 * 7000.0, rel=1e-9)
