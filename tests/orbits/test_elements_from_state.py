"""Tests for the RV→COE conversion."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.orbits.kepler import KeplerianElements, elements_from_state


class TestRoundTrip:
    @given(
        a=st.floats(6700.0, 9000.0),
        e=st.floats(0.0005, 0.1),
        incl=st.floats(0.1, math.pi - 0.1),
        raan=st.floats(0.01, 2 * math.pi - 0.01),
        argp=st.floats(0.01, 2 * math.pi - 0.01),
        m=st.floats(0.01, 2 * math.pi - 0.01),
    )
    @settings(max_examples=150)
    def test_coe_rv_coe(self, a, e, incl, raan, argp, m):
        original = KeplerianElements(a, e, incl, raan, argp, m)
        r, v = original.to_inertial(m)
        back = elements_from_state(r, v)
        assert back.semi_major_axis_km == pytest.approx(a, rel=1e-9)
        assert back.eccentricity == pytest.approx(e, abs=1e-9)
        assert back.inclination_rad == pytest.approx(incl, abs=1e-9)
        assert back.raan_rad == pytest.approx(raan, abs=1e-7)
        assert back.argp_rad == pytest.approx(argp, abs=2e-6)
        assert back.mean_anomaly_rad == pytest.approx(m, abs=2e-6)

    def test_circular_orbit_handled(self):
        el = KeplerianElements(7228.0, 0.0, math.radians(50.0), 1.0, 0.0,
                               0.7)
        r, v = el.to_inertial(0.7)
        back = elements_from_state(r, v)
        assert back.eccentricity == pytest.approx(0.0, abs=1e-12)
        assert back.semi_major_axis_km == pytest.approx(7228.0, rel=1e-9)
        # argp undefined for circular orbits: convention sets it to 0
        # and folds the phase into the anomaly.
        assert back.argp_rad == 0.0


class TestSgp4StateConsistency:
    def test_sgp4_output_is_near_input_elements(self):
        from satiot.orbits.sgp4 import SGP4
        from tests.conftest import make_test_tle
        tle = make_test_tle(altitude_km=850.0, eccentricity=0.001)
        sat = SGP4(tle)
        r, v = sat.propagate(0.0)
        osculating = elements_from_state(r, v)
        # Mean vs osculating elements differ by the J2 short-period
        # terms — a few km and fractions of a degree, no more.
        assert osculating.semi_major_axis_km \
            == pytest.approx(7228.0, abs=20.0)
        assert math.degrees(osculating.inclination_rad) \
            == pytest.approx(49.97, abs=0.1)


class TestErrors:
    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            elements_from_state(np.zeros(2), np.zeros(3))

    def test_zero_position(self):
        with pytest.raises(ValueError):
            elements_from_state(np.zeros(3), np.ones(3))

    def test_hyperbolic_rejected(self):
        r = np.array([7000.0, 0.0, 0.0])
        v = np.array([0.0, 15.0, 0.0])  # way above escape velocity
        with pytest.raises(ValueError, match="not elliptic"):
            elements_from_state(r, v)

    def test_rectilinear_rejected(self):
        r = np.array([7000.0, 0.0, 0.0])
        v = np.array([1.0, 0.0, 0.0])  # radial: no angular momentum
        with pytest.raises(ValueError, match="rectilinear"):
            elements_from_state(r, v)
