"""Tests for the TLE codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.orbits.tle import (TLE, TLEError, checksum, format_tle,
                               parse_tle, parse_tle_file)
from satiot.orbits.tle import _format_exp_field, _parse_exp_field

from tests.conftest import make_test_tle


class TestChecksum:
    def test_digits_and_minus(self):
        # minus counts 1, letters count 0
        line = "1" + " " * 67
        assert checksum(line) == 1
        assert checksum("-" + " " * 67) == 1
        assert checksum("A" * 68) == 0

    def test_known_line(self):
        tle = make_test_tle()
        line1, line2 = format_tle(tle)
        assert int(line1[68]) == checksum(line1)
        assert int(line2[68]) == checksum(line2)


class TestExpField:
    @pytest.mark.parametrize("text,value", [
        (" 00000+0", 0.0),
        (" 12345-4", 0.12345e-4),
        ("-12345-4", -0.12345e-4),
        (" 50000-3", 0.5e-3),
    ])
    def test_parse_known(self, text, value):
        assert _parse_exp_field(text) == pytest.approx(value, rel=1e-9)

    @given(st.floats(min_value=1e-9, max_value=0.09) | st.just(0.0))
    @settings(max_examples=100)
    def test_roundtrip(self, value):
        encoded = _format_exp_field(value)
        assert len(encoded) == 8
        decoded = _parse_exp_field(encoded)
        assert decoded == pytest.approx(value, rel=1e-4, abs=1e-12)

    def test_negative_roundtrip(self):
        assert _parse_exp_field(_format_exp_field(-3.2e-5)) \
            == pytest.approx(-3.2e-5, rel=1e-4)

    def test_bad_field_raises(self):
        with pytest.raises(TLEError):
            _parse_exp_field("garbage!")


class TestRoundtrip:
    def test_full_roundtrip(self):
        tle = make_test_tle()
        line1, line2 = format_tle(tle)
        assert len(line1) == 69 and len(line2) == 69
        back = parse_tle(line1, line2, name=tle.name)
        assert back.norad_id == tle.norad_id
        assert back.inclination_deg == pytest.approx(tle.inclination_deg)
        assert back.raan_deg == pytest.approx(tle.raan_deg)
        assert back.eccentricity == pytest.approx(tle.eccentricity)
        assert back.mean_motion_rev_day \
            == pytest.approx(tle.mean_motion_rev_day, abs=1e-7)
        assert back.bstar == pytest.approx(tle.bstar, rel=1e-4)
        assert back.epochdays == pytest.approx(tle.epochdays)

    @given(
        incl=st.floats(0.0, 180.0),
        raan=st.floats(0.0, 359.99),
        ecc=st.floats(0.0, 0.1),
        argp=st.floats(0.0, 359.99),
        ma=st.floats(0.0, 359.99),
        n=st.floats(10.0, 16.9),
    )
    @settings(max_examples=100)
    def test_roundtrip_property(self, incl, raan, ecc, argp, ma, n):
        tle = TLE(name="X", norad_id=12345, classification="U",
                  intl_designator="24001A", epochyr=24, epochdays=100.5,
                  ndot=0.0, nddot=0.0, bstar=1e-5, ephemeris_type=0,
                  element_set_no=1, inclination_deg=incl, raan_deg=raan,
                  eccentricity=ecc, argp_deg=argp, mean_anomaly_deg=ma,
                  mean_motion_rev_day=n, rev_number=1)
        back = parse_tle(*format_tle(tle))
        assert back.inclination_deg == pytest.approx(incl, abs=1e-4)
        assert back.eccentricity == pytest.approx(ecc, abs=1e-7)
        assert back.mean_motion_rev_day == pytest.approx(n, abs=1e-7)


class TestParsingErrors:
    def test_bad_checksum(self):
        line1, line2 = format_tle(make_test_tle())
        corrupted = line1[:68] + str((int(line1[68]) + 1) % 10)
        with pytest.raises(TLEError, match="checksum"):
            parse_tle(corrupted, line2)

    def test_checksum_can_be_skipped(self):
        line1, line2 = format_tle(make_test_tle())
        corrupted = line1[:68] + str((int(line1[68]) + 1) % 10)
        parse_tle(corrupted, line2, validate_checksum=False)

    def test_wrong_line_numbers(self):
        line1, line2 = format_tle(make_test_tle())
        with pytest.raises(TLEError, match="line numbers"):
            parse_tle(line2, line1)

    def test_short_lines(self):
        with pytest.raises(TLEError, match="69 columns"):
            parse_tle("1 short", "2 short")

    def test_catalog_number_mismatch(self):
        a = format_tle(make_test_tle(norad_id=11111))
        b = format_tle(make_test_tle(norad_id=22222))
        with pytest.raises(TLEError, match="mismatch"):
            parse_tle(a[0], b[1])


class TestDerivedAccessors:
    def test_no_kozai_units(self):
        tle = make_test_tle()
        # rev/day to rad/min: n * 2 pi / 1440
        import math
        expected = tle.mean_motion_rev_day * 2 * math.pi / 1440.0
        assert tle.no_kozai_rad_min == pytest.approx(expected)

    def test_period(self):
        tle = make_test_tle(altitude_km=850.0)
        # 850 km orbit: period just over 101.9 minutes.
        assert tle.period_minutes == pytest.approx(101.9, abs=0.5)

    def test_epoch_year(self):
        assert make_test_tle().epoch.calendar()[0] == 2024


class TestFileParsing:
    def test_three_line_format(self):
        tle = make_test_tle()
        line1, line2 = format_tle(tle)
        text = ["MY SATELLITE", line1, line2]
        parsed = parse_tle_file(text)
        assert len(parsed) == 1
        assert parsed[0].name == "MY SATELLITE"

    def test_two_line_format_no_names(self):
        line1, line2 = format_tle(make_test_tle())
        parsed = parse_tle_file([line1, line2, line1, line2])
        assert len(parsed) == 2
        assert parsed[0].name == ""

    def test_dangling_line_raises(self):
        line1, _ = format_tle(make_test_tle())
        with pytest.raises(TLEError, match="dangling"):
            parse_tle_file([line1])

    def test_blank_lines_ignored(self):
        line1, line2 = format_tle(make_test_tle())
        parsed = parse_tle_file(["", line1, line2, "  \n"])
        assert len(parsed) == 1
