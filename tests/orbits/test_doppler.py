"""Tests for Doppler computations."""

import numpy as np
import pytest

from satiot.orbits.doppler import (doppler_rate_hz_s, doppler_shift_hz,
                                   max_doppler_shift_hz)


class TestDopplerShift:
    def test_receding_negative_shift(self):
        assert doppler_shift_hz(7.5, 400.45e6) < 0.0

    def test_approaching_positive_shift(self):
        assert doppler_shift_hz(-7.5, 400.45e6) > 0.0

    def test_zero(self):
        assert doppler_shift_hz(0.0, 400.45e6) == 0.0

    def test_magnitude_at_400mhz(self):
        # 7.5 km/s at 400 MHz is ~10 kHz (paper Appendix C scale).
        shift = doppler_shift_hz(-7.5, 400.0e6)
        assert shift == pytest.approx(10007.0, rel=0.01)

    def test_linear_in_frequency(self):
        a = doppler_shift_hz(-5.0, 400e6)
        b = doppler_shift_hz(-5.0, 800e6)
        assert b == pytest.approx(2 * a)

    def test_vectorized(self):
        rr = np.array([-7.5, 0.0, 7.5])
        shifts = doppler_shift_hz(rr, 400e6)
        assert shifts.shape == (3,)
        assert shifts[0] > 0 > shifts[2]

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            doppler_shift_hz(1.0, 0.0)


class TestDopplerRate:
    def test_constant_range_rate_has_zero_rate(self):
        rr = np.full(10, -3.0)
        rate = doppler_rate_hz_s(rr, 1.0, 400e6)
        np.testing.assert_allclose(rate, 0.0, atol=1e-9)

    def test_linear_ramp(self):
        # Range rate going from -7.5 to +7.5 km/s over 100 s: shift ramps
        # down linearly; the rate is constant and negative.
        rr = np.linspace(-7.5, 7.5, 101)
        rate = doppler_rate_hz_s(rr, 1.0, 400e6)
        expected = doppler_shift_hz(0.15, 400e6)  # per-second step
        np.testing.assert_allclose(rate, expected, rtol=1e-6)

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            doppler_rate_hz_s(np.zeros(5), 0.0, 400e6)


class TestMaxShift:
    def test_upper_bounds_actual(self):
        bound = max_doppler_shift_hz(7.6, 400.45e6)
        actual = abs(doppler_shift_hz(7.5, 400.45e6))
        assert bound >= actual
