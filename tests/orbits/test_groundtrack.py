"""Tests for ground tracks and coverage grids."""

import numpy as np
import pytest

from satiot.orbits.groundtrack import CoverageGrid, ground_track
from satiot.orbits.sgp4 import SGP4

from tests.conftest import make_test_tle


@pytest.fixture(scope="module")
def sat():
    return SGP4(make_test_tle())


class TestGroundTrack:
    def test_latitude_bounded_by_inclination(self, sat):
        lat, lon, alt = ground_track(sat, sat.tle.epoch,
                                     np.arange(0.0, 86400.0, 30.0))
        assert np.abs(lat).max() <= 49.97 + 0.3

    def test_polar_orbit_reaches_high_latitude(self):
        polar = SGP4(make_test_tle(inclination_deg=97.5))
        lat, _lon, _alt = ground_track(polar, polar.tle.epoch,
                                       np.arange(0.0, 86400.0, 30.0))
        assert np.abs(lat).max() > 80.0

    def test_altitude_near_orbit(self, sat):
        _lat, _lon, alt = ground_track(sat, sat.tle.epoch,
                                       np.arange(0.0, 6000.0, 60.0))
        assert 820.0 < alt.min() and alt.max() < 900.0

    def test_longitudes_in_range(self, sat):
        _lat, lon, _alt = ground_track(sat, sat.tle.epoch,
                                       np.arange(0.0, 6000.0, 60.0))
        assert np.all(lon >= -180.0) and np.all(lon <= 180.0)


class TestCoverageGrid:
    def test_empty_grid_shape(self):
        grid = CoverageGrid.empty(10.0, 3600.0)
        assert grid.hours.shape == (18, 36)
        assert grid.covered_fraction() == 0.0

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            CoverageGrid.empty(0.0, 3600.0)

    def test_single_satellite_partial_coverage(self, sat):
        grid = CoverageGrid.empty(15.0, 6 * 3600.0)
        grid.accumulate(sat, sat.tle.epoch, step_s=120.0)
        frac = grid.covered_fraction()
        # One LEO satellite over six hours covers a band, not the globe.
        assert 0.1 < frac < 0.9

    def test_inclination_limits_coverage_band(self, sat):
        grid = CoverageGrid.empty(10.0, 12 * 3600.0)
        grid.accumulate(sat, sat.tle.epoch, step_s=120.0)
        # Cells well poleward of inclination + footprint stay dark.
        polar_rows = np.abs(grid.lats) > 80.0
        assert grid.hours[polar_rows].sum() == 0.0

    def test_union_never_exceeds_span(self, sat):
        sats = [SGP4(make_test_tle(norad_id=44001 + i,
                                   raan_deg=60.0 * i))
                for i in range(3)]
        grid = CoverageGrid.empty(15.0, 4 * 3600.0)
        grid.accumulate_union(sats, sats[0].tle.epoch, step_s=120.0)
        assert grid.hours.max() <= 4.0 + 1e-9

    def test_union_bounded_by_sum(self, sat):
        sats = [SGP4(make_test_tle(norad_id=44001 + i,
                                   mean_anomaly_deg=30.0 * i))
                for i in range(3)]
        epoch = sats[0].tle.epoch
        union = CoverageGrid.empty(15.0, 4 * 3600.0)
        union.accumulate_union(sats, epoch, step_s=180.0)
        total = CoverageGrid.empty(15.0, 4 * 3600.0)
        for s in sats:
            total.accumulate(s, epoch, step_s=180.0)
        assert np.all(union.hours <= total.hours + 1e-9)

    def test_hours_at_lookup(self, sat):
        grid = CoverageGrid.empty(15.0, 6 * 3600.0)
        grid.accumulate(sat, sat.tle.epoch, step_s=120.0)
        # Mid-latitude cell under a 50-degree orbit sees the satellite.
        assert grid.hours_at(45.0, 0.0) >= 0.0
        assert grid.hours_at(22.3, 114.2) >= 0.0

    def test_mask_reduces_coverage(self, sat):
        open_grid = CoverageGrid.empty(15.0, 6 * 3600.0)
        open_grid.accumulate(sat, sat.tle.epoch, step_s=180.0)
        masked = CoverageGrid.empty(15.0, 6 * 3600.0)
        masked.accumulate(sat, sat.tle.epoch, step_s=180.0,
                          min_elevation_deg=20.0)
        assert masked.hours.sum() < open_grid.hours.sum()


class TestRenderAscii:
    def test_dimensions(self, sat):
        grid = CoverageGrid.empty(15.0, 4 * 3600.0)
        grid.accumulate(sat, sat.tle.epoch, step_s=300.0)
        lines = grid.render_ascii().splitlines()
        assert len(lines) == len(grid.lats)
        assert all(len(line) == len(grid.lons) for line in lines)

    def test_empty_grid_blank(self):
        grid = CoverageGrid.empty(30.0, 3600.0)
        rendered = grid.render_ascii()
        assert set(rendered) <= {" ", "\n"}

    def test_inclination_band_darker_than_poles(self, sat):
        # A 50-degree orbit's map has its densest rows near +/-50 and
        # blank rows at the poles.
        grid = CoverageGrid.empty(10.0, 12 * 3600.0)
        grid.accumulate(sat, sat.tle.epoch, step_s=240.0)
        lines = grid.render_ascii().splitlines()
        top_row = lines[0]      # ~85 N
        assert set(top_row) == {" "}

    def test_invalid_levels(self):
        grid = CoverageGrid.empty(30.0, 3600.0)
        import pytest
        with pytest.raises(ValueError):
            grid.render_ascii(levels="")
