"""Hypothesis round-trip properties of the TLE codec.

The catalog layer archives element sets as verbatim lines and
fingerprints them through ``format_tle`` (see
:func:`satiot.runtime.ephemeris_cache.tle_fingerprint`), so the codec
must be a *fixed point*: ``format(parse(format(t)))`` has to reproduce
the exact same 69-column lines.  These properties sweep the whole
representable field space — signed ``bstar``/``nddot`` exponent
fields, the 1957/2056 two-digit epoch-year pivot, checksum columns —
and pin the asymmetries that were found and fixed along the way
(negative-zero ``ndot``, eccentricities and epoch days that round out
of their column's range).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.orbits.tle import (TLE, TLEError, checksum, format_tle,
                               parse_tle)

pytestmark = pytest.mark.property

_INTL_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def _exp_fields() -> st.SearchStrategy:
    """Values exactly representable in the 5-digit signed-exponent
    notation: ``sign * 0.MMMMM * 10**e`` with a single exponent digit."""
    representable = st.builds(
        lambda sign, mantissa, exponent: sign * (mantissa / 1e5)
        * 10.0 ** exponent,
        st.sampled_from((-1.0, 1.0)),
        st.integers(min_value=1, max_value=99999),
        st.integers(min_value=-9, max_value=8))
    return st.just(0.0) | representable


def tle_strategy() -> st.SearchStrategy:
    return st.builds(
        TLE,
        name=st.just("PROP-SAT"),
        norad_id=st.integers(min_value=1, max_value=99999),
        classification=st.sampled_from("UCS"),
        intl_designator=st.text(alphabet=_INTL_ALPHABET, min_size=0,
                                max_size=8),
        epochyr=st.integers(min_value=0, max_value=99),
        epochdays=st.floats(min_value=0.5, max_value=366.4)
        .map(lambda d: round(d, 8)),
        ndot=st.floats(min_value=-0.5, max_value=0.5,
                       allow_nan=False).map(lambda x: round(x, 8)),
        nddot=_exp_fields(),
        bstar=_exp_fields(),
        ephemeris_type=st.integers(min_value=0, max_value=9),
        element_set_no=st.integers(min_value=0, max_value=9999),
        inclination_deg=st.floats(min_value=0.0, max_value=180.0)
        .map(lambda x: round(x, 4)),
        raan_deg=st.floats(min_value=0.0, max_value=359.9999)
        .map(lambda x: round(x, 4)),
        eccentricity=st.floats(min_value=0.0, max_value=0.9999999)
        .map(lambda x: round(x, 7)),
        argp_deg=st.floats(min_value=0.0, max_value=359.9999)
        .map(lambda x: round(x, 4)),
        mean_anomaly_deg=st.floats(min_value=0.0, max_value=359.9999)
        .map(lambda x: round(x, 4)),
        mean_motion_rev_day=st.floats(min_value=0.01, max_value=17.0)
        .map(lambda x: round(x, 8)),
        rev_number=st.integers(min_value=0, max_value=99999),
    )


class TestLineFixedPoint:
    @given(tle_strategy())
    @settings(max_examples=300, deadline=None)
    def test_format_parse_format_is_identity_on_lines(self, tle):
        """The codec's canonical form is a fixed point — the property
        ``tle_fingerprint`` and the catalog's byte-exact storage rest
        on."""
        line1, line2 = format_tle(tle)
        assert len(line1) == 69 and len(line2) == 69
        parsed = parse_tle(line1, line2, name=tle.name)
        assert format_tle(parsed) == (line1, line2)

    @given(tle_strategy())
    @settings(max_examples=200, deadline=None)
    def test_checksums_valid_and_load_bearing(self, tle):
        line1, line2 = format_tle(tle)
        assert int(line1[68]) == checksum(line1)
        assert int(line2[68]) == checksum(line2)
        # Any digit flip in the body must be caught by the checksum.
        body = line1[:68]
        digit_cols = [i for i, ch in enumerate(body) if ch.isdigit()]
        col = digit_cols[len(digit_cols) // 2]
        flipped = (body[:col]
                   + str((int(body[col]) + 1) % 10) + body[col + 1:]
                   + line1[68])
        with pytest.raises(TLEError, match="checksum"):
            parse_tle(flipped, line2)


class TestFieldRoundTrip:
    @given(tle_strategy())
    @settings(max_examples=300, deadline=None)
    def test_fields_survive_at_column_precision(self, tle):
        line1, line2 = format_tle(tle)
        parsed = parse_tle(line1, line2)
        assert parsed.norad_id == tle.norad_id
        assert parsed.classification == tle.classification
        assert parsed.intl_designator == tle.intl_designator
        assert parsed.epochyr == tle.epochyr
        assert parsed.ephemeris_type == tle.ephemeris_type
        assert parsed.element_set_no == tle.element_set_no
        assert parsed.rev_number == tle.rev_number
        assert parsed.epochdays == pytest.approx(tle.epochdays,
                                                 abs=5e-9)
        assert parsed.ndot == pytest.approx(tle.ndot, abs=5e-9)
        assert parsed.inclination_deg == pytest.approx(
            tle.inclination_deg, abs=5e-5)
        assert parsed.raan_deg == pytest.approx(tle.raan_deg, abs=5e-5)
        assert parsed.argp_deg == pytest.approx(tle.argp_deg, abs=5e-5)
        assert parsed.mean_anomaly_deg == pytest.approx(
            tle.mean_anomaly_deg, abs=5e-5)
        assert parsed.eccentricity == pytest.approx(tle.eccentricity,
                                                    abs=5e-8)
        assert parsed.mean_motion_rev_day == pytest.approx(
            tle.mean_motion_rev_day, abs=5e-9)

    @given(_exp_fields())
    @settings(max_examples=300, deadline=None)
    def test_signed_exponent_fields_roundtrip(self, value):
        """``bstar``/``nddot`` columns: sign, 5-digit mantissa and the
        signed single-digit exponent all survive."""
        tle = _base_tle(bstar=value, nddot=value)
        parsed = parse_tle(*format_tle(tle))
        assert parsed.bstar == pytest.approx(value, rel=1e-9,
                                             abs=1e-14)
        assert parsed.nddot == pytest.approx(value, rel=1e-9,
                                             abs=1e-14)


class TestEpochPivot:
    @given(st.integers(min_value=0, max_value=99))
    @settings(max_examples=100, deadline=None)
    def test_two_digit_year_pivot(self, epochyr):
        """Years 57..99 are 1957..1999; years 00..56 are 2000..2056
        (the classic TLE pivot — 1957 is Sputnik's launch year)."""
        tle = _base_tle(epochyr=epochyr, epochdays=100.0)
        parsed = parse_tle(*format_tle(tle))
        year = parsed.epoch.calendar()[0]
        expected = epochyr + 1900 if epochyr >= 57 else epochyr + 2000
        assert year == expected
        assert parsed.epochyr == epochyr

    def test_pivot_boundaries(self):
        assert _epoch_year(_base_tle(epochyr=57)) == 1957
        assert _epoch_year(_base_tle(epochyr=56)) == 2056
        assert _epoch_year(_base_tle(epochyr=99)) == 1999
        assert _epoch_year(_base_tle(epochyr=0)) == 2000


class TestFoundAsymmetries:
    """Regression pins for the asymmetries the sweep uncovered."""

    def test_negative_zero_ndot_is_canonical_positive(self):
        # -1e-12 rounds to the zero field; writing '-' would make
        # parse (-> +0.0) -> format flip the sign column.
        for ndot in (-0.0, -1e-12, -4.9e-9):
            line1, _ = format_tle(_base_tle(ndot=ndot))
            assert line1[33] == " "
            parsed = parse_tle(*format_tle(_base_tle(ndot=ndot)))
            assert format_tle(parsed)[0] == line1

    def test_eccentricity_rounding_to_one_rejected(self):
        with pytest.raises(TLEError, match="eccentricity"):
            format_tle(_base_tle(eccentricity=0.99999996))

    def test_epochdays_rounding_out_of_range_rejected(self):
        with pytest.raises(TLEError, match="epoch day"):
            format_tle(_base_tle(epochdays=366.999999999))
        with pytest.raises(TLEError, match="epoch day"):
            format_tle(_base_tle(epochdays=1e-9))

    def test_ndot_rounding_to_one_rejected(self):
        with pytest.raises(TLEError, match="ndot"):
            format_tle(_base_tle(ndot=0.9999999999))


def _base_tle(**overrides) -> TLE:
    fields = dict(
        name="PIN-SAT", norad_id=70001, classification="U",
        intl_designator="25001A", epochyr=25, epochdays=100.0,
        ndot=0.0, nddot=0.0, bstar=2.0e-5, ephemeris_type=0,
        element_set_no=999, inclination_deg=53.0, raan_deg=120.0,
        eccentricity=0.0008, argp_deg=30.0, mean_anomaly_deg=10.0,
        mean_motion_rev_day=15.05, rev_number=1)
    fields.update(overrides)
    return TLE(**fields)


def _epoch_year(tle: TLE) -> int:
    return tle.epoch.calendar()[0]
