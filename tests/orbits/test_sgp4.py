"""SGP4 propagator validation.

With no reference ephemeris available offline, correctness rests on
physical invariants plus agreement with the independent J2 secular
propagator (no shared code), which would expose any sign/unit error.
"""


import numpy as np
import pytest

from satiot.orbits.constants import MU_EARTH_KM3_S2
from satiot.orbits.j2 import J2Propagator
from satiot.orbits.kepler import KeplerianElements, semi_major_axis_km
from satiot.orbits.sgp4 import SGP4, DecayedError, DeepSpaceError, SGP4Error

from tests.conftest import make_test_tle


@pytest.fixture(scope="module")
def sat():
    return SGP4(make_test_tle())


class TestPhysicalInvariants:
    def test_radius_band(self, sat):
        r, _ = sat.propagate(np.arange(0.0, 86400.0, 60.0))
        radius = np.linalg.norm(r, axis=1)
        # 850 km circular orbit: radius near 7228 km throughout.
        assert radius.min() > 7200.0
        assert radius.max() < 7260.0

    def test_speed_band(self, sat):
        _, v = sat.propagate(np.arange(0.0, 86400.0, 60.0))
        speed = np.linalg.norm(v, axis=1)
        assert 7.3 < speed.min() and speed.max() < 7.6

    def test_vis_viva(self, sat):
        r, v = sat.propagate(np.arange(0.0, 6000.0, 30.0))
        radius = np.linalg.norm(r, axis=1)
        speed = np.linalg.norm(v, axis=1)
        a = semi_major_axis_km(sat.tle.mean_motion_rev_day)
        expected = np.sqrt(MU_EARTH_KM3_S2 * (2.0 / radius - 1.0 / a))
        assert np.max(np.abs(speed - expected) / expected) < 0.01

    def test_inclination_preserved(self, sat):
        r, v = sat.propagate(np.arange(0.0, 86400.0, 120.0))
        h = np.cross(r, v)
        incl = np.degrees(np.arccos(h[:, 2] / np.linalg.norm(h, axis=1)))
        assert np.all(np.abs(incl - 49.97) < 0.2)

    def test_period_consistency(self, sat):
        period_s = 86400.0 / sat.tle.mean_motion_rev_day
        r0, _ = sat.propagate(0.0)
        r1, _ = sat.propagate(period_s)
        # One nodal period later the satellite is nearly back (J2 drift
        # displaces the orbit slightly).
        assert np.linalg.norm(r1 - r0) < 100.0

    def test_velocity_is_position_derivative(self, sat):
        t0, dt = 1234.0, 0.5
        r_minus, _ = sat.propagate(t0 - dt)
        r_plus, _ = sat.propagate(t0 + dt)
        _, v = sat.propagate(t0)
        numeric = (r_plus - r_minus) / (2 * dt)
        assert np.linalg.norm(numeric - v) < 1e-3 * np.linalg.norm(v)


class TestAgainstJ2:
    def test_positions_agree_over_one_orbit(self):
        tle = make_test_tle(eccentricity=0.001)
        sat = SGP4(tle)
        elements = KeplerianElements(
            semi_major_axis_km=semi_major_axis_km(tle.mean_motion_rev_day),
            eccentricity=tle.eccentricity,
            inclination_rad=tle.inclination_rad,
            raan_rad=tle.raan_rad,
            argp_rad=tle.argp_rad,
            mean_anomaly_rad=tle.mean_anomaly_rad)
        j2 = J2Propagator(elements)
        t = np.arange(0.0, 6200.0, 30.0)
        r_sgp4, _ = sat.propagate(t)
        r_j2, _ = j2.propagate(t)
        # Mean-element interpretations differ slightly; 30 km over an
        # orbit of 7,228 km radius is < 0.5 % — far below any sign or
        # unit error, which would diverge by thousands of km.
        diff = np.linalg.norm(r_sgp4 - r_j2, axis=1)
        assert diff.max() < 30.0

    def test_raan_drift_direction(self):
        # Prograde orbit: RAAN regresses (westward) under J2; verify
        # SGP4's node motion matches the analytic J2 sign and magnitude.
        tle = make_test_tle(inclination_deg=49.97)
        sat = SGP4(tle)
        elements = KeplerianElements(
            semi_major_axis_km=semi_major_axis_km(tle.mean_motion_rev_day),
            eccentricity=tle.eccentricity,
            inclination_rad=tle.inclination_rad,
            raan_rad=tle.raan_rad, argp_rad=tle.argp_rad,
            mean_anomaly_rad=tle.mean_anomaly_rad)
        expected_rate = J2Propagator(elements).raan_dot  # rad/s
        assert expected_rate < 0.0
        assert sat.nodedot / 60.0 == pytest.approx(expected_rate, rel=0.01)


class TestVectorization:
    def test_scalar_matches_array(self, sat):
        times = [0.0, 500.0, 5000.0, 50000.0]
        r_vec, v_vec = sat.propagate(np.asarray(times))
        for i, t in enumerate(times):
            r, v = sat.propagate(t)
            np.testing.assert_allclose(r, r_vec[i], rtol=1e-12)
            np.testing.assert_allclose(v, v_vec[i], rtol=1e-12)

    def test_scalar_shape(self, sat):
        r, v = sat.propagate(0.0)
        assert r.shape == (3,) and v.shape == (3,)

    def test_negative_time(self, sat):
        r, _ = sat.propagate(-3600.0)
        assert 7200.0 < np.linalg.norm(r) < 7260.0


class TestErrorHandling:
    def test_deep_space_rejected(self):
        geo = make_test_tle(altitude_km=35786.0)
        with pytest.raises(DeepSpaceError):
            SGP4(geo)

    def test_subsurface_perigee_rejected(self):
        tle = make_test_tle(altitude_km=850.0, eccentricity=0.52)
        with pytest.raises(SGP4Error):
            SGP4(tle)

    def test_decay_detection(self):
        # Very high drag on a low orbit decays within weeks.
        tle = make_test_tle(altitude_km=180.0, bstar=5e-2)
        sat = SGP4(tle)
        with pytest.raises(DecayedError):
            sat.propagate(30 * 86400.0)

    def test_low_perigee_uses_simple_drag(self):
        tle = make_test_tle(altitude_km=200.0)
        assert SGP4(tle).isimp == 1
        r, _ = SGP4(tle).propagate(3600.0)
        assert np.linalg.norm(r) > 6378.0


class TestEccentricOrbit:
    def test_moderate_eccentricity(self):
        tle = make_test_tle(altitude_km=1200.0, eccentricity=0.03)
        sat = SGP4(tle)
        r, _ = sat.propagate(np.arange(0.0, 20000.0, 30.0))
        radius = np.linalg.norm(r, axis=1)
        a = semi_major_axis_km(tle.mean_motion_rev_day)
        assert radius.min() == pytest.approx(a * 0.97, rel=0.01)
        assert radius.max() == pytest.approx(a * 1.03, rel=0.01)
