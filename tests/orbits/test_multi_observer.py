"""Bit-identity of the multi-observer batch path vs. serial calls.

The serving layer's cache-key sharing between serial and batched pass
prediction is sound ONLY if batched evaluation over N observers is
bit-identical (``==``, not ``allclose``) to N independent serial calls.
These tests pin that contract, property-style via hypothesis over
observer locations and deterministically over the refine modes, masks
and edge-case observers (poles, antimeridian, altitude).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.constellations.catalog import build_constellation
from satiot.orbits import GeodeticPoint, find_passes_multi
from satiot.orbits.passes import PassPredictor, observer_geometry
from satiot.orbits.topocentric import (batch_elevations,
                                       batch_look_angles, ecef_states,
                                       elevation_from_ecef, look_angles)
from satiot.runtime.ephemeris_cache import EphemerisCache

SEED = 7


@pytest.fixture(scope="module")
def satellites():
    return list(build_constellation("tianqi", seed=SEED))[:3]


@pytest.fixture(scope="module")
def states(satellites):
    """Shared TEME grid of one satellite over 4 h at 60 s."""
    sat = satellites[0]
    epoch = sat.tle.epoch
    offsets = PassPredictor.coarse_offsets(4 * 3600.0, 60.0)
    r, v = sat.propagator.propagate(offsets.astype(float))
    return epoch, offsets, np.asarray(r, float), np.asarray(v, float)


EDGE_OBSERVERS = [
    GeodeticPoint(89.9, 0.0, 0.0),      # near north pole
    GeodeticPoint(-89.9, 180.0, 0.0),   # near south pole, antimeridian
    GeodeticPoint(0.0, -180.0, 0.0),    # equator, date line
    GeodeticPoint(22.3, 114.2, 5.0),    # 5 km altitude
    GeodeticPoint(-33.9, 151.2, 0.05),
]

observer_strategy = st.builds(
    GeodeticPoint,
    st.floats(min_value=-89.99, max_value=89.99),
    st.floats(min_value=-180.0, max_value=180.0),
    st.floats(min_value=0.0, max_value=8.0),
)


class TestLookAngleBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(observer_strategy, min_size=1, max_size=5))
    def test_batch_look_angles_rows_equal_serial(self, states,
                                                 observers):
        epoch, offsets, r, v = states
        jd = epoch.offset_jd(offsets)
        batched = batch_look_angles(observers, r, v, jd)
        for m, observer in enumerate(observers):
            serial = look_angles(observer, r, v, jd)
            assert np.array_equal(batched.azimuth_deg[m],
                                  serial.azimuth_deg)
            assert np.array_equal(batched.elevation_deg[m],
                                  serial.elevation_deg)
            assert np.array_equal(batched.range_km[m],
                                  serial.range_km)
            assert np.array_equal(batched.range_rate_km_s[m],
                                  serial.range_rate_km_s)

    def test_batch_elevations_rows_equal_serial(self, states):
        epoch, offsets, r, v = states
        r_ecef, _ = ecef_states(r, v, epoch.offset_jd(offsets))
        matrix = batch_elevations(EDGE_OBSERVERS, r_ecef)
        assert matrix.shape == (len(EDGE_OBSERVERS), offsets.size)
        for m, observer in enumerate(EDGE_OBSERVERS):
            assert np.array_equal(
                matrix[m], elevation_from_ecef(observer, r_ecef))

    def test_precomputed_geometry_is_bit_identical(self, states):
        epoch, offsets, r, v = states
        r_ecef, _ = ecef_states(r, v, epoch.offset_jd(offsets))
        observer = EDGE_OBSERVERS[3]
        [(site, rot)] = observer_geometry([observer])
        assert np.array_equal(
            elevation_from_ecef(observer, r_ecef, site=site, rot=rot),
            elevation_from_ecef(observer, r_ecef))

    def test_scalar_state_matches_batched_element(self, states):
        epoch, offsets, r, v = states
        jd = epoch.offset_jd(offsets)
        observer = EDGE_OBSERVERS[0]
        full = look_angles(observer, r, v, jd)
        k = offsets.size // 2
        single = look_angles(observer, r[k], v[k], float(jd[k]))
        assert single.elevation_deg == full.elevation_deg[k]
        assert single.azimuth_deg == full.azimuth_deg[k]
        assert single.range_km == full.range_km[k]
        assert single.range_rate_km_s == full.range_rate_km_s[k]


class TestPassBitIdentity:
    @pytest.mark.parametrize("refine", ["bisect", "interp"])
    @pytest.mark.parametrize("mask_deg", [0.0, 10.0])
    def test_find_passes_multi_equals_serial(self, satellites, refine,
                                             mask_deg):
        epoch = satellites[0].tle.epoch
        duration = 12 * 3600.0
        observers = EDGE_OBSERVERS
        for sat in satellites:
            rows = find_passes_multi(sat.propagator, observers, epoch,
                                     duration, coarse_step_s=60.0,
                                     min_elevation_deg=mask_deg,
                                     refine=refine)
            for observer, windows in zip(observers, rows):
                predictor = PassPredictor(sat.propagator, observer,
                                          mask_deg)
                serial = predictor.find_passes(epoch, duration,
                                               coarse_step_s=60.0,
                                               refine=refine)
                assert windows == serial

    @settings(max_examples=10, deadline=None)
    @given(st.lists(observer_strategy, min_size=2, max_size=4))
    def test_find_passes_multi_random_observers(self, satellites,
                                                observers):
        sat = satellites[0]
        epoch = sat.tle.epoch
        rows = find_passes_multi(sat.propagator, observers, epoch,
                                 6 * 3600.0, coarse_step_s=60.0,
                                 min_elevation_deg=5.0, refine="interp")
        for observer, windows in zip(observers, rows):
            predictor = PassPredictor(sat.propagator, observer, 5.0)
            assert windows == predictor.find_passes(
                epoch, 6 * 3600.0, coarse_step_s=60.0, refine="interp")

    def test_cache_keys_shared_between_serial_and_batch(self,
                                                        satellites):
        """A batched computation must satisfy later serial lookups."""
        sat = satellites[0]
        epoch = sat.tle.epoch
        cache = EphemerisCache()
        observers = EDGE_OBSERVERS[:3]
        rows = cache.find_passes_multi(sat.propagator, observers, epoch,
                                       6 * 3600.0, coarse_step_s=60.0,
                                       min_elevation_deg=10.0,
                                       refine="interp")
        misses = cache.stats.pass_misses
        for observer, windows in zip(observers, rows):
            serial = cache.find_passes(sat.propagator, observer, epoch,
                                       6 * 3600.0, coarse_step_s=60.0,
                                       min_elevation_deg=10.0,
                                       refine="interp")
            assert serial == windows
        assert cache.stats.pass_misses == misses  # all serial = hits
        assert cache.stats.pass_hits >= len(observers)
