"""Tests for the analytic J2 cross-check propagator itself."""

import math

import numpy as np
import pytest

from satiot.orbits.constants import MU_EARTH_KM3_S2
from satiot.orbits.j2 import J2Propagator
from satiot.orbits.kepler import KeplerianElements


def make_elements(incl_deg=50.0, a=7228.0, e=0.001):
    return KeplerianElements(
        semi_major_axis_km=a, eccentricity=e,
        inclination_rad=math.radians(incl_deg),
        raan_rad=1.0, argp_rad=0.3, mean_anomaly_rad=0.0)


class TestSecularRates:
    def test_prograde_raan_regression(self):
        assert J2Propagator(make_elements(50.0)).raan_dot < 0.0

    def test_retrograde_raan_progression(self):
        assert J2Propagator(make_elements(97.6)).raan_dot > 0.0

    def test_sun_synchronous_rate(self):
        # ~98 deg at 700 km is near sun-synchronous: RAAN advances about
        # 0.9856 deg/day (2 pi per year).
        el = KeplerianElements(
            semi_major_axis_km=6378.137 + 700.0, eccentricity=0.001,
            inclination_rad=math.radians(98.19),
            raan_rad=0.0, argp_rad=0.0, mean_anomaly_rad=0.0)
        rate_deg_day = math.degrees(J2Propagator(el).raan_dot) * 86400.0
        assert rate_deg_day == pytest.approx(0.9856, abs=0.05)

    def test_critical_inclination_freezes_perigee(self):
        # At 63.43 deg the apsidal rate vanishes.
        assert abs(J2Propagator(make_elements(63.43)).argp_dot) < 1e-9


class TestPropagation:
    def test_radius_band(self):
        j2 = J2Propagator(make_elements())
        r, _ = j2.propagate(np.arange(0.0, 20000.0, 60.0))
        radius = np.linalg.norm(r, axis=1)
        assert radius.min() > 7200.0 and radius.max() < 7260.0

    def test_energy_consistency(self):
        j2 = J2Propagator(make_elements())
        r, v = j2.propagate(np.arange(0.0, 6000.0, 60.0))
        radius = np.linalg.norm(r, axis=1)
        speed = np.linalg.norm(v, axis=1)
        energy = 0.5 * speed**2 - MU_EARTH_KM3_S2 / radius
        expected = -MU_EARTH_KM3_S2 / (2 * 7228.0)
        np.testing.assert_allclose(energy, expected, rtol=1e-3)

    def test_scalar_shape(self):
        r, v = J2Propagator(make_elements()).propagate(100.0)
        assert r.shape == (3,) and v.shape == (3,)
