"""Tests for contact-window prediction."""

import numpy as np
import pytest

from satiot.orbits.frames import GeodeticPoint
from satiot.orbits.passes import ContactWindow, PassPredictor
from satiot.orbits.sgp4 import SGP4

from tests.conftest import make_test_tle


@pytest.fixture(scope="module")
def predictor():
    sat = SGP4(make_test_tle())
    return PassPredictor(sat, GeodeticPoint(22.30, 114.17), 0.0)


@pytest.fixture(scope="module")
def day_windows(predictor):
    return predictor.find_passes(predictor.propagator.tle.epoch, 86400.0)


class TestContactWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContactWindow(rise_s=100.0, set_s=50.0, culmination_s=75.0,
                          max_elevation_deg=10.0)

    def test_duration_and_midpoint(self):
        w = ContactWindow(rise_s=100.0, set_s=700.0, culmination_s=400.0,
                          max_elevation_deg=45.0)
        assert w.duration_s == 600.0
        assert w.midpoint_s == 400.0

    def test_contains_and_position(self):
        w = ContactWindow(rise_s=0.0, set_s=100.0, culmination_s=50.0,
                          max_elevation_deg=45.0)
        assert w.contains(50.0) and not w.contains(101.0)
        assert w.normalized_position(25.0) == pytest.approx(0.25)


class TestFindPasses:
    def test_pass_count_plausible(self, day_windows):
        # 850 km / 50 deg inclination over Hong Kong: several passes/day.
        assert 4 <= len(day_windows) <= 12

    def test_windows_sorted_and_disjoint(self, day_windows):
        for a, b in zip(day_windows, day_windows[1:]):
            assert a.set_s < b.rise_s

    def test_durations_are_pass_scale(self, day_windows):
        # LEO passes last minutes, not hours (paper: ~10 minutes).
        for w in day_windows:
            if not (w.clipped_start or w.clipped_end):
                assert 30.0 < w.duration_s < 1500.0

    def test_boundary_elevations_near_mask(self, predictor, day_windows):
        epoch = predictor.propagator.tle.epoch
        for w in day_windows[:4]:
            if not w.clipped_start:
                assert abs(predictor.elevation_at(epoch, w.rise_s)) < 0.5
            if not w.clipped_end:
                assert abs(predictor.elevation_at(epoch, w.set_s)) < 0.5

    def test_culmination_inside_window(self, day_windows):
        for w in day_windows:
            assert w.rise_s <= w.culmination_s <= w.set_s
            assert w.max_elevation_deg > 0.0

    def test_culmination_is_maximum(self, predictor, day_windows):
        epoch = predictor.propagator.tle.epoch
        w = max(day_windows, key=lambda w: w.max_elevation_deg)
        samples = np.linspace(w.rise_s, w.set_s, 40)
        elevations = np.asarray(
            predictor.look_angles_at(epoch, samples).elevation_deg)
        assert w.max_elevation_deg >= elevations.max() - 0.3

    def test_elevation_mask_reduces_durations(self):
        sat = SGP4(make_test_tle())
        site = GeodeticPoint(22.30, 114.17)
        epoch = sat.tle.epoch
        low = PassPredictor(sat, site, 0.0).find_passes(epoch, 86400.0)
        high = PassPredictor(sat, site, 20.0).find_passes(epoch, 86400.0)
        assert len(high) <= len(low)
        assert (sum(w.duration_s for w in high)
                < sum(w.duration_s for w in low))

    def test_polar_orbit_covers_high_latitude(self):
        sat = SGP4(make_test_tle(inclination_deg=97.5, altitude_km=510.0))
        tromso = GeodeticPoint(69.6, 18.9)
        windows = PassPredictor(sat, tromso).find_passes(
            sat.tle.epoch, 86400.0)
        # Sun-synchronous satellites pass high latitudes many times a day.
        assert len(windows) >= 6

    def test_low_inclination_never_seen_from_high_latitude(self):
        sat = SGP4(make_test_tle(inclination_deg=35.0, altitude_km=550.0))
        tromso = GeodeticPoint(69.6, 18.9)
        windows = PassPredictor(sat, tromso).find_passes(
            sat.tle.epoch, 86400.0)
        assert windows == []

    def test_invalid_arguments(self, predictor):
        epoch = predictor.propagator.tle.epoch
        with pytest.raises(ValueError):
            predictor.find_passes(epoch, -5.0)
        with pytest.raises(ValueError):
            predictor.find_passes(epoch, 3600.0, coarse_step_s=0.0)
        with pytest.raises(ValueError):
            PassPredictor(SGP4(make_test_tle()),
                          GeodeticPoint(0.0, 0.0), 95.0)

    def test_norad_id_propagated(self, day_windows):
        assert all(w.norad_id == 44001 for w in day_windows)
