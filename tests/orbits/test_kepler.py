"""Tests for Keplerian utilities and the Kepler equation solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.orbits.constants import MU_EARTH_KM3_S2
from satiot.orbits.kepler import (KeplerianElements, circular_velocity_km_s,
                                  eccentric_from_true,
                                  mean_motion_rev_day_from_altitude,
                                  orbital_period_s, semi_major_axis_km,
                                  solve_kepler, true_from_eccentric)


class TestSolveKepler:
    @given(m=st.floats(0.0, 2 * math.pi), e=st.floats(0.0, 0.95))
    @settings(max_examples=300)
    def test_residual_property(self, m, e):
        big_e = solve_kepler(m, e)
        # The solver wraps M into [0, 2 pi); compare residuals as angles.
        residual = (big_e - e * math.sin(big_e) - m) % (2 * math.pi)
        residual = min(residual, 2 * math.pi - residual)
        assert residual < 1e-9

    def test_circular_orbit_identity(self):
        for m in (0.1, 1.0, 3.0, 6.0):
            assert solve_kepler(m, 0.0) == pytest.approx(m)

    def test_vectorized(self):
        m = np.linspace(0, 2 * math.pi, 64, endpoint=False)
        e = np.full_like(m, 0.3)
        big_e = solve_kepler(m, e)
        residual = big_e - 0.3 * np.sin(big_e) - m
        assert np.max(np.abs(residual)) < 1e-9

    def test_invalid_eccentricity(self):
        with pytest.raises(ValueError):
            solve_kepler(1.0, 1.0)
        with pytest.raises(ValueError):
            solve_kepler(1.0, -0.1)


class TestAnomalyConversions:
    @given(nu=st.floats(-math.pi + 1e-6, math.pi - 1e-6),
           e=st.floats(0.0, 0.9))
    @settings(max_examples=200)
    def test_roundtrip(self, nu, e):
        big_e = eccentric_from_true(nu, e)
        back = true_from_eccentric(big_e, e)
        assert back == pytest.approx(nu, abs=1e-9)

    def test_circular_identity(self):
        assert true_from_eccentric(1.2, 0.0) == pytest.approx(1.2)


class TestOrbitSizing:
    def test_semi_major_axis_inverse(self):
        a = 7228.0
        n_rev_day = (86400.0
                     / (2 * math.pi / math.sqrt(MU_EARTH_KM3_S2 / a ** 3)))
        assert semi_major_axis_km(n_rev_day) == pytest.approx(a, rel=1e-9)

    def test_geostationary_altitude(self):
        # One rev/day corresponds to a ~42,164 km semi-major axis.
        assert semi_major_axis_km(1.0027) == pytest.approx(42164.0, rel=1e-3)

    def test_mean_motion_from_altitude(self):
        # ISS-like: 420 km -> about 15.5 rev/day.
        n = mean_motion_rev_day_from_altitude(420.0)
        assert n == pytest.approx(15.49, abs=0.05)

    def test_circular_velocity(self):
        # Paper Appendix C: LEO at 500 km moves at ~7.6 km/s.
        assert circular_velocity_km_s(500.0) == pytest.approx(7.61, abs=0.02)

    def test_period(self):
        assert orbital_period_s(6378.137 + 500.0) \
            == pytest.approx(5677.0, rel=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            semi_major_axis_km(0.0)
        with pytest.raises(ValueError):
            mean_motion_rev_day_from_altitude(-7000.0)


class TestKeplerianElements:
    def make(self, **kwargs):
        defaults = dict(semi_major_axis_km=7228.0, eccentricity=0.001,
                        inclination_rad=math.radians(50.0),
                        raan_rad=1.0, argp_rad=0.5, mean_anomaly_rad=0.2)
        defaults.update(kwargs)
        return KeplerianElements(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(semi_major_axis_km=-1.0)
        with pytest.raises(ValueError):
            self.make(eccentricity=1.0)

    def test_apsis_altitudes(self):
        el = self.make(eccentricity=0.01)
        assert el.apogee_altitude_km > el.perigee_altitude_km
        mid = 0.5 * (el.apogee_altitude_km + el.perigee_altitude_km)
        assert mid == pytest.approx(7228.0 - 6378.137, abs=0.1)

    def test_inertial_radius(self):
        el = self.make()
        r, v = el.to_inertial(0.3)
        radius = np.linalg.norm(r)
        assert 7228.0 * 0.99 < radius < 7228.0 * 1.01
        # Vis-viva check.
        speed = np.linalg.norm(v)
        expected = math.sqrt(MU_EARTH_KM3_S2 * (2.0 / radius - 1.0 / 7228.0))
        assert speed == pytest.approx(expected, rel=1e-9)

    def test_angular_momentum_direction(self):
        el = self.make(inclination_rad=math.radians(90.0), raan_rad=0.0)
        r, v = el.to_inertial(1.0)
        h = np.cross(r, v)
        # Polar orbit with RAAN 0: angular momentum has no z for i=90.
        assert abs(h[2]) < 1e-6 * np.linalg.norm(h)
