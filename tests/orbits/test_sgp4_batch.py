"""Bit-identity of the constellation-batched SGP4 kernel.

Every downstream consumer (fleet pass search, the ephemeris cache's
constellation-grid product, the serving fleet flush, the passive fleet
sweep) shares cache keys and traces with the scalar per-satellite path,
which is sound ONLY if ``SGP4Batch.propagate`` row ``n`` is
bit-identical (``==``, not ``allclose``) to
``SGP4(tles[n]).propagate``.  These tests pin that contract
property-style over random Table-3-style element sets, mixed epochs
and ragged per-satellite time grids, plus the fleet pass search against
nested serial prediction and the coarse-grid float-drift regression.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.constellations.catalog import build_constellation
from satiot.orbits import (SGP4, GeodeticPoint, SGP4Batch,
                           batching_enabled, find_passes_fleet)
from satiot.orbits.passes import PassPredictor, find_passes_multi
from satiot.orbits.sgp4 import DecayedError
from satiot.orbits.sgp4_batch import BATCH_ENV
from satiot.orbits.tle import TLE

from ..conftest import make_test_tle

SEED = 7


def _tle(index: int, altitude_km: float, inclination_deg: float,
         eccentricity: float, bstar: float, raan_deg: float,
         mean_anomaly_deg: float, epochdays: float) -> TLE:
    base = make_test_tle(
        altitude_km=altitude_km, inclination_deg=inclination_deg,
        eccentricity=eccentricity, norad_id=44001 + index,
        bstar=bstar, raan_deg=raan_deg,
        mean_anomaly_deg=mean_anomaly_deg)
    return dataclasses.replace(base, epochdays=epochdays)


#: Table-3-style LEO element sets: the study's constellations span
#: ~500-1200 km altitudes and 45-98 deg inclinations.
element_strategy = st.builds(
    lambda *a: a,
    st.floats(min_value=350.0, max_value=1400.0),    # altitude_km
    st.floats(min_value=10.0, max_value=120.0),      # inclination_deg
    st.floats(min_value=0.0, max_value=0.02),        # eccentricity
    st.floats(min_value=-1.0e-4, max_value=1.0e-4),  # bstar
    st.floats(min_value=0.0, max_value=359.9),       # raan_deg
    st.floats(min_value=0.0, max_value=359.9),       # mean_anomaly_deg
    st.floats(min_value=200.0, max_value=300.0),     # epochdays (mixed)
)


def _build_fleet(elements) -> list:
    return [SGP4(_tle(i, *params)) for i, params in enumerate(elements)]


@pytest.fixture(scope="module")
def study_fleet():
    """All four study constellations stacked (the paper's 39 birds)."""
    sats = []
    for name in ("tianqi", "cstp", "fossa", "pico"):
        sats.extend(build_constellation(name, seed=SEED))
    return [s.propagator for s in sats]


class TestPropagateBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(element_strategy, min_size=1, max_size=6),
           st.integers(min_value=1, max_value=400),
           st.floats(min_value=1.0, max_value=600.0))
    def test_rows_equal_scalar(self, elements, t_len, step_s):
        """Shared grid: each batched row == the scalar propagation."""
        props = _build_fleet(elements)
        batch = SGP4Batch.from_propagators(props)
        tsince = np.arange(t_len, dtype=float) * step_s
        r, v = batch.propagate(tsince)
        assert r.shape == (len(props), t_len, 3)
        for i, prop in enumerate(props):
            r_s, v_s = prop.propagate(tsince)
            assert np.array_equal(r[i], r_s)
            assert np.array_equal(v[i], v_s)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(element_strategy, min_size=2, max_size=5),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_ragged_rows_equal_scalar(self, elements, rng_seed):
        """Per-satellite (N, T) offsets: rows stay bit-identical."""
        props = _build_fleet(elements)
        batch = SGP4Batch.from_propagators(props)
        rng = np.random.default_rng(rng_seed)
        tsince = rng.uniform(-600.0, 6 * 3600.0,
                             size=(len(props), 50))
        r, v = batch.propagate(tsince)
        for i, prop in enumerate(props):
            r_s, v_s = prop.propagate(tsince[i])
            assert np.array_equal(r[i], r_s)
            assert np.array_equal(v[i], v_s)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(element_strategy, min_size=1, max_size=4))
    def test_propagate_offsets_mixed_epochs(self, elements):
        """A shared absolute grid maps onto each satellite's epoch."""
        props = _build_fleet(elements)
        batch = SGP4Batch.from_propagators(props)
        epoch = props[0].tle.epoch + 3600.0
        offsets = np.arange(40, dtype=float) * 90.0
        r, v = batch.propagate_offsets(epoch, offsets)
        for i, prop in enumerate(props):
            tsince = float(epoch - prop.tle.epoch) + offsets
            r_s, v_s = prop.propagate(tsince)
            assert np.array_equal(r[i], r_s)
            assert np.array_equal(v[i], v_s)

    def test_study_fleet_bit_identical(self, study_fleet):
        """The paper's full 39-satellite fleet over a 1-day 30 s grid."""
        batch = SGP4Batch.from_propagators(study_fleet)
        epoch = study_fleet[0].tle.epoch
        offsets = PassPredictor.coarse_offsets(86400.0, 30.0)
        r, v = batch.propagate_offsets(epoch, offsets)
        for i, prop in enumerate(study_fleet):
            tsince = float(epoch - prop.tle.epoch) + offsets
            r_s, v_s = prop.propagate(tsince)
            assert np.array_equal(r[i], r_s)
            assert np.array_equal(v[i], v_s)

    def test_mixed_isimp_fleet(self):
        """Low-perigee (isimp) satellites ride with normal ones.

        Simple-drag satellites skip the higher-order drag block
        entirely; applying it with zeroed coefficients would NOT be
        equivalent (omgcof is generally non-zero for them).
        """
        props = [SGP4(make_test_tle(altitude_km=850.0, norad_id=1)),
                 SGP4(make_test_tle(altitude_km=200.0, norad_id=2)),
                 SGP4(make_test_tle(altitude_km=600.0, norad_id=3)),
                 SGP4(make_test_tle(altitude_km=210.0, norad_id=4))]
        isimps = {p.isimp for p in props}
        assert isimps == {0, 1}, "fixture must mix isimp branches"
        batch = SGP4Batch.from_propagators(props)
        tsince = np.arange(120, dtype=float) * 60.0
        r, v = batch.propagate(tsince)
        for i, prop in enumerate(props):
            r_s, v_s = prop.propagate(tsince)
            assert np.array_equal(r[i], r_s)
            assert np.array_equal(v[i], v_s)

    def test_row_blocking_is_value_invariant(self, study_fleet,
                                             monkeypatch):
        """Any block size must produce the same bits (pure row split)."""
        batch = SGP4Batch.from_propagators(study_fleet[:8])
        tsince = np.arange(700, dtype=float) * 30.0
        monkeypatch.setattr(SGP4Batch, "_BLOCK_TARGET_ELEMENTS",
                            10 ** 9)
        r_full, v_full = batch.propagate(tsince)
        for target in (1, 700, 1400, 3000):
            monkeypatch.setattr(SGP4Batch, "_BLOCK_TARGET_ELEMENTS",
                                target)
            r_b, v_b = batch.propagate(tsince)
            assert np.array_equal(r_b, r_full)
            assert np.array_equal(v_b, v_full)

    def test_init_from_tles_matches_from_propagators(self):
        tles = [make_test_tle(norad_id=1), make_test_tle(
            altitude_km=600.0, norad_id=2)]
        a = SGP4Batch(tles)
        b = SGP4Batch.from_propagators([SGP4(t) for t in tles])
        tsince = np.arange(30, dtype=float) * 120.0
        ra, va = a.propagate(tsince)
        rb, vb = b.propagate(tsince)
        assert np.array_equal(ra, rb) and np.array_equal(va, vb)

    def test_decay_raises_lowest_index_satellite(self):
        """The batch mirrors a satellite-by-satellite loop's error."""
        healthy = make_test_tle(altitude_km=850.0, norad_id=101)
        doomed = dataclasses.replace(
            make_test_tle(altitude_km=170.0, norad_id=102),
            bstar=5.0e-3)
        props = [SGP4(healthy), SGP4(doomed)]
        tsince = np.arange(400, dtype=float) * 3600.0
        with pytest.raises(DecayedError) as batch_err:
            SGP4Batch.from_propagators(props).propagate(tsince)
        serial_err = None
        for prop in props:
            try:
                prop.propagate(tsince)
            except DecayedError as exc:
                serial_err = exc
                break
        assert serial_err is not None
        assert str(batch_err.value) == str(serial_err)
        # check_decay=False matches the scalar opt-out.
        r, v = SGP4Batch.from_propagators(props).propagate(
            tsince, check_decay=False)
        r_s, v_s = props[1].propagate(tsince, check_decay=False)
        assert np.array_equal(r[1], r_s) and np.array_equal(v[1], v_s)

    def test_shape_and_constructor_validation(self):
        batch = SGP4Batch([make_test_tle()])
        with pytest.raises(ValueError):
            batch.propagate(np.zeros((3, 4, 5)))
        with pytest.raises(ValueError):
            batch.propagate(np.zeros((2, 4)))  # wrong N
        with pytest.raises(ValueError):
            SGP4Batch([])
        with pytest.raises(ValueError):
            SGP4Batch.from_propagators([])
        with pytest.raises(ValueError):
            batch.tsince_from_epoch(make_test_tle().epoch,
                                    np.zeros((2, 2)))

    def test_subset_rows(self, study_fleet):
        batch = SGP4Batch.from_propagators(study_fleet[:5])
        sub = batch.subset([4, 1])
        tsince = np.arange(25, dtype=float) * 60.0
        r, v = batch.propagate(tsince)
        r_s, v_s = sub.propagate(tsince)
        assert np.array_equal(r_s[0], r[4])
        assert np.array_equal(v_s[1], v[1])


class TestFleetPassSearch:
    OBSERVERS = [
        GeodeticPoint(22.3, 114.2, 0.0),
        GeodeticPoint(-33.9, 151.2, 0.05),
        GeodeticPoint(89.9, 0.0, 0.0),      # near-pole edge
        GeodeticPoint(0.0, -180.0, 0.0),    # antimeridian edge
    ]

    @pytest.mark.parametrize("refine", ["bisect", "interp"])
    @pytest.mark.parametrize("mask_deg", [0.0, 10.0])
    def test_fleet_equals_nested_serial(self, study_fleet, refine,
                                        mask_deg):
        props = study_fleet[:6]
        epoch = props[0].tle.epoch
        duration = 12 * 3600.0
        fleet = find_passes_fleet(props, self.OBSERVERS, epoch,
                                  duration, coarse_step_s=60.0,
                                  min_elevation_deg=mask_deg,
                                  refine=refine)
        for i, prop in enumerate(props):
            multi = find_passes_multi(prop, self.OBSERVERS, epoch,
                                      duration, coarse_step_s=60.0,
                                      min_elevation_deg=mask_deg,
                                      refine=refine)
            assert fleet[i] == multi
            for m, observer in enumerate(self.OBSERVERS):
                predictor = PassPredictor(prop, observer, mask_deg)
                assert fleet[i][m] == predictor.find_passes(
                    epoch, duration, coarse_step_s=60.0, refine=refine)

    @settings(max_examples=8, deadline=None)
    @given(st.lists(st.builds(
        GeodeticPoint,
        st.floats(min_value=-89.99, max_value=89.99),
        st.floats(min_value=-180.0, max_value=180.0),
        st.floats(min_value=0.0, max_value=8.0)),
        min_size=1, max_size=3))
    def test_fleet_random_observers(self, study_fleet, observers):
        props = study_fleet[:3]
        epoch = props[0].tle.epoch
        fleet = find_passes_fleet(props, observers, epoch, 6 * 3600.0,
                                  coarse_step_s=60.0,
                                  min_elevation_deg=5.0,
                                  refine="interp")
        for i, prop in enumerate(props):
            for m, observer in enumerate(observers):
                predictor = PassPredictor(prop, observer, 5.0)
                assert fleet[i][m] == predictor.find_passes(
                    epoch, 6 * 3600.0, coarse_step_s=60.0,
                    refine="interp")

    def test_empty_inputs(self, study_fleet):
        epoch = study_fleet[0].tle.epoch
        assert find_passes_fleet([], self.OBSERVERS, epoch,
                                 3600.0) == []
        assert find_passes_fleet(study_fleet[:2], [], epoch,
                                 3600.0) == [[], []]


class TestCoarseOffsetsRegression:
    def test_step_divisible_duration_has_no_duplicate_tail(self):
        """86400/30 divides exactly: the grid must end in one clean
        terminal sample, not a zero-length refinement bracket."""
        offsets = PassPredictor.coarse_offsets(86400.0, 30.0)
        assert offsets.size == 2881
        assert offsets[-1] == 86400.0
        assert np.all(np.diff(offsets) > 0.0)

    def test_one_ulp_drift_is_snapped_not_appended(self):
        """A duration one ULP above the last arange sample must not
        produce a near-duplicate terminal sample."""
        duration = np.nextafter(86400.0, np.inf)
        offsets = PassPredictor.coarse_offsets(float(duration), 30.0)
        assert offsets[-1] == duration
        assert offsets.size == 2881
        diffs = np.diff(offsets)
        assert np.all(diffs > 1.0e-6)

    def test_non_divisible_duration_still_appends_endpoint(self):
        offsets = PassPredictor.coarse_offsets(100.0, 30.0)
        assert offsets.tolist() == [0.0, 30.0, 60.0, 90.0, 100.0]

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1.0, max_value=7 * 86400.0),
           st.floats(min_value=0.5, max_value=3600.0))
    def test_grid_invariants(self, duration, step):
        offsets = PassPredictor.coarse_offsets(duration, step)
        assert offsets[0] == 0.0
        assert offsets[-1] == duration or (
            duration - offsets[-1] <= 1.0e-9 * step)
        assert np.all(np.diff(offsets) > 0.0)


class TestBatchingSwitch:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        assert batching_enabled()

    @pytest.mark.parametrize("value,expected", [
        ("0", False), ("false", False), ("OFF", False), ("no", False),
        ("1", True), ("true", True), ("", True), ("anything", True),
    ])
    def test_env_values(self, monkeypatch, value, expected):
        monkeypatch.setenv(BATCH_ENV, value)
        assert batching_enabled() is expected
