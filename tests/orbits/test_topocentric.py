"""Tests for topocentric look angles."""

import math

import numpy as np
import pytest

from satiot.orbits.frames import GeodeticPoint, geodetic_to_ecef
from satiot.orbits.timebase import gmst
from satiot.orbits.topocentric import look_angles, sez_rotation


def teme_point_above(observer: GeodeticPoint, jd: float,
                     altitude_km: float) -> np.ndarray:
    """Inertial position directly above an observer at a given instant."""
    r_ecef = geodetic_to_ecef(observer.latitude_deg, observer.longitude_deg,
                              altitude_km)
    # Rotate ECEF back to TEME (inverse of teme_to_ecef).
    theta = gmst(jd)
    c, s = math.cos(theta), math.sin(theta)
    x = c * r_ecef[0] - s * r_ecef[1]
    y = s * r_ecef[0] + c * r_ecef[1]
    return np.array([x, y, r_ecef[2]])


class TestSezRotation:
    def test_orthonormal(self):
        rot = sez_rotation(math.radians(40.0), math.radians(-80.0))
        np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)

    def test_zenith_axis(self):
        # At the north pole the SEZ z-axis is the ECEF z-axis.
        rot = sez_rotation(math.radians(90.0), 0.0)
        np.testing.assert_allclose(rot[2], [0.0, 0.0, 1.0], atol=1e-12)


class TestLookAngles:
    def test_satellite_at_zenith(self):
        observer = GeodeticPoint(22.3, 114.17)
        jd = 2460000.5
        r = teme_point_above(observer, jd, 850.0)
        look = look_angles(observer, r, np.zeros(3), jd)
        assert look.elevation_deg == pytest.approx(90.0, abs=0.2)
        assert look.range_km == pytest.approx(850.0, abs=2.0)

    def test_low_elevation_long_range(self):
        # Same altitude, but seen from a site ~20 degrees of arc away:
        # elevation low, slant range several times the altitude.
        target_site = GeodeticPoint(22.3, 114.17)
        far_observer = GeodeticPoint(22.3, 134.17)
        jd = 2460000.5
        r = teme_point_above(target_site, jd, 850.0)
        look = look_angles(far_observer, r, np.zeros(3), jd)
        assert look.elevation_deg < 20.0
        assert look.range_km > 2000.0

    def test_azimuth_north(self):
        # Satellite above a point due north of the observer.
        observer = GeodeticPoint(20.0, 114.0)
        north_site = GeodeticPoint(30.0, 114.0)
        jd = 2460000.5
        r = teme_point_above(north_site, jd, 850.0)
        look = look_angles(observer, r, np.zeros(3), jd)
        assert look.azimuth_deg == pytest.approx(0.0, abs=1.0) \
            or look.azimuth_deg == pytest.approx(360.0, abs=1.0)

    def test_azimuth_east(self):
        observer = GeodeticPoint(0.0, 100.0)
        east_site = GeodeticPoint(0.0, 110.0)
        jd = 2460000.5
        r = teme_point_above(east_site, jd, 850.0)
        look = look_angles(observer, r, np.zeros(3), jd)
        assert look.azimuth_deg == pytest.approx(90.0, abs=1.0)

    def test_range_rate_sign(self):
        # A satellite with velocity pointing away from the observer has
        # positive range rate.
        observer = GeodeticPoint(0.0, 0.0)
        jd = 2460000.5
        r = teme_point_above(observer, jd, 850.0)
        direction = r / np.linalg.norm(r)
        look_away = look_angles(observer, r, 7.5 * direction, jd)
        assert look_away.range_rate_km_s > 7.0

    def test_batched_shapes(self):
        observer = GeodeticPoint(22.3, 114.17)
        jd = 2460000.5
        r = np.tile(teme_point_above(observer, jd, 850.0), (5, 1))
        v = np.zeros((5, 3))
        look = look_angles(observer, r, v, np.full(5, jd))
        assert np.shape(look.elevation_deg) == (5,)
        assert np.shape(look.range_km) == (5,)
