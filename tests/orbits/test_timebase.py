"""Tests for Julian dates, GMST and the Epoch value type."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.orbits.timebase import (Epoch, epoch_from_tle_date, gmst,
                                    invjday, jday)


class TestJday:
    def test_j2000_reference(self):
        # J2000.0 is 2000-01-01 12:00 UTC = JD 2451545.0.
        assert jday(2000, 1, 1, 12, 0, 0.0) == pytest.approx(2451545.0)

    def test_unix_epoch(self):
        assert jday(1970, 1, 1) == pytest.approx(2440587.5)

    def test_day_increment(self):
        assert jday(2024, 3, 1) - jday(2024, 2, 29) == pytest.approx(1.0)

    def test_leap_year_february(self):
        # 2024 is a leap year: Feb 29 exists and differs from Mar 1.
        assert jday(2024, 3, 1) - jday(2024, 2, 28) == pytest.approx(2.0)

    def test_non_leap_year(self):
        # 2023 is not a leap year: Feb 28 is followed by Mar 1.
        assert jday(2023, 3, 1) - jday(2023, 2, 28) == pytest.approx(1.0)

    def test_invalid_month_raises(self):
        with pytest.raises(ValueError):
            jday(2024, 13, 1)

    @given(
        year=st.integers(1950, 2049),
        month=st.integers(1, 12),
        day=st.integers(1, 28),
        hour=st.integers(0, 23),
        minute=st.integers(0, 59),
        second=st.floats(0, 59.999),
    )
    @settings(max_examples=200)
    def test_roundtrip(self, year, month, day, hour, minute, second):
        jd = jday(year, month, day, hour, minute, second)
        y, mo, d, h, mi, s = invjday(jd)
        assert (y, mo, d) == (year, month, day)
        back = h * 3600 + mi * 60 + s
        forward = hour * 3600 + minute * 60 + second
        assert back == pytest.approx(forward, abs=1e-3)


class TestTleEpoch:
    def test_century_split(self):
        # Two-digit years < 57 are 20xx, >= 57 are 19xx.
        jd_2024 = epoch_from_tle_date(24, 1.0)
        jd_1999 = epoch_from_tle_date(99, 1.0)
        assert invjday(jd_2024)[0] == 2024
        assert invjday(jd_1999)[0] == 1999

    def test_day_one_is_january_first(self):
        jd = epoch_from_tle_date(24, 1.5)
        y, mo, d, h, _mi, _s = invjday(jd)
        assert (y, mo, d, h) == (2024, 1, 1, 12)


class TestGmst:
    def test_range(self):
        for jd in np.linspace(2451545.0, 2460000.0, 50):
            theta = gmst(float(jd))
            assert 0.0 <= theta < 2.0 * math.pi

    def test_j2000_value(self):
        # GMST at J2000.0 is about 280.46 degrees.
        theta = gmst(2451545.0)
        assert math.degrees(theta) == pytest.approx(280.46, abs=0.01)

    def test_sidereal_day_advance(self):
        # After one solar day GMST advances ~0.9856 deg beyond a full turn.
        t0 = gmst(2451545.0)
        t1 = gmst(2451546.0)
        delta = math.degrees((t1 - t0) % (2 * math.pi))
        assert delta == pytest.approx(0.9856, abs=0.001)

    def test_vectorized_matches_scalar(self):
        jds = np.array([2451545.0, 2455000.25, 2460000.75])
        vec = gmst(jds)
        for i, jd in enumerate(jds):
            assert vec[i] == pytest.approx(gmst(float(jd)))


class TestEpoch:
    def test_add_seconds(self):
        e = Epoch.from_calendar(2024, 9, 6)
        assert (e + 86400.0).jd == pytest.approx(e.jd + 1.0)

    def test_subtract_epochs_gives_seconds(self):
        a = Epoch.from_calendar(2024, 9, 6)
        b = Epoch.from_calendar(2024, 9, 7, 12)
        assert b - a == pytest.approx(1.5 * 86400.0)

    def test_subtract_seconds_gives_epoch(self):
        e = Epoch.from_calendar(2024, 9, 6)
        assert isinstance(e - 60.0, Epoch)
        assert (e - 60.0).jd == pytest.approx(e.jd - 60.0 / 86400.0)

    def test_ordering(self):
        early = Epoch.from_calendar(2024, 1, 1)
        late = Epoch.from_calendar(2024, 6, 1)
        assert early < late

    def test_offset_jd_vectorized(self):
        e = Epoch.from_calendar(2024, 9, 6)
        offsets = np.array([0.0, 43200.0, 86400.0])
        jds = e.offset_jd(offsets)
        assert jds[0] == pytest.approx(e.jd)
        assert jds[2] == pytest.approx(e.jd + 1.0)

    def test_isoformat(self):
        e = Epoch.from_calendar(2024, 9, 6, 1, 2, 3.0)
        assert e.isoformat().startswith("2024-09-06T01:02:03")
