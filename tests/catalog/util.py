"""Shared helpers for the catalog test suite."""

from __future__ import annotations

from pathlib import Path

FIXTURE_PATH = (Path(__file__).parent.parent / "fixtures"
                / "megaconst_5k.3le.gz")
