"""Mega-constellation synthesis: determinism, structure, the fixture."""

from __future__ import annotations

import pytest

from satiot.catalog import (FIXTURE_SEED, MEGACONST_5K,
                            MegaConstellationSpec, read_catalog,
                            synthesize_mega_constellation,
                            write_catalog)
from satiot.constellations.shells import ShellSpec
from satiot.orbits.tle import format_tle

from .util import FIXTURE_PATH

SMALL = MegaConstellationSpec(
    name="MINI",
    shells=(ShellSpec("S1", count=12, altitude_min_km=500.0,
                      altitude_max_km=520.0, inclination_deg=53.0,
                      planes=4),
            ShellSpec("S2", count=6, altitude_min_km=600.0,
                      altitude_max_km=610.0, inclination_deg=97.5,
                      planes=3, raan_offset_deg=5.0)),
    norad_base=60000)


class TestDeterminism:
    def test_same_seed_byte_identical_lines(self):
        a = synthesize_mega_constellation(SMALL, seed=7)
        b = synthesize_mega_constellation(SMALL, seed=7)
        assert [format_tle(t) for t in a] == [format_tle(t) for t in b]
        assert [t.name for t in a] == [t.name for t in b]

    def test_different_seed_differs(self):
        a = synthesize_mega_constellation(SMALL, seed=7)
        b = synthesize_mega_constellation(SMALL, seed=8)
        assert [format_tle(t) for t in a] != [format_tle(t) for t in b]

    def test_shells_are_seed_independent_of_each_other(self):
        """Each shell's RNG is keyed by its norad block, so S2 alone
        reproduces the S2 members of the full synthesis."""
        full = synthesize_mega_constellation(SMALL, seed=7)
        solo = MegaConstellationSpec(name="MINI",
                                     shells=(SMALL.shells[1],),
                                     norad_base=60012)
        alone = synthesize_mega_constellation(solo, seed=7)
        assert [format_tle(t) for t in full[12:]] == \
            [format_tle(t) for t in alone]


class TestStructure:
    def test_counts_and_norad_blocks_match_spec(self):
        tles = synthesize_mega_constellation(SMALL, seed=7)
        assert len(tles) == SMALL.total_count == 18
        assert [t.norad_id for t in tles] == \
            list(range(60000, 60018))
        assert SMALL.shell_norad_base("S2") == 60012

    def test_names_encode_shell_membership(self):
        tles = synthesize_mega_constellation(SMALL, seed=7)
        assert tles[0].name == "MINI-S1-01"
        assert tles[11].name == "MINI-S1-12"
        assert tles[12].name == "MINI-S2-01"

    def test_plane_and_phasing_structure(self):
        """RAANs sit near the nominal Walker plane centers and mean
        anomalies near the in-plane phasing slots (within the
        generator's jitter bounds)."""
        tles = synthesize_mega_constellation(SMALL, seed=7)
        for shell, base in ((SMALL.shells[0], 0),
                            (SMALL.shells[1], 12)):
            planes = shell.plane_count()
            per_plane = -(-shell.count // planes)
            for idx in range(shell.count):
                tle = tles[base + idx]
                plane, slot = divmod(idx, per_plane)
                nominal_raan = (shell.raan_offset_deg
                                + 360.0 * plane / planes) % 360.0
                delta = abs((tle.raan_deg - nominal_raan + 180.0)
                            % 360.0 - 180.0)
                assert delta <= 8.0 + 1e-9, \
                    f"{tle.name}: raan {delta:.1f} deg off plane"
                nominal_ma = (360.0 * slot / per_plane
                              + 360.0 * plane / (planes * per_plane))
                delta_ma = abs((tle.mean_anomaly_deg - nominal_ma
                                + 180.0) % 360.0 - 180.0)
                assert delta_ma <= 15.0 + 1e-9, \
                    f"{tle.name}: phasing {delta_ma:.1f} deg off slot"

    def test_epoch_is_shared(self):
        tles = synthesize_mega_constellation(SMALL, seed=7)
        assert {(t.epochyr, t.epochdays) for t in tles} == \
            {(SMALL.epochyr, SMALL.epochdays)}


class TestSpecValidation:
    def test_needs_shells(self):
        with pytest.raises(ValueError, match=">= 1 shell"):
            MegaConstellationSpec(name="X", shells=(), norad_base=1)

    def test_unique_shell_names(self):
        shell = SMALL.shells[0]
        with pytest.raises(ValueError, match="unique"):
            MegaConstellationSpec(name="X", shells=(shell, shell),
                                  norad_base=1)

    def test_norad_block_must_fit(self):
        with pytest.raises(ValueError, match="catalog-number space"):
            MegaConstellationSpec(name="X", shells=SMALL.shells,
                                  norad_base=99990)

    def test_unknown_shell_lookup(self):
        with pytest.raises(KeyError):
            SMALL.shell_norad_base("NOPE")


class TestFixture5K:
    def test_megaconst_5k_shape(self):
        assert MEGACONST_5K.total_count == 5000
        assert len(MEGACONST_5K.shells) == 5
        assert MEGACONST_5K.shell_norad_base("SHELL-E") == \
            70000 + 1584 + 1584 + 720 + 520

    def test_committed_fixture_regenerates_byte_identically(self,
                                                            tmp_path):
        tles = synthesize_mega_constellation(MEGACONST_5K,
                                             seed=FIXTURE_SEED)
        regenerated = tmp_path / "regen.3le.gz"
        assert write_catalog(tles, regenerated) == 5000
        assert regenerated.read_bytes() == FIXTURE_PATH.read_bytes()

    def test_fixture_round_trips_through_ingest(self):
        entries = read_catalog(FIXTURE_PATH)
        tles = synthesize_mega_constellation(MEGACONST_5K,
                                             seed=FIXTURE_SEED)
        sample = range(0, 5000, 500)
        for i in sample:
            assert (entries[i].line1, entries[i].line2) == \
                format_tle(tles[i])
            assert entries[i].name == tles[i].name
