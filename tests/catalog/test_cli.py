"""`satiot catalog` / `satiot tle --format` CLI end-to-end tests."""

from __future__ import annotations

import gzip

import pytest

from satiot.catalog import (TleDb, read_catalog,
                            synthesize_mega_constellation, write_catalog)
from satiot.catalog.synth import MegaConstellationSpec
from satiot.cli import main
from satiot.constellations.shells import ShellSpec

SPEC = MegaConstellationSpec(
    name="MINI",
    shells=(ShellSpec("S1", count=4, altitude_min_km=540.0,
                      altitude_max_km=560.0, inclination_deg=53.0,
                      planes=2),),
    norad_base=62000)


@pytest.fixture()
def mini_file(tmp_path):
    path = tmp_path / "mini.3le.gz"
    write_catalog(synthesize_mega_constellation(SPEC, seed=5), path)
    return path


@pytest.fixture()
def mini_db(tmp_path, mini_file):
    path = tmp_path / "mini.db"
    assert main(["catalog", "insert", str(path), str(mini_file),
                 "--group-from-name"]) == 0
    return path


class TestTleFormat:
    def test_default_3le_output(self, capsys):
        assert main(["tle", "tianqi"]) == 0
        lines = capsys.readouterr().out.strip().split("\n")
        assert len(lines) % 3 == 0
        assert lines[0].startswith("Tianqi-")
        assert lines[1].startswith("1 ") and lines[2].startswith("2 ")

    def test_2le_output(self, capsys):
        assert main(["tle", "tianqi", "--format", "2le"]) == 0
        lines = capsys.readouterr().out.strip().split("\n")
        assert len(lines) % 2 == 0
        assert all(line[0] in "12" for line in lines)

    def test_out_file_reingests(self, tmp_path, capsys):
        out = tmp_path / "tq.3le.gz"
        assert main(["tle", "tianqi", "--out", str(out)]) == 0
        assert "wrote 22 element sets" in capsys.readouterr().out
        entries = read_catalog(out)
        assert len(entries) == 22
        assert entries[0].name.startswith("Tianqi-")


class TestCatalogVerbs:
    def test_insert_reports_stats(self, tmp_path, mini_file, capsys):
        db = tmp_path / "cat.db"
        assert main(["catalog", "insert", str(db), str(mini_file),
                     "--group-from-name"]) == 0
        assert "4 element sets inserted" in capsys.readouterr().out
        assert main(["catalog", "insert", str(db), str(mini_file),
                     "--group-from-name"]) == 0
        assert "4 duplicates skipped" in capsys.readouterr().out

    def test_insert_corrupt_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.3le"
        bad.write_text("MINI-S1-01\n1 garbage\n")
        code = main(["catalog", "insert", str(tmp_path / "c.db"),
                     str(bad)])
        assert code == 2
        assert "error: cannot ingest" in capsys.readouterr().err

    def test_get_table_and_3le(self, mini_db, capsys):
        assert main(["catalog", "get", str(mini_db),
                     "group:MINI-S1"]) == 0
        out = capsys.readouterr().out
        assert "4 element set(s)" in out and "62000" in out
        assert main(["catalog", "get", str(mini_db), "62001",
                     "--format", "3le"]) == 0
        lines = capsys.readouterr().out.strip().split("\n")
        assert lines[0] == "MINI-S1-02"

    def test_get_works_on_plain_files_too(self, mini_file, capsys):
        assert main(["catalog", "get", str(mini_file),
                     "name:MINI-S1-03"]) == 0
        assert "62002" in capsys.readouterr().out

    def test_get_unknown_selector_exits_2(self, mini_db, capsys):
        assert main(["catalog", "get", str(mini_db), "99999"]) == 2
        assert "matches no object" in capsys.readouterr().err

    def test_history_and_find_and_stats(self, mini_db, capsys):
        assert main(["catalog", "history", str(mini_db),
                     "group:MINI-S1", "--last", "1"]) == 0
        assert "epoch-ordered" in capsys.readouterr().out
        assert main(["catalog", "find", str(mini_db), "s1-0"]) == 0
        assert "4 match(es)" in capsys.readouterr().out
        assert main(["catalog", "stats", str(mini_db)]) == 0
        out = capsys.readouterr().out
        assert "objects           : 4" in out
        assert "MINI-S1" in out

    def test_missing_db_exits_2(self, tmp_path, capsys):
        assert main(["catalog", "stats",
                     str(tmp_path / "none.db")]) == 2
        assert "error" in capsys.readouterr().err


class TestSynth:
    def test_synth_to_file_and_reingest(self, tmp_path, capsys):
        out = tmp_path / "mega.3le.gz"
        assert main(["catalog", "synth", str(out)]) == 0
        assert "5000 element sets" in capsys.readouterr().out
        with gzip.open(out, "rt", encoding="ascii") as fh:
            assert fh.readline().strip() == "MEGA-SHELL-A-0001"

    def test_synth_seed_matches_fixture(self, tmp_path):
        from .util import FIXTURE_PATH
        out = tmp_path / "mega.3le.gz"
        assert main(["--seed", "2025", "catalog", "synth",
                     str(out)]) == 0
        assert out.read_bytes() == FIXTURE_PATH.read_bytes()

    def test_synth_to_sqlite(self, tmp_path, capsys):
        out = tmp_path / "mega.db"
        assert main(["catalog", "synth", str(out)]) == 0
        assert "into" in capsys.readouterr().out
        with TleDb(out) as db:
            stats = db.stats()
            assert stats.objects == 5000
            assert len(stats.groups) == 5
