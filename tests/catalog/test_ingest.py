"""Strict catalog ingest: structure errors, round-trips, the fixture."""

from __future__ import annotations

import gzip

import pytest

from satiot.catalog import (CatalogFormatError, format_catalog,
                            iter_catalog, load_tles, read_catalog,
                            write_catalog)
from satiot.orbits.tle import checksum, format_tle

from tests.conftest import make_test_tle

from .util import FIXTURE_PATH


def _two_sats():
    return [make_test_tle(norad_id=44001, raan_deg=10.0),
            make_test_tle(norad_id=44002, raan_deg=70.0)]


class TestRoundTrip:
    @pytest.mark.parametrize("fmt", ["3le", "2le"])
    def test_write_read_round_trip(self, tmp_path, fmt):
        tles = _two_sats()
        path = tmp_path / f"cat.{fmt}"
        assert write_catalog(tles, path, fmt=fmt) == 2
        entries = read_catalog(path)
        assert [e.norad_id for e in entries] == [44001, 44002]
        for tle, entry in zip(tles, entries):
            assert (entry.line1, entry.line2) == format_tle(tle)
        if fmt == "3le":
            assert [e.name for e in entries] == ["TEST-SAT", "TEST-SAT"]
        else:
            assert all(e.name == "" for e in entries)

    def test_gzip_round_trip_is_deterministic(self, tmp_path):
        tles = _two_sats()
        a, b = tmp_path / "a.3le.gz", tmp_path / "b.3le.gz"
        write_catalog(tles, a)
        write_catalog(tles, b)
        assert a.read_bytes() == b.read_bytes()  # pinned gzip mtime
        assert [t.norad_id for t in load_tles(a)] == [44001, 44002]

    def test_mixed_2le_3le_content(self):
        line1, line2 = format_tle(make_test_tle(norad_id=44001))
        named1, named2 = format_tle(make_test_tle(norad_id=44002))
        text = [line1, line2, "", "NAMED-SAT", named1, named2]
        entries = list(iter_catalog(text))
        assert [e.name for e in entries] == ["", "NAMED-SAT"]
        assert entries[1].lineno == 5

    def test_blank_lines_between_records_ok(self):
        line1, line2 = format_tle(make_test_tle())
        entries = list(iter_catalog(["", "SAT", line1, line2, "", ""]))
        assert len(entries) == 1


class TestStrictness:
    def _lines(self):
        return format_tle(make_test_tle())

    def test_orphan_line2(self):
        _, line2 = self._lines()
        with pytest.raises(CatalogFormatError, match="1: orphan line 2"):
            list(iter_catalog([line2]))

    def test_blank_inside_pair(self):
        line1, line2 = self._lines()
        with pytest.raises(CatalogFormatError,
                           match="blank line splits"):
            list(iter_catalog([line1, "", line2]))

    def test_consecutive_name_lines(self):
        with pytest.raises(CatalogFormatError,
                           match="consecutive name lines"):
            list(iter_catalog(["SAT-A", "SAT-B"]))

    def test_dangling_line1(self):
        line1, _ = self._lines()
        with pytest.raises(CatalogFormatError, match="dangling line 1"):
            list(iter_catalog(["SAT", line1]))

    def test_dangling_name(self):
        line1, line2 = self._lines()
        with pytest.raises(CatalogFormatError, match="dangling name"):
            list(iter_catalog([line1, line2, "SAT"]))

    def test_checksum_error_carries_line_number(self):
        line1, line2 = self._lines()
        bad = line1[:68] + str((int(line1[68]) + 1) % 10)
        with pytest.raises(CatalogFormatError, match="f.3le:3"):
            list(iter_catalog(["", "SAT", bad, line2], source="f.3le"))

    def test_checksum_validation_can_be_skipped(self):
        line1, line2 = self._lines()
        bad = line1[:68] + str((int(line1[68]) + 1) % 10)
        entries = list(iter_catalog([bad, line2],
                                    validate_checksum=False))
        assert entries[0].norad_id == 44001

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown catalog format"):
            format_catalog([make_test_tle()], fmt="csv")


class TestFixture:
    def test_fixture_loads_5000_checksummed_element_sets(self):
        entries = read_catalog(FIXTURE_PATH)
        assert len(entries) == 5000
        assert len({e.norad_id for e in entries}) == 5000
        for entry in entries[::500]:
            assert int(entry.line1[68]) == checksum(entry.line1)
            assert int(entry.line2[68]) == checksum(entry.line2)

    def test_fixture_is_gzip_with_pinned_mtime(self):
        with open(FIXTURE_PATH, "rb") as fh:
            header = fh.read(10)
        assert header[:2] == b"\x1f\x8b"
        assert header[4:8] == b"\x00\x00\x00\x00"  # mtime = 0
        with gzip.open(FIXTURE_PATH, "rt", encoding="ascii") as fh:
            first = fh.readline().strip()
        assert first == "MEGA-SHELL-A-0001"
