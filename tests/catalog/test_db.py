"""TleDb: selectors, epoch history, as-of-T queries, byte round-trips."""

from __future__ import annotations

import dataclasses

import pytest

from satiot.catalog import (TleDb, TleNotFound, derive_group,
                            parse_selector)
from satiot.orbits.tle import format_tle

from tests.conftest import make_test_tle


def _member(norad_id, name, epochdays=250.5, **kw):
    tle = make_test_tle(norad_id=norad_id, **kw)
    return dataclasses.replace(tle, name=name, epochdays=epochdays)


@pytest.fixture()
def db():
    """Two groups of two objects; 44001 carries a 3-epoch history."""
    store = TleDb()
    store.insert([
        _member(44001, "ALPHA-01", epochdays=100.0),
        _member(44001, "ALPHA-01", epochdays=150.0),
        _member(44001, "ALPHA-01", epochdays=125.0),
        _member(44002, "ALPHA-02", epochdays=150.0),
        _member(45001, "BETA-01", epochdays=150.0),
        _member(45002, "BETA-02", epochdays=150.0),
    ], group_from_name=True)
    return store


class TestSelectors:
    @pytest.mark.parametrize("text,expected", [
        ("44100", ("norad", "44100")),
        ("norad:44100", ("norad", "44100")),
        ("name:ALPHA-01", ("name", "ALPHA-01")),
        ("group:ALPHA", ("group", "ALPHA")),
        ("ALPHA-01", ("name", "ALPHA-01")),
    ])
    def test_parse_selector(self, text, expected):
        assert parse_selector(text) == expected

    @pytest.mark.parametrize("bad", ["", "  ", "norad:", "norad:abc",
                                     "group:  "])
    def test_bad_selectors_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_selector(bad)

    def test_derive_group(self):
        assert derive_group("MEGA-SHELL-A-0042") == "MEGA-SHELL-A"
        assert derive_group("Tianqi-TQ-A-07") == "Tianqi-TQ-A"
        assert derive_group("NOSUFFIX") == "NOSUFFIX"
        assert derive_group("  padded-3  ") == "padded"


class TestInsert:
    def test_insert_stats_and_idempotency(self, db):
        assert len(db) == 6
        again = db.insert([_member(44001, "ALPHA-01",
                                   epochdays=100.0)])
        assert (again.inserted, again.duplicates,
                again.new_objects) == (0, 1, 0)
        fresh = db.insert([_member(46001, "GAMMA-01")])
        assert (fresh.inserted, fresh.new_objects) == (1, 1)

    def test_explicit_group_tag(self):
        store = TleDb()
        store.insert([_member(44001, "X-1")], group="custom")
        assert store.groups() == {"custom": 1}

    def test_verbatim_line_round_trip(self, db):
        """Archived bytes come back exactly — fingerprint stability."""
        entry = db.get_object(44002)
        assert (entry.line1, entry.line2) == \
            format_tle(_member(44002, "ALPHA-02", epochdays=150.0))


class TestGet:
    def test_get_latest_per_object(self, db):
        entries = db.get()
        assert [e.norad_id for e in entries] == [44001, 44002, 45001,
                                                 45002]
        assert entries[0].tle.epochdays == 150.0  # newest of three

    def test_get_by_group_and_name(self, db):
        assert [e.norad_id for e in db.get("group:ALPHA")] == \
            [44001, 44002]
        assert [e.norad_id for e in db.get("name:beta-01")] == [45001]

    def test_get_many_selectors_deduplicated(self, db):
        entries = db.get(["group:ALPHA", "44001", "name:ALPHA-02"])
        assert [e.norad_id for e in entries] == [44001, 44002]

    def test_missing_selector_raises(self, db):
        with pytest.raises(TleNotFound, match="99999"):
            db.get("99999")

    def test_group_column_survives(self, db):
        assert {e.group for e in db.get("group:BETA")} == {"BETA"}


class TestAsOf:
    def _jd(self, epochdays):
        return _member(44001, "X", epochdays=epochdays).epoch.jd

    def test_as_of_picks_newest_at_or_before(self, db):
        entry = db.get_object(44001, as_of_jd=self._jd(130.0))
        assert entry.tle.epochdays == 125.0
        exact = db.get_object(44001, as_of_jd=self._jd(125.0))
        assert exact.tle.epochdays == 125.0

    def test_as_of_before_history_raises(self, db):
        with pytest.raises(TleNotFound, match="epoch <="):
            db.get_object(44001, as_of_jd=self._jd(50.0))

    def test_get_batch_as_of(self, db):
        entries = db.get("group:ALPHA", as_of_jd=self._jd(200.0))
        assert [e.tle.epochdays for e in entries] == [150.0, 150.0]


class TestHistoryFindStats:
    def test_history_is_epoch_ordered(self, db):
        epochs = [e.tle.epochdays for e in db.history("44001")]
        assert epochs == [100.0, 125.0, 150.0]

    def test_history_last_keeps_newest(self, db):
        epochs = [e.tle.epochdays for e in db.history("44001", last=2)]
        assert epochs == [125.0, 150.0]
        with pytest.raises(ValueError):
            db.history("44001", last=0)

    def test_history_multiple_objects(self, db):
        entries = db.history(["group:ALPHA"])
        assert [e.norad_id for e in entries] == [44001, 44001, 44001,
                                                 44002]

    def test_find_substring_case_insensitive(self, db):
        assert [e.norad_id for e in db.find("alpha")] == [44001, 44002]
        assert [e.norad_id for e in db.find("-01")] == [44001, 45001]
        assert db.find("nothing") == []

    def test_stats(self, db):
        stats = db.stats()
        assert (stats.objects, stats.element_sets) == (4, 6)
        assert stats.groups == {"ALPHA": 2, "BETA": 2}
        assert stats.epoch_span_days == pytest.approx(50.0)

    def test_empty_db_stats(self):
        stats = TleDb().stats()
        assert (stats.objects, stats.element_sets) == (0, 0)
        assert stats.epoch_span_days == 0.0


class TestPersistence:
    def test_disk_round_trip(self, tmp_path, db):
        path = tmp_path / "cat.db"
        with TleDb(path) as store:
            store.insert([e for e in db.get()], group_from_name=True)
        with TleDb(path) as store:
            assert len(store) == 4
            assert store.get_object(44001).name == "ALPHA-01"
