"""Catalog → fleet bridge: selections, caching identity, constellations."""

from __future__ import annotations

import pytest

from satiot.catalog import (TleDb, TleNotFound, constellation_from_catalog,
                            fleet_passes, open_any_catalog, select_fleet,
                            shell_groups, synthesize_mega_constellation,
                            write_catalog)
from satiot.catalog.synth import MegaConstellationSpec
from satiot.constellations.shells import ShellSpec
from satiot.orbits.frames import GeodeticPoint
from satiot.orbits.passes import PassPredictor
from satiot.runtime.ephemeris_cache import (EphemerisCache,
                                            constellation_fingerprint)

SPEC = MegaConstellationSpec(
    name="MINI",
    shells=(ShellSpec("S1", count=8, altitude_min_km=540.0,
                      altitude_max_km=560.0, inclination_deg=53.0,
                      planes=4),
            ShellSpec("S2", count=4, altitude_min_km=600.0,
                      altitude_max_km=620.0, inclination_deg=97.5,
                      planes=2)),
    norad_base=61000)

HK = GeodeticPoint(22.3, 114.2, 0.0)
LONDON = GeodeticPoint(51.5, -0.1, 0.0)


@pytest.fixture(scope="module")
def db():
    store = TleDb()
    store.insert(synthesize_mega_constellation(SPEC, seed=3),
                 group_from_name=True)
    return store


class TestOpenAnyCatalog:
    def test_missing_path(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            open_any_catalog(tmp_path / "nope.3le")

    def test_text_file_loads_with_derived_groups(self, tmp_path, db):
        path = tmp_path / "mini.3le.gz"
        write_catalog([e.tle for e in db.get()], path)
        loaded = open_any_catalog(path)
        assert sorted(loaded.groups()) == ["MINI-S1", "MINI-S2"]
        loaded.close()

    def test_sqlite_file_detected_by_magic(self, tmp_path, db):
        path = tmp_path / "mini.db"
        with TleDb(path) as store:
            store.insert(db.get(), group_from_name=True)
        loaded = open_any_catalog(path)
        assert len(loaded) == 12
        loaded.close()


class TestFleetSelection:
    def test_whole_catalog_selection(self, db):
        selection = select_fleet(db)
        assert len(selection) == 12
        assert len(selection.propagators) == 12
        assert selection.groups[:2] == ("MINI-S1", "MINI-S1")
        assert shell_groups(selection) == {
            "MINI-S1": list(range(8)),
            "MINI-S2": list(range(8, 12))}

    def test_selector_subset(self, db):
        selection = select_fleet(db, "group:MINI-S2")
        assert [t.norad_id for t in selection.tles] == \
            [61008, 61009, 61010, 61011]

    def test_empty_selection_raises(self, db):
        with pytest.raises(TleNotFound):
            select_fleet(db, "group:NOPE")

    def test_fingerprint_stable_across_dump_ingest(self, tmp_path, db):
        """The cache identity survives dump → re-ingest (verbatim
        lines), so benchmark and serving share ephemeris entries."""
        selection = select_fleet(db)
        path = tmp_path / "dump.3le.gz"
        write_catalog([t for t in selection.tles], path)
        reloaded = select_fleet(path)
        assert reloaded.fingerprint == selection.fingerprint
        assert reloaded.fingerprint == \
            constellation_fingerprint(selection.tles)

    def test_epoch_is_newest_member_epoch(self, db):
        selection = select_fleet(db)
        assert selection.epoch.jd == \
            max(e.epoch_jd for e in db.get())


class TestFleetPasses:
    def test_bit_identical_to_per_satellite_path(self, db):
        selection = select_fleet(db)
        observers = [HK, LONDON]
        results = fleet_passes(selection, observers, 6 * 3600.0,
                               cache=False, coarse_step_s=60.0)
        assert len(results) == 12
        windows = 0
        for index in (0, 5, 11):
            prop = selection.propagators[index]
            for m, obs in enumerate(observers):
                reference = PassPredictor(
                    prop, obs, min_elevation_deg=10.0).find_passes(
                        selection.epoch, 6 * 3600.0,
                        coarse_step_s=60.0, refine="interp")
                assert list(results[index][m]) == reference
                windows += len(reference)
        assert windows > 0

    def test_cached_path_matches_and_hits(self, db):
        selection = select_fleet(db)
        cache = EphemerisCache()
        direct = fleet_passes(selection, [HK], 4 * 3600.0,
                              cache=False, coarse_step_s=60.0)
        warm = fleet_passes(selection, [HK], 4 * 3600.0,
                            cache=cache, coarse_step_s=60.0)
        again = fleet_passes(selection, [HK], 4 * 3600.0,
                             cache=cache, coarse_step_s=60.0)
        assert warm == direct
        assert again == direct
        assert cache.stats.hits > 0


class TestConstellationFromCatalog:
    def test_shells_reconstructed_from_groups(self, db):
        const = constellation_from_catalog(db, name="mini")
        assert const.name == "mini"
        assert len(const) == 12
        shells = {s.name: s for s in const.spec.shells}
        assert set(shells) == {"MINI-S1", "MINI-S2"}
        assert shells["MINI-S1"].count == 8
        assert 500.0 < shells["MINI-S1"].altitude_min_km < 580.0
        assert shells["MINI-S1"].inclination_deg == \
            pytest.approx(53.0, abs=0.5)
        assert {s.shell_name for s in const.satellites} == \
            {"MINI-S1", "MINI-S2"}

    def test_satellites_carry_default_radio(self, db):
        const = constellation_from_catalog(db)
        assert const.radio.frequency_hz == pytest.approx(401.0e6)
        assert all(s.radio is const.radio for s in const.satellites)

    def test_accepts_existing_selection(self, db):
        selection = select_fleet(db, "group:MINI-S2")
        const = constellation_from_catalog(selection, name="s2only")
        assert len(const) == 4

    def test_presence_integration(self, db):
        """A catalog constellation plugs into the availability stack."""
        from satiot.core.availability import daily_presence_hours
        const = constellation_from_catalog(db)
        epoch = const.satellites[0].tle.epoch
        hours = daily_presence_hours(const, HK, epoch, days=0.25,
                                     min_elevation_deg=10.0)
        assert hours >= 0.0
