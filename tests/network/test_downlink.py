"""Tests for the capacity-limited downlink."""

import pytest

from satiot.network.downlink import DownlinkConfig, DownlinkSimulator
from satiot.network.store_forward import BufferedPacket, SatelliteBuffer


def fill(buffer, count, payload=20):
    for seq in range(count):
        buffer.store(BufferedPacket("n1", seq, float(seq), payload))


class TestDownlinkConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DownlinkConfig(throughput_bytes_s=0.0)
        with pytest.raises(ValueError):
            DownlinkConfig(setup_s=-1.0)

    def test_packet_airtime(self):
        config = DownlinkConfig(throughput_bytes_s=1000.0,
                                per_packet_overhead_bytes=10)
        assert config.packet_airtime_s(90) == pytest.approx(0.1)


class TestRunSession:
    def test_small_buffer_fully_drained(self):
        buffer = SatelliteBuffer(44100)
        fill(buffer, 10)
        sim = DownlinkSimulator()
        session = sim.run_session(buffer, (0.0, 300.0))
        assert session.drained_count == 10
        assert session.remaining == 0
        assert len(buffer) == 0

    def test_oldest_first(self):
        buffer = SatelliteBuffer(44100)
        for seq, stored in ((2, 30.0), (0, 10.0), (1, 20.0)):
            buffer.store(BufferedPacket("n1", seq, stored, 20))
        sim = DownlinkSimulator()
        session = sim.run_session(buffer, (100.0, 400.0))
        assert [p.seq for p in session.drained] == [0, 1, 2]

    def test_capacity_limits_drain(self):
        buffer = SatelliteBuffer(44100, capacity_packets=100_000)
        fill(buffer, 50_000)
        # 8 ms per packet at 4 kB/s -> ~33k packets in a 300 s window
        # after setup.
        sim = DownlinkSimulator()
        session = sim.run_session(buffer, (0.0, 300.0))
        assert 0 < session.drained_count < 50_000
        assert session.remaining == 50_000 - session.drained_count
        assert len(buffer) == session.remaining

    def test_too_short_window_drains_nothing(self):
        buffer = SatelliteBuffer(44100)
        fill(buffer, 5)
        sim = DownlinkSimulator(DownlinkConfig(setup_s=60.0))
        session = sim.run_session(buffer, (0.0, 30.0))
        assert session.drained_count == 0
        assert len(buffer) == 5

    def test_invalid_window(self):
        sim = DownlinkSimulator()
        with pytest.raises(ValueError):
            sim.run_session(SatelliteBuffer(44100), (10.0, 5.0))


class TestCompletionTime:
    def test_sequential_completion(self):
        buffer = SatelliteBuffer(44100)
        fill(buffer, 3, payload=88)  # 100 bytes with overhead
        config = DownlinkConfig(throughput_bytes_s=1000.0,
                                per_packet_overhead_bytes=12,
                                setup_s=10.0)
        sim = DownlinkSimulator(config)
        session = sim.run_session(buffer, (0.0, 100.0))
        t0 = sim.completion_time_s(session, session.drained[0])
        t2 = sim.completion_time_s(session, session.drained[2])
        assert t0 == pytest.approx(10.1)
        assert t2 == pytest.approx(10.3)

    def test_unknown_packet_raises(self):
        buffer = SatelliteBuffer(44100)
        fill(buffer, 1)
        sim = DownlinkSimulator()
        session = sim.run_session(buffer, (0.0, 100.0))
        with pytest.raises(KeyError):
            sim.completion_time_s(
                session, BufferedPacket("ghost", 99, 0.0, 20))


class TestSessionsToEmpty:
    def test_zero_backlog(self):
        assert DownlinkSimulator().sessions_to_empty(0, 20, 300.0) == 0

    def test_scales_with_backlog(self):
        sim = DownlinkSimulator()
        small = sim.sessions_to_empty(1000, 20, 300.0)
        large = sim.sessions_to_empty(100_000, 20, 300.0)
        assert large > small >= 1

    def test_window_too_short(self):
        sim = DownlinkSimulator(DownlinkConfig(setup_s=600.0))
        assert sim.sessions_to_empty(10, 20, 300.0) == -1
