"""Property-based invariants of the DtS MAC under random schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.network.mac import BeaconOpportunity, DtSMac, MacConfig
from satiot.network.packets import SensorReading
from satiot.network.store_forward import SatelliteBuffer

pytestmark = pytest.mark.property

SAT_A, SAT_B = 44100, 44101


@st.composite
def mac_scenario(draw):
    """A random multi-node MAC scenario."""
    n_nodes = draw(st.integers(1, 4))
    max_retx = draw(st.integers(0, 4))
    readings = {}
    beacons = {}
    for i in range(n_nodes):
        node = f"n{i}"
        n_read = draw(st.integers(0, 8))
        readings[node] = [
            SensorReading(node, seq, 50.0 * seq, 20)
            for seq in range(n_read)]
        beacon_times = sorted(draw(st.lists(
            st.floats(0.0, 5000.0), min_size=0, max_size=25,
            unique=True)))
        beacons[node] = [
            BeaconOpportunity(
                t, draw(st.sampled_from([SAT_A, SAT_B])),
                draw(st.floats(0.0, 1.0)), draw(st.floats(0.0, 1.0)),
                pass_index=int(t // 600.0))
            for t in beacon_times]
    seed = draw(st.integers(0, 2 ** 16))
    return readings, beacons, max_retx, seed


class TestMacInvariants:
    @given(mac_scenario())
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_causality(self, scenario):
        readings, beacons, max_retx, seed = scenario
        buffers = {SAT_A: SatelliteBuffer(SAT_A),
                   SAT_B: SatelliteBuffer(SAT_B)}
        mac = DtSMac(MacConfig(max_retransmissions=max_retx,
                               retry_backoff_s=60.0), buffers)
        records = mac.run(readings, beacons,
                          np.random.default_rng(seed), 10_000.0)

        # Every reading yields exactly one record.
        for node, node_readings in readings.items():
            assert len(records[node]) == len(node_readings)

        total_stored = sum(len(b) for b in buffers.values())
        reached = 0
        for node, node_records in records.items():
            for record in node_records:
                # Attempt budget respected.
                assert len(record.attempts) <= max_retx + 1
                # Attempts are causal and ordered.
                times = [a.time_s for a in record.attempts]
                assert times == sorted(times)
                for attempt in record.attempts:
                    assert attempt.time_s >= record.created_s
                # Satellite receipt implies a successful attempt.
                if record.satellite_received_s is not None:
                    reached += 1
                    assert any(a.uplink_ok for a in record.attempts)
                    assert record.satellite_norad in (SAT_A, SAT_B)
                else:
                    assert not any(a.uplink_ok for a in record.attempts)
                # Abandoned means: exhausted and never stored.
                if record.abandoned:
                    assert record.satellite_received_s is None
                    assert len(record.attempts) == max_retx + 1

        # Buffer conservation: distinct (node, seq) identities across
        # all satellite buffers equal the records that reached a
        # satellite.  (A post-ACK-loss retransmission may land a second
        # copy on a *different* satellite; the data centre dedupes.)
        identities = {(p.node_id, p.seq)
                      for b in buffers.values() for p in b.packets()}
        assert len(identities) == reached
        assert total_stored >= reached

    @given(mac_scenario())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_given_seed(self, scenario):
        readings, beacons, max_retx, seed = scenario

        def run():
            buffers = {SAT_A: SatelliteBuffer(SAT_A),
                       SAT_B: SatelliteBuffer(SAT_B)}
            mac = DtSMac(MacConfig(max_retransmissions=max_retx), buffers)
            return mac.run(readings, beacons,
                           np.random.default_rng(seed), 10_000.0)

        a, b = run(), run()
        for node in a:
            assert [len(r.attempts) for r in a[node]] \
                == [len(r.attempts) for r in b[node]]
            assert [r.satellite_received_s for r in a[node]] \
                == [r.satellite_received_s for r in b[node]]
