"""Tests for the shared beacon-train builder."""

import numpy as np
import pytest

from satiot.constellations.catalog import build_constellation
from satiot.network.beacon import build_beacon_train
from satiot.orbits.frames import GeodeticPoint
from satiot.orbits.passes import PassPredictor

HK = GeodeticPoint(22.30, 114.17)


@pytest.fixture(scope="module")
def pass_setup():
    constellation = build_constellation("tianqi")
    satellite = constellation.satellites[0]
    epoch = satellite.tle.epoch
    predictor = PassPredictor(satellite.propagator, HK)
    windows = predictor.find_passes(epoch, 86400.0)
    window = max(windows, key=lambda w: w.max_elevation_deg)
    return satellite, window, epoch


class TestBuildBeaconTrain:
    def test_times_within_window(self, pass_setup):
        satellite, window, epoch = pass_setup
        train = build_beacon_train(satellite, window, HK, epoch,
                                   np.random.default_rng(0))
        assert np.all(train.times_s >= window.rise_s)
        assert np.all(train.times_s < window.set_s)

    def test_periodicity(self, pass_setup):
        satellite, window, epoch = pass_setup
        train = build_beacon_train(satellite, window, HK, epoch,
                                   np.random.default_rng(0))
        period = satellite.radio.beacon_period_s
        np.testing.assert_allclose(np.diff(train.times_s), period)

    def test_geometry_lengths_match(self, pass_setup):
        satellite, window, epoch = pass_setup
        train = build_beacon_train(satellite, window, HK, epoch,
                                   np.random.default_rng(0))
        n = len(train)
        assert n > 10
        for field in ("elevation_deg", "range_km", "doppler_shift_hz",
                      "doppler_rate_hz_s"):
            assert len(getattr(train, field)) == n

    def test_elevation_positive_inside_window(self, pass_setup):
        satellite, window, epoch = pass_setup
        train = build_beacon_train(satellite, window, HK, epoch,
                                   np.random.default_rng(0))
        assert np.all(train.elevation_deg > -0.5)

    def test_doppler_sign_flip_at_culmination(self, pass_setup):
        satellite, window, epoch = pass_setup
        train = build_beacon_train(satellite, window, HK, epoch,
                                   np.random.default_rng(0))
        # Approaching first (positive shift), receding after.
        assert train.doppler_shift_hz[0] > 0.0
        assert train.doppler_shift_hz[-1] < 0.0

    def test_same_rng_same_train(self, pass_setup):
        satellite, window, epoch = pass_setup
        a = build_beacon_train(satellite, window, HK, epoch,
                               np.random.default_rng(7))
        b = build_beacon_train(satellite, window, HK, epoch,
                               np.random.default_rng(7))
        np.testing.assert_array_equal(a.times_s, b.times_s)

    def test_zero_length_window(self, pass_setup):
        satellite, window, epoch = pass_setup
        from satiot.orbits.passes import ContactWindow
        tiny = ContactWindow(rise_s=window.rise_s,
                             set_s=window.rise_s + 1.0,
                             culmination_s=window.rise_s + 0.5,
                             max_elevation_deg=0.1)
        train = build_beacon_train(satellite, tiny, HK, epoch,
                                   np.random.default_rng(3))
        assert len(train) <= 1
