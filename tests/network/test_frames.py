"""Tests for the byte-level DtS frame codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.network.frames import (AckFrame, BeaconFrame, FrameError,
                                   UplinkFrame, crc16_ccitt, decode_frame)


class TestCrc:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16_ccitt(b"") == 0xFFFF

    def test_sensitivity(self):
        assert crc16_ccitt(b"hello") != crc16_ccitt(b"hellp")


class TestBeaconFrame:
    def test_roundtrip(self):
        frame = BeaconFrame(norad_id=44100, beacon_seq=1234,
                            congested=True)
        back = decode_frame(frame.encode())
        assert back == frame

    def test_wire_size(self):
        assert len(BeaconFrame(44100, 0).encode()) \
            == BeaconFrame.WIRE_SIZE

    def test_range_checks(self):
        with pytest.raises(FrameError):
            BeaconFrame(-1, 0).encode()
        with pytest.raises(FrameError):
            BeaconFrame(44100, 70000).encode()

    @given(norad=st.integers(0, 0xFFFFFFFF), seq=st.integers(0, 0xFFFF),
           congested=st.booleans())
    @settings(max_examples=100)
    def test_roundtrip_property(self, norad, seq, congested):
        frame = BeaconFrame(norad, seq, congested)
        assert decode_frame(frame.encode()) == frame


class TestUplinkFrame:
    def test_roundtrip(self):
        frame = UplinkFrame("TQ-n-1", 42, b"\x01\x02\x03" * 5)
        back = decode_frame(frame.encode())
        assert back == frame

    def test_wire_size_matches(self):
        frame = UplinkFrame("n1", 0, b"x" * 20)
        assert len(frame.encode()) == frame.wire_size

    def test_payload_bounds(self):
        with pytest.raises(FrameError):
            UplinkFrame("n1", 0, b"").encode()
        with pytest.raises(FrameError):
            UplinkFrame("n1", 0, b"x" * 121).encode()
        UplinkFrame("n1", 0, b"x" * 120).encode()  # boundary ok

    def test_long_node_id_rejected(self):
        with pytest.raises(FrameError):
            UplinkFrame("a-very-long-node-name", 0, b"x").encode()

    @given(seq=st.integers(0, 0xFFFF),
           payload=st.binary(min_size=1, max_size=120))
    @settings(max_examples=100)
    def test_roundtrip_property(self, seq, payload):
        frame = UplinkFrame("node-8", seq, payload)
        assert decode_frame(frame.encode()) == frame


class TestAckFrame:
    def test_roundtrip(self):
        frame = AckFrame("TQ-n-3", 999)
        assert decode_frame(frame.encode()) == frame

    def test_wire_size(self):
        assert len(AckFrame("n", 0).encode()) == AckFrame.WIRE_SIZE


class TestDecodeErrors:
    def test_truncated(self):
        with pytest.raises(FrameError, match="too short"):
            decode_frame(b"\xd7\x01")

    def test_corrupted_crc(self):
        data = bytearray(BeaconFrame(44100, 7).encode())
        data[4] ^= 0xFF
        with pytest.raises(FrameError, match="CRC"):
            decode_frame(bytes(data))

    def test_bad_magic(self):
        from satiot.network.frames import crc16_ccitt
        import struct
        body = struct.pack(">BBIHB", 0x00, 0x01, 1, 1, 0)
        data = body + struct.pack(">H", crc16_ccitt(body))
        with pytest.raises(FrameError, match="magic"):
            decode_frame(data)

    def test_unknown_type(self):
        import struct
        body = struct.pack(">BBIHB", 0xD7, 0x7F, 1, 1, 0)
        data = body + struct.pack(">H", crc16_ccitt(body))
        with pytest.raises(FrameError, match="unknown frame type"):
            decode_frame(data)

    def test_uplink_length_mismatch(self):
        import struct
        body = struct.pack(">BB8sHB", 0xD7, 0x02, b"n1".ljust(8, b"\0"),
                           0, 5) + b"xxx"  # says 5, carries 3
        data = body + struct.pack(">H", crc16_ccitt(body))
        with pytest.raises(FrameError, match="length field"):
            decode_frame(data)
