"""Tests for satellite buffers and the operator ground segment."""

import pytest

from satiot.constellations.catalog import build_constellation
from satiot.network.store_forward import (TIANQI_GROUND_STATIONS,
                                          BufferedPacket, GroundSegment,
                                          SatelliteBuffer)


def make_packet(node="n1", seq=0, stored=100.0):
    return BufferedPacket(node, seq, stored, 20)


class TestSatelliteBuffer:
    def test_store_and_len(self):
        buf = SatelliteBuffer(44100)
        assert buf.store(make_packet())
        assert len(buf) == 1

    def test_duplicates_absorbed(self):
        buf = SatelliteBuffer(44100)
        buf.store(make_packet(stored=100.0))
        buf.store(make_packet(stored=200.0))
        assert len(buf) == 1
        assert buf.duplicates_absorbed == 1
        # The original (earliest) storage time is kept.
        assert buf.drain()[0].stored_s == 100.0

    def test_overflow_drops(self):
        buf = SatelliteBuffer(44100, capacity_packets=2)
        assert buf.store(make_packet(seq=0))
        assert buf.store(make_packet(seq=1))
        assert not buf.store(make_packet(seq=2))
        assert buf.dropped_overflow == 1
        assert len(buf) == 2

    def test_drain_sorted_and_clears(self):
        buf = SatelliteBuffer(44100)
        buf.store(make_packet(seq=1, stored=300.0))
        buf.store(make_packet(seq=0, stored=100.0))
        drained = buf.drain()
        assert [p.stored_s for p in drained] == [100.0, 300.0]
        assert len(buf) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SatelliteBuffer(44100, capacity_packets=0)


@pytest.fixture(scope="module")
def segment():
    con = build_constellation("tianqi")
    epoch = con.satellites[0].tle.epoch
    return GroundSegment(con, epoch, 2 * 86400.0), con


class TestGroundSegment:
    def test_every_satellite_has_windows(self, segment):
        seg, con = segment
        for sat in con:
            # 12 ground stations across China: each Tianqi satellite gets
            # many offload opportunities per day.
            assert len(seg.offload_windows(sat.norad_id)) >= 5

    def test_delivery_after_storage(self, segment):
        seg, con = segment
        norad = con.satellites[0].norad_id
        delivered = seg.delivery_time_s(norad, 1000.0)
        assert delivered is not None
        assert delivered > 1000.0

    def test_delivery_monotonic_in_storage_time(self, segment):
        seg, con = segment
        norad = con.satellites[0].norad_id
        times = [seg.delivery_time_s(norad, t)
                 for t in (0.0, 20000.0, 50000.0, 90000.0)]
        times = [t for t in times if t is not None]
        assert times == sorted(times)

    def test_batching_rounds_up(self, segment):
        seg, con = segment
        norad = con.satellites[0].norad_id
        delivered = seg.delivery_time_s(norad, 5000.0)
        assert delivered % seg.processing_batch_s == pytest.approx(0.0)

    def test_no_offload_after_span_end(self, segment):
        seg, con = segment
        norad = con.satellites[0].norad_id
        assert seg.next_offload_s(norad, 2 * 86400.0 + 1.0) is None

    def test_unknown_satellite_raises(self, segment):
        seg, _ = segment
        with pytest.raises(KeyError):
            seg.next_offload_s(99999, 0.0)

    def test_mean_gap_reasonable(self, segment):
        seg, con = segment
        # With 12 Chinese ground stations a Tianqi satellite reaches one
        # at most every few hours.
        for sat in list(con)[:5]:
            assert seg.mean_gap_hours(sat.norad_id) < 12.0

    def test_twelve_ground_stations_in_china(self):
        assert len(TIANQI_GROUND_STATIONS) == 12
        for gs in TIANQI_GROUND_STATIONS:
            assert 18.0 <= gs.location.latitude_deg <= 46.0
            assert 75.0 <= gs.location.longitude_deg <= 127.0

    def test_invalid_construction(self):
        con = build_constellation("fossa")
        epoch = con.satellites[0].tle.epoch
        with pytest.raises(ValueError):
            GroundSegment(con, epoch, 0.0)
        with pytest.raises(ValueError):
            GroundSegment(con, epoch, 86400.0, stations=())
