"""Tests for packet records and latency decomposition."""

import pytest

from satiot.network.packets import (AttemptOutcome, PacketRecord,
                                    SensorReading)


def make_record(created=0.0):
    return PacketRecord(SensorReading("n1", 0, created, 20))


class TestSensorReading:
    def test_payload_bounds(self):
        with pytest.raises(ValueError):
            SensorReading("n", 0, 0.0, 0)
        with pytest.raises(ValueError):
            SensorReading("n", 0, 0.0, 121)
        SensorReading("n", 0, 0.0, 120)  # boundary ok

    def test_negative_seq(self):
        with pytest.raises(ValueError):
            SensorReading("n", -1, 0.0, 20)


class TestPacketRecord:
    def test_fresh_record(self):
        r = make_record()
        assert not r.delivered
        assert r.retransmissions == 0
        assert r.first_attempt_s is None
        assert r.wait_delay_s is None
        assert r.total_latency_s is None

    def test_latency_decomposition_sums(self):
        r = make_record(created=100.0)
        r.attempts.append(AttemptOutcome(400.0, 44100, False, False))
        r.attempts.append(AttemptOutcome(900.0, 44101, True, True))
        r.satellite_received_s = 900.0
        r.satellite_norad = 44101
        r.delivered_s = 4000.0
        assert r.wait_delay_s == pytest.approx(300.0)
        assert r.dts_delay_s == pytest.approx(500.0)
        assert r.delivery_delay_s == pytest.approx(3100.0)
        assert r.total_latency_s == pytest.approx(
            r.wait_delay_s + r.dts_delay_s + r.delivery_delay_s)

    def test_retransmission_count(self):
        r = make_record()
        for t in (10.0, 20.0, 30.0):
            r.attempts.append(AttemptOutcome(t, 44100, False, False))
        assert r.retransmissions == 2

    def test_undelivered_partial_decomposition(self):
        r = make_record()
        r.attempts.append(AttemptOutcome(50.0, 44100, True, False))
        r.satellite_received_s = 50.0
        assert r.dts_delay_s == pytest.approx(0.0)
        assert r.delivery_delay_s is None
        assert r.total_latency_s is None
