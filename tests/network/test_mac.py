"""Tests for the beacon-triggered DtS MAC."""

import numpy as np
import pytest

from satiot.network.mac import BeaconOpportunity, DtSMac, MacConfig
from satiot.network.packets import SensorReading
from satiot.network.store_forward import SatelliteBuffer

SAT = 44100


def beacons(times, p_uplink=1.0, p_ack=1.0, sat=SAT):
    return [BeaconOpportunity(t, sat, p_uplink, p_ack) for t in times]


def readings(node, times, payload=20):
    return [SensorReading(node, i, t, payload) for i, t in enumerate(times)]


def run_mac(reading_map, beacon_map, config=None, seed=0,
            duration=100000.0):
    buffers = {SAT: SatelliteBuffer(SAT)}
    mac = DtSMac(config or MacConfig(), buffers)
    records = mac.run(reading_map, beacon_map,
                      np.random.default_rng(seed), duration)
    return records, buffers[SAT]


class TestBeaconOpportunity:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            BeaconOpportunity(0.0, SAT, 1.5, 0.5)
        with pytest.raises(ValueError):
            BeaconOpportunity(0.0, SAT, 0.5, -0.1)


class TestMacConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MacConfig(max_retransmissions=-1)
        with pytest.raises(ValueError):
            MacConfig(satellite_loss_probability=1.0)

    def test_capture_extrapolation(self):
        cfg = MacConfig()
        assert cfg.capture(1) == 1.0
        assert cfg.capture(2) == pytest.approx(0.90)
        assert cfg.capture(5) <= cfg.capture(3)


class TestPerfectLink:
    def test_all_delivered_first_try(self):
        reads = {"n1": readings("n1", [0.0, 100.0])}
        opps = {"n1": beacons([50.0, 150.0, 250.0])}
        cfg = MacConfig(satellite_loss_probability=0.0)
        records, buffer = run_mac(reads, opps, cfg)
        for r in records["n1"]:
            assert r.satellite_received_s is not None
            assert r.retransmissions == 0
            assert not r.abandoned
        assert len(buffer) == 2

    def test_every_reading_gets_record(self):
        reads = {"n1": readings("n1", [0.0, 100.0, 200.0])}
        records, _ = run_mac(reads, {"n1": []})
        assert len(records["n1"]) == 3
        # No beacons: nothing attempted, nothing delivered.
        assert all(not r.attempts for r in records["n1"])


class TestAckLoss:
    def test_lost_acks_cause_spurious_retransmissions(self):
        # Uplink perfect, ACK never arrives: the node retransmits to the
        # limit although the satellite got the packet (paper Fig. 5b's
        # explanation).
        reads = {"n1": readings("n1", [0.0])}
        opps = {"n1": beacons(np.arange(100.0, 20000.0, 600.0),
                              p_uplink=1.0, p_ack=0.0)}
        cfg = MacConfig(max_retransmissions=3,
                        satellite_loss_probability=0.0,
                        retry_backoff_s=10.0)
        records, buffer = run_mac(reads, opps, cfg)
        record = records["n1"][0]
        assert len(record.attempts) == 4  # 1 + 3 retransmissions
        assert record.satellite_received_s is not None
        assert not record.abandoned  # data did reach the satellite
        assert buffer.duplicates_absorbed == 3

    def test_abandoned_when_uplink_dead(self):
        reads = {"n1": readings("n1", [0.0])}
        opps = {"n1": beacons(np.arange(100.0, 20000.0, 600.0),
                              p_uplink=0.0, p_ack=1.0)}
        cfg = MacConfig(max_retransmissions=2,
                        satellite_loss_probability=0.0,
                        retry_backoff_s=10.0)
        records, buffer = run_mac(reads, opps, cfg)
        record = records["n1"][0]
        assert record.abandoned
        assert record.satellite_received_s is None
        assert len(record.attempts) == 3
        assert len(buffer) == 0


class TestRetryBackoff:
    def test_attempts_respect_backoff(self):
        reads = {"n1": readings("n1", [0.0])}
        opps = {"n1": beacons(np.arange(10.0, 5000.0, 5.0),
                              p_uplink=1.0, p_ack=0.0)}
        cfg = MacConfig(max_retransmissions=4,
                        satellite_loss_probability=0.0,
                        retry_backoff_s=300.0)
        records, _ = run_mac(reads, opps, cfg)
        attempts = records["n1"][0].attempts
        for a, b in zip(attempts, attempts[1:]):
            assert b.time_s - a.time_s >= 300.0

    def test_fresh_packet_not_blocked_by_backoff(self):
        # Packet 0 is waiting out its back-off; packet 1 arrives and
        # should use the next beacon rather than wait behind it.
        reads = {"n1": readings("n1", [0.0, 50.0])}
        opps = {"n1": beacons([10.0, 60.0, 1000.0, 2000.0],
                              p_uplink=1.0, p_ack=0.0)}
        cfg = MacConfig(max_retransmissions=5,
                        satellite_loss_probability=0.0,
                        retry_backoff_s=900.0)
        records, _ = run_mac(reads, opps, cfg)
        seq1 = records["n1"][1]
        assert seq1.attempts
        assert seq1.first_attempt_s == pytest.approx(60.0)


class TestCollisions:
    def test_concurrent_transmissions_marked(self):
        shared = np.arange(10.0, 400.0, 30.0)
        reads = {f"n{i}": readings(f"n{i}", [0.0]) for i in (1, 2, 3)}
        opps = {f"n{i}": beacons(shared, p_uplink=1.0, p_ack=1.0)
                for i in (1, 2, 3)}
        cfg = MacConfig(satellite_loss_probability=0.0)
        records, _ = run_mac(reads, opps, cfg)
        firsts = [records[n][0].attempts[0] for n in records]
        assert all(a.n_concurrent == 3 for a in firsts)

    def test_collisions_reduce_reliability(self):
        # Capture probability zero: simultaneous transmissions all die.
        shared = list(np.arange(10.0, 50000.0, 400.0))
        reads = {f"n{i}": readings(f"n{i}", [0.0]) for i in (1, 2)}
        opps = {f"n{i}": beacons(shared, p_uplink=1.0, p_ack=1.0)
                for i in (1, 2)}
        cfg = MacConfig(max_retransmissions=1,
                        satellite_loss_probability=0.0,
                        capture_probability={1: 1.0, 2: 0.0},
                        retry_backoff_s=10.0)
        records, _ = run_mac(reads, opps, cfg)
        for node in records:
            record = records[node][0]
            assert all(a.collided for a in record.attempts)
            assert record.abandoned

    def test_single_node_never_collides(self):
        reads = {"n1": readings("n1", [0.0])}
        opps = {"n1": beacons([10.0], p_uplink=1.0, p_ack=1.0)}
        cfg = MacConfig(satellite_loss_probability=0.0)
        records, _ = run_mac(reads, opps, cfg)
        assert not records["n1"][0].attempts[0].collided


class TestSatelliteLoss:
    def test_loss_probability_applied(self):
        reads = {"n1": readings("n1", [float(t)
                                       for t in range(0, 90000, 900)])}
        opps = {"n1": beacons(np.arange(10.0, 100000.0, 450.0),
                              p_uplink=1.0, p_ack=1.0)}
        cfg = MacConfig(max_retransmissions=0,
                        satellite_loss_probability=0.5)
        records, _ = run_mac(reads, opps, cfg, seed=3)
        received = [r.satellite_received_s is not None
                    for r in records["n1"] if r.attempts]
        assert 0.3 < np.mean(received) < 0.7
