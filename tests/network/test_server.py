"""Tests for server-side accounting."""

import math

import pytest

from satiot.network.packets import (AttemptOutcome, PacketRecord,
                                    SensorReading)
from satiot.network.server import (latency_decomposition_minutes,
                                   reliability_report)


def make_record(seq, delivered=True, reached_sat=True, abandoned=False):
    record = PacketRecord(SensorReading("n1", seq, 100.0, 20))
    record.attempts.append(AttemptOutcome(400.0, 44100, reached_sat,
                                          delivered))
    if reached_sat:
        record.satellite_received_s = 400.0
        record.satellite_norad = 44100
    if delivered:
        record.delivered_s = 4000.0
    record.abandoned = abandoned
    return record


class TestReliabilityReport:
    def test_counts(self):
        records = [make_record(0), make_record(1, delivered=False),
                   make_record(2, delivered=False, reached_sat=False,
                               abandoned=True)]
        report = reliability_report(records)
        assert report.generated == 3
        assert report.delivered == 1
        assert report.reached_satellite == 2
        assert report.abandoned == 1
        assert report.reliability == pytest.approx(1 / 3)
        assert report.dts_reliability == pytest.approx(2 / 3)

    def test_empty(self):
        report = reliability_report([])
        assert math.isnan(report.reliability)


class TestLatencyDecomposition:
    def test_segments_sum_to_total(self):
        records = [make_record(i) for i in range(5)]
        decomposition = latency_decomposition_minutes(records)
        total = (decomposition["wait_min"] + decomposition["dts_min"]
                 + decomposition["delivery_min"])
        assert total == pytest.approx(decomposition["total_min"])

    def test_only_delivered_counted(self):
        records = [make_record(0), make_record(1, delivered=False)]
        decomposition = latency_decomposition_minutes(records)
        # The undelivered packet does not drag the average.
        assert decomposition["total_min"] == pytest.approx(3900.0 / 60.0)

    def test_empty_gives_nan(self):
        decomposition = latency_decomposition_minutes([])
        assert math.isnan(decomposition["total_min"])
