"""Tests for MAC transmit policies."""

import numpy as np
import pytest

from satiot.network.mac import BeaconOpportunity, DtSMac, MacConfig
from satiot.network.packets import SensorReading
from satiot.network.policies import (AlohaPolicy, BackpressurePolicy,
                                     ElevationGatePolicy, SlottedPolicy)
from satiot.network.store_forward import SatelliteBuffer

SAT = 44100


def opp(t, p_up=1.0, p_ack=1.0, pass_index=0):
    return BeaconOpportunity(t, SAT, p_up, p_ack, pass_index)


def run_with_policy(policy, n_nodes=3, beacons_per_pass=20,
                    readings_per_node=4, seed=0):
    config = MacConfig(transmit_policy=policy,
                       satellite_loss_probability=0.0,
                       retry_backoff_s=30.0)
    buffers = {SAT: SatelliteBuffer(SAT)}
    mac = DtSMac(config, buffers)
    readings = {
        f"n{i}": [SensorReading(f"n{i}", seq, seq * 100.0, 20)
                  for seq in range(readings_per_node)]
        for i in range(n_nodes)}
    shared = [opp(1000.0 + 10.0 * j, pass_index=0)
              for j in range(beacons_per_pass)]
    beacons = {f"n{i}": shared for i in range(n_nodes)}
    records = mac.run(readings, beacons, np.random.default_rng(seed),
                      duration_s=10_000.0)
    return records


class TestAloha:
    def test_default_always_transmits(self):
        policy = AlohaPolicy()
        rng = np.random.default_rng(0)
        assert policy.should_transmit("n1", opp(0.0), 0, 1, rng)
        assert not policy.should_transmit("n1", opp(0.0), 0, 0, rng)

    def test_none_policy_equals_aloha(self):
        with_aloha = run_with_policy(AlohaPolicy())
        with_none = run_with_policy(None)
        a = [len(r.attempts) for rs in with_aloha.values() for r in rs]
        b = [len(r.attempts) for rs in with_none.values() for r in rs]
        assert a == b


class TestSlotted:
    def test_validation(self):
        with pytest.raises(ValueError):
            SlottedPolicy(slot_count=0)

    def test_disjoint_slots(self):
        policy = SlottedPolicy(slot_count=3)
        rng = np.random.default_rng(0)
        # For any beacon index, at most the nodes sharing that slot
        # transmit.
        for index in range(9):
            transmitters = [n for n in ("a", "b", "c", "d", "e", "f")
                            if policy.should_transmit(n, opp(0.0), index,
                                                      1, rng)]
            slots = {policy.slot_of(n) for n in transmitters}
            assert slots <= {index % 3}

    def test_eliminates_collisions(self):
        # Three distinct-slot node ids transmitting through a shared
        # beacon train never collide.
        policy = SlottedPolicy(slot_count=3)
        names = []
        candidate = 0
        while len({policy.slot_of(f"n{i}") for i in names} # noqa
                  if names else set()) < 3 and candidate < 100:
            if policy.slot_of(f"n{candidate}") not in {
                    policy.slot_of(f"n{i}") for i in names}:
                names.append(candidate)
            candidate += 1
        assert len(names) == 3

        config = MacConfig(transmit_policy=policy,
                           satellite_loss_probability=0.0,
                           retry_backoff_s=30.0)
        buffers = {SAT: SatelliteBuffer(SAT)}
        mac = DtSMac(config, buffers)
        readings = {f"n{i}": [SensorReading(f"n{i}", 0, 0.0, 20)]
                    for i in names}
        shared = [opp(1000.0 + 10.0 * j) for j in range(30)]
        beacons = {f"n{i}": shared for i in names}
        records = mac.run(readings, beacons, np.random.default_rng(1),
                          10_000.0)
        for node_records in records.values():
            for record in node_records:
                assert all(a.n_concurrent == 1 for a in record.attempts)


class TestElevationGate:
    def test_validation(self):
        with pytest.raises(ValueError):
            ElevationGatePolicy(min_p_uplink=1.5)

    def test_gates_on_quality(self):
        policy = ElevationGatePolicy(min_p_uplink=0.9)
        rng = np.random.default_rng(0)
        assert policy.should_transmit("n", opp(0.0, p_up=0.95), 0, 1, rng)
        assert not policy.should_transmit("n", opp(0.0, p_up=0.5), 0, 1,
                                          rng)


class TestBackpressure:
    def test_validation(self):
        with pytest.raises(ValueError):
            BackpressurePolicy(expected_contenders=0)

    def test_transmit_probability(self):
        policy = BackpressurePolicy(expected_contenders=4)
        rng = np.random.default_rng(0)
        decisions = [policy.should_transmit("n", opp(0.0), 0, 1, rng)
                     for _ in range(4000)]
        assert np.mean(decisions) == pytest.approx(0.25, abs=0.03)

    def test_reduces_concurrency(self):
        aloha = run_with_policy(AlohaPolicy(), n_nodes=3)
        backpressure = run_with_policy(
            BackpressurePolicy(expected_contenders=3), n_nodes=3, seed=1)

        def mean_concurrency(records):
            ks = [a.n_concurrent for rs in records.values()
                  for r in rs for a in r.attempts]
            return np.mean(ks) if ks else 0.0

        assert mean_concurrency(backpressure) < mean_concurrency(aloha)
