"""Tests for the terrestrial LoRaWAN path."""

import numpy as np
import pytest

from satiot.network.packets import SensorReading
from satiot.network.terrestrial import (TerrestrialConfig,
                                        TerrestrialLoRaWAN)


def make_readings(n=100, node="n1"):
    return {node: [SensorReading(node, i, i * 1800.0, 20)
                   for i in range(n)]}


class TestTerrestrialConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TerrestrialConfig(link_success_probability=0.0)
        with pytest.raises(ValueError):
            TerrestrialConfig(backhaul_median_s=0.0)


class TestTerrestrialLoRaWAN:
    def test_near_perfect_reliability(self):
        records = TerrestrialLoRaWAN().run(make_readings(500),
                                           np.random.default_rng(0))
        delivered = [r.delivered for r in records["n1"]]
        # Paper Fig. 5a: terrestrial LoRaWAN is ~100 % reliable.
        assert np.mean(delivered) > 0.99

    def test_latency_seconds_scale(self):
        records = TerrestrialLoRaWAN().run(make_readings(200),
                                           np.random.default_rng(1))
        latencies = [r.total_latency_s for r in records["n1"]
                     if r.delivered]
        # Paper Fig. 5c: average 0.2 minutes.
        assert 2.0 < np.mean(latencies) < 60.0

    def test_latency_positive(self):
        records = TerrestrialLoRaWAN().run(make_readings(50),
                                           np.random.default_rng(2))
        for r in records["n1"]:
            if r.delivered:
                assert r.total_latency_s > 0.0

    def test_deterministic(self):
        a = TerrestrialLoRaWAN().run(make_readings(50),
                                     np.random.default_rng(3))
        b = TerrestrialLoRaWAN().run(make_readings(50),
                                     np.random.default_rng(3))
        assert [r.delivered_s for r in a["n1"]] \
            == [r.delivered_s for r in b["n1"]]

    def test_multiple_nodes(self):
        readings = {**make_readings(10, "a"), **make_readings(10, "b")}
        records = TerrestrialLoRaWAN().run(readings,
                                           np.random.default_rng(4))
        assert set(records) == {"a", "b"}
        assert all(len(v) == 10 for v in records.values())
