"""Spill-backed scenario cells: extra stream KPIs, stable manifests.

Enabling ``spill_dir`` must not change a cell's standard KPI rows —
it adds ``stream_*`` rows computed by folding the spilled shards — and
a resumed run over a completed archive writes a byte-identical run
directory.
"""

from __future__ import annotations

import pytest

from satiot.scenarios import SCENARIO_FORMAT, run_scenario
from satiot.streams.spill import is_stream_archive
from tests.streams.conftest import sha_tree

LON_DOC = {
    "format": SCENARIO_FORMAT, "name": "lon-spill",
    "kind": "longitudinal", "seed": 7,
    "constellation": {"names": ["tianqi"]},
    "longitudinal": {"weeks": 2, "site": "HK", "sample_days": 0.15,
                     "period_days": 7.0},
    "kpis": ["effective_daily_hours", "shrinkage_stability",
             "stream_effective_daily_hours", "stream_packets_per_day"],
}


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    root = tmp_path_factory.mktemp("spill-cells")
    plain = run_scenario(LON_DOC)
    spilled = run_scenario(LON_DOC, spill_dir=root / "spill",
                           rows_per_shard=300)
    return root, plain, spilled


def _triples(run):
    return {(r.cell, r.kpi, r.subject): r.value
            for r in run.store._rows}


class TestSpillCells:
    def test_standard_rows_unchanged(self, runs):
        _root, plain, spilled = runs
        plain_rows = _triples(plain)
        spilled_rows = _triples(spilled)
        for key, value in plain_rows.items():
            assert spilled_rows[key] == value, key

    def test_stream_rows_added(self, runs):
        _root, plain, spilled = runs
        extra = set(_triples(spilled)) - set(_triples(plain))
        assert extra, "spill added no stream rows"
        assert all(kpi.startswith("stream_") for _, kpi, _ in extra)
        kpis = {kpi for _, kpi, _ in extra}
        assert {"stream_shards", "stream_rows",
                "stream_effective_daily_hours"} <= kpis

    def test_archive_lands_under_cell_id(self, runs):
        root, _plain, spilled = runs
        for cell_id in spilled.cell_ids:
            assert is_stream_archive(root / "spill" / cell_id)

    def test_manifest_spill_key_only_when_enabled(self, runs):
        _root, plain, spilled = runs
        assert "spill" not in plain.manifest
        assert spilled.manifest["spill"]["rows_per_shard"] == 300


def test_resume_writes_identical_run_dir(tmp_path):
    spill = tmp_path / "spill"
    first = run_scenario(LON_DOC, spill_dir=spill, rows_per_shard=300,
                         out_dir=tmp_path / "a")
    spill_before = sha_tree(spill)
    second = run_scenario(LON_DOC, spill_dir=spill, rows_per_shard=300,
                          resume=True, out_dir=tmp_path / "b")
    assert sha_tree(spill) == spill_before
    assert _triples(first) == _triples(second)
    a, b = sha_tree(tmp_path / "a"), sha_tree(tmp_path / "b")
    assert a["kpis.npz"] == b["kpis.npz"]
    assert a["manifest.json"] == b["manifest.json"]
