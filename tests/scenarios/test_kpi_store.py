"""Columnar KPI store: round-trip, byte-determinism, diffing."""

import math

import pytest

from satiot.scenarios import KpiRow, KpiStore, diff_stores


def sample_store():
    store = KpiStore()
    store.extend([
        KpiRow("a", "{}", "availability", "Tianqi@HK", 0.79),
        KpiRow("a", "{}", "availability", "Tianqi@SYD", 0.81),
        KpiRow("a", "{}", "traces", "", 242.0),
        KpiRow("b", '{"x":1}', "availability", "Tianqi@HK", 0.5),
    ])
    return store


class TestStore:
    def test_cells_in_first_appearance_order(self):
        assert sample_store().cells() == ["a", "b"]

    def test_value_lookup(self):
        assert sample_store().value("a", "availability",
                                    "Tianqi@SYD") == 0.81

    def test_missing_key_raises_with_names(self):
        with pytest.raises(KeyError, match="availability"):
            sample_store().value("zzz", "availability", "Tianqi@HK")

    def test_subject_values(self):
        values = sample_store().subject_values("availability",
                                               cell="a")
        assert values == {"Tianqi@HK": 0.79, "Tianqi@SYD": 0.81}

    def test_cell_values(self):
        values = sample_store().cell_values("availability",
                                            subject="Tianqi@HK")
        assert values == {"a": 0.79, "b": 0.5}

    def test_roundtrip(self, tmp_path):
        store = sample_store()
        path = tmp_path / "k.npz"
        store.save(path)
        assert KpiStore.load(path) == store

    def test_save_is_byte_deterministic(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        sample_store().save(a)
        sample_store().save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_unicode_subjects_roundtrip(self, tmp_path):
        store = KpiStore()
        store.append(KpiRow("c", "{}", "presence", "天启@HK", 19.1))
        path = tmp_path / "u.npz"
        store.save(path)
        assert KpiStore.load(path).value("c", "presence",
                                         "天启@HK") == 19.1


class TestDiff:
    def test_identical_stores(self):
        diff = diff_stores(sample_store(), sample_store())
        assert diff.identical
        assert diff.total_deltas == 0
        assert diff.compared == 4

    def test_value_delta_reported(self):
        a = sample_store()
        rows = list(sample_store())
        rows[0] = KpiRow("a", "{}", "availability", "Tianqi@HK", 0.80)
        diff = diff_stores(a, KpiStore(rows))
        assert not diff.identical
        assert any(d.kpi == "availability" for d in diff.changed)

    def test_missing_keys_reported(self):
        a = sample_store()
        b = KpiStore(list(sample_store())[:-1])
        diff = diff_stores(a, b)
        assert not diff.identical
        assert len(diff.only_a) == 1

    def test_nan_matches_nan(self):
        a, b = KpiStore(), KpiStore()
        for store in (a, b):
            store.append(KpiRow("c", "{}", "tco_crossover_months", "",
                                math.nan))
        assert diff_stores(a, b).identical

    def test_tolerance(self):
        a = sample_store()
        rows = list(sample_store())
        rows[0] = KpiRow("a", "{}", "availability", "Tianqi@HK",
                         0.79 + 1e-12)
        b = KpiStore(rows)
        assert not diff_stores(a, b).identical
        assert diff_stores(a, b, atol=1e-9).identical
