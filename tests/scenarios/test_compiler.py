"""Compiler lowering: spec documents -> executable cell configs."""

from satiot.core.active import ActiveCampaignConfig
from satiot.core.campaign import PassiveCampaignConfig
from satiot.scenarios import (SCENARIO_FORMAT, build_cell_constellations,
                              compile_cells, parse_scenario)


def compile_one(document):
    cells = compile_cells(parse_scenario(document))
    assert len(cells) == 1
    return cells[0]


def base(kind, **extra):
    document = {"format": SCENARIO_FORMAT, "name": "t", "kind": kind,
                "seed": 9}
    document.update(extra)
    return document


class TestPassiveLowering:
    def test_config_fields(self):
        cell = compile_one(base(
            "passive",
            constellation={"names": ["tianqi", "fossa"]},
            sites=["HK", "SYD"],
            duration={"days": 2.0},
            ground={"min_elevation_deg": 5.0}))
        config = cell.config
        assert isinstance(config, PassiveCampaignConfig)
        assert config.sites == ("HK", "SYD")
        assert config.constellations == ("tianqi", "fossa")
        assert config.days == 2.0
        assert config.seed == 9
        assert config.min_elevation_deg == 5.0

    def test_defaults(self):
        cell = compile_one(base(
            "passive", constellation={"names": ["tianqi"]},
            sites=["HK"]))
        assert cell.config.days == 1.0
        assert cell.config.min_elevation_deg == 0.0


class TestActiveLowering:
    def test_config_fields(self):
        cell = compile_one(base(
            "active",
            duration={"days": 4.0},
            traffic={"node_count": 5, "payload_bytes": 60,
                     "reading_interval_s": 900},
            mac={"max_retransmissions": 2}))
        config = cell.config
        assert isinstance(config, ActiveCampaignConfig)
        assert config.days == 4.0
        assert config.node_count == 5
        assert config.payload_bytes == 60
        assert config.reading_interval_s == 900.0
        assert config.max_retransmissions == 2


class TestLongitudinalLowering:
    def test_kwargs(self):
        cell = compile_one(base(
            "longitudinal",
            constellation={"names": ["tianqi"]},
            longitudinal={"weeks": 3, "site": "SYD",
                          "sample_days": 0.5, "period_days": 14}))
        assert cell.kwargs["weeks"] == 3
        assert cell.kwargs["site"] == "SYD"
        assert cell.kwargs["sample_days"] == 0.5
        assert cell.kwargs["period_days"] == 14.0
        assert cell.kwargs["constellations"] == ("tianqi",)


class TestWalkerLowering:
    def test_defaults_follow_the_ablation_recipe(self):
        cell = compile_one(base(
            "presence",
            constellation={"walker": {"count": 8}},
            sites=["HK"]))
        constellations = build_cell_constellations(cell)
        (name, constellation), = constellations.items()
        assert constellation.name == "ABL-8"
        assert len(constellation) == 8
        # 600 +/- 10 km band, 97.5 deg SSO.
        sats = constellation.satellites
        assert sats[0].norad_id >= 80008

    def test_named_walker(self):
        cell = compile_one(base(
            "presence",
            constellation={"walker": {"count": 4, "name": "MEGA",
                                      "altitude_km": 550.0,
                                      "altitude_spread_km": 0.0}},
            sites=["HK"]))
        constellations = build_cell_constellations(cell)
        assert list(constellations.values())[0].name == "MEGA"


class TestLighterKinds:
    def test_downlink_params(self):
        cell = compile_one(base(
            "downlink",
            downlink={"rate_bytes_s": 4000.0, "fleet_size": 1000}))
        assert cell.params["rate_bytes_s"] == 4000.0
        assert cell.params["fleet_size"] == 1000
        assert cell.params["window_s"] == 420.0
        assert cell.params["packets_per_node"] == 2

    def test_phy_params(self):
        cell = compile_one(base("phy", phy={"payload_bytes": 40}))
        assert cell.params["payload_bytes"] == 40
        assert cell.params["range_km"] == 1400.0

    def test_reception_overrides_coerced_to_float(self):
        cell = compile_one(base(
            "reception",
            constellation={"name": "tianqi",
                           "overrides": {"beacon_period_s": 2}},
            sites=["HK"]))
        constellations = build_cell_constellations(cell)
        constellation = list(constellations.values())[0]
        assert constellation.radio.beacon_period_s == 2.0
        assert isinstance(constellation.radio.beacon_period_s, float)


class TestSweepCells:
    def test_each_cell_carries_its_value(self):
        document = base(
            "passive", constellation={"names": ["tianqi"]},
            sites=["HK"],
            sweep={"ground.min_elevation_deg": [0.0, 5.0, 10.0]})
        cells = compile_cells(parse_scenario(document))
        assert [c.config.min_elevation_deg for c in cells] \
            == [0.0, 5.0, 10.0]
        assert [c.index for c in cells] == [0, 1, 2]
        assert cells[1].sweep_params \
            == {"ground.min_elevation_deg": 5.0}
