"""Spec-layer validation and grid expansion."""

import pytest

from satiot.scenarios import (SCENARIO_FORMAT, ScenarioError,
                              expand_grid, parse_scenario,
                              scenario_fingerprint)


def minimal(kind="passive", **extra):
    document = {"format": SCENARIO_FORMAT, "name": "t", "kind": kind,
                "seed": 7}
    if kind == "passive":
        document.update({"constellation": {"names": ["tianqi"]},
                         "sites": ["HK"],
                         "duration": {"days": 0.5}})
    elif kind == "downlink":
        document["downlink"] = {"rate_bytes_s": 1000.0,
                                "fleet_size": 10}
    document.update(extra)
    return document


class TestValidationErrors:
    """Errors must name the offending dotted key."""

    def test_wrong_format(self):
        with pytest.raises(ScenarioError, match="'format'"):
            parse_scenario({"format": "nope", "name": "t",
                            "kind": "passive", "seed": 1})

    def test_unknown_kind(self):
        with pytest.raises(ScenarioError, match="'kind'"):
            parse_scenario(minimal(kind="zeppelin"))

    def test_unknown_section_key_is_named(self):
        doc = minimal()
        doc["duration"] = {"days": 0.5, "dayz": 1}
        with pytest.raises(ScenarioError, match="'duration.dayz'"):
            parse_scenario(doc)

    def test_type_error_names_key(self):
        doc = minimal()
        doc["duration"] = {"days": "long"}
        with pytest.raises(ScenarioError, match="'duration.days'"):
            parse_scenario(doc)

    def test_negative_duration_rejected(self):
        doc = minimal()
        doc["duration"] = {"days": -1.0}
        with pytest.raises(ScenarioError, match="'duration.days'"):
            parse_scenario(doc)

    def test_unknown_constellation_listed(self):
        doc = minimal()
        doc["constellation"] = {"names": ["tianqi", "iridium"]}
        with pytest.raises(ScenarioError,
                           match="'constellation.names'"):
            parse_scenario(doc)

    def test_unknown_site_named(self):
        doc = minimal()
        doc["sites"] = ["HK", "XX"]
        with pytest.raises(ScenarioError, match="sites"):
            parse_scenario(doc)

    def test_section_not_allowed_for_kind(self):
        doc = minimal()
        doc["downlink"] = {"rate_bytes_s": 1.0, "fleet_size": 1}
        with pytest.raises(ScenarioError, match="'downlink'"):
            parse_scenario(doc)

    def test_sweep_path_must_exist(self):
        doc = minimal(sweep={"ground.mask": [1.0, 2.0]})
        with pytest.raises(ScenarioError, match="sweep"):
            parse_scenario(doc)

    def test_sweep_values_are_validated(self):
        doc = minimal(sweep={"duration.days": [0.5, -2.0]})
        with pytest.raises(ScenarioError, match="duration.days"):
            parse_scenario(doc)

    def test_longitudinal_site_is_a_string(self):
        doc = {"format": SCENARIO_FORMAT, "name": "t",
               "kind": "longitudinal", "seed": 1,
               "constellation": {"names": ["tianqi"]},
               "longitudinal": {"weeks": 2, "site": 7}}
        with pytest.raises(ScenarioError,
                           match="'longitudinal.site'"):
            parse_scenario(doc)


class TestDefaults:
    def test_defaults_filled(self):
        spec = parse_scenario(minimal())
        assert spec.section("ground")["min_elevation_deg"] == 0.0
        assert spec.section("ground")["stations"] is None

    def test_input_not_mutated(self):
        doc = minimal()
        parse_scenario(doc)
        assert "ground" not in doc

    def test_reparse_is_idempotent(self):
        spec = parse_scenario(minimal())
        again = parse_scenario(spec.document)
        assert again.document == spec.document


class TestGrid:
    def test_sweepless_is_single_cell(self):
        cells = expand_grid(parse_scenario(minimal()))
        assert [cid for cid, _, _ in cells] == ["t"]

    def test_first_axis_outermost(self):
        doc = minimal(sweep={"ground.min_elevation_deg": [0.0, 5.0],
                             "duration.days": [0.5, 1.0]})
        cells = expand_grid(parse_scenario(doc))
        assert [cid for cid, _, _ in cells] == [
            "min_elevation_deg=0.0,days=0.5",
            "min_elevation_deg=0.0,days=1.0",
            "min_elevation_deg=5.0,days=0.5",
            "min_elevation_deg=5.0,days=1.0",
        ]

    def test_cell_documents_carry_the_value(self):
        doc = minimal(sweep={"ground.min_elevation_deg": [0.0, 5.0]})
        cells = expand_grid(parse_scenario(doc))
        masks = [spec.section("ground")["min_elevation_deg"]
                 for _, _, spec in cells]
        assert masks == [0.0, 5.0]

    def test_grid_is_deterministic(self):
        doc = minimal(sweep={"ground.min_elevation_deg": [0.0, 5.0]})
        a = expand_grid(parse_scenario(doc))
        b = expand_grid(parse_scenario(doc))
        assert [cid for cid, _, _ in a] == [cid for cid, _, _ in b]


class TestFingerprint:
    def test_stable_across_parses(self):
        doc = minimal(sweep={"duration.days": [0.5, 1.0]})
        assert scenario_fingerprint(parse_scenario(doc)) \
            == scenario_fingerprint(parse_scenario(doc))

    def test_sensitive_to_values(self):
        a = scenario_fingerprint(parse_scenario(minimal()))
        doc = minimal()
        doc["duration"] = {"days": 0.75}
        b = scenario_fingerprint(parse_scenario(doc))
        assert a != b
