"""CLI surface of the ``satiot scenario`` command family."""

import json

import pytest

from satiot.cli import main
from satiot.scenarios import SCENARIO_FORMAT

PHY_DOC = {
    "format": SCENARIO_FORMAT, "name": "cli-phy", "kind": "phy",
    "seed": 7,
    "kpis": ["snr_db"],
    "sweep": {"phy.payload_bytes": [20, 60]},
}


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "phy.json"
    path.write_text(json.dumps(PHY_DOC))
    return path


class TestValidate:
    def test_ok(self, spec_path, capsys):
        assert main(["scenario", "validate", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "[ OK ]" in out
        assert "cli-phy" in out

    def test_invalid_names_the_key(self, tmp_path, capsys):
        bad = dict(PHY_DOC)
        bad["kind"] = "zeppelin"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert main(["scenario", "validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out
        assert "kind" in out

    def test_not_json(self, tmp_path, capsys):
        path = tmp_path / "nope.json"
        path.write_text("{")
        assert main(["scenario", "validate", str(path)]) == 1


class TestGrid:
    def test_prints_matrix(self, spec_path, capsys):
        assert main(["scenario", "grid", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "payload_bytes=20" in out
        assert "payload_bytes=60" in out
        assert "2 cell(s)" in out


class TestRunAndDiff:
    def test_run_writes_run_dir(self, spec_path, tmp_path, capsys):
        out_dir = tmp_path / "run"
        assert main(["scenario", "run", str(spec_path),
                     "--out", str(out_dir)]) == 0
        assert (out_dir / "manifest.json").is_file()
        assert (out_dir / "kpis.npz").is_file()
        out = capsys.readouterr().out
        assert "snr_db" in out

    def test_identical_runs_diff_clean(self, spec_path, tmp_path,
                                       capsys):
        for name in ("a", "b"):
            assert main(["scenario", "run", str(spec_path),
                         "--out", str(tmp_path / name)]) == 0
        assert main(["scenario", "diff", str(tmp_path / "a"),
                     str(tmp_path / "b")]) == 0
        out = capsys.readouterr().out
        assert "0 deltas" in out

    def test_differing_runs_exit_nonzero(self, spec_path, tmp_path,
                                         capsys):
        assert main(["scenario", "run", str(spec_path),
                     "--out", str(tmp_path / "a")]) == 0
        other = dict(PHY_DOC)
        other["phy"] = {"eirp_dbm": 14.0}
        other_path = tmp_path / "other.json"
        other_path.write_text(json.dumps(other))
        assert main(["scenario", "run", str(other_path),
                     "--out", str(tmp_path / "b")]) == 0
        assert main(["scenario", "diff", str(tmp_path / "a"),
                     str(tmp_path / "b")]) == 1
        out = capsys.readouterr().out
        assert "changed" in out

    def test_missing_spec_is_a_clean_error(self, tmp_path, capsys):
        assert main(["scenario", "run",
                     str(tmp_path / "missing.json")]) == 2
        err = capsys.readouterr().err
        assert "missing.json" in err

    def test_smoke_flag_shrinks_sweep(self, tmp_path, capsys):
        doc = {"format": SCENARIO_FORMAT, "name": "s", "kind": "phy",
               "seed": 1,
               "sweep": {"phy.payload_bytes": [20, 40, 60, 80]}}
        path = tmp_path / "s.json"
        path.write_text(json.dumps(doc))
        assert main(["scenario", "run", str(path), "--smoke",
                     "--out", str(tmp_path / "run")]) == 0
        manifest = json.loads(
            (tmp_path / "run" / "manifest.json").read_text())
        assert len(manifest["cells"]) == 2
