"""Orchestrator: matrix execution, manifests, determinism, diffing."""

import json

import pytest

from satiot.scenarios import (SCENARIO_FORMAT, diff_runs, load_run,
                              parse_scenario, render_diff_report,
                              run_scenario, smoke_document)

PHY_DOC = {
    "format": SCENARIO_FORMAT, "name": "phy-t", "kind": "phy",
    "seed": 42,
    "sweep": {"phy.payload_bytes": [20, 60]},
}

PRESENCE_DOC = {
    "format": SCENARIO_FORMAT, "name": "walker-t", "kind": "presence",
    "seed": 42,
    "constellation": {"walker": {"count": 4}},
    "sites": ["HK"],
    "duration": {"days": 0.5},
    "sweep": {"constellation.walker.count": [4, 8]},
}


@pytest.fixture(scope="module")
def phy_run():
    return run_scenario(PHY_DOC)


class TestRun:
    def test_matrix_order(self, phy_run):
        assert phy_run.cell_ids == ["payload_bytes=20",
                                    "payload_bytes=60"]

    def test_cell_params(self, phy_run):
        assert phy_run.cell_params("payload_bytes=60") \
            == {"phy.payload_bytes": 60}

    def test_kpis_extracted(self, phy_run):
        airtime_20 = phy_run.store.value("payload_bytes=20",
                                         "airtime_s", "SF10")
        airtime_60 = phy_run.store.value("payload_bytes=60",
                                         "airtime_s", "SF10")
        assert airtime_60 > airtime_20 > 0

    def test_manifest_fields(self, phy_run):
        manifest = phy_run.manifest
        assert manifest["format"] == "satiot-scenario-run-v1"
        assert manifest["scenario"] == "phy-t"
        assert manifest["kind"] == "phy"
        assert manifest["seed"] == 42
        assert len(manifest["scenario_fingerprint"]) == 16
        assert manifest["cells"] == ["payload_bytes=20",
                                     "payload_bytes=60"]
        assert manifest["kpi_rows"] == len(phy_run.store)
        # No wall-clock state: manifests of identical runs must match.
        assert "timestamp" not in json.dumps(manifest)

    def test_save_and_load_roundtrip(self, phy_run, tmp_path):
        run_dir = phy_run.save(tmp_path / "run")
        manifest, store = load_run(run_dir)
        assert store == phy_run.store
        assert manifest == phy_run.manifest


class TestDeterminism:
    def test_workers_do_not_change_bytes(self, tmp_path):
        serial = run_scenario(PRESENCE_DOC, workers=1)
        parallel = run_scenario(PRESENCE_DOC, workers=4)
        dir_a = serial.save(tmp_path / "serial")
        dir_b = parallel.save(tmp_path / "parallel")
        assert (dir_a / "kpis.npz").read_bytes() \
            == (dir_b / "kpis.npz").read_bytes()
        assert serial.manifest == parallel.manifest

    def test_diff_of_identical_runs_is_empty(self, tmp_path):
        dir_a = run_scenario(PHY_DOC).save(tmp_path / "a")
        dir_b = run_scenario(PHY_DOC).save(tmp_path / "b")
        diff, manifest_a, manifest_b = diff_runs(dir_a, dir_b)
        assert diff.identical
        report = render_diff_report(diff, manifest_a, manifest_b)
        assert "0 deltas" in report


class TestSmokeDocument:
    def test_passive_duration_capped(self):
        doc = {"format": SCENARIO_FORMAT, "name": "s",
               "kind": "passive",
               "seed": 1, "constellation": {"names": ["tianqi"]},
               "sites": ["HK"], "duration": {"days": 7.0},
               "sweep": {"ground.min_elevation_deg":
                         [0.0, 5.0, 10.0, 15.0]}}
        smoke = smoke_document(doc)
        spec = parse_scenario(smoke)
        assert spec.section("duration")["days"] <= 0.25
        assert all(len(v) <= 2 for v in spec.sweep.values())

    def test_longitudinal_weeks_capped(self):
        doc = {"format": SCENARIO_FORMAT, "name": "s",
               "kind": "longitudinal", "seed": 1,
               "constellation": {"names": ["tianqi"]},
               "longitudinal": {"weeks": 8, "sample_days": 1.0}}
        spec = parse_scenario(smoke_document(doc))
        assert spec.section("longitudinal")["weeks"] <= 2
        assert spec.section("longitudinal")["sample_days"] <= 0.25

    def test_original_document_untouched(self):
        doc = {"format": SCENARIO_FORMAT, "name": "s",
               "kind": "passive",
               "seed": 1, "constellation": {"names": ["tianqi"]},
               "sites": ["HK"], "duration": {"days": 7.0}}
        smoke_document(doc)
        assert doc["duration"]["days"] == 7.0
