"""Tests for the logistic packet-error model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.phy.error_model import packet_error_rate, reception_probability


class TestReceptionProbability:
    def test_far_below_threshold_zero(self):
        assert reception_probability(-30.0, -15.0) < 0.001

    def test_far_above_threshold_one(self):
        assert reception_probability(0.0, -15.0) > 0.999

    def test_waterfall_centre(self):
        # Centre sits one slope above the demod threshold.
        assert reception_probability(-14.0, -15.0, slope_db=1.0) \
            == pytest.approx(0.5)

    @given(snr=st.floats(-40.0, 20.0))
    @settings(max_examples=100)
    def test_valid_probability(self, snr):
        p = reception_probability(snr, -15.0)
        assert 0.0 <= p <= 1.0

    @given(snr=st.floats(-40.0, 19.0))
    @settings(max_examples=100)
    def test_monotonic(self, snr):
        assert reception_probability(snr + 1.0, -15.0) \
            >= reception_probability(snr, -15.0)

    def test_vectorized(self):
        p = reception_probability(np.array([-30.0, -14.0, 0.0]), -15.0)
        assert p.shape == (3,)
        assert p[0] < p[1] < p[2]

    def test_invalid_slope(self):
        with pytest.raises(ValueError):
            reception_probability(0.0, -15.0, slope_db=0.0)


class TestPacketErrorRate:
    def test_complement(self):
        for snr in (-20.0, -14.0, -5.0):
            assert packet_error_rate(snr, -15.0) \
                == pytest.approx(1.0 - reception_probability(snr, -15.0))

    def test_vectorized_complement(self):
        snr = np.linspace(-25, 0, 10)
        np.testing.assert_allclose(
            packet_error_rate(snr, -15.0)
            + reception_probability(snr, -15.0), 1.0)
