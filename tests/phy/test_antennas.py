"""Tests for antenna gain patterns."""

import numpy as np
import pytest

from satiot.phy.antennas import (ANTENNAS_BY_NAME, DIPOLE,
                                 FIVE_EIGHTHS_WAVE, QUARTER_WAVE)


class TestPatterns:
    def test_registry(self):
        assert set(ANTENNAS_BY_NAME) == {"dipole", "quarter_wave",
                                         "five_eighths_wave"}

    def test_whip_zenith_null(self):
        # Monopoles lose gain straight up.
        for ant in (QUARTER_WAVE, FIVE_EIGHTHS_WAVE):
            assert ant.gain_dbi(90.0) < ant.gain_dbi(30.0)

    def test_five_eighths_beats_quarter_wave(self):
        # Paper Fig. 5b: the 5/8-wave antenna outperforms the 1/4-wave.
        for el in (10.0, 20.0, 40.0, 60.0):
            assert FIVE_EIGHTHS_WAVE.gain_dbi(el) > QUARTER_WAVE.gain_dbi(el)

    def test_dipole_relatively_flat(self):
        gains = [DIPOLE.gain_dbi(el) for el in range(0, 91, 10)]
        assert max(gains) - min(gains) < 4.0

    def test_horizon_rolloff(self):
        for ant in ANTENNAS_BY_NAME.values():
            assert ant.gain_dbi(0.0) < ant.gain_dbi(25.0)

    def test_vectorized(self):
        els = np.array([0.0, 30.0, 60.0, 90.0])
        gains = DIPOLE.gain_dbi(els)
        assert gains.shape == (4,)
        for i, el in enumerate(els):
            assert gains[i] == pytest.approx(DIPOLE.gain_dbi(float(el)))

    def test_out_of_range_clipped(self):
        assert DIPOLE.gain_dbi(-10.0) == DIPOLE.gain_dbi(0.0)
        assert DIPOLE.gain_dbi(100.0) == DIPOLE.gain_dbi(90.0)
