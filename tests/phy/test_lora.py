"""Tests for the LoRa modulation model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.phy.lora import (SNR_LIMIT_DB, LoRaModulation, noise_floor_dbm,
                             sensitivity_dbm)


class TestNoiseFloor:
    def test_125khz_value(self):
        # -174 + 10 log10(125e3) + 6 = -117.03 dBm.
        assert noise_floor_dbm(125e3) == pytest.approx(-117.03, abs=0.01)

    def test_bandwidth_scaling(self):
        assert noise_floor_dbm(250e3) - noise_floor_dbm(125e3) \
            == pytest.approx(3.01, abs=0.01)

    def test_invalid(self):
        with pytest.raises(ValueError):
            noise_floor_dbm(0.0)


class TestSensitivity:
    def test_sf10_value(self):
        # Classic SX126x figure: about -132 dBm at SF10/125 kHz.
        assert sensitivity_dbm(10, 125e3) == pytest.approx(-132.0, abs=0.5)

    def test_monotonic_in_sf(self):
        values = [sensitivity_dbm(sf, 125e3) for sf in range(7, 13)]
        assert values == sorted(values, reverse=True)

    def test_unsupported_sf(self):
        with pytest.raises(ValueError):
            sensitivity_dbm(4, 125e3)


class TestModulationValidation:
    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            LoRaModulation(spreading_factor=13)
        with pytest.raises(ValueError):
            LoRaModulation(spreading_factor=10, bandwidth_hz=0)
        with pytest.raises(ValueError):
            LoRaModulation(spreading_factor=10, coding_rate=9)
        with pytest.raises(ValueError):
            LoRaModulation(spreading_factor=10, preamble_symbols=2)


class TestSymbolTime:
    def test_sf10_125khz(self):
        mod = LoRaModulation(spreading_factor=10)
        assert mod.symbol_time_s == pytest.approx(1024 / 125e3)

    def test_bin_width(self):
        mod = LoRaModulation(spreading_factor=10)
        assert mod.bin_width_hz == pytest.approx(125e3 / 1024)


class TestAirtime:
    def test_paper_scale(self):
        # Paper Section 1: "a single transmission can last for hundreds
        # to thousands of ms" — 20 bytes at SF10 is several hundred ms.
        mod = LoRaModulation(spreading_factor=10)
        assert 0.2 < mod.airtime_s(20) < 1.0

    def test_sf12_longer_than_sf7(self):
        sf7 = LoRaModulation(spreading_factor=7,
                             low_data_rate_optimize=False)
        sf12 = LoRaModulation(spreading_factor=12)
        assert sf12.airtime_s(20) > 10 * sf7.airtime_s(20)

    @given(payload=st.integers(0, 200))
    @settings(max_examples=100)
    def test_monotonic_in_payload(self, payload):
        mod = LoRaModulation(spreading_factor=10)
        assert mod.airtime_s(payload + 1) >= mod.airtime_s(payload)

    def test_known_sf7_value(self):
        # Semtech airtime formula by hand: preamble (8 + 4.25) symbols
        # plus 43 payload symbols at 1.024 ms/symbol -> 56.58 ms.
        mod = LoRaModulation(spreading_factor=7, bandwidth_hz=125e3,
                             coding_rate=5, preamble_symbols=8,
                             low_data_rate_optimize=False)
        assert mod.airtime_s(20) * 1000 == pytest.approx(56.58, abs=0.5)

    def test_preamble_only_floor(self):
        mod = LoRaModulation(spreading_factor=10)
        min_airtime = (8 + 4.25 + 8) * mod.symbol_time_s
        assert mod.airtime_s(0) >= min_airtime

    def test_negative_payload_raises(self):
        with pytest.raises(ValueError):
            LoRaModulation(spreading_factor=10).airtime_s(-1)

    def test_ldro_lengthens(self):
        on = LoRaModulation(spreading_factor=11, low_data_rate_optimize=True)
        off = LoRaModulation(spreading_factor=11,
                             low_data_rate_optimize=False)
        assert on.airtime_s(50) >= off.airtime_s(50)


class TestBitrate:
    def test_sf7_headline_rate(self):
        # SF7 / 125 kHz / CR 4/5 is the classic ~5.47 kbps LoRa rate.
        mod = LoRaModulation(spreading_factor=7,
                             low_data_rate_optimize=False)
        assert mod.bitrate_bps() == pytest.approx(5470.0, rel=0.01)

    def test_snr_limit_lookup(self):
        assert LoRaModulation(spreading_factor=10).snr_limit_db \
            == SNR_LIMIT_DB[10]
