"""Tests for the NB-IoT uplink model."""


import pytest

from satiot.phy.nbiot import REPETITIONS, NbIotUplink


class TestValidation:
    def test_repetitions(self):
        with pytest.raises(ValueError):
            NbIotUplink(repetitions=3)
        for reps in REPETITIONS:
            NbIotUplink(repetitions=reps)

    def test_spacing(self):
        with pytest.raises(ValueError):
            NbIotUplink(subcarrier_spacing_hz=30_000.0)

    def test_payload(self):
        with pytest.raises(ValueError):
            NbIotUplink().airtime_s(0)


class TestLinkBudget:
    def test_reference_mcl(self):
        # NB-IoT's design target is 164 dB MCL at high repetition.
        deep = NbIotUplink(repetitions=128)
        assert deep.max_coupling_loss_db(23.0) > 160.0

    def test_repetitions_deepen_coverage(self):
        mcls = [NbIotUplink(repetitions=r).max_coupling_loss_db()
                for r in REPETITIONS]
        assert mcls == sorted(mcls)
        # Each doubling buys ~3 dB.
        assert mcls[1] - mcls[0] == pytest.approx(3.01, abs=0.01)

    def test_sensitivity_below_noise_with_reps(self):
        deep = NbIotUplink(repetitions=64)
        assert deep.required_snr_db < -15.0

    def test_for_coupling_loss_selects_cheapest(self):
        uplink = NbIotUplink.for_coupling_loss(150.0)
        assert uplink is not None
        cheaper = NbIotUplink(
            repetitions=REPETITIONS[
                REPETITIONS.index(uplink.repetitions) - 1]) \
            if uplink.repetitions > 1 else None
        if cheaper is not None:
            assert cheaper.max_coupling_loss_db() < 150.0

    def test_impossible_budget(self):
        assert NbIotUplink.for_coupling_loss(250.0) is None


class TestAirtimeAndEnergy:
    def test_rate_divides_by_repetitions(self):
        base = NbIotUplink(repetitions=1)
        deep = NbIotUplink(repetitions=16)
        assert deep.effective_rate_bps \
            == pytest.approx(base.effective_rate_bps / 16)

    def test_airtime_scales(self):
        base = NbIotUplink(repetitions=1)
        deep = NbIotUplink(repetitions=16)
        assert deep.airtime_s(20) == pytest.approx(16 * base.airtime_s(20))

    def test_paper_profile_airtime(self):
        # 20-byte reading at reference coverage: tens of ms — far
        # quicker than LoRa SF10's 370 ms.
        assert NbIotUplink().airtime_s(20) < 0.05

    def test_deep_coverage_airtime_seconds(self):
        # At the DtS-scale budget the repetitions push airtime to
        # seconds, eroding NB-IoT's rate advantage.
        deep = NbIotUplink(repetitions=128)
        assert deep.airtime_s(20) > 1.0

    def test_energy(self):
        uplink = NbIotUplink(repetitions=4)
        assert uplink.tx_energy_j(20, tx_power_mw=1000.0) \
            == pytest.approx(uplink.airtime_s(20) * 1.0, rel=1e-9)
        with pytest.raises(ValueError):
            uplink.tx_energy_j(20, tx_power_mw=0.0)


class TestDtSComparison:
    def test_dts_budget_feasible_with_repetition(self):
        # Mid-pass DtS stack: FSPL(1,400 km) plus excess/rain, antenna
        # deficits and a fading margin ~ 161 dB coupling loss.  NB-IoT
        # closes it, but only by spending repetitions (airtime/energy),
        # mirroring LoRa's high-SF regime.
        from satiot.phy.link_budget import free_space_path_loss_db
        loss = (free_space_path_loss_db(1400.0, 400.45e6)
                + 3.0   # excess / rain
                + 6.0   # node antenna + pointing deficits
                + 5.0)  # fading margin
        uplink = NbIotUplink.for_coupling_loss(loss)
        assert uplink is not None
        assert uplink.repetitions >= 8
        assert uplink.airtime_s(20) > 8 * NbIotUplink().airtime_s(20)
