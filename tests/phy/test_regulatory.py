"""Tests for regulatory duty-cycle accounting."""

import pytest

from satiot.phy.regulatory import (ETSI_433, ETSI_868_G1, BandPlan,
                                   DutyCycleLimiter)


class TestBandPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            BandPlan("x", 434e6, 433e6, 0.01, 10.0)
        with pytest.raises(ValueError):
            BandPlan("x", 433e6, 434e6, 0.0, 10.0)

    def test_contains(self):
        assert ETSI_433.contains(433.5e6)
        assert not ETSI_433.contains(436.26e6)
        assert ETSI_868_G1.contains(868.3e6)

    def test_etsi_433_parameters(self):
        assert ETSI_433.duty_cycle == 0.01
        assert ETSI_433.max_eirp_dbm == 10.0


class TestDutyCycleLimiter:
    def test_validation(self):
        with pytest.raises(ValueError):
            DutyCycleLimiter(duty_cycle=0.0)
        with pytest.raises(ValueError):
            DutyCycleLimiter(window_s=0.0)

    def test_budget(self):
        limiter = DutyCycleLimiter(duty_cycle=0.01, window_s=3600.0)
        assert limiter.budget_s == pytest.approx(36.0)

    def test_fresh_limiter_allows(self):
        limiter = DutyCycleLimiter()
        assert limiter.can_transmit(0.0, 1.0)

    def test_budget_exhaustion(self):
        limiter = DutyCycleLimiter(duty_cycle=0.01, window_s=100.0)
        limiter.record(0.0, 0.6)
        assert limiter.can_transmit(1.0, 0.4)
        limiter.record(1.0, 0.4)
        assert not limiter.can_transmit(2.0, 0.1)

    def test_window_slides(self):
        limiter = DutyCycleLimiter(duty_cycle=0.01, window_s=100.0)
        limiter.record(0.0, 1.0)  # whole budget
        assert not limiter.can_transmit(50.0, 0.5)
        # After the window passes, the budget frees up.
        assert limiter.can_transmit(101.0, 0.5)
        assert limiter.airtime_used_s(101.0) == 0.0

    def test_next_allowed(self):
        limiter = DutyCycleLimiter(duty_cycle=0.01, window_s=100.0)
        limiter.record(10.0, 1.0)
        when = limiter.next_allowed_s(20.0, 0.5)
        assert when == pytest.approx(110.0)
        assert limiter.can_transmit(when, 0.5)

    def test_out_of_order_rejected(self):
        limiter = DutyCycleLimiter()
        limiter.record(100.0, 0.1)
        with pytest.raises(ValueError, match="in order"):
            limiter.record(50.0, 0.1)

    def test_negative_airtime_rejected(self):
        limiter = DutyCycleLimiter()
        with pytest.raises(ValueError):
            limiter.can_transmit(0.0, -1.0)
        with pytest.raises(ValueError):
            limiter.record(0.0, -1.0)

    def test_paper_scale_node_fits_easily(self):
        # 48 packets/day at ~0.37 s each is ~0.02 % duty — far inside
        # the 1 % cap, which is why the paper never mentions it...
        limiter = DutyCycleLimiter(duty_cycle=0.01, window_s=3600.0)
        for i in range(2):  # 2 packets per hour
            assert limiter.can_transmit(i * 1800.0, 0.37)
            limiter.record(i * 1800.0, 0.37)

    def test_retransmission_burst_can_hit_cap(self):
        # ...but a 6-attempt burst of 120-byte SF12 frames would not be.
        limiter = DutyCycleLimiter(duty_cycle=0.01, window_s=3600.0)
        airtime = 4.3  # ~120 B at SF12
        sent = 0
        t = 0.0
        while limiter.can_transmit(t, airtime):
            limiter.record(t, airtime)
            sent += 1
            t += 10.0
        assert sent == 8  # 36 s budget / 4.3 s
