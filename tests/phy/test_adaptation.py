"""Tests for spreading-factor adaptation."""

import pytest

from satiot.phy.adaptation import (select_spreading_factor,
                                   sf_trade_table)


class TestSfTradeTable:
    def test_covers_sf7_to_sf12(self):
        table = sf_trade_table()
        assert sorted(table) == [7, 8, 9, 10, 11, 12]

    def test_airtime_grows_with_sf(self):
        table = sf_trade_table()
        airtimes = [table[sf].airtime_s for sf in range(7, 13)]
        assert airtimes == sorted(airtimes)

    def test_sensitivity_grows_with_sf(self):
        table = sf_trade_table()
        # SF12 threshold -20 dB vs SF7's -7.5 dB: 12.5 dB deeper.
        assert table[12].relative_sensitivity_db == pytest.approx(12.5)
        # SF7 baseline is zero by definition.
        assert table[7].relative_sensitivity_db == 0.0

    def test_energy_tracks_airtime(self):
        table = sf_trade_table(tx_power_mw=1000.0)
        for point in table.values():
            assert point.tx_energy_j \
                == pytest.approx(point.airtime_s * 1.0, rel=1e-9)

    def test_collision_exposure_of_sf12(self):
        table = sf_trade_table()
        # SF12 occupies the channel an order of magnitude longer.
        assert table[12].collision_exposure > 10.0
        assert table[7].collision_exposure == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sf_trade_table(payload_bytes=0)
        with pytest.raises(ValueError):
            sf_trade_table(tx_power_mw=0.0)


class TestSelectSpreadingFactor:
    def test_strong_link_uses_cheapest(self):
        assert select_spreading_factor(0.0) == 7

    def test_weak_link_escalates(self):
        assert select_spreading_factor(-12.0) in (10, 11)

    def test_threshold_plus_margin(self):
        # SNR exactly at SF10's threshold: needs the margin, so SF11.
        assert select_spreading_factor(-15.0, margin_db=2.0) == 11
        assert select_spreading_factor(-15.0, margin_db=0.0) == 10

    def test_hopeless_link(self):
        assert select_spreading_factor(-30.0) is None

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            select_spreading_factor(0.0, margin_db=-1.0)
