"""Tests for the stochastic DtS channel."""

import numpy as np
import pytest

from satiot.phy.channel import (ChannelParams, DtSChannel, PacketSamples,
                                ar1_shadowing_db)
from satiot.phy.link_budget import LinkBudget
from satiot.phy.lora import LoRaModulation


@pytest.fixture
def channel():
    budget = LinkBudget(eirp_dbm=16.0, frequency_hz=400.45e6)
    modulation = LoRaModulation(spreading_factor=10)
    return DtSChannel(budget, modulation)


def simulate(channel, n=200, elevation=45.0, range_km=1200.0, seed=0,
             raining=False, params=None):
    if params is not None:
        channel = DtSChannel(channel.budget, channel.modulation, params)
    rng = np.random.default_rng(seed)
    times = np.arange(n) * 5.0
    return channel.simulate_packets(
        times_s=times,
        elevation_deg=np.full(n, elevation),
        range_km=np.full(n, range_km),
        doppler_shift_hz=np.zeros(n),
        doppler_rate_hz_s=np.zeros(n),
        payload_bytes=24, rng=rng,
        rx_gain_dbi=2.0, raining=raining)


class TestAr1Shadowing:
    def test_stationary_sigma(self):
        rng = np.random.default_rng(1)
        t = np.arange(20000) * 5.0
        x = ar1_shadowing_db(t, 4.0, 20.0, rng)
        assert np.std(x) == pytest.approx(4.0, rel=0.05)

    def test_correlation_decays(self):
        rng = np.random.default_rng(2)
        t = np.arange(50000) * 1.0
        x = ar1_shadowing_db(t, 4.0, 20.0, rng)
        lag1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        lag100 = np.corrcoef(x[:-100], x[100:])[0, 1]
        assert lag1 == pytest.approx(np.exp(-1 / 20.0), abs=0.02)
        assert abs(lag100) < 0.1

    def test_empty_and_single(self):
        rng = np.random.default_rng(3)
        assert len(ar1_shadowing_db(np.array([]), 4.0, 20.0, rng)) == 0
        assert len(ar1_shadowing_db(np.array([0.0]), 4.0, 20.0, rng)) == 1

    def test_decreasing_times_raise(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            ar1_shadowing_db(np.array([10.0, 5.0]), 4.0, 20.0, rng)

    def test_invalid_params(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            ar1_shadowing_db(np.array([0.0, 1.0]), -1.0, 20.0, rng)
        with pytest.raises(ValueError):
            ar1_shadowing_db(np.array([0.0, 1.0]), 1.0, 0.0, rng)


class TestChannelParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelParams(shadowing_sigma_db=-1.0)
        with pytest.raises(ValueError):
            ChannelParams(per_slope_db=0.0)
        with pytest.raises(ValueError):
            ChannelParams(shadowing_correlation_s=0.0)


class TestSimulatePackets:
    def test_output_shapes(self, channel):
        samples = simulate(channel, n=50)
        assert isinstance(samples, PacketSamples)
        assert len(samples) == 50
        assert samples.received.dtype == bool

    def test_empty_input(self, channel):
        rng = np.random.default_rng(0)
        empty = np.array([])
        samples = channel.simulate_packets(empty, empty, empty, empty,
                                           empty, 24, rng)
        assert len(samples) == 0
        assert samples.reception_rate == 0.0

    def test_deterministic_given_seed(self, channel):
        a = simulate(channel, seed=7)
        b = simulate(channel, seed=7)
        np.testing.assert_array_equal(a.received, b.received)
        np.testing.assert_allclose(a.rssi_dbm, b.rssi_dbm)

    def test_high_elevation_beats_horizon(self, channel):
        # Average over pass realisations: overhead geometry decodes far
        # more often than horizon geometry.
        no_pass_fading = ChannelParams(pass_sigma_db=0.0)
        high = np.mean([simulate(channel, elevation=70.0, range_km=900.0,
                                 seed=s, params=no_pass_fading
                                 ).reception_rate
                        for s in range(10)])
        low = np.mean([simulate(channel, elevation=2.0, range_km=3300.0,
                                seed=s, params=no_pass_fading
                                ).reception_rate
                       for s in range(10)])
        assert high > 0.8
        assert low < 0.1

    def test_rain_hurts(self, channel):
        no_pass_fading = ChannelParams(pass_sigma_db=0.0)
        dry = np.mean([simulate(channel, elevation=25.0, range_km=1700.0,
                                seed=s, raining=False,
                                params=no_pass_fading).reception_rate
                       for s in range(20)])
        wet = np.mean([simulate(channel, elevation=25.0, range_km=1700.0,
                                seed=s, raining=True,
                                params=no_pass_fading).reception_rate
                       for s in range(20)])
        assert wet < dry

    def test_rssi_in_paper_band(self, channel):
        samples = simulate(channel, n=500, elevation=30.0, range_km=1500.0)
        assert -150.0 < np.min(samples.rssi_dbm)
        assert np.max(samples.rssi_dbm) < -95.0


class TestDopplerPenalty:
    def test_zero_rate_no_penalty(self, channel):
        assert channel.doppler_penalty_db(0.0, 0.4) == 0.0

    def test_penalty_capped(self, channel):
        assert channel.doppler_penalty_db(1e6, 0.4) \
            == channel.params.max_doppler_penalty_db

    def test_monotonic(self, channel):
        a = channel.doppler_penalty_db(50.0, 0.4)
        b = channel.doppler_penalty_db(150.0, 0.4)
        assert b >= a
