"""Tests for predictive Doppler compensation."""

import numpy as np
import pytest

from satiot.orbits.doppler import doppler_shift_hz
from satiot.phy.doppler_compensation import (CompensationErrorBudget,
                                             DopplerCompensator)


class TestErrorBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompensationErrorBudget(range_rate_error_km_s=-1.0)
        with pytest.raises(ValueError):
            CompensationErrorBudget(clock_ppm=-1.0)


class TestCompensator:
    def test_invalid_carrier(self):
        with pytest.raises(ValueError):
            DopplerCompensator(0.0)

    def test_residual_much_smaller_than_raw(self):
        comp = DopplerCompensator(400.45e6)
        raw = abs(doppler_shift_hz(-7.5, 400.45e6))   # ~10 kHz
        residual = comp.residual_shift_hz(-7.5)
        assert residual < raw / 5.0

    def test_residual_scales_with_clock_quality(self):
        good = DopplerCompensator(400.45e6, CompensationErrorBudget(
            clock_ppm=0.1))
        bad = DopplerCompensator(400.45e6, CompensationErrorBudget(
            clock_ppm=20.0))
        assert good.residual_shift_hz(-7.5) < bad.residual_shift_hz(-7.5)

    def test_vectorized_shapes(self):
        comp = DopplerCompensator(400.45e6)
        rr = np.linspace(-7.5, 7.5, 11)
        assert np.shape(comp.residual_shift_hz(rr)) == (11,)
        assert np.shape(comp.residual_rate_hz_s(rr)) == (11,)

    def test_rate_residual_reduced(self):
        comp = DopplerCompensator(400.45e6)
        raw_rate = 120.0  # Hz/s at overhead pass
        assert comp.residual_rate_hz_s(raw_rate) < raw_rate

    def test_improvement_summary(self):
        comp = DopplerCompensator(400.45e6)
        rr = np.linspace(-7.0, 7.0, 50)
        rate = np.gradient(
            np.asarray(doppler_shift_hz(rr, 400.45e6)), 5.0)
        shift_factor, rate_factor = comp.improvement_summary(rr, rate)
        assert shift_factor > 2.0
        assert rate_factor > 1.0
