"""Tests for the physics-derived capture model."""

import pytest

from satiot.phy.interference import CaptureModel


class TestCaptureModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CaptureModel(capture_threshold_db=-1.0)
        with pytest.raises(ValueError):
            CaptureModel(samples=0)
        with pytest.raises(ValueError):
            CaptureModel().survival_probability(0)

    def test_single_transmitter_always_survives(self):
        assert CaptureModel().survival_probability(1) == 1.0

    def test_monotone_decreasing_in_contenders(self):
        model = CaptureModel()
        probs = [model.survival_probability(k) for k in range(1, 7)]
        assert probs == sorted(probs, reverse=True)

    def test_two_way_overlap_plausible(self):
        # 8 dB spread, 6 dB threshold: a two-way capture succeeds for
        # the tagged signal roughly 20-40 % of the time.
        p = CaptureModel().survival_probability(2)
        assert 0.15 < p < 0.45

    def test_wider_spread_helps_capture(self):
        narrow = CaptureModel(power_spread_db=2.0)
        wide = CaptureModel(power_spread_db=12.0)
        assert wide.survival_probability(3) \
            > narrow.survival_probability(3)

    def test_lower_threshold_helps(self):
        easy = CaptureModel(capture_threshold_db=0.0)
        hard = CaptureModel(capture_threshold_db=10.0)
        assert easy.survival_probability(2) \
            > hard.survival_probability(2)

    def test_deterministic(self):
        a = CaptureModel().survival_probability(3)
        b = CaptureModel().survival_probability(3)
        assert a == b

    def test_table_shape(self):
        table = CaptureModel().capture_table(4)
        assert set(table) == {1, 2, 3, 4}
        assert table[1] == 1.0

    def test_table_feeds_mac_config(self):
        from satiot.network.mac import MacConfig
        table = CaptureModel().capture_table(3)
        config = MacConfig(capture_probability=table)
        assert config.capture(2) == pytest.approx(table[2])
