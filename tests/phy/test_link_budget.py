"""Tests for deterministic link-budget arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.phy.link_budget import (LinkBudget, elevation_excess_loss_db,
                                    free_space_path_loss_db)


class TestFspl:
    def test_reference_value(self):
        # 1,000 km at 400 MHz: 32.44 + 60 + 52.04 = 144.48 dB.
        assert free_space_path_loss_db(1000.0, 400e6) \
            == pytest.approx(144.48, abs=0.02)

    @given(d=st.floats(1.0, 5000.0))
    @settings(max_examples=100)
    def test_doubling_distance_adds_6db(self, d):
        a = free_space_path_loss_db(d, 400e6)
        b = free_space_path_loss_db(2 * d, 400e6)
        assert b - a == pytest.approx(6.02, abs=0.01)

    def test_doubling_frequency_adds_6db(self):
        a = free_space_path_loss_db(1000.0, 400e6)
        b = free_space_path_loss_db(1000.0, 800e6)
        assert b - a == pytest.approx(6.02, abs=0.01)

    def test_invalid(self):
        with pytest.raises(ValueError):
            free_space_path_loss_db(0.0, 400e6)
        with pytest.raises(ValueError):
            free_space_path_loss_db(100.0, 0.0)

    def test_vectorized(self):
        out = free_space_path_loss_db(np.array([500.0, 1000.0]), 400e6)
        assert out.shape == (2,)


class TestExcessLoss:
    def test_full_at_horizon(self):
        assert elevation_excess_loss_db(0.0, 12.0, 8.0) \
            == pytest.approx(12.0)

    def test_decays_with_elevation(self):
        losses = [elevation_excess_loss_db(el, 12.0, 8.0)
                  for el in (0.0, 10.0, 30.0, 60.0)]
        assert losses == sorted(losses, reverse=True)
        assert losses[-1] < 0.01 * losses[0] + 0.1

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            elevation_excess_loss_db(10.0, 12.0, 0.0)


class TestLinkBudget:
    def make(self, **kwargs):
        defaults = dict(eirp_dbm=10.5, frequency_hz=400.45e6)
        defaults.update(kwargs)
        return LinkBudget(**defaults)

    def test_rssi_weak_signal_regime(self):
        # Paper Fig. 3b/3c: LEO beacons arrive weak; with the calibrated
        # 10.5 dBm effective EIRP the median link sits around the SF10
        # sensitivity overhead and far below it at the horizon.
        budget = self.make()
        strong = budget.mean_rssi_dbm(900.0, 60.0, rx_gain_dbi=2.0)
        weak = budget.mean_rssi_dbm(3500.0, 3.0, rx_gain_dbi=2.0)
        assert -140.0 < strong < -120.0
        assert -160.0 < weak < -140.0
        assert strong > weak

    def test_rain_attenuates(self):
        budget = self.make(rain_attenuation_db=3.0)
        dry = budget.mean_rssi_dbm(1000.0, 30.0, raining=False)
        wet = budget.mean_rssi_dbm(1000.0, 30.0, raining=True)
        assert dry - wet == pytest.approx(3.0)

    def test_rx_gain_applied(self):
        budget = self.make()
        a = budget.mean_rssi_dbm(1000.0, 30.0, rx_gain_dbi=0.0)
        b = budget.mean_rssi_dbm(1000.0, 30.0, rx_gain_dbi=3.0)
        assert b - a == pytest.approx(3.0)

    def test_vectorized_mixed(self):
        budget = self.make()
        out = budget.mean_rssi_dbm(np.array([800.0, 2000.0]),
                                   np.array([50.0, 5.0]),
                                   raining=np.array([False, True]))
        assert out.shape == (2,)
        assert out[0] > out[1]
