"""Tests for the two-state weather process."""

import numpy as np
import pytest

from satiot.sim.weather import WeatherParams, WeatherProcess


class TestWeatherParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            WeatherParams(mean_dry_hours=0.0)
        with pytest.raises(ValueError):
            WeatherParams(mean_rain_hours=-1.0)

    def test_rain_fraction(self):
        params = WeatherParams(mean_dry_hours=30.0, mean_rain_hours=10.0)
        assert params.rain_fraction == pytest.approx(0.25)


class TestWeatherProcess:
    def make(self, days=60.0, seed=0, **kwargs):
        params = WeatherParams(**kwargs) if kwargs else WeatherParams()
        rng = np.random.default_rng(seed)
        return WeatherProcess(params, days * 86400.0, rng)

    def test_long_run_fraction(self):
        proc = self.make(days=900.0, mean_dry_hours=30.0,
                         mean_rain_hours=10.0)
        assert proc.rainy_fraction_sampled() == pytest.approx(0.25,
                                                              abs=0.05)

    def test_starts_in_configured_state(self):
        dry = self.make(mean_dry_hours=40.0, mean_rain_hours=6.0,
                        start_raining=False)
        wet = self.make(mean_dry_hours=40.0, mean_rain_hours=6.0,
                        start_raining=True)
        assert dry.is_raining(0.0) is False
        assert wet.is_raining(0.0) is True

    def test_vectorized_matches_scalar(self):
        proc = self.make(days=30.0)
        ts = np.linspace(0.0, 30.0 * 86400.0, 97)
        vec = proc.is_raining(ts)
        for t, v in zip(ts, vec):
            assert proc.is_raining(float(t)) == bool(v)

    def test_query_out_of_span_raises(self):
        proc = self.make(days=1.0)
        with pytest.raises(ValueError):
            proc.is_raining(-1.0)
        with pytest.raises(ValueError):
            proc.is_raining(2.0 * 86400.0)

    def test_episodes_partition_span(self):
        proc = self.make(days=30.0)
        episodes = proc.episodes()
        assert episodes[0][0] == 0.0
        assert episodes[-1][1] == pytest.approx(30.0 * 86400.0)
        for (s0, e0, r0), (s1, e1, r1) in zip(episodes, episodes[1:]):
            assert e0 == pytest.approx(s1)
            assert r0 != r1

    def test_episodes_agree_with_queries(self):
        proc = self.make(days=10.0)
        for start, end, raining in proc.episodes():
            mid = 0.5 * (start + end)
            assert proc.is_raining(mid) == raining

    def test_deterministic(self):
        a = self.make(seed=9)
        b = self.make(seed=9)
        ts = np.linspace(0, 59 * 86400.0, 50)
        np.testing.assert_array_equal(a.is_raining(ts), b.is_raining(ts))

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            WeatherProcess(WeatherParams(), 0.0, np.random.default_rng(0))
