"""Tests for the discrete-event engine."""

import pytest

from satiot.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(5.0, lambda: log.append("b"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(9.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.at(3.0, lambda t=tag: log.append(t))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]
        assert sim.now == 4.0

    def test_after_relative(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.after(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [15.0]

    def test_past_scheduling_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.after(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.after(2.0, lambda: log.append(("second", sim.now)))

        sim.at(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        log = []
        handle = sim.at(1.0, lambda: log.append("x"))
        handle.cancel()
        sim.run()
        assert log == []
        assert handle.cancelled

    def test_cancel_idempotent(self):
        sim = Simulator()
        handle = sim.at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()

    def test_pending_counts_live_events(self):
        sim = Simulator()
        h1 = sim.at(1.0, lambda: None)
        sim.at(2.0, lambda: None)
        assert sim.pending == 2
        h1.cancel()
        assert sim.pending == 1

    def test_cancel_then_count(self):
        """The live counter survives cancel / double-cancel / fire."""
        sim = Simulator()
        handles = [sim.at(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending == 5
        handles[2].cancel()
        handles[4].cancel()
        assert sim.pending == 3
        handles[2].cancel()          # double cancel: no double decrement
        assert sim.pending == 3
        assert sim.step()            # fires t=1
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.at(1.0, lambda: None)
        sim.run()
        assert sim.pending == 0
        handle.cancel()              # already fired: must not go negative
        assert sim.pending == 0

    def test_pending_tracks_events_scheduled_during_run(self):
        sim = Simulator()
        counts = []

        def chain():
            counts.append(sim.pending)
            if len(counts) < 3:
                sim.after(1.0, chain)

        sim.at(0.0, chain)
        sim.run()
        # Inside each firing the fired event is no longer pending.
        assert counts == [0, 0, 0]
        assert sim.pending == 0

    def test_pending_with_run_until_and_cancel(self):
        sim = Simulator()
        kept = sim.at(5.0, lambda: None)
        gone = sim.at(2.0, lambda: None)
        gone.cancel()
        sim.run_until(3.0)           # pops the cancelled entry lazily
        assert sim.pending == 1
        assert not kept.cancelled


class TestRunUntil:
    def test_stops_at_boundary(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(5.0, lambda: log.append(5))
        sim.run_until(3.0)
        assert log == [1]
        assert sim.now == 3.0
        sim.run_until(10.0)
        assert log == [1, 5]

    def test_boundary_inclusive(self):
        sim = Simulator()
        log = []
        sim.at(3.0, lambda: log.append(3))
        sim.run_until(3.0)
        assert log == [3]

    def test_past_boundary_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)


class TestRunawayGuard:
    def test_max_events_raises(self):
        sim = Simulator()

        def reschedule():
            sim.after(1.0, reschedule)

        sim.at(0.0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5
