"""Tests for named RNG streams."""

import numpy as np

from satiot.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_same_object(self):
        streams = RngStreams(42)
        assert streams.get("a/b") is streams.get("a/b")

    def test_deterministic_across_instances(self):
        a = RngStreams(42).get("beacon/HK").random(5)
        b = RngStreams(42).get("beacon/HK").random(5)
        np.testing.assert_array_equal(a, b)

    def test_names_independent(self):
        streams = RngStreams(42)
        a = streams.get("x").random(5)
        b = streams.get("y").random(5)
        assert not np.allclose(a, b)

    def test_seed_changes_streams(self):
        a = RngStreams(1).get("x").random(5)
        b = RngStreams(2).get("x").random(5)
        assert not np.allclose(a, b)

    def test_fresh_resets_position(self):
        streams = RngStreams(42)
        first = streams.get("x").random(3)
        again = streams.fresh("x").random(3)
        np.testing.assert_array_equal(first, again)

    def test_order_independence(self):
        # Draws from one stream are unaffected by other streams' usage.
        s1 = RngStreams(7)
        s1.get("noise").random(1000)
        a = s1.get("target").random(4)
        s2 = RngStreams(7)
        b = s2.get("target").random(4)
        np.testing.assert_array_equal(a, b)

    def test_derive_seed_stable(self):
        assert RngStreams(5).derive_seed("abc") \
            == RngStreams(5).derive_seed("abc")
