"""Shared fixtures: small campaign runs reused across test modules.

Campaigns are session-scoped because they are the expensive part of the
suite; analyses on top of them are cheap.
"""

from __future__ import annotations


import pytest

from satiot.core.active import ActiveCampaign, ActiveCampaignConfig
from satiot.core.campaign import PassiveCampaign, PassiveCampaignConfig
from satiot.orbits.kepler import mean_motion_rev_day_from_altitude
from satiot.orbits.tle import TLE


def make_test_tle(altitude_km: float = 850.0,
                  inclination_deg: float = 49.97,
                  eccentricity: float = 0.001,
                  norad_id: int = 44001,
                  bstar: float = 1.0e-5,
                  raan_deg: float = 120.0,
                  mean_anomaly_deg: float = 10.0) -> TLE:
    """A synthetic near-circular LEO element set for unit tests."""
    return TLE(
        name="TEST-SAT", norad_id=norad_id, classification="U",
        intl_designator="24001A", epochyr=24, epochdays=250.5,
        ndot=0.0, nddot=0.0, bstar=bstar, ephemeris_type=0,
        element_set_no=999, inclination_deg=inclination_deg,
        raan_deg=raan_deg, eccentricity=eccentricity, argp_deg=30.0,
        mean_anomaly_deg=mean_anomaly_deg,
        mean_motion_rev_day=mean_motion_rev_day_from_altitude(altitude_km),
        rev_number=1)


@pytest.fixture(scope="session")
def leo_tle() -> TLE:
    return make_test_tle()


@pytest.fixture(scope="session")
def passive_result_small():
    """One-day single-site campaign over all four constellations."""
    config = PassiveCampaignConfig(sites=("HK",), days=1.0, seed=11)
    return PassiveCampaign(config).run()


@pytest.fixture(scope="session")
def active_result_small():
    """Two-day active Tianqi campaign."""
    config = ActiveCampaignConfig(days=2.0, seed=11)
    return ActiveCampaign(config).run()
