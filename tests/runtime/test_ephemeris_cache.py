"""Tests for the two-tier ephemeris cache and its exactness contract."""

import numpy as np
import pytest

from satiot.orbits.frames import GeodeticPoint
from satiot.orbits.passes import PassPredictor
from satiot.orbits.sgp4 import SGP4
from satiot.orbits.tle import format_tle, parse_tle
from satiot.runtime.ephemeris_cache import (CACHE_DIR_ENV, CACHE_ENV,
                                            EphemerisCache,
                                            get_default_cache,
                                            reset_default_cache,
                                            tle_fingerprint)
from tests.conftest import make_test_tle

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is baked in
    HAS_HYPOTHESIS = False

HK = GeodeticPoint(22.30, 114.17)
DAY_S = 86400.0


def _roundtrip(tle):
    line1, line2 = format_tle(tle)
    return parse_tle(line1, line2, name=tle.name)


class TestFingerprint:
    def test_roundtrip_stable(self):
        tle = make_test_tle()
        assert tle_fingerprint(_roundtrip(tle)) == tle_fingerprint(tle)

    def test_distinct_satellites_distinct_fingerprints(self):
        a = tle_fingerprint(make_test_tle(norad_id=44001))
        b = tle_fingerprint(make_test_tle(norad_id=44002))
        c = tle_fingerprint(make_test_tle(inclination_deg=97.6))
        assert len({a, b, c}) == 3

    def test_name_is_ignored(self):
        tle = make_test_tle()
        assert tle_fingerprint(tle.with_name("OTHER")) \
            == tle_fingerprint(tle)

    def test_catalog_fingerprints_unique(self):
        from satiot.constellations.catalog import build_all_constellations
        prints = [tle_fingerprint(sat.tle)
                  for const in build_all_constellations().values()
                  for sat in const]
        assert len(prints) == len(set(prints))


if HAS_HYPOTHESIS:

    orbital_tles = st.builds(
        make_test_tle,
        altitude_km=st.floats(min_value=350.0, max_value=1500.0,
                              allow_nan=False, allow_infinity=False),
        inclination_deg=st.floats(min_value=0.0, max_value=98.0),
        eccentricity=st.floats(min_value=0.0, max_value=0.02),
        raan_deg=st.floats(min_value=0.0, max_value=359.99),
        mean_anomaly_deg=st.floats(min_value=0.0, max_value=359.99),
        norad_id=st.integers(min_value=10000, max_value=99999),
        # Realistic drag range; the TLE exponent field is one digit, so
        # subnormal bstar values are unrepresentable by design.
        bstar=st.floats(min_value=1.0e-7, max_value=5.0e-4),
    )

    class TestFingerprintProperty:
        """Formatted TLEs are a fixed point of parse -> format."""

        @settings(max_examples=40, deadline=None)
        @given(orbital_tles)
        def test_fingerprint_survives_roundtrip(self, tle):
            back = _roundtrip(tle)
            assert tle_fingerprint(back) == tle_fingerprint(tle)
            # And the canonical form itself is idempotent.
            assert format_tle(back) == format_tle(tle)

        @settings(max_examples=20, deadline=None)
        @given(orbital_tles)
        def test_grid_key_stable_under_roundtrip(self, tle):
            offsets = np.arange(0.0, 600.0, 30.0)
            epoch = tle.epoch
            assert EphemerisCache.grid_key(tle, epoch, offsets) \
                == EphemerisCache.grid_key(_roundtrip(tle), epoch,
                                           offsets)


class TestPropagationGrid:
    def test_hit_equals_fresh_propagation(self):
        tle = make_test_tle()
        sat = SGP4(tle)
        cache = EphemerisCache()
        epoch = tle.epoch
        offsets = np.arange(0.0, 0.5 * DAY_S, 30.0)

        r1, v1 = cache.propagation_grid(sat, epoch, offsets)
        assert cache.stats.grid_misses == 1
        r2, v2 = cache.propagation_grid(sat, epoch, offsets)
        assert cache.stats.grid_hits == 1

        tsince = float(epoch - tle.epoch) + offsets
        r_fresh, v_fresh = sat.propagate(tsince)
        assert np.array_equal(r2, np.asarray(r_fresh, dtype=float))
        assert np.array_equal(v2, np.asarray(v_fresh, dtype=float))
        assert np.array_equal(r1, r2) and np.array_equal(v1, v2)

    def test_different_offsets_do_not_collide(self):
        tle = make_test_tle()
        sat = SGP4(tle)
        cache = EphemerisCache()
        a = np.arange(0.0, 300.0, 30.0)
        b = a + 30.0  # same size, different content
        cache.propagation_grid(sat, tle.epoch, a)
        cache.propagation_grid(sat, tle.epoch, b)
        assert cache.stats.grid_misses == 2
        assert cache.stats.grid_hits == 0

    def test_lru_eviction(self):
        tle = make_test_tle()
        sat = SGP4(tle)
        cache = EphemerisCache(max_grids=2)
        grids = [np.arange(0.0, 300.0 + 60.0 * i, 30.0)
                 for i in range(3)]
        for g in grids:
            cache.propagation_grid(sat, tle.epoch, g)
        # Oldest grid was evicted -> recomputed on re-request.
        cache.propagation_grid(sat, tle.epoch, grids[0])
        assert cache.stats.grid_misses == 4
        # Newest grid survived.
        cache.propagation_grid(sat, tle.epoch, grids[2])
        assert cache.stats.grid_hits == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EphemerisCache(max_grids=0)


class TestCachedPasses:
    def test_cached_passes_equal_fresh_predictor(self):
        tle = make_test_tle()
        sat = SGP4(tle)
        cache = EphemerisCache()
        epoch = tle.epoch

        cached = cache.find_passes(sat, HK, epoch, DAY_S)
        fresh = PassPredictor(sat, HK).find_passes(epoch, DAY_S)
        assert cached == fresh
        assert len(cached) > 0
        assert cache.stats.pass_misses == 1

        again = cache.find_passes(sat, HK, epoch, DAY_S)
        assert again == fresh
        assert cache.stats.pass_hits == 1

    def test_elevation_mask_in_key(self):
        tle = make_test_tle()
        sat = SGP4(tle)
        cache = EphemerisCache()
        low = cache.find_passes(sat, HK, tle.epoch, DAY_S,
                                min_elevation_deg=0.0)
        high = cache.find_passes(sat, HK, tle.epoch, DAY_S,
                                 min_elevation_deg=25.0)
        assert cache.stats.pass_misses == 2
        assert len(high) <= len(low)

    def test_result_lists_are_independent_copies(self):
        tle = make_test_tle()
        sat = SGP4(tle)
        cache = EphemerisCache()
        first = cache.find_passes(sat, HK, tle.epoch, DAY_S)
        first.clear()
        assert len(cache.find_passes(sat, HK, tle.epoch, DAY_S)) > 0


class TestDiskTier:
    def test_grid_survives_process_boundary(self, tmp_path):
        """A second cache instance (fresh memory) hits the disk tier."""
        tle = make_test_tle()
        sat = SGP4(tle)
        offsets = np.arange(0.0, 0.25 * DAY_S, 30.0)

        writer = EphemerisCache(disk_dir=tmp_path)
        r1, v1 = writer.propagation_grid(sat, tle.epoch, offsets)
        assert writer.stats.disk_writes >= 1

        reader = EphemerisCache(disk_dir=tmp_path)
        r2, v2 = reader.propagation_grid(sat, tle.epoch, offsets)
        assert reader.stats.disk_hits == 1
        assert reader.stats.grid_misses == 0
        assert np.array_equal(r1, r2) and np.array_equal(v1, v2)

    def test_passes_survive_process_boundary(self, tmp_path):
        tle = make_test_tle()
        sat = SGP4(tle)

        writer = EphemerisCache(disk_dir=tmp_path)
        first = writer.find_passes(sat, HK, tle.epoch, DAY_S)

        reader = EphemerisCache(disk_dir=tmp_path)
        second = reader.find_passes(sat, HK, tle.epoch, DAY_S)
        assert reader.stats.disk_hits >= 1
        assert second == first

    def test_clear_memory_keeps_disk(self, tmp_path):
        tle = make_test_tle()
        sat = SGP4(tle)
        offsets = np.arange(0.0, 300.0, 30.0)
        cache = EphemerisCache(disk_dir=tmp_path)
        cache.propagation_grid(sat, tle.epoch, offsets)
        cache.clear_memory()
        cache.propagation_grid(sat, tle.epoch, offsets)
        assert cache.stats.disk_hits == 1
        assert cache.stats.grid_misses == 1  # only the first call

    def test_corrupt_file_degrades_to_recomputation(self, tmp_path):
        tle = make_test_tle()
        sat = SGP4(tle)
        offsets = np.arange(0.0, 300.0, 30.0)
        EphemerisCache(disk_dir=tmp_path).propagation_grid(
            sat, tle.epoch, offsets)
        for path in tmp_path.glob("*.npz"):
            path.write_bytes(b"not an npz archive")
        cache = EphemerisCache(disk_dir=tmp_path)
        r, v = cache.propagation_grid(sat, tle.epoch, offsets)
        assert cache.stats.grid_misses == 1
        assert cache.stats.disk_hits == 0
        assert np.isfinite(r).all()


class TestDefaultCache:
    def test_env_disable(self, monkeypatch):
        reset_default_cache()
        monkeypatch.setenv(CACHE_ENV, "0")
        assert get_default_cache() is None
        monkeypatch.setenv(CACHE_ENV, "off")
        assert get_default_cache() is None

    def test_singleton_and_reset(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        reset_default_cache()
        a = get_default_cache()
        assert a is not None and a is get_default_cache()
        reset_default_cache()
        b = get_default_cache()
        assert b is not None and b is not a
        reset_default_cache()

    def test_env_disk_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "tier"))
        reset_default_cache()
        cache = get_default_cache()
        assert cache is not None
        assert str(cache.disk_dir) == str(tmp_path / "tier")
        reset_default_cache()


class TestStats:
    def test_hit_rate(self):
        stats = EphemerisCache().stats
        assert stats.hit_rate == 0.0
        stats.grid_hits = 3
        stats.pass_misses = 1
        assert stats.hits == 3 and stats.misses == 1
        assert stats.hit_rate == pytest.approx(0.75)

    def test_snapshot_shape(self):
        snap = EphemerisCache().stats.snapshot()
        assert snap == (0, 0, 0, 0, 0, 0, 0, 0)
