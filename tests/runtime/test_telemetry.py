"""Edge cases of the shared fixed-width table renderer."""

from satiot.runtime.telemetry import render_fixed_table


def test_empty_rows_renders_header_and_rule_only():
    text = render_fixed_table(["col", "other"], [])
    lines = text.splitlines()
    assert lines == ["col  other", "---  -----"]


def test_title_line_precedes_header():
    text = render_fixed_table(["a"], [["1"]], title="Totals")
    assert text.splitlines()[0] == "Totals"


def test_none_cells_render_as_dash():
    text = render_fixed_table(["name", "value"],
                              [["x", None], [None, "2"]])
    lines = text.splitlines()
    assert lines[2].split() == ["x", "-"]
    assert lines[3].split() == ["-", "2"]


def test_column_width_tracks_widest_cell():
    text = render_fixed_table(["h"], [["wide-cell"], ["s"]])
    lines = text.splitlines()
    assert all(len(line) == len("wide-cell") for line in lines)


def test_mixed_width_unicode_headers_stay_aligned():
    # "卫星" is two wide glyphs = 4 terminal columns.
    text = render_fixed_table(["卫星", "count"],
                              [["tianqi", 22], ["北斗x", 3]])
    lines = text.splitlines()
    # Every row must start its second column at the same terminal
    # column: strip the first field + padding and compare offsets by
    # display width (wide glyph = 2 columns).
    def display_width(s):
        import unicodedata
        return sum(2 if unicodedata.east_asian_width(ch) in "WF" else 1
                   for ch in s)

    first_col = max(display_width(line.split("  ")[0])
                    for line in lines)
    for line in lines:
        head, rest = line.split("  ", 1)
        pad = len(line) - len(head + "  " + rest.lstrip()) \
            if rest.strip() else 0
        assert display_width(head) + pad <= first_col

    # The rule row's first segment spans the full display width of the
    # widest first-column entry ("tianqi" = 6).
    rule = lines[1].split("  ")[0]
    assert rule == "-" * 6


def test_numeric_cells_are_stringified():
    text = render_fixed_table(["n"], [[3], [14.5]])
    assert "3" in text and "14.5" in text
