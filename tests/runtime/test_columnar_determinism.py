"""Column-level determinism: the PR 1 bit-identity contract, verified
on the columnar data plane.

Parallel, serial and site-subset campaign runs must produce identical
trace *columns* — numeric arrays bit for bit, string-interning codes
and tables included — not merely equal row sequences.
"""

import numpy as np
import pytest

from satiot.core.campaign import PassiveCampaign, PassiveCampaignConfig
from satiot.groundstation.traces import (NUMERIC_FIELDS, STRING_FIELDS,
                                         TraceDataset)


def assert_columns_bit_identical(a: TraceDataset, b: TraceDataset):
    """Exact column equality, including the interning encoding."""
    block_a, block_b = a.columns, b.columns
    assert block_a.n == block_b.n
    for name in NUMERIC_FIELDS:
        left, right = block_a.column(name), block_b.column(name)
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right), name
    for name in STRING_FIELDS:
        left = block_a.string_column(name)
        right = block_b.string_column(name)
        assert left.table == right.table, name
        assert np.array_equal(left.codes, right.codes), name


CFG = dict(sites=("HK", "SYD"), constellations=("tianqi",),
           days=0.5, seed=7)


@pytest.fixture(scope="module")
def serial_result():
    return PassiveCampaign(PassiveCampaignConfig(**CFG), workers=1).run()


class TestColumnarDeterminism:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_counts_bit_identical(self, serial_result, workers):
        parallel = PassiveCampaign(PassiveCampaignConfig(**CFG),
                                   workers=workers).run()
        assert parallel.total_traces == serial_result.total_traces > 0
        assert_columns_bit_identical(parallel.dataset,
                                     serial_result.dataset)

    def test_site_subset_columns_match(self, serial_result):
        sub = PassiveCampaign(PassiveCampaignConfig(
            sites=("SYD",), constellations=("tianqi",),
            days=0.5, seed=7), workers=1).run()
        shared = serial_result.dataset.by_site("SYD")
        assert len(shared) == len(sub.dataset) > 0
        # Value-level equality always holds for the shared site...
        assert shared == sub.dataset
        # ...and after canonicalising the filtered view's interning
        # the encodings agree bit for bit too.
        assert_columns_bit_identical(
            TraceDataset(shared.columns.canonicalized()), sub.dataset)

    def test_per_pass_blocks_merge_to_campaign_dataset(self,
                                                       serial_result):
        rebuilt = TraceDataset()
        for code in CFG["sites"]:
            for reception in serial_result.site_results[code].receptions:
                rebuilt.extend(reception.traces)
        assert_columns_bit_identical(rebuilt, serial_result.dataset)

    def test_traces_stay_time_sorted_within_pass(self, serial_result):
        for code in CFG["sites"]:
            for reception in serial_result.site_results[code].receptions:
                if not len(reception.traces):
                    continue
                times = reception.traces.column("time_s")
                assert np.all(np.diff(times) >= 0)
