"""Disk-tier edge cases: corruption, vanishing and unwritable stores.

The contract under test (docstring of
:mod:`satiot.runtime.ephemeris_cache`): the disk tier may degrade —
quarantine corrupt entries, swallow I/O errors, fall back to
compute-through — but it must never crash a run and never change a
result.  Every scenario here asserts both halves: the degradation is
*observable* (``*.bad`` files, ``disk_corrupt``/``disk_errors``
counters, a ``RuntimeWarning``) and the returned arrays/windows are
identical to a fresh computation.
"""

import contextlib
import shutil
import warnings

import numpy as np
import pytest

from satiot.orbits.frames import GeodeticPoint
from satiot.orbits.passes import PassPredictor
from satiot.orbits.sgp4 import SGP4
from satiot.runtime.ephemeris_cache import EphemerisCache
from tests.conftest import make_test_tle

HK = GeodeticPoint(22.30, 114.17)
DAY_S = 86400.0
OFFSETS = np.arange(0.0, 1800.0, 30.0)


@pytest.fixture
def sat():
    return SGP4(make_test_tle())


def fresh_grid(sat):
    tle = sat.tle
    tsince = float(tle.epoch - tle.epoch) + OFFSETS
    r, v = sat.propagate(tsince)
    return np.asarray(r, dtype=float), np.asarray(v, dtype=float)


def warm_entry(sat, disk_dir):
    """Populate one grid entry on disk and return its path."""
    writer = EphemerisCache(disk_dir=disk_dir)
    writer.propagation_grid(sat, sat.tle.epoch, OFFSETS)
    paths = sorted(disk_dir.glob("grid-*.npz"))
    assert len(paths) == 1
    return paths[0]


class TestCorruptEntries:
    def test_zero_byte_entry_quarantined_and_recomputed(self, sat,
                                                        tmp_path):
        path = warm_entry(sat, tmp_path)
        path.write_bytes(b"")
        cache = EphemerisCache(disk_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="quarantined"):
            r, v = cache.propagation_grid(sat, sat.tle.epoch, OFFSETS)
        r_ref, v_ref = fresh_grid(sat)
        assert np.array_equal(r, r_ref) and np.array_equal(v, v_ref)
        assert cache.stats.disk_corrupt == 1
        assert cache.stats.grid_misses == 1
        # The corrupt bytes moved aside; a clean entry was written back.
        assert path.with_name(path.name + ".bad").exists()
        assert path.exists() and path.stat().st_size > 0

    def test_garbage_bytes_quarantined(self, sat, tmp_path):
        path = warm_entry(sat, tmp_path)
        path.write_bytes(b"\x00\xffdefinitely not a zip archive")
        cache = EphemerisCache(disk_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="unreadable"):
            cache.propagation_grid(sat, sat.tle.epoch, OFFSETS)
        assert cache.stats.disk_corrupt == 1
        assert list(tmp_path.glob("*.bad"))

    def test_checksum_mismatch_detected(self, sat, tmp_path):
        """A readable archive whose arrays were silently altered."""
        path = warm_entry(sat, tmp_path)
        with np.load(path) as data:
            arrays = {name: np.array(data[name])
                      for name in data.files}
        arrays["r"] = arrays["r"] + 1.0e-9  # one bit of rot
        np.savez(path, **arrays)  # stale checksum rides along
        cache = EphemerisCache(disk_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            r, _ = cache.propagation_grid(sat, sat.tle.epoch, OFFSETS)
        assert np.array_equal(r, fresh_grid(sat)[0])
        assert cache.stats.disk_corrupt == 1
        assert cache.stats.disk_hits == 0

    def test_legacy_entry_without_checksum_quarantined(self, sat,
                                                       tmp_path):
        path = warm_entry(sat, tmp_path)
        with np.load(path) as data:
            arrays = {name: np.array(data[name])
                      for name in data.files
                      if name != EphemerisCache.CHECKSUM_KEY}
        np.savez(path, **arrays)
        cache = EphemerisCache(disk_dir=tmp_path)
        with pytest.warns(RuntimeWarning, match="missing checksum"):
            cache.propagation_grid(sat, sat.tle.epoch, OFFSETS)
        assert cache.stats.disk_corrupt == 1

    def test_quarantined_entry_is_rewritten_clean(self, sat, tmp_path):
        """After quarantine + recompute, the next reader hits disk."""
        path = warm_entry(sat, tmp_path)
        path.write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning):
            EphemerisCache(disk_dir=tmp_path).propagation_grid(
                sat, sat.tle.epoch, OFFSETS)
        reader = EphemerisCache(disk_dir=tmp_path)
        reader.propagation_grid(sat, sat.tle.epoch, OFFSETS)
        assert reader.stats.disk_hits == 1
        assert reader.stats.disk_corrupt == 0

    def test_corrupt_pass_entry_recomputed_identically(self, sat,
                                                       tmp_path):
        writer = EphemerisCache(disk_dir=tmp_path)
        reference = writer.find_passes(sat, HK, sat.tle.epoch, DAY_S)
        assert reference == PassPredictor(sat, HK).find_passes(
            sat.tle.epoch, DAY_S)
        for path in tmp_path.glob("passes-*.npz"):
            path.write_bytes(b"rot")
        cache = EphemerisCache(disk_dir=tmp_path)
        with pytest.warns(RuntimeWarning):
            again = cache.find_passes(sat, HK, sat.tle.epoch, DAY_S)
        assert again == reference
        assert cache.stats.disk_corrupt >= 1


class TestVanishingStore:
    def test_cache_dir_deleted_mid_run(self, sat, tmp_path):
        disk_dir = tmp_path / "tier"
        cache = EphemerisCache(disk_dir=disk_dir)
        cache.propagation_grid(sat, sat.tle.epoch, OFFSETS)
        assert any(disk_dir.glob("*.npz"))

        shutil.rmtree(disk_dir)
        cache.clear_memory()
        # Reads: plain miss (no quarantine, no error); the store is
        # transparently re-created by the write-back.
        r, v = cache.propagation_grid(sat, sat.tle.epoch, OFFSETS)
        r_ref, v_ref = fresh_grid(sat)
        assert np.array_equal(r, r_ref) and np.array_equal(v, v_ref)
        assert cache.stats.disk_corrupt == 0
        assert cache.stats.disk_errors == 0
        assert any(disk_dir.glob("*.npz"))

    def test_unwritable_store_degrades_with_one_warning(self, sat,
                                                        tmp_path):
        # Tests run as root, so permission bits don't bite; an
        # unwritable store is simulated by colliding the directory
        # path with an existing *file* (mkdir raises OSError).
        blocker = tmp_path / "blocker"
        blocker.write_bytes(b"i am a file, not a directory")
        cache = EphemerisCache(disk_dir=blocker / "cache")

        with pytest.warns(RuntimeWarning, match="compute-through"):
            r1, v1 = cache.propagation_grid(sat, sat.tle.epoch,
                                            OFFSETS)
        assert cache.stats.disk_errors == 1
        r_ref, v_ref = fresh_grid(sat)
        assert np.array_equal(r1, r_ref) and np.array_equal(v1, v_ref)

        # Subsequent failures are counted but not re-warned.
        cache.clear_memory()
        with _no_warning():
            r2, _ = cache.propagation_grid(sat, sat.tle.epoch, OFFSETS)
        assert np.array_equal(r2, r_ref)
        assert cache.stats.disk_errors == 2

    def test_passes_survive_unwritable_store(self, sat, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_bytes(b"file")
        cache = EphemerisCache(disk_dir=blocker / "cache")
        with pytest.warns(RuntimeWarning):
            windows = cache.find_passes(sat, HK, sat.tle.epoch, DAY_S)
        assert windows == PassPredictor(sat, HK).find_passes(
            sat.tle.epoch, DAY_S)
        assert cache.stats.disk_errors >= 1


@contextlib.contextmanager
def _no_warning():
    """Assert the block emits no RuntimeWarning."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        yield
    runtime = [w for w in caught
               if issubclass(w.category, RuntimeWarning)]
    assert not runtime, f"unexpected warnings: {runtime}"
