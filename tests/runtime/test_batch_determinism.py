"""Batching on/off determinism + constellation-grid key compatibility.

The batched SGP4 path (``SATIOT_BATCH_SGP4``, default on) is a pure
performance substitution: every consumer — campaign scheduler, fleet
sweep, serving flush — must produce **byte-identical** output with the
flag on or off.  These tests pin that contract, plus the cache-key
compatibility that lets fleet fills satisfy single-satellite lookups.
"""

from __future__ import annotations

import numpy as np
import pytest

from satiot.constellations.catalog import build_constellation
from satiot.core.campaign import PassiveCampaign, PassiveCampaignConfig
from satiot.orbits.sgp4_batch import BATCH_ENV, batching_enabled
from satiot.runtime.ephemeris_cache import EphemerisCache
from satiot.serving.service import (ConstellationService, PassesRequest,
                                    PresenceRequest)

from .test_columnar_determinism import assert_columns_bit_identical

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


CFG = dict(sites=("HK",), constellations=("tianqi",), days=0.5, seed=7)


def _run_campaign(monkeypatch, batch: str):
    monkeypatch.setenv(BATCH_ENV, batch)
    # Fresh memory cache per run: a shared cache would serve run B the
    # pass lists computed by run A and mask the code path under test.
    return PassiveCampaign(PassiveCampaignConfig(**CFG), workers=1,
                           ephemeris_cache="memory").run()


class TestCampaignBatchingDeterminism:
    def test_campaign_columns_identical_on_off(self, monkeypatch):
        batched = _run_campaign(monkeypatch, "1")
        unbatched = _run_campaign(monkeypatch, "0")
        assert batched.total_traces == unbatched.total_traces > 0
        assert_columns_bit_identical(batched.dataset, unbatched.dataset)

    def test_schedules_identical_on_off(self, monkeypatch):
        batched = _run_campaign(monkeypatch, "1")
        unbatched = _run_campaign(monkeypatch, "0")
        for code in CFG["sites"]:
            sched_a = batched.site_results[code].schedule
            sched_b = unbatched.site_results[code].schedule
            assert len(sched_a.assigned) == len(sched_b.assigned) > 0
            for a, b in zip(sched_a.assigned, sched_b.assigned):
                assert a.satellite.norad_id == b.satellite.norad_id
                assert a.window.rise_s == b.window.rise_s
                assert a.window.set_s == b.window.set_s
                assert a.window.max_elevation_deg == \
                    b.window.max_elevation_deg


def _observer_params():
    return [{"lat": 22.3, "lon": 114.2},
            {"lat": -33.9, "lon": 151.2},
            {"lat": 51.5, "lon": -0.1},
            {"lat": 64.1, "lon": -21.9}]


class TestServingBatchingDeterminism:
    def test_passes_payloads_identical_on_off(self, monkeypatch):
        requests = [PassesRequest.from_params(
            {**p, "horizon_s": 6 * 3600.0}) for p in _observer_params()]
        monkeypatch.setenv(BATCH_ENV, "1")
        on = ConstellationService(coarse_step_s=60.0).passes_batch(
            requests)
        monkeypatch.setenv(BATCH_ENV, "0")
        off = ConstellationService(coarse_step_s=60.0).passes_batch(
            requests)
        assert on == off
        assert any(p["count"] > 0 for p in on)

    def test_presence_payloads_identical_on_off(self, monkeypatch):
        requests = [PresenceRequest.from_params(
            {**p, "horizon_s": 6 * 3600.0}) for p in _observer_params()]
        monkeypatch.setenv(BATCH_ENV, "1")
        on = ConstellationService(coarse_step_s=60.0).presence_batch(
            requests)
        monkeypatch.setenv(BATCH_ENV, "0")
        off = ConstellationService(coarse_step_s=60.0).presence_batch(
            requests)
        assert on == off


class TestConstellationGridKeyCompat:
    """Fleet fills and single-satellite lookups share one key space."""

    @pytest.fixture()
    def fleet(self):
        constellation = build_constellation("tianqi", seed=3)
        props = [sat.propagator for sat in constellation]
        epoch = props[0].tle.epoch
        offsets = np.arange(0.0, 3600.0 + 1e-9, 60.0)
        return props, epoch, offsets

    def test_fleet_fill_satisfies_single_sat_lookup(self, fleet):
        props, epoch, offsets = fleet
        cache = EphemerisCache()
        r, v = cache.constellation_grid(props, epoch, offsets)
        assert r.shape == (len(props), offsets.size, 3)
        misses = cache.stats.grid_misses
        for i, prop in enumerate(props):
            ri, vi = cache.propagation_grid(prop, epoch, offsets)
            assert np.array_equal(ri, r[i])
            assert np.array_equal(vi, v[i])
            # Row entries are views of the fleet stack, not copies.
            assert ri.base is not None
        assert cache.stats.grid_misses == misses  # all hits

    def test_single_sat_fills_adopted_into_stack(self, fleet):
        props, epoch, offsets = fleet
        cache = EphemerisCache()
        pre = [cache.propagation_grid(p, epoch, offsets)
               for p in props[:3]]
        misses = cache.stats.grid_misses
        r, v = cache.constellation_grid(props, epoch, offsets)
        # Only the satellites not already cached were propagated.
        assert cache.stats.grid_misses == misses + len(props) - 3
        for i, (ri, vi) in enumerate(pre):
            assert np.array_equal(r[i], ri)
            assert np.array_equal(v[i], vi)

    def test_grid_resident_bytes_dedupes_views(self, fleet):
        props, epoch, offsets = fleet
        cache = EphemerisCache()
        r, v = cache.constellation_grid(props, epoch, offsets)
        resident = cache.grid_resident_bytes()
        # One (N, T, 3) stack pair, counted once despite N row views
        # plus the stack entry itself living in the LRU.
        assert resident == r.nbytes + v.nbytes
        assert cache.stats.grid_bytes == resident

    def test_fleet_grid_bit_identical_to_scalar(self, fleet):
        props, epoch, offsets = fleet
        cache = EphemerisCache()
        r, v = cache.constellation_grid(props, epoch, offsets)
        for i, prop in enumerate(props):
            tsince = float(epoch - prop.tle.epoch) + offsets
            r_ref, v_ref = prop.propagate(tsince)
            assert np.array_equal(r[i], r_ref)
            assert np.array_equal(v[i], v_ref)

    def test_fleet_passes_match_scalar_cache_path(self, fleet,
                                                  monkeypatch):
        from satiot.orbits.frames import GeodeticPoint
        props, epoch, offsets = fleet
        observers = [GeodeticPoint(22.3, 114.2, 0.0),
                     GeodeticPoint(-33.9, 151.2, 0.0)]
        fleet_cache = EphemerisCache()
        per = fleet_cache.find_passes_fleet(
            props[:6], observers, epoch, 6 * 3600.0,
            coarse_step_s=60.0, min_elevation_deg=10.0)
        scalar_cache = EphemerisCache()
        for n, prop in enumerate(props[:6]):
            for m, obs in enumerate(observers):
                ref = scalar_cache.find_passes(
                    prop, obs, epoch, 6 * 3600.0, coarse_step_s=60.0,
                    min_elevation_deg=10.0)
                assert list(per[n][m]) == list(ref)


class TestBatchingFlag:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        assert batching_enabled() is True

    def test_disable_spellings(self, monkeypatch):
        for value in ("0", "false", "off", "no"):
            monkeypatch.setenv(BATCH_ENV, value)
            assert batching_enabled() is False
        monkeypatch.setenv(BATCH_ENV, "1")
        assert batching_enabled() is True
