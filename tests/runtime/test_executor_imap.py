"""``ShardExecutor.imap``: ordered streaming over shard outcomes.

The spill plane consumes weeks as they finish so it can checkpoint
after each one; ``imap`` must therefore yield outcomes lazily, in
shard order, with results identical to ``map``.
"""

import pytest

from satiot.runtime.executor import Shard, ShardError, ShardExecutor


def _double(shard: Shard) -> int:
    return shard.payload * 2


def _boom_on_two(shard: Shard) -> int:
    if shard.payload == 2:
        raise ValueError("kaboom")
    return shard.payload


def _make_shards(values):
    return [Shard(index=i, kind="item", key=str(i), payload=v)
            for i, v in enumerate(values)]


@pytest.mark.parametrize("workers", [1, 2])
def test_imap_matches_map_in_order(workers):
    shards = _make_shards([5, 1, 3, 8])
    mapped = [o.result for o in
              ShardExecutor(workers=workers).map(_double, shards)]
    streamed = [o.result for o in
                ShardExecutor(workers=workers).imap(_double, shards)]
    assert streamed == mapped == [10, 2, 6, 16]


def test_imap_is_lazy():
    executor = ShardExecutor(workers=1)
    iterator = executor.imap(_double, _make_shards([1, 2, 3]))
    first = next(iterator)
    assert first.result == 2
    # Partial consumption is fine — the spill loop stops on error.
    iterator.close()


@pytest.mark.parametrize("workers", [1, 2])
def test_imap_raises_shard_error_with_context(workers):
    executor = ShardExecutor(workers=workers)
    results = []
    with pytest.raises(ShardError, match="item:2"):
        for outcome in executor.imap(_boom_on_two,
                                     _make_shards([0, 1, 2, 3])):
            results.append(outcome.result)
    # Everything before the failing shard was already delivered.
    assert results == [0, 1]


def test_imap_empty():
    assert list(ShardExecutor(workers=2).imap(_double, [])) == []
