"""Zero-copy segment tier: mmap'd constellation-grid sharing.

The multi-worker serving fleet holds ONE resident copy of the
``(N, T, 3)`` constellation ephemeris: the first process to assemble a
stack writes it as raw ``.npy`` segments (deterministic layout,
checksummed sidecar), and every other consumer opens them with
``np.load(mmap_mode="r")``.  These tests pin that contract down:

* segment files land once, under deterministic names, with a verified
  checksum sidecar;
* a ``readonly=True`` cache returns views whose base buffer IS the
  mmap (the no-copy regression test);
* ``readonly=False`` materializes private arrays (writable consumers);
* ``grid_resident_bytes`` splits private vs mmap-shared bytes;
* corrupt segments are quarantined (``*.bad``) and self-heal;
* the loaded stack is bit-identical to the computed one.
"""

import numpy as np
import pytest

from satiot.orbits.sgp4 import SGP4
from satiot.runtime.ephemeris_cache import MMAP_ENV, EphemerisCache
from tests.conftest import make_test_tle


def _fleet(n=4):
    tles = [make_test_tle(norad_id=45000 + i,
                          raan_deg=20.0 * i,
                          mean_anomaly_deg=36.0 * i)
            for i in range(n)]
    return tles, [SGP4(t) for t in tles]


def _grid_args():
    tles, props = _fleet()
    epoch = tles[0].epoch
    offsets = np.arange(0.0, 7200.0, 60.0)
    return tles, props, epoch, offsets


class TestSegmentFiles:
    def test_written_once_deterministic_names(self, tmp_path):
        _, props, epoch, offsets = _grid_args()
        cache = EphemerisCache(disk_dir=tmp_path, readonly=True)
        cache.constellation_grid(props, epoch, offsets)
        segments = sorted(p.name for p in tmp_path.iterdir()
                          if p.name.startswith("cgrid"))
        assert len(segments) == 3
        suffixes = {name.split(".", 1)[1] for name in segments}
        assert suffixes == {"r.npy", "v.npy", "sha256"}
        mtimes = {name: (tmp_path / name).stat().st_mtime_ns
                  for name in segments}
        # Write-once: a second cache recomputing the same key must not
        # rewrite the files.
        other = EphemerisCache(disk_dir=tmp_path, readonly=True)
        other.constellation_grid(props, epoch, offsets)
        assert {name: (tmp_path / name).stat().st_mtime_ns
                for name in segments} == mtimes

    def test_loaded_stack_bit_identical(self, tmp_path):
        _, props, epoch, offsets = _grid_args()
        writer = EphemerisCache(disk_dir=tmp_path, readonly=True)
        r1, v1 = writer.constellation_grid(props, epoch, offsets)
        reader = EphemerisCache(disk_dir=tmp_path, readonly=True)
        r2, v2 = reader.constellation_grid(props, epoch, offsets)
        assert np.array_equal(np.asarray(r1), np.asarray(r2))
        assert np.array_equal(np.asarray(v1), np.asarray(v2))
        assert reader.stats.grid_misses == 0


class TestReadonlyNoCopy:
    def test_readonly_load_is_mmap_backed(self, tmp_path):
        """Regression: disk-tier loads must NOT copy for read-only
        consumers — the returned stack's base buffer is the mmap."""
        _, props, epoch, offsets = _grid_args()
        EphemerisCache(disk_dir=tmp_path, readonly=True) \
            .constellation_grid(props, epoch, offsets)
        reader = EphemerisCache(disk_dir=tmp_path, readonly=True)
        r, v = reader.constellation_grid(props, epoch, offsets)
        assert isinstance(r, np.memmap) and isinstance(v, np.memmap)
        assert not r.flags.writeable
        assert not v.flags.writeable

    def test_row_views_share_the_mmap_buffer(self, tmp_path):
        """Per-satellite rows published from a loaded segment are views
        into the one mapping, not copies (base-buffer identity)."""
        tles, props, epoch, offsets = _grid_args()
        EphemerisCache(disk_dir=tmp_path, readonly=True) \
            .constellation_grid(props, epoch, offsets)
        reader = EphemerisCache(disk_dir=tmp_path, readonly=True)
        stack_r, _ = reader.constellation_grid(props, epoch, offsets)
        row_r, _ = reader.propagation_grid(props[2], epoch, offsets)
        base = row_r
        while isinstance(getattr(base, "base", None), np.ndarray):
            base = base.base
        assert base is stack_r or base is getattr(stack_r, "base",
                                                  None) \
            or np.shares_memory(row_r, stack_r)

    def test_readonly_false_materializes(self, tmp_path):
        _, props, epoch, offsets = _grid_args()
        EphemerisCache(disk_dir=tmp_path, readonly=True) \
            .constellation_grid(props, epoch, offsets)
        writable = EphemerisCache(disk_dir=tmp_path, readonly=False)
        r, v = writable.constellation_grid(props, epoch, offsets)
        assert not isinstance(r, np.memmap)
        assert not isinstance(v, np.memmap)

    def test_env_default_controls_readonly(self, monkeypatch):
        monkeypatch.delenv(MMAP_ENV, raising=False)
        assert EphemerisCache().readonly is True
        monkeypatch.setenv(MMAP_ENV, "0")
        assert EphemerisCache().readonly is False
        monkeypatch.setenv(MMAP_ENV, "off")
        assert EphemerisCache().readonly is False
        monkeypatch.setenv(MMAP_ENV, "1")
        assert EphemerisCache().readonly is True
        assert EphemerisCache(readonly=False).readonly is False


class TestResidencyAccounting:
    def test_private_vs_mmap_split(self, tmp_path):
        _, props, epoch, offsets = _grid_args()
        writer = EphemerisCache(disk_dir=tmp_path, readonly=True)
        r, _ = writer.constellation_grid(props, epoch, offsets)
        total = writer.grid_resident_bytes()
        assert writer.stats.grid_private_bytes == total
        assert writer.stats.grid_mmap_bytes == 0
        assert total >= r.nbytes

        reader = EphemerisCache(disk_dir=tmp_path, readonly=True)
        reader.constellation_grid(props, epoch, offsets)
        total = reader.grid_resident_bytes()
        assert reader.stats.grid_mmap_bytes == total
        assert reader.stats.grid_private_bytes == 0
        assert total >= r.nbytes

    def test_split_sums_to_total(self, tmp_path):
        tles, props, epoch, offsets = _grid_args()
        cache = EphemerisCache(disk_dir=tmp_path, readonly=True)
        cache.constellation_grid(props, epoch, offsets)
        # A second, different fleet: computed privately in this cache.
        extra = [SGP4(make_test_tle(norad_id=47000 + i))
                 for i in range(2)]
        cache2 = EphemerisCache(disk_dir=tmp_path, readonly=True)
        cache2.constellation_grid(props, epoch, offsets)   # mmap
        cache2.constellation_grid(extra, epoch, offsets)   # private
        total = cache2.grid_resident_bytes()
        assert cache2.stats.grid_mmap_bytes > 0
        assert cache2.stats.grid_private_bytes > 0
        assert cache2.stats.grid_mmap_bytes \
            + cache2.stats.grid_private_bytes == total


class TestCorruptionQuarantine:
    def test_corrupt_segment_quarantined_and_recomputed(self, tmp_path):
        _, props, epoch, offsets = _grid_args()
        writer = EphemerisCache(disk_dir=tmp_path, readonly=True)
        r_good, v_good = writer.constellation_grid(props, epoch,
                                                   offsets)
        r_path = next(p for p in tmp_path.iterdir()
                      if p.name.startswith("cgrid")
                      and p.name.endswith(".r.npy"))
        raw = bytearray(r_path.read_bytes())
        raw[-16] ^= 0xFF
        r_path.write_bytes(bytes(raw))

        reader = EphemerisCache(disk_dir=tmp_path, readonly=True)
        with pytest.warns(RuntimeWarning, match="quarantin"):
            r, v = reader.constellation_grid(props, epoch, offsets)
        assert reader.stats.disk_corrupt == 1
        assert np.array_equal(np.asarray(r), np.asarray(r_good))
        assert np.array_equal(np.asarray(v), np.asarray(v_good))
        bad = [p.name for p in tmp_path.iterdir()
               if ".bad" in p.name]
        assert bad, "corrupt segment files were not quarantined"
        # Self-healed: the recompute rewrote good segments, so a fresh
        # reader mmaps again.
        healed = EphemerisCache(disk_dir=tmp_path, readonly=True)
        r2, _ = healed.constellation_grid(props, epoch, offsets)
        assert isinstance(r2, np.memmap)

    def test_truncated_segment_treated_as_miss(self, tmp_path):
        _, props, epoch, offsets = _grid_args()
        writer = EphemerisCache(disk_dir=tmp_path, readonly=True)
        writer.constellation_grid(props, epoch, offsets)
        v_path = next(p for p in tmp_path.iterdir()
                      if p.name.startswith("cgrid")
                      and p.name.endswith(".v.npy"))
        v_path.write_bytes(v_path.read_bytes()[:64])
        reader = EphemerisCache(disk_dir=tmp_path, readonly=True)
        with pytest.warns(RuntimeWarning, match="quarantin"):
            r, _ = reader.constellation_grid(props, epoch, offsets)
        assert r.shape == (len(props), offsets.size, 3)
