"""Tests for the shard executor and the campaign determinism contract."""

import os

import pytest

from satiot.core.campaign import PassiveCampaign, PassiveCampaignConfig
from satiot.runtime.executor import (Shard, ShardError, ShardExecutor,
                                     WORKERS_ENV, resolve_workers)


def _double(shard: Shard) -> int:
    return shard.payload * 2


def _boom(shard: Shard) -> int:
    raise ValueError(f"kaboom in {shard.key}")


def _make_shards(values):
    return [Shard(index=i, kind="item", key=str(i), payload=v)
            for i, v in enumerate(values)]


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(2) == 2

    def test_zero_means_auto(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == (os.cpu_count() or 1)
        assert resolve_workers(-1) == (os.cpu_count() or 1)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers(None)


class TestSerialExecutor:
    def test_results_in_shard_order(self):
        executor = ShardExecutor(workers=1)
        outcomes = executor.map(_double, _make_shards([5, 1, 3]))
        assert [o.result for o in outcomes] == [10, 2, 6]
        assert executor.mode == "serial"
        assert all(o.wall_s >= 0.0 for o in outcomes)

    def test_exception_carries_shard_context(self):
        executor = ShardExecutor(workers=1)
        with pytest.raises(ShardError, match="item:0"):
            executor.map(_boom, _make_shards([0, 1]))

    def test_shard_error_chains_cause(self):
        executor = ShardExecutor(workers=1)
        try:
            executor.map(_boom, _make_shards([7]))
        except ShardError as err:
            assert isinstance(err.__cause__, ValueError)
            assert err.shard.key == "0"
        else:  # pragma: no cover
            pytest.fail("ShardError not raised")


class TestProcessExecutor:
    def test_parallel_results_ordered(self):
        executor = ShardExecutor(workers=2)
        outcomes = executor.map(_double, _make_shards([4, 7, 9, 2]))
        assert [o.result for o in outcomes] == [8, 14, 18, 4]
        assert executor.mode in ("process", "serial")  # serial = fallback

    def test_parallel_exception_carries_shard_context(self):
        executor = ShardExecutor(workers=2)
        with pytest.raises(ShardError, match="item:"):
            executor.map(_boom, _make_shards([0, 1]))

    def test_single_shard_stays_serial(self):
        executor = ShardExecutor(workers=4)
        executor.map(_double, _make_shards([1]))
        assert executor.mode == "serial"


class TestCampaignDeterminism:
    """The hard contract: parallel == serial, bit for bit."""

    CFG = dict(sites=("HK", "SYD"), constellations=("tianqi",),
               days=0.5, seed=7)

    @pytest.fixture(scope="class")
    def serial_result(self):
        return PassiveCampaign(PassiveCampaignConfig(**self.CFG),
                               workers=1).run()

    def test_parallel_bit_identical_to_serial(self, serial_result):
        parallel = PassiveCampaign(PassiveCampaignConfig(**self.CFG),
                                   workers=2).run()
        assert parallel.total_traces == serial_result.total_traces > 0
        # BeaconTrace is a frozen dataclass of floats/strs/bools:
        # dataclass equality here is exact bit equality of every field.
        assert list(parallel.dataset) == list(serial_result.dataset)
        assert sorted(parallel.site_results) \
            == sorted(serial_result.site_results)

    def test_parallel_receptions_match(self, serial_result):
        parallel = PassiveCampaign(PassiveCampaignConfig(**self.CFG),
                                   workers=2).run()
        for code in self.CFG["sites"]:
            a = serial_result.site_results[code].receptions
            b = parallel.site_results[code].receptions
            assert [r.pass_id for r in a] == [r.pass_id for r in b]
            assert [r.beacons_received for r in a] \
                == [r.beacons_received for r in b]
            assert [r.first_rx_s for r in a] == [r.first_rx_s for r in b]

    def test_cache_does_not_change_results(self, serial_result):
        uncached = PassiveCampaign(PassiveCampaignConfig(**self.CFG),
                                   workers=1, ephemeris_cache=None).run()
        assert list(uncached.dataset) == list(serial_result.dataset)

    def test_telemetry_attached(self, serial_result):
        telemetry = serial_result.telemetry
        assert telemetry is not None
        assert len(telemetry.shards) == len(self.CFG["sites"])
        assert telemetry.total_traces == serial_result.total_traces
        assert telemetry.wall_s > 0.0
        text = telemetry.render()
        assert "site:HK" in text and "TOTAL" in text


class TestLongitudinalSharding:
    def test_parallel_weeks_match_serial(self):
        from satiot.core.longitudinal import LongitudinalCampaign
        kwargs = dict(weeks=2, site="HK", sample_days=0.25,
                      period_days=7.0, seed=3,
                      constellations=("fossa",))
        serial = LongitudinalCampaign(workers=1, **kwargs).run()
        parallel = LongitudinalCampaign(workers=2, **kwargs).run()
        assert serial.traces_per_week() == parallel.traces_per_week()
        assert [s.week for s in parallel.samples] == [0, 1]
        assert serial.shrinkage_series("fossa") \
            == parallel.shrinkage_series("fossa")


class TestFleetSweep:
    def test_sweep_matches_single_constellation_runs(self):
        from satiot.core.fleet import (FleetModel,
                                       fleet_pressure_by_constellation,
                                       passive_fleet_sweep)
        base = PassiveCampaignConfig(
            sites=("HK",), constellations=("tianqi", "fossa"),
            days=0.25, seed=5)
        sweep = passive_fleet_sweep(base, workers=2)
        assert list(sweep) == ["tianqi", "fossa"]
        solo = PassiveCampaign(PassiveCampaignConfig(
            sites=("HK",), constellations=("fossa",),
            days=0.25, seed=5), workers=1).run()
        assert list(sweep["fossa"].dataset) == list(solo.dataset)

        pressure = fleet_pressure_by_constellation(sweep, FleetModel())
        assert set(pressure) == {"tianqi", "fossa"}
        for row in pressure.values():
            assert row["mean_altitude_km"] > 300.0
            assert row["expected_contenders"] >= 0.0
