"""Tests for the crowd-sourced community network model."""

import numpy as np
import pytest

from satiot.constellations.catalog import build_constellation
from satiot.groundstation.community import (COMMUNITY_HUBS,
                                            CommunityNetwork)


@pytest.fixture(scope="module")
def network():
    return CommunityNetwork.synthesize(count=400, seed=1)


@pytest.fixture(scope="module")
def satellite():
    return build_constellation("pico").satellites[0]


class TestSynthesize:
    def test_count(self, network):
        assert len(network) == 400

    def test_validation(self):
        with pytest.raises(ValueError):
            CommunityNetwork.synthesize(count=0)
        with pytest.raises(ValueError):
            CommunityNetwork.synthesize(count=10, hubs=())

    def test_deterministic(self):
        a = CommunityNetwork.synthesize(count=50, seed=3)
        b = CommunityNetwork.synthesize(count=50, seed=3)
        assert [s.location for s in a.stations] \
            == [s.location for s in b.stations]

    def test_coordinates_valid(self, network):
        for station in network.stations:
            assert -90.0 <= station.location.latitude_deg <= 90.0
            assert -180.0 <= station.location.longitude_deg <= 180.0

    def test_northern_hemisphere_bias(self, network):
        # The volunteer map skews heavily north, as do the hubs.
        lats = [s.location.latitude_deg for s in network.stations]
        assert np.mean([lat > 0 for lat in lats]) > 0.6

    def test_hub_weights_sum_to_one(self):
        total = sum(w for _la, _lo, w in COMMUNITY_HUBS)
        assert total == pytest.approx(1.0)


class TestVisibility:
    def test_fraction_bounds(self, network, satellite):
        frac = network.visibility_fraction(
            satellite.propagator, satellite.tle.epoch,
            span_s=6 * 3600.0, step_s=120.0)
        assert 0.0 < frac < 1.0

    def test_more_stations_more_visibility(self, satellite):
        small = CommunityNetwork.synthesize(count=30, seed=2)
        large = CommunityNetwork.synthesize(count=600, seed=2)
        args = (satellite.propagator, satellite.tle.epoch,
                6 * 3600.0, 120.0)
        assert large.visibility_fraction(*args) \
            >= small.visibility_fraction(*args)

    def test_community_scale_visibility_is_high(self, satellite):
        # ~1,800 stations hear a polar LEO satellite for a large share
        # of its orbit — the premise of community downlink systems.
        network = CommunityNetwork.synthesize(count=1800, seed=0)
        frac = network.visibility_fraction(
            satellite.propagator, satellite.tle.epoch,
            span_s=6 * 3600.0, step_s=120.0)
        assert frac > 0.4

    def test_gap_shrinks_with_network_size(self, satellite):
        small = CommunityNetwork.synthesize(count=30, seed=2)
        large = CommunityNetwork.synthesize(count=600, seed=2)
        args = (satellite.propagator, satellite.tle.epoch,
                6 * 3600.0, 120.0)
        assert large.mean_gap_to_contact_s(*args) \
            <= small.mean_gap_to_contact_s(*args)
