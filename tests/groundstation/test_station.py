"""Tests for the ground-station model."""

import pytest

from satiot.groundstation.station import GroundStation, StationHardware
from satiot.orbits.frames import GeodeticPoint
from satiot.phy.antennas import DIPOLE


class TestStationHardware:
    def test_defaults_are_tinygs(self):
        hw = StationHardware()
        assert "SX1262" in hw.model
        assert hw.cost_usd == pytest.approx(30.0)  # paper: ~$30 stations

    def test_frequency_support(self):
        hw = StationHardware()
        assert hw.supports_frequency(400.45e6)
        assert hw.supports_frequency(437.985e6)
        assert not hw.supports_frequency(868e6)
        assert not hw.supports_frequency(137e6)


class TestGroundStation:
    def test_requires_id(self):
        with pytest.raises(ValueError):
            GroundStation("", "HK", GeodeticPoint(22.3, 114.17))

    def test_rx_gain_subtracts_cable_loss(self):
        st = GroundStation("HK-1", "HK", GeodeticPoint(22.3, 114.17))
        assert st.rx_gain_dbi(45.0) \
            == pytest.approx(DIPOLE.gain_dbi(45.0) - 0.5)
