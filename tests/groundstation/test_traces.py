"""Tests for beacon-trace records and columnar dataset I/O."""

import numpy as np
import pytest

from satiot.groundstation.traces import (BeaconTrace, StringColumn,
                                         TraceColumns, TraceDataset)


def make_trace(**kwargs):
    defaults = dict(time_s=100.0, station_id="HK-1", site="HK",
                    constellation="Tianqi", satellite="Tianqi-TQ-A-01",
                    norad_id=44100, frequency_hz=400.45e6,
                    rssi_dbm=-128.5, snr_db=-11.4, elevation_deg=42.0,
                    azimuth_deg=183.0, range_km=1120.0, doppler_hz=-4200.0,
                    raining=False, pass_id="HK-44100-3")
    defaults.update(kwargs)
    return BeaconTrace(**defaults)


class TestBeaconTrace:
    def test_row_roundtrip(self):
        trace = make_trace()
        assert BeaconTrace.from_row(trace.to_row()) == trace

    def test_from_row_parses_strings(self):
        row = {k: str(v) for k, v in make_trace().to_row().items()}
        back = BeaconTrace.from_row(row)
        assert back.rssi_dbm == pytest.approx(-128.5)
        assert back.norad_id == 44100
        assert back.raining is False

    def test_from_row_missing_column_raises(self):
        row = make_trace().to_row()
        del row["rssi_dbm"]
        with pytest.raises(KeyError, match="rssi_dbm"):
            BeaconTrace.from_row(row)

    def test_from_row_bad_value_names_field(self):
        row = make_trace().to_row()
        row["norad_id"] = "not-a-number"
        with pytest.raises(ValueError, match="norad_id"):
            BeaconTrace.from_row(row)

    def test_from_row_bad_bool_raises(self):
        """Unknown boolean literals are no longer silently False."""
        row = make_trace().to_row()
        row["raining"] = "maybe"
        with pytest.raises(ValueError, match="raining"):
            BeaconTrace.from_row(row)

    def test_from_row_bool_literals(self):
        for literal, expected in (("true", True), ("1", True),
                                  ("False", False), ("0", False),
                                  (1, True), (0, False)):
            row = make_trace().to_row()
            row["raining"] = literal
            assert BeaconTrace.from_row(row).raining is expected

    def test_from_row_ignores_extra_columns(self):
        row = make_trace().to_row()
        row["brand_new_column"] = "whatever"
        assert BeaconTrace.from_row(row) == make_trace()


class TestStringColumn:
    def test_first_appearance_interning(self):
        col = StringColumn.from_values(["b", "a", "b", "c", "a"])
        assert col.table == ("b", "a", "c")
        assert list(col.codes) == [0, 1, 0, 2, 1]

    def test_mask_eq(self):
        col = StringColumn.from_values(["HK", "SYD", "HK"])
        assert list(col.mask_eq("HK")) == [True, False, True]
        assert list(col.mask_eq("nope")) == [False, False, False]
        assert list(col.mask_eq("hk", casefold=True)) \
            == [True, False, True]

    def test_concat_is_canonical(self):
        # The same row stream, blocked differently, must produce the
        # same codes and tables.
        a = StringColumn.from_values(["x", "y"])
        b = StringColumn.from_values(["y", "z"])
        merged = StringColumn.concat([a, b])
        direct = StringColumn.from_values(["x", "y", "y", "z"])
        assert merged.table == direct.table
        assert list(merged.codes) == list(direct.codes)

    def test_concat_drops_unused_entries(self):
        col = StringColumn.from_values(["a", "b", "a"]).take([0, 2])
        canonical = col.canonicalized()
        assert canonical.table == ("a",)
        assert list(canonical.codes) == [0, 0]

    def test_values_are_exact_strings(self):
        col = StringColumn.from_values(["héllo", "wörld"])
        assert list(col.values()) == ["héllo", "wörld"]


class TestTraceColumns:
    def test_from_rows_row_roundtrip(self):
        rows = [make_trace(time_s=float(i)) for i in range(5)]
        block = TraceColumns.from_rows(rows)
        assert len(block) == 5
        assert [block.row(i) for i in range(5)] == rows

    def test_from_arrays_broadcasts_scalars(self):
        block = TraceColumns.from_arrays(
            n=3, time_s=np.arange(3.0), station_id="HK-1", site="HK",
            constellation="Tianqi", satellite="S", norad_id=1,
            frequency_hz=4.0e8, rssi_dbm=np.full(3, -120.0),
            snr_db=np.zeros(3), elevation_deg=np.zeros(3),
            azimuth_deg=np.zeros(3), range_km=np.ones(3),
            doppler_hz=np.zeros(3), raining=False, pass_id="HK-1-0")
        assert block.row(2).site == "HK"
        assert block.row(2).time_s == 2.0
        assert block.column("norad_id").dtype == np.int64

    def test_from_arrays_missing_column_raises(self):
        with pytest.raises(ValueError, match="missing trace columns"):
            TraceColumns.from_arrays(n=1, time_s=np.zeros(1))

    def test_concat_matches_from_rows(self):
        rows = [make_trace(time_s=float(i),
                           site="HK" if i % 2 else "SYD")
                for i in range(6)]
        direct = TraceColumns.from_rows(rows)
        merged = TraceColumns.concat([TraceColumns.from_rows(rows[:2]),
                                      TraceColumns.from_rows(rows[2:])])
        assert merged.equals(direct)
        # Canonical interning: codes/tables identical, not just values.
        assert merged.string_column("site").table \
            == direct.string_column("site").table
        assert np.array_equal(merged.string_column("site").codes,
                              direct.string_column("site").codes)

    def test_slice_is_zero_copy(self):
        block = TraceColumns.from_rows(
            [make_trace(time_s=float(i)) for i in range(4)])
        window = block.slice(slice(1, 3))
        assert len(window) == 2
        assert np.shares_memory(window.column("time_s"),
                                block.column("time_s"))

    def test_take_with_mask(self):
        block = TraceColumns.from_rows(
            [make_trace(time_s=float(i)) for i in range(4)])
        picked = block.take(block.column("time_s") >= 2.0)
        assert [picked.row(i).time_s for i in range(len(picked))] \
            == [2.0, 3.0]


class TestTraceDataset:
    def make_dataset(self):
        return TraceDataset([
            make_trace(time_s=3.0, site="HK", constellation="Tianqi"),
            make_trace(time_s=1.0, site="HK", constellation="FOSSA",
                       norad_id=52700, pass_id="HK-52700-0"),
            make_trace(time_s=2.0, site="SYD", constellation="Tianqi",
                       station_id="SYD-1"),
        ])

    def test_len_iter_getitem(self):
        ds = self.make_dataset()
        assert len(ds) == 3
        assert len(list(ds)) == 3
        assert ds[0].time_s == 3.0

    def test_slicing_returns_dataset(self):
        ds = self.make_dataset()
        head = ds[:2]
        assert isinstance(head, TraceDataset)
        assert len(head) == 2
        assert head[0] == ds[0]

    def test_filters(self):
        ds = self.make_dataset()
        assert len(ds.by_constellation("tianqi")) == 2
        assert len(ds.by_site("HK")) == 2
        assert len(ds.by_satellite(52700)) == 1
        assert len(ds.by_pass("HK-52700-0")) == 1

    def test_select_with_mask(self):
        ds = self.make_dataset()
        picked = ds.select(ds.column("time_s") < 2.5)
        assert sorted(t.time_s for t in picked) == [1.0, 2.0]

    def test_predicate_filter_still_works(self):
        ds = self.make_dataset()
        assert len(ds.filter(lambda t: t.site == "HK")) == 2

    def test_site_and_constellation_listing(self):
        ds = self.make_dataset()
        assert ds.sites() == ["HK", "SYD"]
        assert ds.constellations() == ["FOSSA", "Tianqi"]

    def test_listing_ignores_filtered_out_values(self):
        ds = self.make_dataset().by_site("SYD")
        assert ds.sites() == ["SYD"]

    def test_sorted_by_time(self):
        times = [t.time_s for t in self.make_dataset().sorted_by_time()]
        assert times == sorted(times)

    def test_append_extend(self):
        ds = TraceDataset()
        ds.append(make_trace())
        ds.extend([make_trace(time_s=5.0)])
        assert len(ds) == 2

    def test_extend_with_dataset_adopts_blocks(self):
        ds = TraceDataset()
        ds.extend(self.make_dataset())
        ds.extend(self.make_dataset().columns)
        assert len(ds) == 6

    def test_equality_with_lists(self):
        ds = self.make_dataset()
        assert ds == list(ds)
        assert TraceDataset() == []
        assert ds == TraceDataset(list(ds))

    def test_column_access(self):
        ds = self.make_dataset()
        assert ds.column("time_s").dtype == np.float64
        assert list(ds.column("site")) == ["HK", "HK", "SYD"]
        with pytest.raises(KeyError):
            ds.column("nope")

    def test_csv_roundtrip(self, tmp_path):
        ds = self.make_dataset()
        path = tmp_path / "traces.csv"
        ds.to_csv(path)
        back = TraceDataset.from_csv(path)
        assert len(back) == len(ds)
        assert list(back)[0] == list(ds)[0]

    def test_jsonl_roundtrip(self, tmp_path):
        ds = self.make_dataset()
        path = tmp_path / "traces.jsonl"
        ds.to_jsonl(path)
        back = TraceDataset.from_jsonl(path)
        assert [t for t in back] == [t for t in ds]

    def test_npz_roundtrip(self, tmp_path):
        ds = self.make_dataset()
        path = tmp_path / "traces.npz"
        ds.to_npz(path)
        back = TraceDataset.from_npz(path)
        assert back == ds
        # Binary columns round-trip bit-exactly.
        assert np.array_equal(back.column("rssi_dbm"),
                              ds.column("rssi_dbm"))

    def test_npz_rejects_foreign_archives(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, __format__=np.asarray(["not-traces"]))
        with pytest.raises(ValueError, match="unsupported"):
            TraceDataset.from_npz(path)

    def test_save_load_by_suffix(self, tmp_path):
        ds = self.make_dataset()
        for suffix, fmt in (("csv", "csv"), ("jsonl", "jsonl"),
                            ("npz", "npz")):
            path = tmp_path / f"traces.{suffix}"
            assert ds.save(path) == fmt
            assert TraceDataset.load(path) == ds

    def test_empty_roundtrips(self, tmp_path):
        empty = TraceDataset()
        for fmt in ("csv", "jsonl", "npz"):
            path = tmp_path / f"empty.{fmt}"
            empty.save(path, trace_format=fmt)
            assert len(TraceDataset.load(path)) == 0
