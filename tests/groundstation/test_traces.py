"""Tests for beacon-trace records and dataset I/O."""

import pytest

from satiot.groundstation.traces import BeaconTrace, TraceDataset


def make_trace(**kwargs):
    defaults = dict(time_s=100.0, station_id="HK-1", site="HK",
                    constellation="Tianqi", satellite="Tianqi-TQ-A-01",
                    norad_id=44100, frequency_hz=400.45e6,
                    rssi_dbm=-128.5, snr_db=-11.4, elevation_deg=42.0,
                    azimuth_deg=183.0, range_km=1120.0, doppler_hz=-4200.0,
                    raining=False, pass_id="HK-44100-3")
    defaults.update(kwargs)
    return BeaconTrace(**defaults)


class TestBeaconTrace:
    def test_row_roundtrip(self):
        trace = make_trace()
        assert BeaconTrace.from_row(trace.to_row()) == trace

    def test_from_row_parses_strings(self):
        row = {k: str(v) for k, v in make_trace().to_row().items()}
        back = BeaconTrace.from_row(row)
        assert back.rssi_dbm == pytest.approx(-128.5)
        assert back.norad_id == 44100
        assert back.raining is False


class TestTraceDataset:
    def make_dataset(self):
        return TraceDataset([
            make_trace(time_s=3.0, site="HK", constellation="Tianqi"),
            make_trace(time_s=1.0, site="HK", constellation="FOSSA",
                       norad_id=52700),
            make_trace(time_s=2.0, site="SYD", constellation="Tianqi",
                       station_id="SYD-1"),
        ])

    def test_len_iter_getitem(self):
        ds = self.make_dataset()
        assert len(ds) == 3
        assert len(list(ds)) == 3
        assert ds[0].time_s == 3.0

    def test_filters(self):
        ds = self.make_dataset()
        assert len(ds.by_constellation("tianqi")) == 2
        assert len(ds.by_site("HK")) == 2
        assert len(ds.by_satellite(52700)) == 1

    def test_site_and_constellation_listing(self):
        ds = self.make_dataset()
        assert ds.sites() == ["HK", "SYD"]
        assert ds.constellations() == ["FOSSA", "Tianqi"]

    def test_sorted_by_time(self):
        times = [t.time_s for t in self.make_dataset().sorted_by_time()]
        assert times == sorted(times)

    def test_append_extend(self):
        ds = TraceDataset()
        ds.append(make_trace())
        ds.extend([make_trace(time_s=5.0)])
        assert len(ds) == 2

    def test_csv_roundtrip(self, tmp_path):
        ds = self.make_dataset()
        path = tmp_path / "traces.csv"
        ds.to_csv(path)
        back = TraceDataset.from_csv(path)
        assert len(back) == len(ds)
        assert list(back)[0] == list(ds)[0]

    def test_jsonl_roundtrip(self, tmp_path):
        ds = self.make_dataset()
        path = tmp_path / "traces.jsonl"
        ds.to_jsonl(path)
        back = TraceDataset.from_jsonl(path)
        assert [t for t in back] == [t for t in ds]
