"""Property tests: trace archives are value-exact, order-preserving.

For arbitrary trace tables — any finite floats, any int64 ids, unicode
site/constellation names — writing through CSV, JSONL or NPZ and
reading back must reproduce the exact same dataset in the exact same
row order.  Formats must also agree with each other.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from satiot.groundstation.traces import (BeaconTrace, TraceColumns,
                                         TraceDataset)

pytestmark = pytest.mark.property

# NUL is unrepresentable in CSV (and trailing NUL is dropped by NumPy's
# fixed-width unicode storage); surrogates are not encodable to UTF-8.
TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="\x00"),
    min_size=0, max_size=12)

FINITE = st.floats(allow_nan=False, allow_infinity=False, width=64)
INT64 = st.integers(min_value=-(2 ** 62), max_value=2 ** 62)


@st.composite
def traces(draw):
    return BeaconTrace(
        time_s=draw(FINITE),
        station_id=draw(TEXT),
        site=draw(TEXT),
        constellation=draw(TEXT),
        satellite=draw(TEXT),
        norad_id=draw(INT64),
        frequency_hz=draw(FINITE),
        rssi_dbm=draw(FINITE),
        snr_db=draw(FINITE),
        elevation_deg=draw(FINITE),
        azimuth_deg=draw(FINITE),
        range_km=draw(FINITE),
        doppler_hz=draw(FINITE),
        raining=draw(st.booleans()),
        pass_id=draw(TEXT),
    )


DATASETS = st.lists(traces(), min_size=0, max_size=12) \
    .map(TraceDataset)


def _assert_exact(original: TraceDataset, restored: TraceDataset):
    assert len(restored) == len(original)
    # Row-level equality is bit-exact field equality in order.
    assert list(restored) == list(original)
    # Column-level equality (catches dtype drift the rows would mask).
    for name in ("time_s", "rssi_dbm", "norad_id", "raining"):
        assert np.array_equal(restored.column(name),
                              original.column(name))


@settings(max_examples=60, deadline=None)
@given(DATASETS)
def test_csv_roundtrip_exact(tmp_path_factory, ds):
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    ds.to_csv(path)
    _assert_exact(ds, TraceDataset.from_csv(path))


@settings(max_examples=60, deadline=None)
@given(DATASETS)
def test_jsonl_roundtrip_exact(tmp_path_factory, ds):
    path = tmp_path_factory.mktemp("jsonl") / "t.jsonl"
    ds.to_jsonl(path)
    _assert_exact(ds, TraceDataset.from_jsonl(path))


@settings(max_examples=60, deadline=None)
@given(DATASETS)
def test_npz_roundtrip_exact(tmp_path_factory, ds):
    path = tmp_path_factory.mktemp("npz") / "t.npz"
    ds.to_npz(path)
    _assert_exact(ds, TraceDataset.from_npz(path))


@settings(max_examples=30, deadline=None)
@given(DATASETS)
def test_formats_agree(tmp_path_factory, ds):
    """CSV ↔ JSONL ↔ NPZ all reconstruct the same dataset."""
    tmp = tmp_path_factory.mktemp("cross")
    ds.to_csv(tmp / "t.csv")
    ds.to_jsonl(tmp / "t.jsonl")
    ds.to_npz(tmp / "t.npz")
    from_csv = TraceDataset.from_csv(tmp / "t.csv")
    from_jsonl = TraceDataset.from_jsonl(tmp / "t.jsonl")
    from_npz = TraceDataset.from_npz(tmp / "t.npz")
    assert from_csv == from_jsonl == from_npz == ds


@settings(max_examples=40, deadline=None)
@given(st.lists(traces(), min_size=0, max_size=12),
       st.integers(min_value=1, max_value=4))
def test_blocked_merge_is_canonical(rows, cut_count):
    """Any blocking of the same row stream concatenates to identical
    columns — codes and interning tables included."""
    direct = TraceColumns.from_rows(rows)
    cuts = sorted({min(len(rows), (i * len(rows)) // cut_count)
                   for i in range(1, cut_count)})
    pieces, last = [], 0
    for cut in cuts + [len(rows)]:
        pieces.append(TraceColumns.from_rows(rows[last:cut]))
        last = cut
    merged = TraceColumns.concat(pieces)
    assert merged.equals(direct)
    for name in ("site", "constellation", "pass_id"):
        assert merged.string_column(name).table \
            == direct.string_column(name).table
        assert np.array_equal(merged.string_column(name).codes,
                              direct.string_column(name).codes)
