"""Tests for the customized pass scheduler."""

import pytest

from satiot.constellations.catalog import build_constellation
from satiot.groundstation.scheduler import Scheduler
from satiot.groundstation.station import GroundStation, StationHardware
from satiot.orbits.frames import GeodeticPoint

HK = GeodeticPoint(22.30, 114.17)


def make_stations(n, site="HK", **hw_kwargs):
    hardware = StationHardware(**hw_kwargs) if hw_kwargs \
        else StationHardware()
    return [GroundStation(f"{site}-{i + 1}", site, HK, hardware=hardware)
            for i in range(n)]


@pytest.fixture(scope="module")
def tianqi():
    return build_constellation("tianqi")


class TestSchedulerConstruction:
    def test_needs_stations(self):
        with pytest.raises(ValueError):
            Scheduler([])

    def test_negative_guard_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(make_stations(1), guard_time_s=-1.0)


class TestScheduling(object):
    def test_no_station_double_booked(self, tianqi):
        scheduler = Scheduler(make_stations(3), guard_time_s=30.0)
        epoch = tianqi.satellites[0].tle.epoch
        schedule = scheduler.build_schedule(list(tianqi), epoch, 43200.0)
        by_station = {}
        for sp in schedule.assigned:
            by_station.setdefault(sp.station.station_id, []).append(
                sp.window)
        for windows in by_station.values():
            windows.sort(key=lambda w: w.rise_s)
            for a, b in zip(windows, windows[1:]):
                assert a.set_s + 30.0 <= b.rise_s

    def test_more_stations_more_coverage(self, tianqi):
        epoch = tianqi.satellites[0].tle.epoch
        few = Scheduler(make_stations(1)).build_schedule(
            list(tianqi), epoch, 43200.0)
        many = Scheduler(make_stations(6)).build_schedule(
            list(tianqi), epoch, 43200.0)
        assert many.coverage >= few.coverage
        assert len(many.assigned) >= len(few.assigned)

    def test_six_stations_cover_everything(self, tianqi):
        # The paper deployed up to 6 stations per site to track all
        # target satellites; with 6 the greedy schedule drops nothing.
        epoch = tianqi.satellites[0].tle.epoch
        schedule = Scheduler(make_stations(6)).build_schedule(
            list(tianqi), epoch, 86400.0)
        assert schedule.dropped == []
        assert schedule.coverage == 1.0

    def test_unsupported_frequency_dropped(self, tianqi):
        # Stations whose radio cannot tune the constellation's band
        # never get assigned.
        stations = make_stations(2, frequency_min_hz=800e6,
                                 frequency_max_hz=900e6)
        epoch = tianqi.satellites[0].tle.epoch
        schedule = Scheduler(stations).build_schedule(
            list(tianqi), epoch, 21600.0)
        assert schedule.assigned == []
        assert len(schedule.dropped) > 0

    def test_windows_sorted_by_rise(self, tianqi):
        epoch = tianqi.satellites[0].tle.epoch
        scheduler = Scheduler(make_stations(2))
        windows = scheduler.predict_windows(list(tianqi), epoch, 43200.0)
        rises = [w.rise_s for _s, w in windows]
        assert rises == sorted(rises)

    def test_for_station_filter(self, tianqi):
        epoch = tianqi.satellites[0].tle.epoch
        schedule = Scheduler(make_stations(3)).build_schedule(
            list(tianqi), epoch, 43200.0)
        for sp in schedule.for_station("HK-1"):
            assert sp.station.station_id == "HK-1"

    def test_scheduled_pass_frequency(self, tianqi):
        epoch = tianqi.satellites[0].tle.epoch
        schedule = Scheduler(make_stations(6)).build_schedule(
            list(tianqi), epoch, 21600.0)
        assert all(sp.frequency_hz == pytest.approx(400.45e6)
                   for sp in schedule.assigned)

    def test_empty_schedule_coverage_is_one(self):
        from satiot.groundstation.scheduler import PassSchedule
        assert PassSchedule(assigned=[], dropped=[]).coverage == 1.0
