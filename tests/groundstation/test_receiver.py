"""Tests for the beacon receiver simulation."""

import pytest

from satiot.constellations.catalog import build_constellation
from satiot.groundstation.receiver import BeaconReceiver
from satiot.groundstation.scheduler import Scheduler
from satiot.groundstation.station import GroundStation
from satiot.orbits.frames import GeodeticPoint
from satiot.sim.rng import RngStreams

HK = GeodeticPoint(22.30, 114.17)


@pytest.fixture(scope="module")
def scheduled_passes():
    tianqi = build_constellation("tianqi")
    stations = [GroundStation(f"HK-{i}", "HK", HK) for i in range(6)]
    epoch = tianqi.satellites[0].tle.epoch
    schedule = Scheduler(stations).build_schedule(list(tianqi), epoch,
                                                  43200.0)
    return epoch, schedule.assigned


@pytest.fixture(scope="module")
def receptions(scheduled_passes):
    epoch, assigned = scheduled_passes
    receiver = BeaconReceiver()
    streams = RngStreams(5)
    return [receiver.receive_pass(sp, epoch, f"HK-{i}",
                                  streams.get(f"p/{i}"))
            for i, sp in enumerate(assigned)]


class TestPassReception:
    def test_effective_within_theoretical(self, receptions):
        for pr in receptions:
            assert pr.effective_duration_s \
                <= pr.scheduled.window.duration_s + 1e-6

    def test_silent_pass_zero_effective(self, receptions):
        silent = [pr for pr in receptions if not pr.heard_anything]
        for pr in silent:
            assert pr.effective_duration_s == 0.0
            assert pr.first_rx_s is None and pr.last_rx_s is None
            assert pr.traces == []

    def test_reception_rate_bounds(self, receptions):
        for pr in receptions:
            assert 0.0 <= pr.reception_rate <= 1.0
            assert pr.beacons_received <= pr.beacons_sent

    def test_beacon_count_matches_period(self, receptions):
        for pr in receptions:
            period = pr.scheduled.satellite.radio.beacon_period_s
            expected = pr.scheduled.window.duration_s / period
            assert abs(pr.beacons_sent - expected) <= 1.0

    def test_traces_sorted_and_inside_window(self, receptions):
        for pr in receptions:
            times = [t.time_s for t in pr.traces]
            assert times == sorted(times)
            for t in pr.traces:
                assert pr.scheduled.window.contains(t.time_s)

    def test_trace_metadata(self, receptions):
        for pr in receptions[:20]:
            for t in pr.traces:
                assert t.constellation == "Tianqi"
                assert t.range_km > 400.0
                assert -90.0 <= t.elevation_deg <= 90.0
                assert t.pass_id == pr.pass_id

    def test_some_passes_heard(self, receptions):
        heard = [pr for pr in receptions if pr.heard_anything]
        # The calibrated channel hears roughly a third of Tianqi windows.
        assert 0.1 < len(heard) / len(receptions) < 0.7

    def test_deterministic(self, scheduled_passes):
        epoch, assigned = scheduled_passes
        receiver = BeaconReceiver()
        a = receiver.receive_pass(assigned[0], epoch, "HK-0",
                                  RngStreams(5).get("p/0"))
        b = receiver.receive_pass(assigned[0], epoch, "HK-0",
                                  RngStreams(5).get("p/0"))
        assert a.beacons_received == b.beacons_received
        assert [t.rssi_dbm for t in a.traces] \
            == [t.rssi_dbm for t in b.traces]

    def test_environment_loss_reduces_receptions(self, scheduled_passes):
        epoch, assigned = scheduled_passes
        clean = BeaconReceiver()
        noisy = BeaconReceiver(
            link_overrides={"implementation_loss_db": 11.0})
        streams_a, streams_b = RngStreams(5), RngStreams(5)
        total_clean = sum(
            clean.receive_pass(sp, epoch, f"HK-{i}",
                               streams_a.get(f"p/{i}")).beacons_received
            for i, sp in enumerate(assigned[:40]))
        total_noisy = sum(
            noisy.receive_pass(sp, epoch, f"HK-{i}",
                               streams_b.get(f"p/{i}")).beacons_received
            for i, sp in enumerate(assigned[:40]))
        assert total_noisy < total_clean
