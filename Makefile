PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-runtime test-chaos bench bench-smoke validate clean

test:
	$(PYTHON) -m pytest -x -q

test-runtime:
	$(PYTHON) -m pytest -x -q tests/runtime

# Seeded fault-injection determinism suite (see docs/faults.md).  On
# failure the report prints the exact SATIOT_FAULTS spec to replay.
test-chaos:
	$(PYTHON) -m pytest -q -m chaos tests/chaos

bench:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest --benchmark-only -q

# Tiny-mode benchmarks: seconds, not minutes.  Verifies parallel ==
# serial bit-identity, cache-warm < cache-cold, the columnar trace
# store's merge+filter / archive-size wins, the serving layer's
# batched-vs-unbatched speedup under concurrent load, and the batched
# SGP4 fleet pass search's coarse-grid speedup + bit-identity (metrics
# JSON lands in benchmarks/output/ and is uploaded as a CI artifact).
bench-smoke:
	cd benchmarks && SATIOT_BENCH_TINY=1 PYTHONPATH=../src \
		$(PYTHON) -m pytest bench_runtime_scaling.py bench_trace_store.py \
		-q -p no:cacheprovider
	cd benchmarks && PYTHONPATH=../src $(PYTHON) bench_serving.py --smoke
	cd benchmarks && PYTHONPATH=../src $(PYTHON) bench_orbit_batch.py --smoke
	cd benchmarks && PYTHONPATH=../src $(PYTHON) bench_twin.py --smoke
	cd benchmarks && PYTHONPATH=../src $(PYTHON) bench_catalog_sweep.py --smoke
	cd benchmarks && PYTHONPATH=../src $(PYTHON) bench_trace_store.py --smoke
	$(PYTHON) -m satiot scenario run benchmarks/scenarios/smoke.json \
		--smoke --out benchmarks/output/scenario-smoke

validate:
	$(PYTHON) -m satiot validate

clean:
	rm -rf benchmarks/output benchmarks/.ephemeris-cache \
		.pytest_cache .benchmarks
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
