PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-runtime bench bench-smoke validate clean

test:
	$(PYTHON) -m pytest -x -q

test-runtime:
	$(PYTHON) -m pytest -x -q tests/runtime

bench:
	cd benchmarks && PYTHONPATH=../src $(PYTHON) -m pytest --benchmark-only -q

# Tiny-mode runtime scaling benchmark: seconds, not minutes.  Verifies
# parallel == serial bit-identity and cache-warm < cache-cold.
bench-smoke:
	cd benchmarks && SATIOT_BENCH_TINY=1 PYTHONPATH=../src \
		$(PYTHON) -m pytest bench_runtime_scaling.py -q -p no:cacheprovider

validate:
	$(PYTHON) -m satiot validate

clean:
	rm -rf benchmarks/output benchmarks/.ephemeris-cache \
		.pytest_cache .benchmarks
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
