"""Memoizing cache for SGP4 ephemeris grids and pass predictions.

The passive campaign's dominant cost is orbital geometry: every site
re-propagates every satellite over the full campaign span, and the same
position/velocity grid is recomputed for all eight sites even though the
TEME-frame ephemeris does not depend on the observer at all.  This
module removes that redundancy with two memoized products:

* **propagation grids** — the ``(r, v)`` TEME state sampled on the
  coarse time grid, keyed by ``(TLE fingerprint, epoch, grid shape)``
  and shared across *all* sites of a campaign;
* **pass predictions** — the refined :class:`ContactWindow` list of one
  satellite over one observer, keyed by ``(TLE fingerprint, epoch,
  duration, step, elevation mask, quantized location, refine
  tolerance)`` and shared across repeated campaign and benchmark
  invocations.

Both live in an in-memory LRU tier; an optional on-disk ``.npz`` tier
(shared between worker processes and across benchmark runs) can be
enabled with ``disk_dir=`` or the ``SATIOT_EPHEMERIS_CACHE_DIR``
environment variable.  Cache lookups are exact — keys incorporate every
input that influences the cached value — so a hit returns arrays that
are bit-identical to a fresh computation, preserving the runtime's
determinism contract.

Whole-fleet **constellation grids** get a third representation: a
*segment* — the ``(N, T, 3)`` position/velocity stacks written once as
raw ``.npy`` files (plus a SHA-256 sidecar) with a deterministic
layout.  Unlike ``.npz`` entries (zip archives, which must be
decompressed into private memory), segments are opened with
``np.load(mmap_mode="r")``: every process that loads the same segment
maps the *same* physical pages, so N serving workers share one
resident copy of the fleet ephemeris instead of holding N private
copies.  ``readonly=True`` (the default; disable with
``SATIOT_EPHEMERIS_MMAP=0``) hands these mmap-backed read-only views
directly to consumers — zero copies on the serving hot path.

The disk tier is **checksummed and self-healing**: every ``.npz`` entry
carries a SHA-256 digest of its arrays, and a corrupted, truncated or
otherwise unreadable entry is detected on load, quarantined next to the
store (``<entry>.npz.bad``) and treated as a cache miss — the value is
recomputed and rewritten.  Disk-tier I/O errors (read-only or vanished
cache directories, full disks) are counted, warned about once, and
degrade the cache to compute-through, never to wrong answers.  The
:mod:`satiot.faults` plane exercises exactly these paths via the
``cache.disk_read`` / ``cache.disk_write`` injection sites.

Set ``SATIOT_EPHEMERIS_CACHE=0`` to disable the process-default cache.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..faults import fault_fires
from ..orbits.frames import GeodeticPoint, teme_to_ecef
from ..orbits.passes import (ContactWindow, PassPredictor,
                             _windows_from_ecef, observer_geometry)
from ..orbits.passes import find_passes_multi as _orbits_find_passes_multi
from ..orbits.sgp4 import SGP4
from ..orbits.sgp4_batch import SGP4Batch
from ..orbits.timebase import Epoch
from ..orbits.tle import TLE, format_tle

__all__ = ["CacheStats", "EphemerisCache", "get_default_cache",
           "reset_default_cache", "tle_fingerprint",
           "constellation_fingerprint"]

#: Disable the process-default cache entirely when set to 0/false/off.
CACHE_ENV = "SATIOT_EPHEMERIS_CACHE"
#: Directory for the shared on-disk tier of the process-default cache.
CACHE_DIR_ENV = "SATIOT_EPHEMERIS_CACHE_DIR"
#: Set to 0/false/off to materialize constellation-grid segments into
#: private memory instead of serving mmap-backed read-only views.
MMAP_ENV = "SATIOT_EPHEMERIS_MMAP"

_PASS_FIELDS = ("rise_s", "set_s", "culmination_s", "max_elevation_deg",
                "norad_id", "clipped_start", "clipped_end")


@lru_cache(maxsize=4096)
def tle_fingerprint(tle: TLE) -> str:
    """Stable 16-hex-digit fingerprint of an element set.

    Computed over the *formatted* two-line representation, so the
    fingerprint is invariant under a parse → format → parse round-trip
    (the canonical form is a fixed-point function of the orbital
    fields).  Memoized: the serving layer fingerprints the same element
    sets on every cache lookup of every request.
    """
    line1, line2 = format_tle(tle)
    digest = hashlib.sha256(f"{line1}\n{line2}".encode("ascii"))
    return digest.hexdigest()[:16]


def constellation_fingerprint(tles: Sequence[TLE]) -> str:
    """Joint 16-hex-digit fingerprint of an *ordered* fleet.

    Built over the member fingerprints, so it changes whenever any
    element set changes, a satellite is added/removed, or the order
    differs (order matters: the constellation-grid entry stacks rows in
    fleet order).
    """
    digest = hashlib.sha256(
        "\n".join(tle_fingerprint(t) for t in tles).encode("ascii"))
    return digest.hexdigest()[:16]


def _quantize_location(observer: GeodeticPoint,
                       decimals: int = 9) -> Tuple[float, float, float]:
    """Observer location quantized to ~0.1 mm so float noise can't split
    otherwise-identical cache keys."""
    return (round(float(observer.latitude_deg), decimals),
            round(float(observer.longitude_deg), decimals),
            round(float(observer.altitude_km), decimals))


@dataclass
class CacheStats:
    """Hit/miss counters, split by cached product and tier."""

    grid_hits: int = 0
    grid_misses: int = 0
    pass_hits: int = 0
    pass_misses: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    #: Corrupt/unreadable disk entries quarantined (``*.bad``) and
    #: treated as misses.
    disk_corrupt: int = 0
    #: Disk-tier I/O errors swallowed (read-only dir, full disk, ...).
    disk_errors: int = 0
    #: Approximate resident bytes of the in-memory grid tier, refreshed
    #: by :meth:`EphemerisCache.grid_resident_bytes` (views into a
    #: shared constellation stack are counted once).
    grid_bytes: int = 0
    #: Of :attr:`grid_bytes`: bytes owned privately by this process.
    grid_private_bytes: int = 0
    #: Of :attr:`grid_bytes`: bytes backed by mmap'd segments — resident
    #: once machine-wide no matter how many workers map them.
    grid_mmap_bytes: int = 0
    #: Constellation-grid fills served by the incremental extension
    #: fast path (prefix reused, only the suffix propagated).  Each is
    #: also counted in :attr:`grid_misses` — the fleet entry did miss.
    grid_extensions: int = 0

    @property
    def hits(self) -> int:
        return self.grid_hits + self.pass_hits

    @property
    def misses(self) -> int:
        return self.grid_misses + self.pass_misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> Tuple[int, ...]:
        return (self.grid_hits, self.grid_misses, self.pass_hits,
                self.pass_misses, self.disk_hits, self.disk_writes,
                self.disk_corrupt, self.disk_errors)


class EphemerisCache:
    """Two-tier (memory LRU + optional disk) ephemeris memoizer.

    Parameters
    ----------
    max_grids:
        In-memory LRU capacity for propagation grids.  A 3-day campaign
        at 30 s steps is ~8.6 k samples → ~400 kB per satellite, so the
        default comfortably holds every satellite of the study.
    max_pass_lists:
        In-memory LRU capacity for per-(satellite, site) pass lists;
        these are tiny (a few windows each).
    disk_dir:
        Optional directory for the shared ``.npz`` tier.  Created on
        demand; safe to share between concurrent worker processes
        (writes go through a per-pid temp file + atomic rename).
    readonly:
        When True (the default; ``SATIOT_EPHEMERIS_MMAP=0`` flips it),
        constellation-grid segments are served as mmap-backed
        *read-only* views straight off the disk tier — no
        materializing copy, one resident copy shared across every
        process that maps the same segment.  Pass False when callers
        need private writable arrays.
    """

    def __init__(self, max_grids: int = 256, max_pass_lists: int = 4096,
                 disk_dir: Union[str, Path, None] = None,
                 readonly: Optional[bool] = None) -> None:
        if max_grids < 1 or max_pass_lists < 1:
            raise ValueError("cache capacities must be positive")
        self.max_grids = int(max_grids)
        self.max_pass_lists = int(max_pass_lists)
        self.disk_dir = Path(disk_dir) if disk_dir else None
        if readonly is None:
            readonly = os.environ.get(MMAP_ENV, "1").strip().lower() \
                not in ("0", "false", "off", "no")
        self.readonly = bool(readonly)
        self.stats = CacheStats()
        self._warned_disk = False
        self._grids: "OrderedDict[tuple, Tuple[np.ndarray, np.ndarray]]" \
            = OrderedDict()
        self._pass_lists: "OrderedDict[tuple, Tuple[ContactWindow, ...]]" \
            = OrderedDict()
        # Most recent offsets grid served per (fleet, epoch) — the
        # candidate prefix for the incremental extension fast path.
        self._extents: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    @staticmethod
    def grid_key(tle: TLE, epoch: Epoch,
                 offsets: np.ndarray) -> tuple:
        offsets = np.ascontiguousarray(offsets, dtype=float)
        content = hashlib.sha1(offsets.tobytes()).hexdigest()[:16]
        return ("grid", tle_fingerprint(tle), round(float(epoch.jd), 9),
                int(offsets.size), content)

    @staticmethod
    def constellation_key(tles: Sequence[TLE], epoch: Epoch,
                          offsets: np.ndarray) -> tuple:
        """Key of one whole-fleet ``(N, T, 3)`` propagation stack.

        Mirrors :meth:`grid_key` (same epoch rounding and offsets
        digest) with the joint fleet fingerprint, so the constellation
        entry and its per-satellite row entries always agree on the
        grid they describe.
        """
        offsets = np.ascontiguousarray(offsets, dtype=float)
        content = hashlib.sha1(offsets.tobytes()).hexdigest()[:16]
        return ("cgrid", constellation_fingerprint(tles),
                round(float(epoch.jd), 9), int(offsets.size), content)

    @staticmethod
    def pass_key(tle: TLE, observer: GeodeticPoint, epoch: Epoch,
                 duration_s: float, coarse_step_s: float,
                 min_elevation_deg: float, refine_tol_s: float,
                 refine: str = "bisect") -> tuple:
        return ("passes", tle_fingerprint(tle),
                round(float(epoch.jd), 9), round(float(duration_s), 6),
                round(float(coarse_step_s), 6),
                round(float(min_elevation_deg), 6),
                _quantize_location(observer),
                round(float(refine_tol_s), 6), str(refine))

    # ------------------------------------------------------------------
    # Propagation grids
    # ------------------------------------------------------------------
    def propagation_grid(self, propagator: SGP4, epoch: Epoch,
                         offsets_s: Sequence[float],
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """TEME ``(r, v)`` of ``propagator`` at ``epoch + offsets_s``.

        Bit-identical to ``propagator.propagate(...)`` on the same
        instants; hits skip the SGP4 evaluation entirely.
        """
        offsets = np.asarray(offsets_s, dtype=float)
        key = self.grid_key(propagator.tle, epoch, offsets)
        cached = self._lru_get(self._grids, key)
        if cached is not None:
            self.stats.grid_hits += 1
            return cached
        disk = self._disk_load_grid(key)
        if disk is not None:
            self.stats.grid_hits += 1
            self.stats.disk_hits += 1
            self._lru_put(self._grids, key, disk, self.max_grids)
            return disk
        self.stats.grid_misses += 1
        tsince = float(epoch - propagator.tle.epoch) + offsets
        r, v = propagator.propagate(tsince)
        r = np.asarray(r, dtype=float)
        v = np.asarray(v, dtype=float)
        self._lru_put(self._grids, key, (r, v), self.max_grids)
        self._disk_store(key, {"r": r, "v": v})
        return r, v

    def grid_provider(self, propagator: SGP4,
                      ) -> Callable[[Epoch, np.ndarray],
                                    Tuple[np.ndarray, np.ndarray]]:
        """A ``PassPredictor``-compatible coarse-grid provider."""
        def provider(epoch: Epoch, offsets: np.ndarray):
            return self.propagation_grid(propagator, epoch, offsets)
        return provider

    # ------------------------------------------------------------------
    # Constellation grids
    # ------------------------------------------------------------------
    def constellation_grid(self, propagators: Sequence[SGP4],
                           epoch: Epoch, offsets_s: Sequence[float],
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Whole-fleet TEME ``(r, v)`` stacks of shape ``(N, T, 3)``.

        Row ``n`` is bit-identical to
        ``propagators[n].propagate(...)`` on the same instants (the
        :class:`~satiot.orbits.sgp4_batch.SGP4Batch` contract).  The
        stack is cached under the constellation key **and** every row
        is published as a view under the corresponding single-satellite
        :meth:`grid_key` — so later single-satellite lookups hit the
        fleet fill, and previously cached single-satellite grids are
        adopted into the stack instead of being re-propagated.  Rows
        actually propagated here are written to the disk tier (as
        ordinary single-satellite entries), and the whole stack is
        written **once** as an mmap-able segment: with
        ``readonly=True`` every later load (in this or any other
        process) returns read-only views into one shared mapping
        instead of a private copy.
        """
        offsets = np.asarray(offsets_s, dtype=float)
        propagators = list(propagators)
        tles = [p.tle for p in propagators]
        ckey = self.constellation_key(tles, epoch, offsets)
        cached = self._lru_get(self._grids, ckey)
        if cached is not None:
            self.stats.grid_hits += 1
            self._record_extent(tles, epoch, offsets)
            return cached
        segment = self._segment_load(ckey)
        if segment is not None:
            r, v = segment
            self.stats.grid_hits += 1
            self.stats.disk_hits += 1
            sat_keys = [self.grid_key(t, epoch, offsets) for t in tles]
            for i, key in enumerate(sat_keys):
                self._lru_put(self._grids, key, (r[i], v[i]),
                              self.max_grids)
            self._lru_put(self._grids, ckey, (r, v), self.max_grids)
            self._record_extent(tles, epoch, offsets)
            return r, v
        extended = self._extend_from_prefix(propagators, tles, ckey,
                                            epoch, offsets)
        if extended is not None:
            self._record_extent(tles, epoch, offsets)
            return extended

        n = len(propagators)
        sat_keys = [self.grid_key(t, epoch, offsets) for t in tles]
        r = np.empty((n, offsets.size, 3), dtype=float)
        v = np.empty((n, offsets.size, 3), dtype=float)
        missing: List[int] = []
        for i, key in enumerate(sat_keys):
            hit = self._lru_get(self._grids, key)
            if hit is None:
                disk = self._disk_load_grid(key)
                if disk is not None:
                    self.stats.disk_hits += 1
                    hit = disk
            if hit is not None:
                self.stats.grid_hits += 1
                r[i], v[i] = hit
            else:
                missing.append(i)
        if missing:
            self.stats.grid_misses += len(missing)
            batch = SGP4Batch.from_propagators(
                [propagators[i] for i in missing])
            r_new, v_new = batch.propagate_offsets(epoch, offsets)
            for j, i in enumerate(missing):
                r[i] = r_new[j]
                v[i] = v_new[j]
        missing_set = frozenset(missing)
        for i, key in enumerate(sat_keys):
            # Row views share the stack's memory: the grid tier holds
            # one (N, T, 3) buffer, not N+1 copies (grid_resident_bytes
            # counts the base buffer once).
            self._lru_put(self._grids, key, (r[i], v[i]),
                          self.max_grids)
            if i in missing_set:
                self._disk_store(key, {"r": r[i], "v": v[i]})
        self._segment_store(ckey, r, v)
        self._lru_put(self._grids, ckey, (r, v), self.max_grids)
        self._record_extent(tles, epoch, offsets)
        return r, v

    # ------------------------------------------------------------------
    # Incremental extension (digital-twin serving)
    # ------------------------------------------------------------------
    @staticmethod
    def _extent_key(tles: Sequence[TLE], epoch: Epoch) -> tuple:
        """One extent slot per (fleet, epoch): the prefix candidate."""
        return (constellation_fingerprint(tles),
                round(float(epoch.jd), 9))

    def _record_extent(self, tles: Sequence[TLE], epoch: Epoch,
                       offsets: np.ndarray) -> None:
        """Remember the offsets grid just served for this fleet+epoch.

        The twin's advancing clock issues monotonically growing grids,
        so "the grid most recently served" is exactly the prefix the
        next request can extend from.  Stored as a private copy so a
        caller mutating their offsets array can't corrupt the record.
        """
        self._lru_put(self._extents, self._extent_key(tles, epoch),
                      np.array(offsets, dtype=float), self.max_grids)

    def _extend_from_prefix(self, propagators: Sequence[SGP4],
                            tles: Sequence[TLE], ckey: tuple,
                            epoch: Epoch, offsets: np.ndarray,
                            ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Serve ``offsets`` by extending the recorded prefix grid.

        Applies only when the recorded extent is a strict byte-level
        prefix of ``offsets`` and its ``(N, T, 3)`` stack is still
        reachable (memory LRU or mmap'd segment).  Only the suffix
        instants are propagated; SGP4 is memoryless in ``tsince``, so
        the concatenated stack is bit-identical to a cold full-range
        propagation (property-tested in tests/twin).  The combined
        stack is republished under the full key — including a new
        segment, which is how a restarted fleet worker re-attaches to
        grids its siblings extended.  The ``twin.extend`` fault site
        abandons the fast path (full recompute; output unchanged).
        """
        if fault_fires("twin.extend"):
            return None
        prev = self._extents.get(self._extent_key(tles, epoch))
        if prev is None or not 0 < prev.size < offsets.size:
            return None
        t = int(prev.size)
        if offsets[:t].tobytes() != prev.tobytes():
            return None
        prev_key = self.constellation_key(tles, epoch, prev)
        prefix = self._lru_get(self._grids, prev_key)
        if prefix is None:
            prefix = self._segment_load(prev_key)
            if prefix is not None:
                self.stats.disk_hits += 1
        if prefix is None:
            return None
        r_prev, v_prev = prefix
        n = len(propagators)
        if r_prev.shape != (n, t, 3) or v_prev.shape != (n, t, 3):
            return None
        batch = SGP4Batch.from_propagators(propagators)
        r_suf, v_suf = batch.propagate_offsets(epoch, offsets[t:])
        # concatenate materializes a fresh private C-contiguous stack —
        # an mmap'd prefix is copied out, never written through.
        r = np.concatenate([r_prev, r_suf], axis=1)
        v = np.concatenate([v_prev, v_suf], axis=1)
        self.stats.grid_misses += 1
        self.stats.grid_extensions += 1
        for i, tle in enumerate(tles):
            self._lru_put(self._grids,
                          self.grid_key(tle, epoch, offsets),
                          (r[i], v[i]), self.max_grids)
        self._segment_store(ckey, r, v)
        self._lru_put(self._grids, ckey, (r, v), self.max_grids)
        return r, v

    def extend_constellation_grid(self, propagators: Sequence[SGP4],
                                  epoch: Epoch,
                                  offsets_s: Sequence[float],
                                  prefix_offsets_s: Optional[
                                      Sequence[float]] = None,
                                  ) -> Tuple[np.ndarray, np.ndarray]:
        """Whole-fleet grid over ``offsets_s``, extending incrementally.

        Identical contract (and bit-identical output) to
        :meth:`constellation_grid`; the difference is purely how the
        answer is produced.  When the previously served grid for this
        fleet — or the explicit ``prefix_offsets_s`` — is a strict
        prefix of ``offsets_s``, only the new suffix instants are
        propagated and the stacks are concatenated.  A cache that
        cannot see the prefix (evicted, no disk tier) degrades to a
        full fill, never to a wrong answer.

        ``prefix_offsets_s`` seeds the extent record explicitly: a
        process that did not itself serve the prefix (a restarted
        fleet worker, a fresh cache over an existing ``disk_dir``) can
        name the grid it expects to find in the shared segment tier.
        """
        if prefix_offsets_s is not None:
            offsets = np.asarray(offsets_s, dtype=float)
            prefix = np.asarray(prefix_offsets_s, dtype=float)
            if 0 < prefix.size < offsets.size and \
                    offsets[:prefix.size].tobytes() == prefix.tobytes():
                tles = [p.tle for p in propagators]
                self._record_extent(tles, epoch, prefix)
        return self.constellation_grid(propagators, epoch, offsets_s)

    def fleet_grid_provider(self, propagators: Sequence[SGP4],
                            ) -> Callable[[Epoch, np.ndarray],
                                          Tuple[np.ndarray, np.ndarray]]:
        """A ``find_passes_fleet``-compatible fleet grid provider."""
        propagators = list(propagators)

        def provider(epoch: Epoch, offsets: np.ndarray):
            return self.constellation_grid(propagators, epoch, offsets)
        return provider

    # ------------------------------------------------------------------
    # Pass predictions
    # ------------------------------------------------------------------
    def find_passes(self, propagator: SGP4, observer: GeodeticPoint,
                    epoch: Epoch, duration_s: float,
                    coarse_step_s: float = 30.0,
                    min_elevation_deg: float = 0.0,
                    refine_tol_s: float = 0.5,
                    refine: str = "bisect") -> List[ContactWindow]:
        """Cached equivalent of ``PassPredictor.find_passes``."""
        key = self.pass_key(propagator.tle, observer, epoch, duration_s,
                            coarse_step_s, min_elevation_deg,
                            refine_tol_s, refine)
        cached = self._lookup_passes(key)
        if cached is not None:
            return list(cached)
        self.stats.pass_misses += 1
        predictor = PassPredictor(propagator, observer,
                                  min_elevation_deg,
                                  grid_provider=self.grid_provider(
                                      propagator))
        windows = tuple(predictor.find_passes(
            epoch, duration_s, coarse_step_s=coarse_step_s,
            refine_tol_s=refine_tol_s, refine=refine))
        self._store_passes(key, windows)
        return list(windows)

    def find_passes_multi(self, propagator: SGP4,
                          observers: Sequence[GeodeticPoint],
                          epoch: Epoch, duration_s: float,
                          coarse_step_s: float = 30.0,
                          min_elevation_deg: float = 0.0,
                          refine_tol_s: float = 0.5,
                          refine: str = "bisect",
                          geometry: Optional[Sequence[tuple]] = None,
                          ) -> List[List[ContactWindow]]:
        """Cached multi-observer pass prediction (one list per observer).

        Per-observer window lists hit the same cache entries as serial
        :meth:`find_passes` calls — the batch path's bit-identity
        contract is what makes the shared keys sound.  Only the
        observers that miss are computed, in one
        :func:`~satiot.orbits.passes.find_passes_multi` sweep over the
        shared (cached) propagation grid.
        """
        observers = list(observers)
        results: List[Optional[List[ContactWindow]]] = \
            [None] * len(observers)
        missing: List[int] = []
        keys: List[tuple] = []
        for idx, observer in enumerate(observers):
            key = self.pass_key(propagator.tle, observer, epoch,
                                duration_s, coarse_step_s,
                                min_elevation_deg, refine_tol_s, refine)
            keys.append(key)
            cached = self._lookup_passes(key)
            if cached is not None:
                results[idx] = list(cached)
            else:
                missing.append(idx)
        if missing:
            self.stats.pass_misses += len(missing)
            sub_geometry = None
            if geometry is not None:
                sub_geometry = [geometry[i] for i in missing]
            computed = _orbits_find_passes_multi(
                propagator, [observers[i] for i in missing], epoch,
                duration_s, coarse_step_s=coarse_step_s,
                min_elevation_deg=min_elevation_deg,
                refine_tol_s=refine_tol_s, refine=refine,
                grid_provider=self.grid_provider(propagator),
                geometry=sub_geometry)
            for idx, windows in zip(missing, computed):
                self._store_passes(keys[idx], tuple(windows))
                results[idx] = windows
        return results  # type: ignore[return-value]

    def find_passes_fleet(self, propagators: Sequence[SGP4],
                          observers: Sequence[GeodeticPoint],
                          epoch: Epoch, duration_s: float,
                          coarse_step_s: float = 30.0,
                          min_elevation_deg: float = 0.0,
                          refine_tol_s: float = 0.5,
                          refine: str = "bisect",
                          geometry: Optional[Sequence[tuple]] = None,
                          ) -> List[List[List[ContactWindow]]]:
        """Cached fleet pass prediction: ``results[sat][observer]``.

        Every (satellite, observer) window list hits the **same** cache
        entries as serial :meth:`find_passes` /
        :meth:`find_passes_multi` calls — key compatibility rests on
        the batched kernel's bit-identity.  Missing pairs are computed
        through the fleet path: one cached
        :meth:`constellation_grid` fill, then one shared TEME→ECEF
        conversion (GMST evaluated once) restricted to the satellites
        that actually miss.
        """
        propagators = list(propagators)
        observers = list(observers)
        n_obs = len(observers)
        results: List[List[Optional[List[ContactWindow]]]] = \
            [[None] * n_obs for _ in propagators]
        keys: List[List[tuple]] = []
        missing_by_sat: List[List[int]] = []
        for i, propagator in enumerate(propagators):
            sat_keys: List[tuple] = []
            missing: List[int] = []
            for m, observer in enumerate(observers):
                key = self.pass_key(propagator.tle, observer, epoch,
                                    duration_s, coarse_step_s,
                                    min_elevation_deg, refine_tol_s,
                                    refine)
                sat_keys.append(key)
                cached = self._lookup_passes(key)
                if cached is not None:
                    results[i][m] = list(cached)
                else:
                    missing.append(m)
            keys.append(sat_keys)
            missing_by_sat.append(missing)

        miss_sats = [i for i, missing in enumerate(missing_by_sat)
                     if missing]
        if miss_sats:
            self.stats.pass_misses += sum(
                len(missing_by_sat[i]) for i in miss_sats)
            offsets = PassPredictor.coarse_offsets(duration_s,
                                                   coarse_step_s)
            r, _ = self.constellation_grid(propagators, epoch, offsets)
            jd = epoch.offset_jd(offsets)
            # One GMST + rotation for all satellites that miss.
            r_ecef = teme_to_ecef(r[miss_sats], jd)
            if geometry is None:
                geometry = observer_geometry(observers)
            for row, i in enumerate(miss_sats):
                missing = missing_by_sat[i]
                computed = _windows_from_ecef(
                    propagators[i], [observers[m] for m in missing],
                    [geometry[m] for m in missing], epoch, offsets,
                    r_ecef[row], min_elevation_deg, refine_tol_s,
                    refine)
                for m, windows in zip(missing, computed):
                    self._store_passes(keys[i][m], tuple(windows))
                    results[i][m] = windows
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _lookup_passes(self, key: tuple,
                       ) -> Optional[Tuple[ContactWindow, ...]]:
        """Memory-then-disk lookup of one pass list (stats updated)."""
        cached = self._lru_get(self._pass_lists, key)
        if cached is not None:
            self.stats.pass_hits += 1
            return cached
        disk = self._disk_load_passes(key)
        if disk is not None:
            self.stats.pass_hits += 1
            self.stats.disk_hits += 1
            self._lru_put(self._pass_lists, key, disk,
                          self.max_pass_lists)
            return disk
        return None

    def _store_passes(self, key: tuple,
                      windows: Tuple[ContactWindow, ...]) -> None:
        self._lru_put(self._pass_lists, key, windows,
                      self.max_pass_lists)
        self._disk_store(key, self._passes_to_arrays(windows))

    # ------------------------------------------------------------------
    # Memory LRU tier
    # ------------------------------------------------------------------
    @staticmethod
    def _lru_get(store: OrderedDict, key: tuple):
        try:
            value = store[key]
        except KeyError:
            return None
        store.move_to_end(key)
        return value

    @staticmethod
    def _lru_put(store: OrderedDict, key: tuple, value,
                 capacity: int) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > capacity:
            store.popitem(last=False)

    def clear_memory(self) -> None:
        """Drop the in-memory tier (the disk tier is untouched)."""
        self._grids.clear()
        self._pass_lists.clear()
        self._extents.clear()

    def grid_resident_bytes(self) -> int:
        """Approximate resident bytes of the in-memory grid tier.

        Sums ``nbytes`` over the distinct *base* buffers of every
        cached array, so the N row views published by
        :meth:`constellation_grid` and their shared ``(N, T, 3)`` stack
        count once.  Buffers backed by mmap'd segments are tallied
        separately (:attr:`CacheStats.grid_mmap_bytes`): those pages
        are resident **once machine-wide**, no matter how many worker
        processes map them, while :attr:`CacheStats.grid_private_bytes`
        is paid per process.  Refreshes :attr:`CacheStats.grid_bytes`.
        """
        seen = set()
        private = 0
        shared = 0
        for r, v in self._grids.values():
            for arr in (r, v):
                base = arr
                while isinstance(base.base, np.ndarray):
                    base = base.base
                if id(base) in seen:
                    continue
                seen.add(id(base))
                if isinstance(base, np.memmap):
                    shared += base.nbytes
                else:
                    private += base.nbytes
        self.stats.grid_private_bytes = private
        self.stats.grid_mmap_bytes = shared
        self.stats.grid_bytes = private + shared
        return private + shared

    # ------------------------------------------------------------------
    # Disk tier (checksummed, quarantining, fault-aware)
    # ------------------------------------------------------------------
    #: Reserved entry name carrying the SHA-256 digest of every array.
    CHECKSUM_KEY = "__satiot_checksum__"

    def _disk_path(self, key: tuple) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        name = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:32]
        return self.disk_dir / f"{key[0]}-{name}.npz"

    @staticmethod
    def _arrays_checksum(arrays: dict) -> str:
        """SHA-256 over every array's name, dtype, shape and bytes.

        Hashes through a flat memoryview rather than ``tobytes()`` so
        verifying a large mmap'd segment never materializes a private
        copy of it (the pages stream through the OS page cache).
        """
        digest = hashlib.sha256()
        for name in sorted(arrays):
            arr = np.ascontiguousarray(arrays[name])
            digest.update(name.encode("utf-8"))
            digest.update(str(arr.dtype).encode("ascii"))
            digest.update(str(arr.shape).encode("ascii"))
            digest.update(memoryview(arr).cast("B"))
        return digest.hexdigest()

    def _disk_degraded(self, error: BaseException) -> None:
        """Count (and warn once about) a swallowed disk-tier error."""
        self.stats.disk_errors += 1
        if not self._warned_disk:
            self._warned_disk = True
            warnings.warn(
                f"ephemeris disk cache at {self.disk_dir} is "
                f"unavailable ({type(error).__name__}: {error}); "
                f"degrading to compute-through", RuntimeWarning,
                stacklevel=4)

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt entry aside (``*.bad``) and count it."""
        try:
            path.replace(path.with_name(path.name + ".bad"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass  # can't even remove it: the miss still recomputes
        self.stats.disk_corrupt += 1
        warnings.warn(
            f"quarantined corrupt ephemeris cache entry {path.name} "
            f"({reason}); recomputing", RuntimeWarning, stacklevel=4)

    @staticmethod
    def _corrupt_file(path: Path) -> None:
        """``cache.disk_read`` fault action: garble the entry on disk.

        The injected fault damages *real* state so the detection path
        (checksum verify → quarantine → miss) is exercised end to end.
        """
        try:
            if not path.exists():
                return
            size = path.stat().st_size
            with path.open("r+b") as fh:
                fh.truncate(max(0, size // 2))
                fh.seek(0)
                fh.write(b"\x00satiot-chaos\x00")
        except OSError:
            pass

    def _disk_store(self, key: tuple, arrays: dict) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        payload = dict(arrays)
        payload[self.CHECKSUM_KEY] = np.array(
            self._arrays_checksum(arrays))
        try:
            if fault_fires("cache.disk_write"):
                raise OSError("injected fault at site 'cache.disk_write'")
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp{os.getpid()}")
            with tmp.open("wb") as fh:
                np.savez(fh, **payload)
            tmp.replace(path)
            self.stats.disk_writes += 1
        except OSError as error:
            self._disk_degraded(error)  # degradation, never an error

    def _disk_load(self, key: tuple) -> Optional[dict]:
        path = self._disk_path(key)
        if path is None:
            return None
        if fault_fires("cache.disk_read"):
            self._corrupt_file(path)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                # NpzFile already decompresses each member into a fresh
                # array; wrapping it in np.array() again would double
                # the copy for every disk hit.
                arrays = {name: data[name] for name in data.files}
        except Exception:
            # Truncated zip, zero-byte file, garbage bytes, OS error:
            # anything unreadable is quarantined and recomputed.
            self._quarantine(path, "unreadable entry")
            return None
        stored = arrays.pop(self.CHECKSUM_KEY, None)
        if stored is None:
            self._quarantine(path, "missing checksum")
            return None
        if str(stored[()]) != self._arrays_checksum(arrays):
            self._quarantine(path, "checksum mismatch")
            return None
        return arrays

    def _disk_load_grid(self, key: tuple,
                        ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        data = self._disk_load(key)
        if data is None or "r" not in data or "v" not in data:
            return None
        return data["r"], data["v"]

    # ------------------------------------------------------------------
    # Segment tier (mmap-able whole-fleet grids)
    # ------------------------------------------------------------------
    #: On-disk layout of one constellation-grid segment: two raw
    #: ``.npy`` stacks plus a checksum sidecar.  Raw ``.npy`` (not
    #: ``.npz``) is what makes ``np.load(mmap_mode="r")`` possible —
    #: a zip archive has to be decompressed into private memory, a
    #: flat array file can be mapped and its pages shared.
    SEGMENT_SUFFIXES = (".r.npy", ".v.npy", ".sha256")

    def _segment_paths(self, key: tuple) -> Optional[Tuple[Path, ...]]:
        if self.disk_dir is None:
            return None
        name = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:32]
        base = f"{key[0]}-{name}"
        return tuple(self.disk_dir / (base + suffix)
                     for suffix in self.SEGMENT_SUFFIXES)

    def _segment_store(self, key: tuple, r: np.ndarray,
                       v: np.ndarray) -> None:
        """Write one segment, exactly once (existing files are kept).

        Layout is deterministic — ``np.save`` of a C-contiguous float64
        stack — so concurrent workers racing the first fill write
        byte-identical files through per-pid temp names + atomic
        rename.
        """
        paths = self._segment_paths(key)
        if paths is None or all(p.exists() for p in paths):
            return
        r = np.ascontiguousarray(r, dtype=float)
        v = np.ascontiguousarray(v, dtype=float)
        checksum = self._arrays_checksum({"r": r, "v": v})
        try:
            if fault_fires("cache.disk_write"):
                raise OSError("injected fault at site 'cache.disk_write'")
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            for path, payload in zip(paths, (r, v, checksum)):
                tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
                if isinstance(payload, np.ndarray):
                    with tmp.open("wb") as fh:
                        np.save(fh, payload)
                else:
                    tmp.write_text(payload + "\n", encoding="ascii")
                tmp.replace(path)
            self.stats.disk_writes += 1
        except OSError as error:
            self._disk_degraded(error)

    def _segment_load(self, key: tuple,
                      ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Load one segment; mmap-backed read-only views by default.

        With ``readonly=True`` the returned ``(N, T, 3)`` stacks are
        ``np.memmap`` views (no copy; checksum verification streams
        the pages through the OS cache, which is exactly the residency
        the serving fleet shares).  With ``readonly=False`` they are
        materialized into private writable arrays.  Corruption is
        handled like the ``.npz`` tier: quarantine every segment file
        as ``*.bad`` and treat the lookup as a miss.
        """
        paths = self._segment_paths(key)
        if paths is None:
            return None
        r_path, v_path, sum_path = paths
        if fault_fires("cache.disk_read"):
            self._corrupt_file(r_path)
        if not all(p.exists() for p in paths):
            return None
        try:
            mode = "r" if self.readonly else None
            r = np.load(r_path, mmap_mode=mode)
            v = np.load(v_path, mmap_mode=mode)
            expected = sum_path.read_text(encoding="ascii").strip()
        except Exception:
            self._quarantine_segment(paths, "unreadable segment")
            return None
        if r.ndim != 3 or r.shape != v.shape or \
                self._arrays_checksum({"r": r, "v": v}) != expected:
            self._quarantine_segment(paths, "checksum mismatch")
            return None
        return r, v

    def _quarantine_segment(self, paths: Sequence[Path],
                            reason: str) -> None:
        """Move every file of a corrupt segment aside (one count)."""
        for path in paths:
            if not path.exists():
                continue
            try:
                path.replace(path.with_name(path.name + ".bad"))
            except OSError:
                try:
                    path.unlink()
                except OSError:
                    pass
        self.stats.disk_corrupt += 1
        warnings.warn(
            f"quarantined corrupt ephemeris segment "
            f"{paths[0].name} ({reason}); recomputing",
            RuntimeWarning, stacklevel=4)

    def _disk_load_passes(self, key: tuple,
                          ) -> Optional[Tuple[ContactWindow, ...]]:
        data = self._disk_load(key)
        if data is None or any(f not in data for f in _PASS_FIELDS):
            return None
        return self._passes_from_arrays(data)

    @staticmethod
    def _passes_to_arrays(windows: Sequence[ContactWindow]) -> dict:
        return {
            "rise_s": np.array([w.rise_s for w in windows], float),
            "set_s": np.array([w.set_s for w in windows], float),
            "culmination_s": np.array(
                [w.culmination_s for w in windows], float),
            "max_elevation_deg": np.array(
                [w.max_elevation_deg for w in windows], float),
            "norad_id": np.array([w.norad_id for w in windows],
                                 np.int64),
            "clipped_start": np.array(
                [w.clipped_start for w in windows], bool),
            "clipped_end": np.array(
                [w.clipped_end for w in windows], bool),
        }

    @staticmethod
    def _passes_from_arrays(data: dict) -> Tuple[ContactWindow, ...]:
        n = int(data["rise_s"].size)
        return tuple(
            ContactWindow(
                rise_s=float(data["rise_s"][i]),
                set_s=float(data["set_s"][i]),
                culmination_s=float(data["culmination_s"][i]),
                max_elevation_deg=float(data["max_elevation_deg"][i]),
                norad_id=int(data["norad_id"][i]),
                clipped_start=bool(data["clipped_start"][i]),
                clipped_end=bool(data["clipped_end"][i]))
            for i in range(n))


# ----------------------------------------------------------------------
# Process-default cache
# ----------------------------------------------------------------------
_default_cache: Optional[EphemerisCache] = None


def get_default_cache() -> Optional[EphemerisCache]:
    """The lazily-built process-wide cache (or ``None`` if disabled).

    Honours ``SATIOT_EPHEMERIS_CACHE=0`` (disable) and
    ``SATIOT_EPHEMERIS_CACHE_DIR`` (enable the shared disk tier).
    Worker processes build their own instance from the same environment,
    so a configured disk tier is shared across the whole shard pool.
    """
    global _default_cache
    if os.environ.get(CACHE_ENV, "1").strip().lower() in (
            "0", "false", "off", "no"):
        return None
    if _default_cache is None:
        disk_dir = os.environ.get(CACHE_DIR_ENV, "").strip() or None
        _default_cache = EphemerisCache(disk_dir=disk_dir)
    return _default_cache


def reset_default_cache() -> None:
    """Forget the process-default cache (mainly for tests)."""
    global _default_cache
    _default_cache = None
