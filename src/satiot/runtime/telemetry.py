"""Per-shard execution telemetry.

Every executed shard reports wall time, work counters (passes, beacons
simulated, traces collected) and ephemeris-cache hit/miss deltas.  The
campaign aggregates them into a :class:`CampaignTelemetry` that is
surfaced on :class:`~satiot.core.campaign.PassiveCampaignResult` and
rendered by ``python -m satiot report --timing``.

This module is intentionally dependency-free (no imports from
``satiot.core``) so the runtime package never participates in an import
cycle with the campaign layer.
"""

from __future__ import annotations

import unicodedata
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

__all__ = ["ShardTelemetry", "CampaignTelemetry", "render_fixed_table"]


def _display_width(text: str) -> int:
    """Terminal column count of ``text`` (wide CJK glyphs take two)."""
    return sum(2 if unicodedata.east_asian_width(ch) in "WF" else 1
               for ch in text)


def _pad(text: str, width: int) -> str:
    return text + " " * max(0, width - _display_width(text))


def render_fixed_table(header: Sequence[str],
                       rows: Sequence[Sequence[str]],
                       title: Optional[str] = None) -> str:
    """Render a fixed-width monospace table (shared telemetry format).

    Used by the campaign timing report and by ``satiot.serving``'s
    ``/metrics`` plain-text view so operator-facing tables look the
    same everywhere.  ``None`` cells render as ``-``; column widths
    count terminal columns, so east-asian wide glyphs stay aligned.
    """
    cells = [["-" if c is None else str(c) for c in row]
             for row in rows]
    widths = [max([_display_width(h)]
                  + [_display_width(r[i]) for r in cells])
              for i, h in enumerate(header)]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(_pad(h, widths[i])
                           for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(_pad(c, widths[i])
                               for i, c in enumerate(r)))
    return "\n".join(lines)


@dataclass
class ShardTelemetry:
    """Measurements of one executed shard."""

    label: str
    wall_s: float
    passes: int = 0
    beacons: int = 0
    traces: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Resident bytes of the ephemeris grid tier at shard completion
    #: (views into shared constellation stacks counted once).
    grid_bytes: int = 0
    worker: str = "serial"

    @property
    def events_per_s(self) -> float:
        """Simulated beacon events per wall-clock second."""
        if self.wall_s <= 0.0:
            return 0.0
        return self.beacons / self.wall_s

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0


@dataclass
class CampaignTelemetry:
    """Aggregate runtime telemetry of one campaign execution."""

    workers: int = 1
    mode: str = "serial"
    wall_s: float = 0.0
    shards: List[ShardTelemetry] = field(default_factory=list)
    #: Failed shard-task executions that were retried (fault plane,
    #: transient worker errors); see :class:`satiot.runtime.ShardExecutor`.
    retries: int = 0
    #: Shards recomputed in-parent after the pool failed them.
    fallbacks: int = 0
    #: Trace shards spilled to disk by the streaming engine (0 when the
    #: campaign ran fully in RAM); see :mod:`satiot.streams`.
    spilled_shards: int = 0
    #: Total bytes of spilled shard archives.
    spilled_bytes: int = 0

    # ------------------------------------------------------------------
    @property
    def shard_wall_s(self) -> float:
        """Summed per-shard compute time (> ``wall_s`` when parallel)."""
        return sum(s.wall_s for s in self.shards)

    @property
    def total_beacons(self) -> int:
        return sum(s.beacons for s in self.shards)

    @property
    def total_traces(self) -> int:
        return sum(s.traces for s in self.shards)

    @property
    def total_passes(self) -> int:
        return sum(s.passes for s in self.shards)

    @property
    def cache_hits(self) -> int:
        return sum(s.cache_hits for s in self.shards)

    @property
    def cache_misses(self) -> int:
        return sum(s.cache_misses for s in self.shards)

    @property
    def grid_bytes(self) -> int:
        """Peak per-shard resident grid bytes (caches are per worker,
        so the per-shard figures overlap rather than add)."""
        return max((s.grid_bytes for s in self.shards), default=0)

    @property
    def events_per_s(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.total_beacons / self.wall_s

    @property
    def parallel_efficiency(self) -> float:
        """Shard compute time over (wall time × workers); 1.0 is ideal."""
        denom = self.wall_s * max(1, self.workers)
        if denom <= 0.0:
            return 0.0
        return min(1.0, self.shard_wall_s / denom)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable timing table (monospace)."""
        header = ["shard", "wall (s)", "passes", "beacons", "ev/s",
                  "cache h/m", "grid MiB", "worker"]
        rows: List[Sequence[str]] = []
        for s in self.shards:
            rows.append([
                s.label, f"{s.wall_s:.3f}", str(s.passes),
                str(s.beacons), f"{s.events_per_s:,.0f}",
                f"{s.cache_hits}/{s.cache_misses}",
                f"{s.grid_bytes / 2**20:.2f}", s.worker])
        rows.append([
            "TOTAL", f"{self.wall_s:.3f}", str(self.total_passes),
            str(self.total_beacons), f"{self.events_per_s:,.0f}",
            f"{self.cache_hits}/{self.cache_misses}",
            f"{self.grid_bytes / 2**20:.2f}",
            f"{self.mode} x{self.workers}"])
        title = (
            f"Runtime telemetry ({self.mode}, {self.workers} worker(s), "
            f"{self.wall_s:.3f} s wall, "
            f"{100.0 * self.parallel_efficiency:.0f}% efficiency)")
        if self.retries or self.fallbacks:
            title += (f" [{self.retries} task retr"
                      f"{'y' if self.retries == 1 else 'ies'}, "
                      f"{self.fallbacks} serial fallback(s)]")
        if self.spilled_shards:
            title += (f" [spilled {self.spilled_shards} shard(s), "
                      f"{self.spilled_bytes / 2**20:.2f} MiB]")
        return render_fixed_table(header, rows, title=title)
