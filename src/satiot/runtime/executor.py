"""Shard-based work scheduler for campaign execution.

A campaign is split into :class:`Shard` units (one per site, per
constellation, or per sampled week), each of which can be computed
independently and deterministically from the campaign configuration.
:class:`ShardExecutor` runs the shards either serially in-process (the
zero-dependency fallback) or on a ``concurrent.futures``
``ProcessPoolExecutor``, and always returns results **in shard order**
so the merge into the campaign result is deterministic regardless of
worker scheduling.

Worker exceptions are re-raised in the parent wrapped in
:class:`ShardError` carrying the failing shard's label, with the
original exception chained as ``__cause__``.

The worker count resolves, in priority order, from the explicit
``workers`` argument, the ``SATIOT_WORKERS`` environment variable, and
finally a serial default of 1.  ``workers=0`` (or a negative value)
means "auto": one worker per available CPU.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["Shard", "ShardError", "ShardExecutor", "ShardOutcome",
           "resolve_workers", "WORKERS_ENV"]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "SATIOT_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    ``None`` defers to ``SATIOT_WORKERS`` (defaulting to 1, i.e. serial);
    ``0`` or a negative count means one worker per available CPU.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}")
        else:
            workers = 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


@dataclass(frozen=True)
class Shard:
    """One independent unit of campaign work.

    ``kind`` names the sharding axis (``"site"``, ``"constellation"``,
    ``"week"`` …), ``key`` identifies the unit on that axis and
    ``payload`` carries whatever picklable inputs the worker function
    needs to recompute the unit from scratch.
    """

    index: int
    kind: str
    key: str
    payload: Any = None

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.key}"


class ShardError(RuntimeError):
    """A shard's worker raised; carries the shard context."""

    def __init__(self, shard: Shard, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard.label} (index {shard.index}) failed: "
            f"{type(cause).__name__}: {cause}")
        self.shard = shard


@dataclass
class ShardOutcome:
    """Result envelope of one executed shard."""

    shard: Shard
    result: Any
    wall_s: float
    worker: str = "serial"


def _timed_call(fn: Callable[[Shard], Any], shard: Shard):
    """Run ``fn(shard)`` and time it (executes inside the worker)."""
    t0 = time.perf_counter()
    result = fn(shard)
    return result, time.perf_counter() - t0, f"pid:{os.getpid()}"


class ShardExecutor:
    """Runs shard worker functions serially or on a process pool.

    Parameters
    ----------
    workers:
        Worker count; see :func:`resolve_workers`.  With one worker (the
        default) everything runs in-process with zero dependencies on
        ``multiprocessing`` — important for restricted environments.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self.workers = resolve_workers(workers)
        #: Set by :meth:`map` — "serial" or "process".
        self.mode = "serial"
        #: Pool bring-up failure that forced a serial fallback, if any.
        self._pool_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Shard], Any],
            shards: Sequence[Shard]) -> List[ShardOutcome]:
        """Execute ``fn`` over every shard, results in shard order.

        ``fn`` must be a module-level (picklable) callable when more
        than one worker is configured.
        """
        shards = list(shards)
        if self.workers <= 1 or len(shards) <= 1:
            self.mode = "serial"
            return self._map_serial(fn, shards)
        from concurrent.futures.process import BrokenProcessPool
        try:
            outcomes = self._map_parallel(fn, shards)
        except ShardError:
            raise
        except (ImportError, OSError, PermissionError,
                BrokenProcessPool) as exc:
            # Pool could not be brought up (no /dev/shm, forbidden fork,
            # …): degrade gracefully to the serial path.
            self._pool_error = exc
            self.mode = "serial"
            return self._map_serial(fn, shards)
        self.mode = "process"
        return outcomes

    # ------------------------------------------------------------------
    def _map_serial(self, fn: Callable[[Shard], Any],
                    shards: Sequence[Shard]) -> List[ShardOutcome]:
        outcomes: List[ShardOutcome] = []
        for shard in shards:
            try:
                result, wall_s, worker = _timed_call(fn, shard)
            except Exception as exc:
                raise ShardError(shard, exc) from exc
            outcomes.append(ShardOutcome(shard=shard, result=result,
                                         wall_s=wall_s, worker=worker))
        return outcomes

    def _map_parallel(self, fn: Callable[[Shard], Any],
                      shards: Sequence[Shard]) -> List[ShardOutcome]:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        max_workers = min(self.workers, len(shards))
        outcomes: List[Optional[ShardOutcome]] = [None] * len(shards)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_timed_call, fn, shard)
                       for shard in shards]
            for i, (shard, future) in enumerate(zip(shards, futures)):
                try:
                    result, wall_s, worker = future.result()
                except BrokenProcessPool:
                    # The pool itself died (OOM kill, missing /dev/shm);
                    # let map() degrade to the serial path.
                    raise
                except Exception as exc:
                    raise ShardError(shard, exc) from exc
                outcomes[i] = ShardOutcome(shard=shard, result=result,
                                           wall_s=wall_s, worker=worker)
        return [o for o in outcomes if o is not None]
