"""Shard-based work scheduler for campaign execution.

A campaign is split into :class:`Shard` units (one per site, per
constellation, or per sampled week), each of which can be computed
independently and deterministically from the campaign configuration.
:class:`ShardExecutor` runs the shards either serially in-process (the
zero-dependency fallback) or on a ``concurrent.futures``
``ProcessPoolExecutor``, and always returns results **in shard order**
so the merge into the campaign result is deterministic regardless of
worker scheduling.

Failure handling is layered — shards are pure functions of their
payload, so re-running one is always safe:

1. a failed task is **retried** with capped exponential backoff
   (``max_retries`` attempts, base/cap from ``SATIOT_SHARD_BACKOFF_S``
   or the constructor);
2. a task that keeps failing in the pool — or whose worker died
   (``BrokenProcessPool``: OOM kill, ``SIGKILL``, missing
   ``/dev/shm``) — falls back to **per-shard serial execution in the
   parent**, where it gets its own retry budget;
3. only a shard that fails even in-parent raises :class:`ShardError`,
   carrying the failing shard's label with the original exception
   chained as ``__cause__``.

The ``retries`` / ``fallbacks`` counters surface in the campaign's
``--timing`` telemetry.  The :mod:`satiot.faults` plane exercises both
paths via the ``executor.task`` (raise) and ``executor.worker_kill``
(``SIGKILL`` the pool child) injection sites.

The worker count resolves, in priority order, from the explicit
``workers`` argument, the ``SATIOT_WORKERS`` environment variable, and
finally a serial default of 1.  ``workers=0`` (or a negative value)
means "auto": one worker per available CPU.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..faults import FaultInjected, fault_fires

__all__ = ["Shard", "ShardError", "ShardExecutor", "ShardOutcome",
           "resolve_workers", "WORKERS_ENV", "BACKOFF_ENV"]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "SATIOT_WORKERS"
#: Environment override for the retry backoff base (seconds).
BACKOFF_ENV = "SATIOT_SHARD_BACKOFF_S"

#: Default retry budget per shard per execution venue (pool / parent).
DEFAULT_MAX_RETRIES = 2
#: Default capped-exponential backoff base and cap (seconds).
DEFAULT_BACKOFF_S = 0.05
DEFAULT_BACKOFF_CAP_S = 1.0


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    ``None`` defers to ``SATIOT_WORKERS`` (defaulting to 1, i.e. serial);
    ``0`` or a negative count means one worker per available CPU.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer, got {raw!r}")
        else:
            workers = 1
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, int(workers))


@dataclass(frozen=True)
class Shard:
    """One independent unit of campaign work.

    ``kind`` names the sharding axis (``"site"``, ``"constellation"``,
    ``"week"`` …), ``key`` identifies the unit on that axis and
    ``payload`` carries whatever picklable inputs the worker function
    needs to recompute the unit from scratch.
    """

    index: int
    kind: str
    key: str
    payload: Any = None

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.key}"


class ShardError(RuntimeError):
    """A shard's worker raised; carries the shard context."""

    def __init__(self, shard: Shard, cause: BaseException) -> None:
        super().__init__(
            f"shard {shard.label} (index {shard.index}) failed: "
            f"{type(cause).__name__}: {cause}")
        self.shard = shard


@dataclass
class ShardOutcome:
    """Result envelope of one executed shard."""

    shard: Shard
    result: Any
    wall_s: float
    worker: str = "serial"


def _consult_faults() -> None:
    """Fault-plane consults at the worker-task seam.

    ``executor.worker_kill`` only acts inside a pool child (killing the
    parent would take the whole campaign down, which is not a failure
    mode the executor can be expected to absorb); in the parent the
    consult still advances the schedule but is a no-op.
    """
    if fault_fires("executor.worker_kill"):
        import multiprocessing
        if multiprocessing.parent_process() is not None:
            import signal
            os.kill(os.getpid(), signal.SIGKILL)
    if fault_fires("executor.task"):
        raise FaultInjected("executor.task")


def _timed_call(fn: Callable[[Shard], Any], shard: Shard):
    """Run ``fn(shard)`` and time it (executes inside the worker)."""
    t0 = time.perf_counter()
    _consult_faults()
    result = fn(shard)
    return result, time.perf_counter() - t0, f"pid:{os.getpid()}"


class ShardExecutor:
    """Runs shard worker functions serially or on a process pool.

    Parameters
    ----------
    workers:
        Worker count; see :func:`resolve_workers`.  With one worker (the
        default) everything runs in-process with zero dependencies on
        ``multiprocessing`` — important for restricted environments.
    max_retries:
        Retry budget per shard per venue (pool submissions, then again
        for the in-parent fallback).
    backoff_s / backoff_cap_s:
        Capped exponential backoff between retries
        (``min(cap, base * 2**attempt)``).  ``SATIOT_SHARD_BACKOFF_S``
        overrides the base when no explicit value is given (chaos tests
        set it to ``0``).
    """

    def __init__(self, workers: Optional[int] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 backoff_s: Optional[float] = None,
                 backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S) -> None:
        self.workers = resolve_workers(workers)
        if backoff_s is None:
            raw = os.environ.get(BACKOFF_ENV, "").strip()
            backoff_s = float(raw) if raw else DEFAULT_BACKOFF_S
        self.max_retries = max(0, int(max_retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.backoff_cap_s = max(0.0, float(backoff_cap_s))
        #: Set by :meth:`map` — "serial" or "process".
        self.mode = "serial"
        #: Failed task executions that were retried.
        self.retries = 0
        #: Shards recomputed in-parent after the pool failed them.
        self.fallbacks = 0
        #: Pool bring-up failure that forced a serial fallback, if any.
        self._pool_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Shard], Any],
            shards: Sequence[Shard]) -> List[ShardOutcome]:
        """Execute ``fn`` over every shard, results in shard order.

        ``fn`` must be a module-level (picklable) callable when more
        than one worker is configured.
        """
        shards = list(shards)
        if self.workers <= 1 or len(shards) <= 1:
            self.mode = "serial"
            return self._map_serial(fn, shards)
        from concurrent.futures.process import BrokenProcessPool
        try:
            outcomes = self._map_parallel(fn, shards)
        except ShardError:
            raise
        except (ImportError, OSError, PermissionError,
                BrokenProcessPool) as exc:
            # Pool could not be brought up (no /dev/shm, forbidden fork,
            # …): degrade gracefully to the serial path.
            self._pool_error = exc
            self.mode = "serial"
            return self._map_serial(fn, shards)
        self.mode = "process"
        return outcomes

    def imap(self, fn: Callable[[Shard], Any],
             shards: Sequence[Shard]):
        """Like :meth:`map`, but yields outcomes as an ordered stream.

        Shard order is preserved; the difference from :meth:`map` is
        that the caller consumes each outcome (and can drop it) before
        the next one is awaited — the spill plane folds every week's
        traces to disk without ever holding more than the in-flight
        results.  Retry / fallback / pool-degradation semantics are
        identical to :meth:`map`.
        """
        shards = list(shards)
        if self.workers <= 1 or len(shards) <= 1:
            self.mode = "serial"
            for shard in shards:
                yield self._run_with_retries(fn, shard)
            return
        from concurrent.futures.process import BrokenProcessPool
        try:
            from concurrent.futures import ProcessPoolExecutor
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(shards)))
            futures = [pool.submit(_timed_call, fn, shard)
                       for shard in shards]
        except (ImportError, OSError, PermissionError,
                BrokenProcessPool) as exc:
            self._pool_error = exc
            self.mode = "serial"
            for shard in shards:
                yield self._run_with_retries(fn, shard)
            return
        self.mode = "process"
        try:
            for shard, future in zip(shards, futures):
                yield self._collect(pool, fn, shard, future)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        delay = min(self.backoff_cap_s,
                    self.backoff_s * (2.0 ** attempt))
        if delay > 0.0:
            time.sleep(delay)

    def _run_with_retries(self, fn: Callable[[Shard], Any],
                          shard: Shard) -> ShardOutcome:
        """In-process execution with the retry/backoff loop."""
        attempt = 0
        while True:
            try:
                result, wall_s, worker = _timed_call(fn, shard)
            except Exception as exc:
                if attempt >= self.max_retries:
                    raise ShardError(shard, exc) from exc
                self.retries += 1
                self._backoff(attempt)
                attempt += 1
                continue
            return ShardOutcome(shard=shard, result=result,
                                wall_s=wall_s, worker=worker)

    def _map_serial(self, fn: Callable[[Shard], Any],
                    shards: Sequence[Shard]) -> List[ShardOutcome]:
        return [self._run_with_retries(fn, shard) for shard in shards]

    # ------------------------------------------------------------------
    def _fallback_serial(self, fn: Callable[[Shard], Any],
                         shard: Shard) -> ShardOutcome:
        """Per-shard in-parent fallback after the pool failed it."""
        self.fallbacks += 1
        return self._run_with_retries(fn, shard)

    def _collect(self, pool, fn: Callable[[Shard], Any], shard: Shard,
                 future) -> ShardOutcome:
        """Await one shard's pool future, retrying and falling back."""
        from concurrent.futures.process import BrokenProcessPool
        attempt = 0
        while True:
            try:
                result, wall_s, worker = future.result()
            except BrokenProcessPool:
                # The worker (or the whole pool) died mid-shard; the
                # shard is pure, so recompute it in the parent.
                return self._fallback_serial(fn, shard)
            except Exception:
                if attempt >= self.max_retries:
                    return self._fallback_serial(fn, shard)
                self.retries += 1
                self._backoff(attempt)
                attempt += 1
                try:
                    future = pool.submit(_timed_call, fn, shard)
                except (RuntimeError, BrokenProcessPool):
                    # Pool shut down or broke while we were backing off.
                    return self._fallback_serial(fn, shard)
                continue
            return ShardOutcome(shard=shard, result=result,
                                wall_s=wall_s, worker=worker)

    def _map_parallel(self, fn: Callable[[Shard], Any],
                      shards: Sequence[Shard]) -> List[ShardOutcome]:
        from concurrent.futures import ProcessPoolExecutor

        max_workers = min(self.workers, len(shards))
        outcomes: List[Optional[ShardOutcome]] = [None] * len(shards)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(_timed_call, fn, shard)
                       for shard in shards]
            for i, (shard, future) in enumerate(zip(shards, futures)):
                outcomes[i] = self._collect(pool, fn, shard, future)
        return [o for o in outcomes if o is not None]
