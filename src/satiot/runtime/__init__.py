"""Execution substrate: sharded parallel campaign running, ephemeris
caching and per-shard telemetry.

The measurement campaigns decompose naturally into independent units of
work — one per site (passive campaign), one per constellation (fleet
sweeps), one per sampled week (longitudinal studies).  This package
turns those units into :class:`~satiot.runtime.executor.Shard` objects
scheduled on a process pool, with

* a **zero-dependency serial fallback** (``workers=1``, the default),
* a **deterministic merge** back into the campaign result, and
* a hard correctness contract: parallel and serial runs of the same
  configuration produce **bit-identical** trace datasets.

See ``docs/runtime.md`` for the executor model, the determinism
contract, the ephemeris-cache layout and tuning guidance.
"""

from .ephemeris_cache import (CacheStats, EphemerisCache,
                              constellation_fingerprint,
                              get_default_cache, reset_default_cache,
                              tle_fingerprint)
from .executor import (Shard, ShardError, ShardExecutor, ShardOutcome,
                       resolve_workers)
from .telemetry import CampaignTelemetry, ShardTelemetry

__all__ = [
    "CacheStats",
    "CampaignTelemetry",
    "EphemerisCache",
    "Shard",
    "ShardError",
    "ShardExecutor",
    "ShardOutcome",
    "ShardTelemetry",
    "constellation_fingerprint",
    "get_default_cache",
    "reset_default_cache",
    "resolve_workers",
    "tle_fingerprint",
]
