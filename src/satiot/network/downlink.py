"""Capacity-limited satellite-to-ground downlink sessions.

The base :class:`~satiot.network.store_forward.GroundSegment` treats a
ground-station contact as an instantaneous buffer flush.  This module
adds the finite-capacity refinement: a downlink session drains the
on-board buffer at the satellite-to-GS link rate, so heavily loaded
satellites (bursty IoT uplink over a big footprint — the congestion
regime the paper warns about) need several sessions to empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


from .store_forward import BufferedPacket, SatelliteBuffer

__all__ = ["DownlinkConfig", "DownlinkSession", "DownlinkSimulator"]


@dataclass(frozen=True)
class DownlinkConfig:
    """Satellite→GS link parameters."""

    #: Net application-layer throughput of the downlink (bytes/s).
    #: Small IoT satellites commonly run S-band links in the tens of
    #: kbit/s once protocol overhead is removed.
    throughput_bytes_s: float = 4000.0
    #: Per-packet framing overhead on the space-ground link (bytes).
    per_packet_overhead_bytes: int = 12
    #: Session setup time before the first byte flows (s).
    setup_s: float = 30.0

    def __post_init__(self) -> None:
        if self.throughput_bytes_s <= 0:
            raise ValueError("throughput must be positive")
        if self.per_packet_overhead_bytes < 0 or self.setup_s < 0:
            raise ValueError("overhead and setup must be non-negative")

    def packet_airtime_s(self, payload_bytes: int) -> float:
        return ((payload_bytes + self.per_packet_overhead_bytes)
                / self.throughput_bytes_s)


@dataclass
class DownlinkSession:
    """Outcome of one ground-station contact."""

    start_s: float
    end_s: float
    drained: List[BufferedPacket] = field(default_factory=list)
    remaining: int = 0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def drained_count(self) -> int:
        return len(self.drained)


class DownlinkSimulator:
    """Drains satellite buffers through capacity-limited sessions."""

    def __init__(self, config: Optional[DownlinkConfig] = None) -> None:
        self.config = config or DownlinkConfig()

    def run_session(self, buffer: SatelliteBuffer,
                    window: Tuple[float, float]) -> DownlinkSession:
        """Drain as much of the buffer as the window allows.

        Packets leave oldest-first; each occupies link time according
        to its size.  Returns the session record with per-packet
        downlink completion implicitly ``start + setup + cumulative``.
        """
        start, end = float(window[0]), float(window[1])
        if end < start:
            raise ValueError("window ends before it starts")
        session = DownlinkSession(start_s=start, end_s=end)
        available = end - start - self.config.setup_s
        if available <= 0:
            session.remaining = len(buffer)
            return session

        pending = buffer.drain()
        used = 0.0
        for packet in pending:
            airtime = self.config.packet_airtime_s(packet.payload_bytes)
            if used + airtime > available:
                # Put the rest back; they wait for the next contact.
                buffer.store(packet)
                continue
            used += airtime
            session.drained.append(packet)
        # Anything not drained was re-stored above.
        session.remaining = len(buffer)
        return session

    def completion_time_s(self, session: DownlinkSession,
                          packet: BufferedPacket) -> float:
        """Instant a drained packet finished its downlink."""
        used = 0.0
        for drained in session.drained:
            used += self.config.packet_airtime_s(drained.payload_bytes)
            if drained is packet or (
                    drained.node_id == packet.node_id
                    and drained.seq == packet.seq):
                return session.start_s + self.config.setup_s + used
        raise KeyError("packet was not drained in this session")

    def sessions_to_empty(self, packet_count: int,
                          payload_bytes: int,
                          window_duration_s: float) -> int:
        """How many contacts of a given length empty a backlog."""
        if packet_count < 0 or window_duration_s <= 0:
            raise ValueError("invalid backlog or window")
        per_window = int((window_duration_s - self.config.setup_s)
                         / self.config.packet_airtime_s(payload_bytes))
        if per_window <= 0:
            return 0 if packet_count == 0 else -1
        import math
        return math.ceil(packet_count / per_window) if packet_count else 0
