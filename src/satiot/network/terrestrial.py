"""Terrestrial LoRaWAN comparison system (paper Section 3.2).

Three RAKwireless gateways with LTE backhaul serve the same sensors.
With gateways a few hundred metres away the LoRa link is essentially
lossless, so end-to-end behaviour is: transmit immediately on data
generation, traverse the gateway and the LTE backhaul, arrive seconds
later — the 0.2-minute average the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..phy.lora import LoRaModulation
from .packets import SensorReading

__all__ = ["TerrestrialConfig", "TerrestrialRecord", "TerrestrialLoRaWAN"]


@dataclass(frozen=True)
class TerrestrialConfig:
    """Parameters of the terrestrial LoRaWAN path."""

    modulation: LoRaModulation = LoRaModulation(
        spreading_factor=9, bandwidth_hz=125_000.0,
        low_data_rate_optimize=False)
    link_success_probability: float = 0.998
    gateway_processing_s: float = 0.3
    #: LTE backhaul one-way delay: lognormal with this median (s).
    backhaul_median_s: float = 8.0
    backhaul_sigma: float = 0.5
    gateway_count: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.link_success_probability <= 1.0:
            raise ValueError("link success must be in (0, 1]")
        if self.backhaul_median_s <= 0 or self.gateway_processing_s < 0:
            raise ValueError("delays must be non-negative")


@dataclass
class TerrestrialRecord:
    """End-to-end outcome of one reading over the terrestrial system."""

    reading: SensorReading
    delivered_s: Optional[float]

    @property
    def delivered(self) -> bool:
        return self.delivered_s is not None

    @property
    def total_latency_s(self) -> Optional[float]:
        if self.delivered_s is None:
            return None
        return self.delivered_s - self.reading.created_s


class TerrestrialLoRaWAN:
    """Simulates the terrestrial IoT path for a stream of readings."""

    def __init__(self, config: Optional[TerrestrialConfig] = None) -> None:
        self.config = config or TerrestrialConfig()

    def run(self, readings: Dict[str, Sequence[SensorReading]],
            rng: np.random.Generator) -> Dict[str, List[TerrestrialRecord]]:
        """Deliver every reading; returns per-node records."""
        cfg = self.config
        out: Dict[str, List[TerrestrialRecord]] = {}
        for node_id, node_readings in readings.items():
            records: List[TerrestrialRecord] = []
            for reading in node_readings:
                # With several overlapping gateways a packet fails only
                # if all miss it.
                miss_all = (1.0 - cfg.link_success_probability) \
                    ** cfg.gateway_count
                if rng.random() < miss_all:
                    records.append(TerrestrialRecord(reading, None))
                    continue
                airtime = cfg.modulation.airtime_s(reading.payload_bytes)
                backhaul = float(rng.lognormal(
                    np.log(cfg.backhaul_median_s), cfg.backhaul_sigma))
                delivered = (reading.created_s + airtime
                             + cfg.gateway_processing_s + backhaul)
                records.append(TerrestrialRecord(reading, delivered))
            out[node_id] = records
        return out
