"""DtS network substrate: packets, MAC, store-and-forward, terrestrial."""

from .beacon import BeaconTrain, build_beacon_train
from .downlink import DownlinkConfig, DownlinkSession, DownlinkSimulator
from .frames import (AckFrame, BeaconFrame, FrameError, UplinkFrame,
                     crc16_ccitt, decode_frame)
from .mac import BeaconOpportunity, DtSMac, MacConfig, NodeState
from .policies import (AlohaPolicy, BackpressurePolicy,
                       ElevationGatePolicy, SlottedPolicy,
                       TransmitPolicy)
from .packets import AttemptOutcome, PacketRecord, SensorReading
from .server import (ReliabilityReport, finalize_deliveries,
                     latency_decomposition_minutes, reliability_report)
from .store_forward import (TIANQI_GROUND_STATIONS, BufferedPacket,
                            GroundSegment, OperatorGroundStation,
                            SatelliteBuffer)
from .terrestrial import (TerrestrialConfig, TerrestrialLoRaWAN,
                          TerrestrialRecord)

__all__ = [
    "BeaconOpportunity", "DtSMac", "MacConfig", "NodeState",
    "BeaconTrain", "build_beacon_train",
    "DownlinkConfig", "DownlinkSession", "DownlinkSimulator",
    "AckFrame", "BeaconFrame", "FrameError", "UplinkFrame",
    "crc16_ccitt", "decode_frame",
    "AlohaPolicy", "BackpressurePolicy", "ElevationGatePolicy",
    "SlottedPolicy", "TransmitPolicy",
    "AttemptOutcome", "PacketRecord", "SensorReading",
    "ReliabilityReport", "finalize_deliveries",
    "latency_decomposition_minutes", "reliability_report",
    "TIANQI_GROUND_STATIONS", "BufferedPacket", "GroundSegment",
    "OperatorGroundStation", "SatelliteBuffer",
    "TerrestrialConfig", "TerrestrialLoRaWAN", "TerrestrialRecord",
]
