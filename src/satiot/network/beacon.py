"""Beacon-train generation.

One satellite transmits one beacon train per pass; both the passive
receiver and the active campaign sample it.  Centralising the train
construction keeps their timing conventions identical: a random phase
within one period (the node does not know the satellite's schedule),
then strictly periodic beacons until the window closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constellations.catalog import DtSRadioProfile, Satellite
from ..orbits.doppler import doppler_rate_hz_s, doppler_shift_hz
from ..orbits.frames import GeodeticPoint
from ..orbits.passes import ContactWindow, PassPredictor
from ..orbits.timebase import Epoch

__all__ = ["BeaconTrain", "build_beacon_train"]


@dataclass(frozen=True)
class BeaconTrain:
    """The beacons of one pass with their link geometry."""

    satellite_norad: int
    frequency_hz: float
    times_s: np.ndarray
    elevation_deg: np.ndarray
    azimuth_deg: np.ndarray
    range_km: np.ndarray
    range_rate_km_s: np.ndarray
    doppler_shift_hz: np.ndarray
    doppler_rate_hz_s: np.ndarray

    def __len__(self) -> int:
        return len(self.times_s)

    def __post_init__(self) -> None:
        n = len(self.times_s)
        for name in ("elevation_deg", "azimuth_deg", "range_km",
                     "range_rate_km_s", "doppler_shift_hz",
                     "doppler_rate_hz_s"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length mismatch")


def build_beacon_train(satellite: Satellite, window: ContactWindow,
                       observer: GeodeticPoint, epoch: Epoch,
                       rng: np.random.Generator,
                       radio: Optional[DtSRadioProfile] = None,
                       ) -> BeaconTrain:
    """Beacon times and per-beacon geometry for one pass.

    The phase of the train within the window is drawn from ``rng`` (one
    uniform over a beacon period), so a shared generator reproduces the
    same train for every observer of the pass.
    """
    radio = radio or satellite.radio
    period = radio.beacon_period_s
    phase = float(rng.uniform(0.0, period))
    times = np.arange(window.rise_s + phase, window.set_s, period)

    if len(times) == 0:
        empty = np.empty(0)
        return BeaconTrain(satellite.norad_id, radio.frequency_hz,
                           empty, empty, empty, empty, empty, empty,
                           empty)

    predictor = PassPredictor(satellite.propagator, observer)
    look = predictor.look_angles_at(epoch, times)
    range_rate = np.asarray(look.range_rate_km_s)
    shift = np.asarray(doppler_shift_hz(range_rate, radio.frequency_hz))
    rate = (doppler_rate_hz_s(range_rate, period, radio.frequency_hz)
            if len(times) >= 2 else np.zeros_like(times))
    return BeaconTrain(
        satellite_norad=satellite.norad_id,
        frequency_hz=radio.frequency_hz,
        times_s=times,
        elevation_deg=np.asarray(look.elevation_deg),
        azimuth_deg=np.asarray(look.azimuth_deg),
        range_km=np.asarray(look.range_km),
        range_rate_km_s=range_rate,
        doppler_shift_hz=shift,
        doppler_rate_hz_s=np.asarray(rate),
    )
