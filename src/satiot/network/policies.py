"""Transmission policies for the DtS MAC.

The paper's takeaway calls for "collision management and congestion
control strategies for satellite IoTs", citing constellation-aware MAC
designs (CosMAC).  This module implements a family of node-side
transmit policies that plug into :class:`~satiot.network.mac.DtSMac`:

* :class:`AlohaPolicy` — the measured Tianqi behaviour: transmit on any
  usable beacon whenever data is pending.
* :class:`SlottedPolicy` — co-located nodes hash themselves onto
  disjoint beacon slots, eliminating same-beacon collisions at the cost
  of longer waits.
* :class:`ElevationGatePolicy` — spend the PA only on passes whose
  current SNR clears a quality bar (fewer retransmissions, longer
  waits).
* :class:`BackpressurePolicy` — congestion control: the transmit
  probability decays with how many other nodes share the beacon,
  ALOHA-style p-persistence.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Protocol

import numpy as np

from .mac import BeaconOpportunity

__all__ = ["TransmitPolicy", "AlohaPolicy", "SlottedPolicy",
           "ElevationGatePolicy", "BackpressurePolicy"]


class TransmitPolicy(Protocol):
    """Decides whether a node uses a decoded beacon to transmit."""

    def should_transmit(self, node_id: str, opportunity: BeaconOpportunity,
                        beacon_index: int, queue_length: int,
                        rng: np.random.Generator) -> bool:
        """Return True to transmit on this beacon."""
        ...  # pragma: no cover - Protocol definition


@dataclass(frozen=True)
class AlohaPolicy:
    """Transmit whenever data is pending (the paper's measured MAC)."""

    def should_transmit(self, node_id: str, opportunity: BeaconOpportunity,
                        beacon_index: int, queue_length: int,
                        rng: np.random.Generator) -> bool:
        return queue_length > 0


@dataclass(frozen=True)
class SlottedPolicy:
    """Assign nodes to disjoint beacon slots within each pass.

    With ``slot_count`` >= the number of co-located nodes and distinct
    slots, no two nodes ever answer the same beacon, removing collisions
    entirely.  Slots come from ``slot_map`` when given (a deployment-time
    assignment, like CosMAC's coordinator would issue) and otherwise
    from a hash of the node id (which can collide).
    """

    slot_count: int = 3
    slot_map: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.slot_count <= 0:
            raise ValueError("slot count must be positive")
        if self.slot_map is not None:
            bad = [v for v in self.slot_map.values()
                   if not 0 <= v < self.slot_count]
            if bad:
                raise ValueError(f"slot assignments out of range: {bad}")

    def slot_of(self, node_id: str) -> int:
        if self.slot_map is not None and node_id in self.slot_map:
            return self.slot_map[node_id]
        return zlib.crc32(node_id.encode("utf-8")) % self.slot_count

    def should_transmit(self, node_id: str, opportunity: BeaconOpportunity,
                        beacon_index: int, queue_length: int,
                        rng: np.random.Generator) -> bool:
        if queue_length == 0:
            return False
        return beacon_index % self.slot_count == self.slot_of(node_id)


@dataclass(frozen=True)
class ElevationGatePolicy:
    """Only transmit on high-quality beacons (link-quality gating).

    ``min_p_uplink`` gates on the PHY's own uplink success estimate, so
    the policy is exactly "don't waste the PA on marginal geometry".
    """

    min_p_uplink: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_p_uplink <= 1.0:
            raise ValueError("min_p_uplink must be a probability")

    def should_transmit(self, node_id: str, opportunity: BeaconOpportunity,
                        beacon_index: int, queue_length: int,
                        rng: np.random.Generator) -> bool:
        if queue_length == 0:
            return False
        return opportunity.p_uplink >= self.min_p_uplink


@dataclass(frozen=True)
class BackpressurePolicy:
    """p-persistent congestion control.

    Each node transmits with probability ``1/expected_contenders``,
    spreading co-located load across a pass's beacon train.
    """

    expected_contenders: int = 3

    def __post_init__(self) -> None:
        if self.expected_contenders <= 0:
            raise ValueError("expected contenders must be positive")

    def should_transmit(self, node_id: str, opportunity: BeaconOpportunity,
                        beacon_index: int, queue_length: int,
                        rng: np.random.Generator) -> bool:
        if queue_length == 0:
            return False
        return rng.random() < 1.0 / self.expected_contenders
