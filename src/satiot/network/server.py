"""Application server: delivery accounting and reliability metrics.

The paper's server compares the sequence IDs of packets sent by the
nodes with those that arrived to estimate end-to-end reliability, and
uses the per-hop timestamps for the latency decomposition.  This module
closes the loop: it takes the MAC's packet records, asks the ground
segment when each satellite offloaded, and stamps delivery times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence


import numpy as np

from .packets import PacketRecord
from .store_forward import GroundSegment

__all__ = ["finalize_deliveries", "ReliabilityReport", "reliability_report",
           "latency_decomposition_minutes"]


def finalize_deliveries(records: Iterable[PacketRecord],
                        ground_segment: GroundSegment) -> None:
    """Stamp ``delivered_s`` on every record the satellites offloaded.

    After an ACK loss a retransmission can place a second copy of the
    packet on a *different* satellite; the server logs whichever copy
    reaches the data centre first, so delivery is the minimum over all
    successful uplinks.
    """
    for record in records:
        if record.satellite_received_s is None:
            continue
        candidates = []
        for attempt in record.attempts:
            if not attempt.uplink_ok:
                continue
            arrival = ground_segment.delivery_time_s(
                attempt.satellite_norad, attempt.time_s)
            if arrival is not None:
                candidates.append(arrival)
        record.delivered_s = min(candidates) if candidates else None


@dataclass(frozen=True)
class ReliabilityReport:
    """Sequence-ID based end-to-end reliability."""

    generated: int
    delivered: int
    reached_satellite: int
    abandoned: int

    @property
    def reliability(self) -> float:
        if self.generated == 0:
            return float("nan")
        return self.delivered / self.generated

    @property
    def dts_reliability(self) -> float:
        """Fraction of packets that made it onto a satellite."""
        if self.generated == 0:
            return float("nan")
        return self.reached_satellite / self.generated


def reliability_report(records: Sequence[PacketRecord]) -> ReliabilityReport:
    return ReliabilityReport(
        generated=len(records),
        delivered=sum(1 for r in records if r.delivered),
        reached_satellite=sum(1 for r in records
                              if r.satellite_received_s is not None),
        abandoned=sum(1 for r in records if r.abandoned),
    )


def latency_decomposition_minutes(records: Sequence[PacketRecord],
                                  ) -> Dict[str, float]:
    """Mean latency segments in minutes (paper Figure 5d).

    Only delivered packets contribute, matching the paper's methodology
    (latency is measured on packets that arrived).
    """
    wait: List[float] = []
    dts: List[float] = []
    delivery: List[float] = []
    total: List[float] = []
    for record in records:
        if not record.delivered:
            continue
        wait.append(record.wait_delay_s)
        dts.append(record.dts_delay_s)
        delivery.append(record.delivery_delay_s)
        total.append(record.total_latency_s)
    if not total:
        nan = float("nan")
        return {"wait_min": nan, "dts_min": nan,
                "delivery_min": nan, "total_min": nan}
    return {
        "wait_min": float(np.mean(wait)) / 60.0,
        "dts_min": float(np.mean(dts)) / 60.0,
        "delivery_min": float(np.mean(delivery)) / 60.0,
        "total_min": float(np.mean(total)) / 60.0,
    }
