"""Application packets and their end-to-end delivery records.

Every sensor reading gets a unique (node, sequence) identity — the paper
estimates reliability by comparing sent and received sequence IDs — and
a :class:`PacketRecord` accumulates every timestamp along the
store-and-forward path so latency can be decomposed exactly as in paper
Figure 5d: waiting for a pass, DtS (re)transmissions, and delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["SensorReading", "PacketRecord", "AttemptOutcome"]


@dataclass(frozen=True)
class SensorReading:
    """One application-layer datum produced by an on-site sensor."""

    node_id: str
    seq: int
    created_s: float
    payload_bytes: int = 20

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0 or self.payload_bytes > 120:
            raise ValueError(
                "Tianqi packets carry 1..120 bytes of payload")
        if self.seq < 0:
            raise ValueError("sequence numbers are non-negative")


@dataclass(frozen=True)
class AttemptOutcome:
    """One DtS transmission attempt of a packet."""

    time_s: float
    satellite_norad: int
    uplink_ok: bool
    ack_ok: bool
    collided: bool = False
    n_concurrent: int = 1      # nodes transmitting on the same beacon


@dataclass
class PacketRecord:
    """Lifecycle of one reading through the satellite IoT system."""

    reading: SensorReading
    attempts: List[AttemptOutcome] = field(default_factory=list)
    satellite_received_s: Optional[float] = None
    satellite_norad: Optional[int] = None
    delivered_s: Optional[float] = None
    abandoned: bool = False

    # ------------------------------------------------------------------
    @property
    def node_id(self) -> str:
        return self.reading.node_id

    @property
    def seq(self) -> int:
        return self.reading.seq

    @property
    def created_s(self) -> float:
        return self.reading.created_s

    @property
    def first_attempt_s(self) -> Optional[float]:
        return self.attempts[0].time_s if self.attempts else None

    @property
    def retransmissions(self) -> int:
        """DtS retransmissions (attempts beyond the first)."""
        return max(len(self.attempts) - 1, 0)

    @property
    def delivered(self) -> bool:
        return self.delivered_s is not None

    # ------------------------------------------------------------------
    # Latency decomposition (paper Figure 5d).
    # ------------------------------------------------------------------
    @property
    def wait_delay_s(self) -> Optional[float]:
        """Segment 1: data creation until the first DtS attempt."""
        first = self.first_attempt_s
        if first is None:
            return None
        return first - self.created_s

    @property
    def dts_delay_s(self) -> Optional[float]:
        """Segment 2: first attempt until the satellite stored the packet."""
        first = self.first_attempt_s
        if first is None or self.satellite_received_s is None:
            return None
        return self.satellite_received_s - first

    @property
    def delivery_delay_s(self) -> Optional[float]:
        """Segment 3: satellite storage until server arrival."""
        if self.satellite_received_s is None or self.delivered_s is None:
            return None
        return self.delivered_s - self.satellite_received_s

    @property
    def total_latency_s(self) -> Optional[float]:
        if self.delivered_s is None:
            return None
        return self.delivered_s - self.created_s
