"""Byte-level DtS frame codec.

The simulator mostly reasons about packets abstractly, but a deployable
stack needs a wire format.  This module defines compact binary layouts
for the three DtS frame types the paper's protocol implies — satellite
beacons, node data uplinks, and satellite ACKs — with CRC-16/CCITT
integrity, and round-trip encoders/decoders.

Layouts (big-endian):

``BeaconFrame``   magic(1) type(1) norad(4) seq(2) flags(1) crc(2)
``UplinkFrame``   magic(1) type(1) node(8) seq(2) len(1) payload(N) crc(2)
``AckFrame``      magic(1) type(1) node(8) seq(2) crc(2)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Union

__all__ = ["FrameError", "crc16_ccitt", "BeaconFrame", "UplinkFrame",
           "AckFrame", "decode_frame"]

MAGIC = 0xD7
TYPE_BEACON = 0x01
TYPE_UPLINK = 0x02
TYPE_ACK = 0x03

MAX_PAYLOAD = 120  # the Tianqi billing unit (paper Table 2)


class FrameError(ValueError):
    """Raised on malformed or corrupted frames."""


def crc16_ccitt(data: bytes, seed: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE, the LoRa-ecosystem default."""
    crc = seed
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def _node_bytes(node_id: str) -> bytes:
    raw = node_id.encode("utf-8")
    if len(raw) > 8:
        raise FrameError(f"node id too long for the wire: {node_id!r}")
    return raw.ljust(8, b"\x00")


def _node_str(raw: bytes) -> str:
    return raw.rstrip(b"\x00").decode("utf-8")


@dataclass(frozen=True)
class BeaconFrame:
    """Periodic satellite broadcast inviting uplinks."""

    norad_id: int
    beacon_seq: int
    congested: bool = False   # flags bit 0: satellite asks for backoff

    def encode(self) -> bytes:
        if not 0 <= self.norad_id <= 0xFFFFFFFF:
            raise FrameError("norad id out of range")
        if not 0 <= self.beacon_seq <= 0xFFFF:
            raise FrameError("beacon sequence out of range")
        body = struct.pack(">BBIHB", MAGIC, TYPE_BEACON, self.norad_id,
                           self.beacon_seq, 1 if self.congested else 0)
        return body + struct.pack(">H", crc16_ccitt(body))

    WIRE_SIZE = 11


@dataclass(frozen=True)
class UplinkFrame:
    """Node data uplink carrying one application reading."""

    node_id: str
    seq: int
    payload: bytes

    def encode(self) -> bytes:
        if not 0 <= self.seq <= 0xFFFF:
            raise FrameError("sequence out of range")
        if len(self.payload) == 0 or len(self.payload) > MAX_PAYLOAD:
            raise FrameError(
                f"payload must be 1..{MAX_PAYLOAD} bytes")
        body = struct.pack(">BB8sHB", MAGIC, TYPE_UPLINK,
                           _node_bytes(self.node_id), self.seq,
                           len(self.payload)) + self.payload
        return body + struct.pack(">H", crc16_ccitt(body))

    @property
    def wire_size(self) -> int:
        return 13 + len(self.payload) + 2


@dataclass(frozen=True)
class AckFrame:
    """Satellite acknowledgement of one uplink."""

    node_id: str
    seq: int

    def encode(self) -> bytes:
        if not 0 <= self.seq <= 0xFFFF:
            raise FrameError("sequence out of range")
        body = struct.pack(">BB8sH", MAGIC, TYPE_ACK,
                           _node_bytes(self.node_id), self.seq)
        return body + struct.pack(">H", crc16_ccitt(body))

    WIRE_SIZE = 14


Frame = Union[BeaconFrame, UplinkFrame, AckFrame]


def decode_frame(data: bytes) -> Frame:
    """Decode any DtS frame, verifying magic, type, length and CRC."""
    if len(data) < 4:
        raise FrameError("frame too short")
    body, crc_bytes = data[:-2], data[-2:]
    (expected,) = struct.unpack(">H", crc_bytes)
    if crc16_ccitt(body) != expected:
        raise FrameError("CRC mismatch")
    if body[0] != MAGIC:
        raise FrameError(f"bad magic byte 0x{body[0]:02x}")
    frame_type = body[1]

    if frame_type == TYPE_BEACON:
        if len(data) != BeaconFrame.WIRE_SIZE:
            raise FrameError("bad beacon length")
        _m, _t, norad, seq, flags = struct.unpack(">BBIHB", body)
        return BeaconFrame(norad_id=norad, beacon_seq=seq,
                           congested=bool(flags & 0x01))

    if frame_type == TYPE_UPLINK:
        if len(body) < 13:
            raise FrameError("bad uplink length")
        _m, _t, node_raw, seq, length = struct.unpack(">BB8sHB",
                                                      body[:13])
        payload = body[13:]
        if len(payload) != length:
            raise FrameError("uplink length field mismatch")
        return UplinkFrame(node_id=_node_str(node_raw), seq=seq,
                           payload=payload)

    if frame_type == TYPE_ACK:
        if len(data) != AckFrame.WIRE_SIZE:
            raise FrameError("bad ack length")
        _m, _t, node_raw, seq = struct.unpack(">BB8sH", body)
        return AckFrame(node_id=_node_str(node_raw), seq=seq)

    raise FrameError(f"unknown frame type 0x{frame_type:02x}")
