"""Store-and-forward segment: satellite buffers and the operator's
ground-station network.

A Tianqi satellite stores uplinked packets in an on-board buffer and
offloads them when it next passes one of the operator's ground stations
(all twelve are in China — paper Section 2.3).  The delivery delay of a
packet is therefore dominated by orbital geometry: how long until the
carrying satellite reaches a ground station.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from typing import Dict, List, Optional, Sequence, Tuple

from ..constellations.catalog import Constellation

from ..orbits.frames import GeodeticPoint
from ..orbits.passes import PassPredictor
from ..orbits.timebase import Epoch

__all__ = ["OperatorGroundStation", "TIANQI_GROUND_STATIONS",
           "GroundSegment", "SatelliteBuffer", "BufferedPacket"]


@dataclass(frozen=True)
class OperatorGroundStation:
    """One of the operator's large downlink ground stations."""

    name: str
    location: GeodeticPoint
    min_elevation_deg: float = 10.0


#: Twelve Tianqi ground stations, all in China (paper Section 2.3).
#: Locations are representative major facilities spread across the
#: country; the paper does not publish exact coordinates.
TIANQI_GROUND_STATIONS: Tuple[OperatorGroundStation, ...] = (
    OperatorGroundStation("Beijing", GeodeticPoint(40.07, 116.59, 0.05)),
    OperatorGroundStation("Urumqi", GeodeticPoint(43.82, 87.61, 0.9)),
    OperatorGroundStation("Kashgar", GeodeticPoint(39.47, 75.99, 1.3)),
    OperatorGroundStation("Sanya", GeodeticPoint(18.30, 109.30, 0.02)),
    OperatorGroundStation("Harbin", GeodeticPoint(45.75, 126.65, 0.15)),
    OperatorGroundStation("Lhasa", GeodeticPoint(29.65, 91.14, 3.65)),
    OperatorGroundStation("Xi'an", GeodeticPoint(34.34, 108.94, 0.4)),
    OperatorGroundStation("Chengdu", GeodeticPoint(30.57, 104.06, 0.5)),
    OperatorGroundStation("Guangzhou", GeodeticPoint(23.13, 113.26, 0.02)),
    OperatorGroundStation("Shanghai", GeodeticPoint(31.23, 121.47, 0.01)),
    OperatorGroundStation("Kunming", GeodeticPoint(25.04, 102.71, 1.9)),
    OperatorGroundStation("Hohhot", GeodeticPoint(40.84, 111.75, 1.05)),
)


@dataclass(frozen=True)
class BufferedPacket:
    """A packet sitting in a satellite's on-board buffer."""

    node_id: str
    seq: int
    stored_s: float
    payload_bytes: int


class SatelliteBuffer:
    """On-board packet store of one satellite.

    Duplicates (same node, seq — e.g. after a lost ACK triggered a
    retransmission) are absorbed: the packet is stored once, keeping the
    earliest storage time, which mirrors the dedup the operator's data
    centre performs.
    """

    def __init__(self, norad_id: int, capacity_packets: int = 10_000) -> None:
        if capacity_packets <= 0:
            raise ValueError("buffer capacity must be positive")
        self.norad_id = norad_id
        self.capacity_packets = capacity_packets
        self._packets: Dict[Tuple[str, int], BufferedPacket] = {}
        self.dropped_overflow = 0
        self.duplicates_absorbed = 0

    def __len__(self) -> int:
        return len(self._packets)

    def store(self, packet: BufferedPacket) -> bool:
        """Store a packet; returns False on overflow drop."""
        key = (packet.node_id, packet.seq)
        if key in self._packets:
            self.duplicates_absorbed += 1
            return True
        if len(self._packets) >= self.capacity_packets:
            self.dropped_overflow += 1
            return False
        self._packets[key] = packet
        return True

    def packets(self) -> List[BufferedPacket]:
        """Current contents, oldest first, without draining."""
        return sorted(self._packets.values(), key=lambda p: p.stored_s)

    def drain(self) -> List[BufferedPacket]:
        """Remove and return everything (a completed downlink)."""
        out = sorted(self._packets.values(), key=lambda p: p.stored_s)
        self._packets.clear()
        return out


class GroundSegment:
    """The operator's downlink network: per-satellite offload windows.

    Pre-computes every satellite's contact windows with every operator
    ground station over the campaign span, and answers "when will a
    packet stored on satellite X at time T reach the data centre?".
    """

    def __init__(self, constellation: Constellation, epoch: Epoch,
                 duration_s: float,
                 stations: Sequence[OperatorGroundStation]
                 = TIANQI_GROUND_STATIONS,
                 downlink_setup_s: float = 30.0,
                 backhaul_delay_s: float = 120.0,
                 processing_batch_s: float = 5400.0,
                 coarse_step_s: float = 60.0) -> None:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if not stations:
            raise ValueError("ground segment needs at least one station")
        self.constellation = constellation
        self.epoch = epoch
        self.duration_s = duration_s
        self.downlink_setup_s = downlink_setup_s
        self.backhaul_delay_s = backhaul_delay_s
        #: The operator's data centre releases data to subscribers in
        #: periodic processing batches; 0 disables batching.  This is
        #: what keeps the "Tianqi delivery" latency segment large even
        #: when a ground station is in view at uplink time.
        self.processing_batch_s = processing_batch_s

        # Per satellite: sorted list of (offload_start, offload_end).
        self._windows: Dict[int, List[Tuple[float, float]]] = {}
        for satellite in constellation:
            spans: List[Tuple[float, float]] = []
            for station in stations:
                predictor = PassPredictor(satellite.propagator,
                                          station.location,
                                          station.min_elevation_deg)
                for window in predictor.find_passes(
                        epoch, duration_s, coarse_step_s=coarse_step_s):
                    spans.append((window.rise_s, window.set_s))
            spans.sort()
            self._windows[satellite.norad_id] = spans

    # ------------------------------------------------------------------
    def offload_windows(self, norad_id: int) -> List[Tuple[float, float]]:
        return list(self._windows[norad_id])

    def next_offload_s(self, norad_id: int,
                       stored_s: float) -> Optional[float]:
        """Instant the satellite can next start downlinking the packet."""
        spans = self._windows.get(norad_id)
        if spans is None:
            raise KeyError(f"satellite {norad_id} not in ground segment")
        starts = [s for s, _ in spans]
        i = bisect.bisect_left(starts, stored_s)
        # A window already in progress also works if enough of it remains.
        if i > 0:
            start, end = spans[i - 1]
            if stored_s < end - self.downlink_setup_s:
                return stored_s
        if i < len(spans):
            return spans[i][0]
        return None

    def delivery_time_s(self, norad_id: int,
                        stored_s: float) -> Optional[float]:
        """Server arrival time of a packet stored on-board at ``stored_s``.

        ``None`` when no further ground-station contact occurs within the
        simulated span (the packet would arrive after the campaign ends).
        """
        offload = self.next_offload_s(norad_id, stored_s)
        if offload is None:
            return None
        arrival = offload + self.downlink_setup_s + self.backhaul_delay_s
        if self.processing_batch_s > 0:
            import math
            arrival = math.ceil(arrival / self.processing_batch_s) \
                * self.processing_batch_s
        return arrival

    def mean_gap_hours(self, norad_id: int) -> float:
        """Mean gap between successive offload opportunities (diagnostic)."""
        spans = self._windows[norad_id]
        if len(spans) < 2:
            return float("inf")
        gaps = [spans[i + 1][0] - spans[i][1] for i in range(len(spans) - 1)]
        return sum(gaps) / len(gaps) / 3600.0
