"""Beacon-triggered DtS MAC with ACKs and bounded retransmissions.

Implements the satellite IoT uplink protocol the paper describes
(Section 3.2 and the Appendix F discussion): application data may be
transmitted only upon successfully receiving a beacon — which gates
transmissions to good link conditions — after which the satellite
returns an ACK; a lost ACK triggers an unnecessary retransmission, the
effect behind the paper's Figure 5b / 5a contrast.

Multiple co-located nodes hearing the same beacon transmit
simultaneously; concurrent uplinks survive with a capture probability,
reproducing the mild degradation of paper Figure 12b.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


import numpy as np

from ..sim.engine import Simulator
from .packets import AttemptOutcome, PacketRecord, SensorReading
from .store_forward import BufferedPacket, SatelliteBuffer

__all__ = ["BeaconOpportunity", "MacConfig", "NodeState", "DtSMac"]


@dataclass(frozen=True)
class BeaconOpportunity:
    """A beacon this node decoded, with the link quality at that instant.

    ``p_uplink`` / ``p_ack`` are the conditional success probabilities of
    the node's data uplink and of the satellite's ACK downlink, evaluated
    by the PHY for the geometry and channel state of this beacon.
    """

    time_s: float
    satellite_norad: int
    p_uplink: float
    p_ack: float
    pass_index: int = 0

    def __post_init__(self) -> None:
        for name, p in (("p_uplink", self.p_uplink), ("p_ack", self.p_ack)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")


@dataclass(frozen=True)
class MacConfig:
    """Protocol parameters of the DtS MAC."""

    max_retransmissions: int = 5
    #: Probability a transmission survives when k nodes collide
    #: (index = number of concurrent transmitters; capture effect).
    capture_probability: Dict[int, float] = field(
        default_factory=lambda: {1: 1.0, 2: 0.90, 3: 0.80})
    #: Extra satellite-side loss (processing/congestion), applied to
    #: every uplink independently.
    satellite_loss_probability: float = 0.01
    #: Minimum spacing between a node's successive attempts (s); beacons
    #: arriving sooner are skipped (radio busy / turnaround).
    turnaround_s: float = 2.0
    #: Back-off before retransmitting after a missing ACK (s).  Spreads
    #: retries across the pass — and often onto the *next* pass — which
    #: is what stretches the paper's DtS latency segment to minutes.
    retry_backoff_s: float = 480.0
    #: Optional node-side transmit policy (see
    #: :mod:`satiot.network.policies`).  ``None`` means the paper's
    #: measured ALOHA behaviour: transmit whenever data is pending.
    transmit_policy: object = None

    def __post_init__(self) -> None:
        if self.max_retransmissions < 0:
            raise ValueError("max_retransmissions cannot be negative")
        if not 0.0 <= self.satellite_loss_probability < 1.0:
            raise ValueError("satellite loss must be a probability")

    def capture(self, k: int) -> float:
        if k <= 1:
            return 1.0
        known = self.capture_probability
        if k in known:
            return known[k]
        return known.get(max(known), 0.5) ** (k - 1)


@dataclass
class NodeState:
    """Run-time state of one IoT node in the MAC simulation."""

    node_id: str
    queue: List[PacketRecord] = field(default_factory=list)
    last_attempt_s: float = float("-inf")
    records: List[PacketRecord] = field(default_factory=list)

    def next_eligible(self, now: float, turnaround_s: float,
                      retry_backoff_s: float) -> Optional[PacketRecord]:
        """First buffered packet allowed to transmit at ``now``.

        Fresh packets go out as soon as the radio has turned around;
        packets awaiting a retransmission honour their own back-off, so
        a missing ACK never head-of-line-blocks the rest of the buffer.
        """
        if now - self.last_attempt_s < turnaround_s:
            return None
        for record in self.queue:
            if not record.attempts:
                return record
            if now - record.attempts[-1].time_s >= retry_backoff_s:
                return record
        return None

    def remove(self, record: PacketRecord) -> None:
        self.queue.remove(record)


class DtSMac:
    """Joint MAC simulation of co-located nodes sharing beacons.

    Parameters
    ----------
    config:
        Protocol parameters.
    buffers:
        Per-satellite on-board buffers packets are stored into.
    """

    def __init__(self, config: MacConfig,
                 buffers: Dict[int, SatelliteBuffer]) -> None:
        self.config = config
        self.buffers = buffers
        # Per-pass physical-beacon counters for slot-based policies:
        # every node sees the same index for the same beacon, as if the
        # slot number were carried in the beacon payload.
        self._beacon_index: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def run(self,
            readings: Dict[str, Sequence[SensorReading]],
            beacons: Dict[str, Sequence[BeaconOpportunity]],
            rng: np.random.Generator,
            duration_s: float) -> Dict[str, List[PacketRecord]]:
        """Run the protocol over the campaign span.

        ``readings`` and ``beacons`` map node-id to its time-sorted
        sensor readings and decoded beacons.  Returns the per-node packet
        records (every reading gets one, delivered or not).
        """
        sim = Simulator()
        nodes: Dict[str, NodeState] = {
            node_id: NodeState(node_id) for node_id in readings}

        # Schedule data generation.
        for node_id, node_readings in readings.items():
            state = nodes[node_id]
            for reading in node_readings:
                record = PacketRecord(reading=reading)
                state.records.append(record)

                def enqueue(state=state, record=record) -> None:
                    state.queue.append(record)

                sim.at(reading.created_s, enqueue)

        # Group beacons heard by several nodes at the same instant from
        # the same satellite: these produce simultaneous transmissions.
        grouped: Dict[tuple, List[tuple]] = {}
        for node_id, opportunities in beacons.items():
            for opp in opportunities:
                key = (round(opp.time_s, 3), opp.satellite_norad)
                grouped.setdefault(key, []).append((node_id, opp))

        for (time_s, _norad), members in sorted(grouped.items()):
            def handle(members=members) -> None:
                self._beacon_event(sim, nodes, members, rng)

            sim.at(float(time_s), handle)

        sim.run_until(duration_s)
        return {node_id: state.records for node_id, state in nodes.items()}

    # ------------------------------------------------------------------
    def _beacon_event(self, sim: Simulator, nodes: Dict[str, NodeState],
                      members: List[tuple],
                      rng: np.random.Generator) -> None:
        """All nodes that decoded this beacon and have data transmit."""
        transmitters: List[tuple] = []
        policy = self.config.transmit_policy
        pass_key = members[0][1].pass_index
        beacon_index = self._beacon_index.get(pass_key, 0)
        self._beacon_index[pass_key] = beacon_index + 1
        seen_nodes = set()
        for node_id, opp in members:
            # A node transmits at most once per beacon event, even if
            # two opportunities collapsed onto the same instant.
            if node_id in seen_nodes:
                continue
            seen_nodes.add(node_id)
            state = nodes[node_id]
            record = state.next_eligible(sim.now,
                                         self.config.turnaround_s,
                                         self.config.retry_backoff_s)
            if record is None:
                continue
            if policy is not None and not policy.should_transmit(
                    node_id, opp, beacon_index, len(state.queue), rng):
                continue
            transmitters.append((state, opp, record))

        k = len(transmitters)
        if k == 0:
            return
        capture_p = self.config.capture(k)

        for state, opp, record in transmitters:
            state.last_attempt_s = sim.now
            collided = k > 1 and rng.random() > capture_p
            uplink_ok = (not collided
                         and rng.random() < opp.p_uplink
                         and rng.random()
                         >= self.config.satellite_loss_probability)
            ack_ok = bool(uplink_ok and rng.random() < opp.p_ack)

            record.attempts.append(AttemptOutcome(
                time_s=sim.now, satellite_norad=opp.satellite_norad,
                uplink_ok=uplink_ok, ack_ok=ack_ok,
                collided=collided, n_concurrent=k))

            if uplink_ok:
                buffer = self.buffers.get(opp.satellite_norad)
                if buffer is not None:
                    stored = buffer.store(BufferedPacket(
                        node_id=record.node_id, seq=record.seq,
                        stored_s=sim.now,
                        payload_bytes=record.reading.payload_bytes))
                    if stored and record.satellite_received_s is None:
                        record.satellite_received_s = sim.now
                        record.satellite_norad = opp.satellite_norad

            if ack_ok:
                state.remove(record)
            elif len(record.attempts) \
                    >= self.config.max_retransmissions + 1:
                # Out of attempts: the node gives up on this packet (it
                # may nevertheless have reached the satellite — the ACKs
                # were what got lost).
                record.abandoned = record.satellite_received_s is None
                state.remove(record)
