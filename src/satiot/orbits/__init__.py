"""Astrodynamics substrate: TLEs, SGP4 propagation, frames and passes."""

from .constants import (DEG2RAD, EARTH_RADIUS_KM, MU_EARTH_KM3_S2, RAD2DEG,
                        SECONDS_PER_DAY, TWO_PI, WGS72, WGS84, GravityModel)
from .doppler import doppler_rate_hz_s, doppler_shift_hz, max_doppler_shift_hz
from .frames import (GeodeticPoint, ecef_to_geodetic, ecef_velocity_from_teme,
                     geodetic_to_ecef, teme_to_ecef)
from .groundtrack import CoverageGrid, ground_track
from .j2 import J2Propagator
from .kepler import (KeplerianElements, circular_velocity_km_s,
                     mean_motion_rev_day_from_altitude, orbital_period_s,
                     semi_major_axis_km, solve_kepler)
from .passes import (ContactWindow, PassPredictor, find_passes_fleet,
                     find_passes_multi, observer_geometry)
from .sgp4 import SGP4, DecayedError, DeepSpaceError, SGP4Error
from .sgp4_batch import BATCH_ENV, SGP4Batch, batching_enabled
from .timebase import Epoch, gmst, jday, invjday
from .tle import TLE, TLEError, checksum, format_tle, parse_tle, parse_tle_file

__all__ = [
    "DEG2RAD", "RAD2DEG", "TWO_PI", "SECONDS_PER_DAY",
    "EARTH_RADIUS_KM", "MU_EARTH_KM3_S2", "GravityModel", "WGS72", "WGS84",
    "doppler_shift_hz", "doppler_rate_hz_s", "max_doppler_shift_hz",
    "GeodeticPoint", "teme_to_ecef", "ecef_to_geodetic", "geodetic_to_ecef",
    "ecef_velocity_from_teme",
    "J2Propagator",
    "CoverageGrid", "ground_track",
    "KeplerianElements", "solve_kepler", "semi_major_axis_km",
    "mean_motion_rev_day_from_altitude", "orbital_period_s",
    "circular_velocity_km_s",
    "ContactWindow", "PassPredictor", "find_passes_multi",
    "find_passes_fleet", "observer_geometry",
    "SGP4", "SGP4Error", "DeepSpaceError", "DecayedError",
    "SGP4Batch", "BATCH_ENV", "batching_enabled",
    "Epoch", "gmst", "jday", "invjday",
    "TLE", "TLEError", "checksum", "parse_tle", "parse_tle_file", "format_tle",
]
