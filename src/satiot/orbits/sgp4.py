"""From-scratch SGP4 propagator (near-earth), vectorized over time.

This follows the algorithm of Vallado et al., *Revisiting Spacetrack
Report #3* (AIAA 2006-6753) — the same formulation implemented by the
reference ``sgp4`` C++/Python distribution — restricted to the near-earth
branch (orbital period < 225 minutes).  Every satellite in this study is
LEO, so the deep-space (SDP4) resonance/lunisolar terms are never
exercised; constructing a propagator for a deep-space object raises
:class:`DeepSpaceError` rather than returning silently wrong states.

The propagation entry point accepts a numpy array of times and evaluates
the whole ephemeris in one vectorized pass, which is what makes the
month-scale measurement campaigns in this repository tractable.

Output states are in the TEME (true equator, mean equinox) frame of the
element set, in kilometres and kilometres per second.
"""

from __future__ import annotations

import math
from typing import Tuple, Union

import numpy as np

from .constants import TWO_PI, GravityModel, WGS72
from .tle import TLE

__all__ = ["SGP4", "SGP4Error", "DeepSpaceError", "DecayedError"]

ArrayLike = Union[float, np.ndarray]

_X2O3 = 2.0 / 3.0


class SGP4Error(ValueError):
    """Raised when an element set cannot be propagated."""


class DeepSpaceError(SGP4Error):
    """Raised for element sets requiring the SDP4 deep-space branch."""


class DecayedError(SGP4Error):
    """Raised when the propagated satellite has decayed (r < Earth radius)."""


class SGP4:
    """SGP4 propagator bound to one element set.

    Parameters
    ----------
    tle:
        The element set to propagate.
    gravity:
        Gravity constant set; WGS-72 is the canonical choice for TLEs.

    Examples
    --------
    >>> from satiot.orbits import tle as tle_mod
    >>> # ... sat = SGP4(parsed_tle)
    >>> # r, v = sat.propagate(np.arange(0.0, 5400.0, 30.0))
    """

    def __init__(self, tle: TLE, gravity: GravityModel = WGS72) -> None:
        self.tle = tle
        self.gravity = gravity
        self._init(
            no_kozai=tle.no_kozai_rad_min,
            ecco=tle.eccentricity,
            inclo=tle.inclination_rad,
            nodeo=tle.raan_rad,
            argpo=tle.argp_rad,
            mo=tle.mean_anomaly_rad,
            bstar=tle.bstar,
        )

    # ------------------------------------------------------------------
    # Initialisation (sgp4init)
    # ------------------------------------------------------------------
    def _init(self, no_kozai: float, ecco: float, inclo: float,
              nodeo: float, argpo: float, mo: float, bstar: float) -> None:
        grav = self.gravity
        j2, j4 = grav.j2, grav.j4
        j3oj2 = grav.j3oj2
        xke = grav.xke
        radiusearthkm = grav.radiusearthkm

        if not 0.0 <= ecco < 1.0:
            raise SGP4Error(f"eccentricity out of range: {ecco}")
        if no_kozai <= 0.0:
            raise SGP4Error("mean motion must be positive")

        self.ecco = ecco
        self.inclo = inclo
        self.nodeo = nodeo
        self.argpo = argpo
        self.mo = mo
        self.bstar = bstar

        ss = 78.0 / radiusearthkm + 1.0
        qzms2t = ((120.0 - 78.0) / radiusearthkm) ** 4

        cosio = math.cos(inclo)
        sinio = math.sin(inclo)
        cosio2 = cosio * cosio
        eccsq = ecco * ecco
        omeosq = 1.0 - eccsq
        rteosq = math.sqrt(omeosq)

        # --- un-Kozai the mean motion -------------------------------------
        ak = (xke / no_kozai) ** _X2O3
        d1 = 0.75 * j2 * (3.0 * cosio2 - 1.0) / (rteosq * omeosq)
        delta = d1 / (ak * ak)
        adel = ak * (1.0 - delta * delta
                     - delta * (1.0 / 3.0 + 134.0 * delta * delta / 81.0))
        delta = d1 / (adel * adel)
        no_unkozai = no_kozai / (1.0 + delta)
        self.no_unkozai = no_unkozai

        ao = (xke / no_unkozai) ** _X2O3
        po = ao * omeosq
        con42 = 1.0 - 5.0 * cosio2
        con41 = -con42 - 2.0 * cosio2  # = 3 cos^2 i - 1
        posq = po * po
        rp = ao * (1.0 - ecco)

        # Period gate: deep-space objects need SDP4.
        if TWO_PI / no_unkozai >= 225.0:
            raise DeepSpaceError(
                "orbital period >= 225 min requires the SDP4 deep-space "
                "branch, which this near-earth propagator does not implement")
        if rp < 1.0:
            raise SGP4Error("element set has perigee below the Earth surface")

        self.isimp = 1 if rp < (220.0 / radiusearthkm + 1.0) else 0

        sfour = ss
        qzms24 = qzms2t
        perige = (rp - 1.0) * radiusearthkm
        if perige < 156.0:
            sfour = perige - 78.0
            if perige < 98.0:
                sfour = 20.0
            qzms24 = ((120.0 - sfour) / radiusearthkm) ** 4
            sfour = sfour / radiusearthkm + 1.0

        pinvsq = 1.0 / posq
        tsi = 1.0 / (ao - sfour)
        self.eta = ao * ecco * tsi
        etasq = self.eta * self.eta
        eeta = ecco * self.eta
        psisq = abs(1.0 - etasq)
        coef = qzms24 * tsi ** 4
        coef1 = coef / psisq ** 3.5

        cc2 = coef1 * no_unkozai * (
            ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq))
            + 0.375 * j2 * tsi / psisq * con41
            * (8.0 + 3.0 * etasq * (8.0 + etasq)))
        self.cc1 = bstar * cc2
        cc3 = 0.0
        if ecco > 1.0e-4:
            cc3 = -2.0 * coef * tsi * j3oj2 * no_unkozai * sinio / ecco
        self.x1mth2 = 1.0 - cosio2
        self.cc4 = 2.0 * no_unkozai * coef1 * ao * omeosq * (
            self.eta * (2.0 + 0.5 * etasq)
            + ecco * (0.5 + 2.0 * etasq)
            - j2 * tsi / (ao * psisq)
            * (-3.0 * con41 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta))
               + 0.75 * self.x1mth2 * (2.0 * etasq - eeta * (1.0 + etasq))
               * math.cos(2.0 * argpo)))
        self.cc5 = 2.0 * coef1 * ao * omeosq * (
            1.0 + 2.75 * (etasq + eeta) + eeta * etasq)

        cosio4 = cosio2 * cosio2
        temp1 = 1.5 * j2 * pinvsq * no_unkozai
        temp2 = 0.5 * temp1 * j2 * pinvsq
        temp3 = -0.46875 * j4 * pinvsq * pinvsq * no_unkozai
        self.mdot = (no_unkozai
                     + 0.5 * temp1 * rteosq * con41
                     + 0.0625 * temp2 * rteosq
                     * (13.0 - 78.0 * cosio2 + 137.0 * cosio4))
        self.argpdot = (-0.5 * temp1 * con42
                        + 0.0625 * temp2
                        * (7.0 - 114.0 * cosio2 + 395.0 * cosio4)
                        + temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4))
        xhdot1 = -temp1 * cosio
        self.nodedot = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2)
                                 + 2.0 * temp3 * (3.0 - 7.0 * cosio2)) * cosio

        self.omgcof = bstar * cc3 * math.cos(argpo)
        self.xmcof = 0.0
        if ecco > 1.0e-4:
            self.xmcof = -_X2O3 * coef * bstar / eeta
        self.nodecf = 3.5 * omeosq * xhdot1 * self.cc1
        self.t2cof = 1.5 * self.cc1

        # Long-period periodic coefficients.
        if abs(cosio + 1.0) > 1.5e-12:
            self.xlcof = (-0.25 * j3oj2 * sinio
                          * (3.0 + 5.0 * cosio) / (1.0 + cosio))
        else:
            self.xlcof = (-0.25 * j3oj2 * sinio
                          * (3.0 + 5.0 * cosio) / 1.5e-12)
        self.aycof = -0.5 * j3oj2 * sinio

        self.delmo = (1.0 + self.eta * math.cos(mo)) ** 3
        self.sinmao = math.sin(mo)
        self.x7thm1 = 7.0 * cosio2 - 1.0
        self.con41 = con41
        self.cosio = cosio
        self.sinio = sinio
        self.ao = ao

        # Higher-order drag coefficients (skipped for very low perigee).
        self.d2 = self.d3 = self.d4 = 0.0
        self.t3cof = self.t4cof = self.t5cof = 0.0
        if self.isimp != 1:
            cc1sq = self.cc1 * self.cc1
            self.d2 = 4.0 * ao * tsi * cc1sq
            temp = self.d2 * tsi * self.cc1 / 3.0
            self.d3 = (17.0 * ao + sfour) * temp
            self.d4 = (0.5 * temp * ao * tsi
                       * (221.0 * ao + 31.0 * sfour) * self.cc1)
            self.t3cof = self.d2 + 2.0 * cc1sq
            self.t4cof = 0.25 * (3.0 * self.d3
                                 + self.cc1 * (12.0 * self.d2 + 10.0 * cc1sq))
            self.t5cof = 0.2 * (3.0 * self.d4
                                + 12.0 * self.cc1 * self.d3
                                + 6.0 * self.d2 * self.d2
                                + 15.0 * cc1sq * (2.0 * self.d2 + cc1sq))

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def propagate(self, tsince_s: ArrayLike,
                  check_decay: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """TEME position (km) and velocity (km/s) at offsets from epoch.

        Parameters
        ----------
        tsince_s:
            Seconds since the element-set epoch; scalar or array.
        check_decay:
            If true (default), raise :class:`DecayedError` when any sample
            falls below the Earth's surface.

        Returns
        -------
        (r, v):
            Arrays of shape ``(..., 3)`` matching the input's shape.
        """
        grav = self.gravity
        t = np.asarray(tsince_s, dtype=float) / 60.0  # minutes
        scalar_input = t.ndim == 0
        t = np.atleast_1d(t)

        # --- secular gravity and drag -------------------------------------
        xmdf = self.mo + self.mdot * t
        argpdf = self.argpo + self.argpdot * t
        nodedf = self.nodeo + self.nodedot * t
        argpm = argpdf.copy()
        mm = xmdf.copy()
        t2 = t * t
        nodem = nodedf + self.nodecf * t2
        tempa = 1.0 - self.cc1 * t
        tempe = self.bstar * self.cc4 * t
        templ = self.t2cof * t2

        if self.isimp != 1:
            delomg = self.omgcof * t
            delmtemp = 1.0 + self.eta * np.cos(xmdf)
            delm = self.xmcof * (delmtemp ** 3 - self.delmo)
            temp = delomg + delm
            mm = xmdf + temp
            argpm = argpdf - temp
            t3 = t2 * t
            t4 = t3 * t
            tempa = tempa - self.d2 * t2 - self.d3 * t3 - self.d4 * t4
            tempe = tempe + self.bstar * self.cc5 * (np.sin(mm) - self.sinmao)
            templ = templ + self.t3cof * t3 + t4 * (self.t4cof
                                                    + t * self.t5cof)

        nm = self.no_unkozai
        em = self.ecco - tempe
        am = self.ao * tempa * tempa

        # Past full decay the drag polynomial goes non-positive and the
        # squared form would silently grow again — treat it as decayed.
        if check_decay and np.any(tempa <= 0.0):
            raise DecayedError(
                f"satellite {self.tle.norad_id} decayed during propagation")
        if check_decay and (np.any(am < 0.95) or np.any(em >= 1.0)):
            raise DecayedError(
                f"satellite {self.tle.norad_id} decayed during propagation")
        # Guard against drag driving eccentricity slightly negative.
        em = np.clip(em, 1.0e-6, 0.999999)

        mm = mm + self.no_unkozai * templ
        xlm = mm + argpm + nodem

        nodem = np.remainder(nodem, TWO_PI)
        argpm = np.remainder(argpm, TWO_PI)
        xlm = np.remainder(xlm, TWO_PI)
        mm = np.remainder(xlm - argpm - nodem, TWO_PI)

        # --- long-period periodics ----------------------------------------
        axnl = em * np.cos(argpm)
        temp = 1.0 / (am * (1.0 - em * em))
        aynl = em * np.sin(argpm) + temp * self.aycof
        xl = mm + argpm + nodem + temp * self.xlcof * axnl

        # --- Kepler's equation (vectorized Newton) -------------------------
        # Convergence is judged per element, and a converged element is
        # frozen: each instant's Newton trajectory depends only on that
        # instant, never on which other instants share the call.  That
        # makes propagation memoryless along the time axis — the grid
        # over [0, b) equals the [0, b) slice of the grid over [0, c)
        # bit for bit, which the incremental ephemeris extension tier
        # (satiot.runtime.ephemeris_cache) relies on.
        u = np.remainder(xl - nodem, TWO_PI)
        eo1 = u.copy()
        pending = np.ones(np.shape(eo1), dtype=bool)
        for _ in range(12):
            sineo1 = np.sin(eo1)
            coseo1 = np.cos(eo1)
            tem5 = ((u - aynl * coseo1 + axnl * sineo1 - eo1)
                    / (1.0 - coseo1 * axnl - sineo1 * aynl))
            tem5 = np.clip(tem5, -0.95, 0.95)
            eo1 = np.where(pending, eo1 + tem5, eo1)
            pending &= np.abs(tem5) >= 1.0e-12
            if not pending.any():
                break
        sineo1 = np.sin(eo1)
        coseo1 = np.cos(eo1)

        # --- short-period periodics ----------------------------------------
        ecose = axnl * coseo1 + aynl * sineo1
        esine = axnl * sineo1 - aynl * coseo1
        el2 = axnl * axnl + aynl * aynl
        pl = am * (1.0 - el2)
        if np.any(pl < 0.0):
            raise SGP4Error("semi-latus rectum went negative")

        rl = am * (1.0 - ecose)
        rdotl = np.sqrt(am) * esine / rl
        rvdotl = np.sqrt(pl) / rl
        betal = np.sqrt(1.0 - el2)
        temp = esine / (1.0 + betal)
        sinu = am / rl * (sineo1 - aynl - axnl * temp)
        cosu = am / rl * (coseo1 - axnl + aynl * temp)
        su = np.arctan2(sinu, cosu)
        sin2u = (cosu + cosu) * sinu
        cos2u = 1.0 - 2.0 * sinu * sinu
        temp = 1.0 / pl
        temp1 = 0.5 * grav.j2 * temp
        temp2 = temp1 * temp

        mrt = (rl * (1.0 - 1.5 * temp2 * betal * self.con41)
               + 0.5 * temp1 * self.x1mth2 * cos2u)
        su = su - 0.25 * temp2 * self.x7thm1 * sin2u
        xnode = nodem + 1.5 * temp2 * self.cosio * sin2u
        xinc = self.inclo + 1.5 * temp2 * self.cosio * self.sinio * cos2u
        mvt = rdotl - nm * temp1 * self.x1mth2 * sin2u / grav.xke
        rvdot = rvdotl + nm * temp1 * (self.x1mth2 * cos2u
                                       + 1.5 * self.con41) / grav.xke

        # --- orientation vectors -------------------------------------------
        sinsu = np.sin(su)
        cossu = np.cos(su)
        snod = np.sin(xnode)
        cnod = np.cos(xnode)
        sini = np.sin(xinc)
        cosi = np.cos(xinc)
        xmx = -snod * cosi
        xmy = cnod * cosi
        ux = xmx * sinsu + cnod * cossu
        uy = xmy * sinsu + snod * cossu
        uz = sini * sinsu
        vx = xmx * cossu - cnod * sinsu
        vy = xmy * cossu - snod * sinsu
        vz = sini * cossu

        vkmpersec = grav.radiusearthkm * grav.xke / 60.0
        r = np.stack([mrt * ux, mrt * uy, mrt * uz],
                     axis=-1) * grav.radiusearthkm
        v = np.stack([mvt * ux + rvdot * vx,
                      mvt * uy + rvdot * vy,
                      mvt * uz + rvdot * vz], axis=-1) * vkmpersec

        if check_decay and np.any(mrt < 1.0):
            raise DecayedError(
                f"satellite {self.tle.norad_id} decayed during propagation")

        if scalar_input:
            return r[0], v[0]
        return r, v

    def position_at(self, tsince_s: ArrayLike) -> np.ndarray:
        """Convenience accessor returning only the TEME position."""
        r, _ = self.propagate(tsince_s)
        return r

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SGP4(norad={self.tle.norad_id}, "
                f"n={self.tle.mean_motion_rev_day:.4f} rev/day, "
                f"i={self.tle.inclination_deg:.2f} deg)")
