"""Doppler shift and Doppler-rate models for DtS links.

LoRa receptions tolerate a static carrier offset of roughly a quarter of
the bandwidth, but the *rate of change* of the Doppler shift during a
packet smears chirps across bins; both quantities are exposed here so
the PHY error model can penalise fast overhead passes.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .constants import SPEED_OF_LIGHT_M_S

__all__ = ["doppler_shift_hz", "doppler_rate_hz_s", "max_doppler_shift_hz"]

ArrayLike = Union[float, np.ndarray]


def doppler_shift_hz(range_rate_km_s: ArrayLike,
                     carrier_hz: float) -> ArrayLike:
    """Doppler shift (Hz) seen by the receiver.

    Positive range rate (satellite receding) produces a negative shift.
    """
    if carrier_hz <= 0.0:
        raise ValueError("carrier frequency must be positive")
    rr = np.asarray(range_rate_km_s, dtype=float) * 1000.0
    shift = -rr / SPEED_OF_LIGHT_M_S * carrier_hz
    if np.ndim(range_rate_km_s) == 0:
        return float(shift)
    return shift


def doppler_rate_hz_s(range_rate_km_s: np.ndarray,
                      sample_spacing_s: float,
                      carrier_hz: float) -> np.ndarray:
    """Finite-difference Doppler rate (Hz/s) along a sampled pass."""
    if sample_spacing_s <= 0.0:
        raise ValueError("sample spacing must be positive")
    shift = np.asarray(doppler_shift_hz(range_rate_km_s, carrier_hz))
    return np.gradient(shift, sample_spacing_s)


def max_doppler_shift_hz(orbital_speed_km_s: float,
                         carrier_hz: float) -> float:
    """Worst-case shift magnitude when the satellite is on the horizon."""
    return orbital_speed_km_s * 1000.0 / SPEED_OF_LIGHT_M_S * carrier_hz
