"""Ground tracks and global coverage grids.

Supports the paper's global-accessibility claims (Figure 2 / Section 1:
"a small constellation ... can provide global coverage effectively") by
computing sub-satellite tracks and the fraction of the Earth with DtS
access over a time span.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..orbits.constants import DEG2RAD, EARTH_RADIUS_KM
from .frames import ecef_to_geodetic, teme_to_ecef
from .sgp4 import SGP4
from .timebase import Epoch

__all__ = ["ground_track", "CoverageGrid"]


def ground_track(propagator: SGP4, epoch: Epoch,
                 offsets_s: np.ndarray,
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sub-satellite latitude/longitude (deg) and altitude (km)."""
    offsets = np.asarray(offsets_s, dtype=float)
    tsince = float(epoch - propagator.tle.epoch) + offsets
    r, _v = propagator.propagate(tsince)
    r_ecef = teme_to_ecef(r, epoch.offset_jd(offsets))
    return ecef_to_geodetic(r_ecef)


@dataclass
class CoverageGrid:
    """Equal-angle lat/lon grid accumulating DtS access time.

    ``hours[i, j]`` is the accumulated time (hours) during which at
    least one satellite's footprint covered the cell centred at
    ``lats[i], lons[j]``.
    """

    lats: np.ndarray
    lons: np.ndarray
    hours: np.ndarray
    span_s: float

    @classmethod
    def empty(cls, step_deg: float, span_s: float) -> "CoverageGrid":
        if step_deg <= 0 or step_deg > 45:
            raise ValueError("grid step must be in (0, 45] degrees")
        lats = np.arange(-90.0 + step_deg / 2, 90.0, step_deg)
        lons = np.arange(-180.0 + step_deg / 2, 180.0, step_deg)
        return cls(lats=lats, lons=lons,
                   hours=np.zeros((len(lats), len(lons))), span_s=span_s)

    # ------------------------------------------------------------------
    def accumulate(self, propagator: SGP4, epoch: Epoch,
                   step_s: float = 60.0,
                   min_elevation_deg: float = 0.0) -> None:
        """Add one satellite's coverage over the grid's span."""
        offsets = np.arange(0.0, self.span_s, step_s)
        lat, lon, alt = ground_track(propagator, epoch, offsets)

        # Footprint half-angle per sample (altitude varies slightly).
        el = min_elevation_deg * DEG2RAD
        ratio = (EARTH_RADIUS_KM * np.cos(el)
                 / (EARTH_RADIUS_KM + np.asarray(alt)))
        lam = np.arccos(np.clip(ratio, -1.0, 1.0)) - el

        # Great-circle distance from every grid cell to every sample,
        # via the spherical law of cosines on unit vectors.
        grid_lat = np.radians(self.lats)[:, None]
        grid_lon = np.radians(self.lons)[None, :]
        cos_glat = np.cos(grid_lat)
        sin_glat = np.sin(grid_lat)

        sat_lat = np.radians(np.asarray(lat))
        sat_lon = np.radians(np.asarray(lon))
        hours_per_sample = step_s / 3600.0

        # Chunk over samples to bound memory.
        chunk = 512
        for start in range(0, len(offsets), chunk):
            sl = slice(start, start + chunk)
            cos_d = (sin_glat[..., None] * np.sin(sat_lat[sl])
                     + cos_glat[..., None] * np.cos(sat_lat[sl])
                     * np.cos(grid_lon[..., None] - sat_lon[sl]))
            covered = cos_d >= np.cos(lam[sl])
            self.hours += covered.sum(axis=-1) * hours_per_sample

    def accumulate_union(self, propagators, epoch: Epoch,
                         step_s: float = 60.0,
                         min_elevation_deg: float = 0.0) -> None:
        """Add *union* coverage of several satellites (at-least-one).

        Unlike calling :meth:`accumulate` per satellite — which counts
        satellite-hours and double-counts overlapping footprints — this
        ORs the footprints at each sample, matching the paper's "at
        least one satellite overhead" availability definition.
        """
        offsets = np.arange(0.0, self.span_s, step_s)
        el = min_elevation_deg * DEG2RAD
        grid_lat = np.radians(self.lats)[:, None]
        grid_lon = np.radians(self.lons)[None, :]
        cos_glat = np.cos(grid_lat)
        sin_glat = np.sin(grid_lat)
        hours_per_sample = step_s / 3600.0

        tracks = []
        for propagator in propagators:
            lat, lon, alt = ground_track(propagator, epoch, offsets)
            ratio = (EARTH_RADIUS_KM * np.cos(el)
                     / (EARTH_RADIUS_KM + np.asarray(alt)))
            lam = np.arccos(np.clip(ratio, -1.0, 1.0)) - el
            tracks.append((np.radians(np.asarray(lat)),
                           np.radians(np.asarray(lon)), np.cos(lam)))

        chunk = 256
        for start in range(0, len(offsets), chunk):
            sl = slice(start, min(start + chunk, len(offsets)))
            union = None
            for sat_lat, sat_lon, cos_lam in tracks:
                cos_d = (sin_glat[..., None] * np.sin(sat_lat[sl])
                         + cos_glat[..., None] * np.cos(sat_lat[sl])
                         * np.cos(grid_lon[..., None] - sat_lon[sl]))
                covered = cos_d >= cos_lam[sl]
                union = covered if union is None else (union | covered)
            if union is not None:
                self.hours += union.sum(axis=-1) * hours_per_sample

    # ------------------------------------------------------------------
    def covered_fraction(self, min_hours: float = 0.0) -> float:
        """Area-weighted fraction of Earth with more than ``min_hours``
        of access over the span."""
        weights = np.cos(np.radians(self.lats))[:, None] \
            * np.ones_like(self.hours)
        covered = self.hours > min_hours
        return float((weights * covered).sum() / weights.sum())

    def mean_daily_hours(self) -> float:
        """Area-weighted mean access hours per day."""
        weights = np.cos(np.radians(self.lats))[:, None]
        days = self.span_s / 86400.0
        weighted = (self.hours * weights).sum() / (weights.sum()
                                                   * self.hours.shape[1])
        return float(weighted / days)

    def render_ascii(self, levels: str = " .:-=+*#%@") -> str:
        """Render the grid as an ASCII map (rows north to south).

        Each cell maps its accumulated hours onto ``levels`` linearly;
        useful for eyeballing coverage from a terminal.
        """
        if not levels:
            raise ValueError("need at least one level character")
        peak = float(self.hours.max())
        lines = []
        for i in range(len(self.lats) - 1, -1, -1):
            chars = []
            for j in range(len(self.lons)):
                if peak <= 0:
                    chars.append(levels[0])
                    continue
                idx = int(self.hours[i, j] / peak * (len(levels) - 1))
                chars.append(levels[idx])
            lines.append("".join(chars))
        return "\n".join(lines)

    def hours_at(self, latitude_deg: float, longitude_deg: float) -> float:
        """Accumulated access hours of the cell containing a point."""
        i = int(np.argmin(np.abs(self.lats - latitude_deg)))
        j = int(np.argmin(np.abs(self.lons - longitude_deg)))
        return float(self.hours[i, j])
