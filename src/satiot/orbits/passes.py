"""Contact-window (pass) prediction for a satellite over a ground site.

This implements the paper's notion of a *theoretical contact window*: the
span during which a satellite is above the observer's elevation mask,
computed from TLEs via SGP4 — the quantity Figure 3a/4a compare effective
measurements against.

The finder samples elevation on a coarse grid (vectorized SGP4), then
refines each horizon crossing.  Two refinement modes exist:

``bisect`` (default)
    Bisection on fresh SGP4 evaluations to sub-second accuracy — the
    campaign-grade mode used throughout the reproduction.
``interp``
    Closed-form linear interpolation of the coarse elevation samples
    (parabolic for the culmination).  No extra SGP4 calls, fully
    deterministic, accurate to a few seconds at 30 s grids — the
    serving-grade mode used by :mod:`satiot.serving` for high-QPS
    queries.

:func:`find_passes_multi` is the **multi-observer batch path**: one
shared TEME grid (optionally via
:class:`satiot.runtime.EphemerisCache`) is converted to ECEF once and
elevation-tested against N observers at once, with a conservative
visibility-cone prefilter that skips the exact elevation kernel for the
~90 % of samples where the satellite is geometrically below the
observer's horizon.  Results are **bit-identical** to per-observer
serial :meth:`PassPredictor.find_passes` calls (same element-wise
kernels, same refinement code paths) — the contract
``tests/orbits/test_multi_observer.py`` verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .constants import DEG2RAD
from .frames import GeodeticPoint, teme_to_ecef
from .sgp4 import SGP4
from .timebase import Epoch
from .topocentric import (LookAngles, elevation_from_ecef, look_angles,
                          sez_rotation)

__all__ = ["ContactWindow", "PassPredictor", "REFINE_MODES",
           "find_passes_multi", "find_passes_fleet",
           "observer_geometry"]

#: Supported horizon-crossing refinement modes.
REFINE_MODES = ("bisect", "interp")

#: Conservative geocentric radius (km) below any ground observer, used
#: by the visibility-cone prefilter (WGS-84 polar radius is 6356.75 km).
_PREFILTER_RADIUS_KM = 6300.0

#: Angular slack (deg) added to the visibility cone so geodetic-vs-
#: geocentric zenith deviation (< 0.2 deg), observer altitude and
#: floating-point noise can never exclude a truly-visible sample.
_PREFILTER_SLACK_DEG = 3.0


@dataclass(frozen=True)
class ContactWindow:
    """One theoretical pass of a satellite over an observer.

    Times are seconds relative to the prediction epoch.
    """

    rise_s: float
    set_s: float
    culmination_s: float
    max_elevation_deg: float
    norad_id: int = 0
    clipped_start: bool = False
    clipped_end: bool = False

    def __post_init__(self) -> None:
        if self.set_s < self.rise_s:
            raise ValueError("contact window ends before it begins")

    @property
    def duration_s(self) -> float:
        return self.set_s - self.rise_s

    @property
    def midpoint_s(self) -> float:
        return 0.5 * (self.rise_s + self.set_s)

    def contains(self, t_s: float) -> bool:
        return self.rise_s <= t_s <= self.set_s

    def normalized_position(self, t_s: float) -> float:
        """Position of an instant within the window, 0 at rise, 1 at set."""
        if self.duration_s <= 0.0:
            return 0.0
        return (t_s - self.rise_s) / self.duration_s


class PassPredictor:
    """Predicts contact windows of one satellite over one observer.

    Parameters
    ----------
    propagator:
        Bound SGP4 instance for the satellite.
    observer:
        Ground-site geodetic location.
    min_elevation_deg:
        Elevation mask defining the theoretical window (paper uses the
        visibility horizon; TinyGS antennas see essentially to 0 deg).
    grid_provider:
        Optional callable ``(epoch, offsets) -> (r, v)`` supplying the
        coarse-grid TEME states instead of a direct SGP4 evaluation.
        Used by :class:`satiot.runtime.EphemerisCache` to share one
        propagation grid across every observer site; a provider **must**
        return exactly what ``propagator.propagate`` would, or window
        predictions will silently diverge.
    """

    def __init__(self, propagator: SGP4, observer: GeodeticPoint,
                 min_elevation_deg: float = 0.0,
                 grid_provider=None) -> None:
        if min_elevation_deg < -5.0 or min_elevation_deg >= 90.0:
            raise ValueError("unreasonable elevation mask")
        self.propagator = propagator
        self.observer = observer
        self.min_elevation_deg = min_elevation_deg
        self.grid_provider = grid_provider

    # ------------------------------------------------------------------
    def look_angles_at(self, epoch: Epoch, offsets_s) -> LookAngles:
        """Vectorized look angles at ``epoch + offsets_s`` seconds."""
        offsets = np.asarray(offsets_s, dtype=float)
        tsince = float(epoch - self.propagator.tle.epoch) + offsets
        r, v = self.propagator.propagate(tsince)
        jd = epoch.offset_jd(offsets)
        return look_angles(self.observer, r, v, jd)

    def elevation_at(self, epoch: Epoch, offset_s: float) -> float:
        return float(self.look_angles_at(epoch, float(offset_s)).elevation_deg)

    @staticmethod
    def coarse_offsets(duration_s: float,
                       coarse_step_s: float) -> np.ndarray:
        """The canonical coarse sampling grid for a prediction span."""
        if duration_s <= 0.0:
            raise ValueError("duration must be positive")
        if coarse_step_s <= 0.0:
            raise ValueError("coarse step must be positive")
        offsets = np.arange(0.0, duration_s + coarse_step_s, coarse_step_s)
        offsets = offsets[offsets <= duration_s]
        if offsets[-1] < duration_s:
            # Float-accumulation guard: ``np.arange`` can land the
            # terminal sample within one ULP below a step-divisible
            # duration (e.g. 86400/30); appending the exact duration
            # then yields a near-duplicate terminal sample whose
            # refinement bracket has zero length.  Snap instead of
            # appending when the gap is negligible versus the step.
            if duration_s - offsets[-1] <= 1.0e-9 * coarse_step_s:
                offsets[-1] = duration_s
            else:
                offsets = np.append(offsets, duration_s)
        return offsets

    def _coarse_elevations(self, epoch: Epoch,
                           offsets: np.ndarray) -> np.ndarray:
        """Elevation on the coarse grid, via the grid provider if set."""
        if self.grid_provider is not None:
            r, v = self.grid_provider(epoch, offsets)
            jd = epoch.offset_jd(offsets)
            return np.asarray(
                look_angles(self.observer, r, v, jd).elevation_deg)
        return np.asarray(self.look_angles_at(epoch, offsets).elevation_deg)

    # ------------------------------------------------------------------
    def find_passes(self, epoch: Epoch, duration_s: float,
                    coarse_step_s: float = 30.0,
                    refine_tol_s: float = 0.5,
                    refine: str = "bisect") -> List[ContactWindow]:
        """All contact windows within ``[epoch, epoch + duration_s]``.

        Windows in progress at the span boundaries are clipped and
        flagged via ``clipped_start`` / ``clipped_end``.  ``refine``
        selects the crossing refinement mode (see module docstring).
        """
        offsets = self.coarse_offsets(duration_s, coarse_step_s)
        elev = self._coarse_elevations(epoch, offsets)
        return self.windows_from_coarse(epoch, offsets, elev,
                                        refine_tol_s=refine_tol_s,
                                        refine=refine)

    # ------------------------------------------------------------------
    def windows_from_coarse(self, epoch: Epoch, offsets: np.ndarray,
                            elev: np.ndarray, refine_tol_s: float = 0.5,
                            refine: str = "bisect",
                            ) -> List[ContactWindow]:
        """Extract refined windows from a precomputed elevation row.

        ``elev`` must equal the observer's coarse-grid elevation at all
        above-mask samples *and their immediate neighbours*; samples
        known to be below the mask may carry any value <= the mask
        (the multi-observer prefilter exploits this).
        """
        if refine not in REFINE_MODES:
            raise ValueError(f"unknown refine mode {refine!r}; "
                             f"choose from {REFINE_MODES}")
        above = elev > self.min_elevation_deg

        windows: List[ContactWindow] = []
        n = len(offsets)
        if not bool(above.any()):
            return windows
        # Vectorized segment extraction: each maximal above-mask run is
        # [starts[k], ends[k]).
        edges = np.diff(above.astype(np.int8))
        starts = (np.flatnonzero(edges == 1) + 1).tolist()
        ends = (np.flatnonzero(edges == -1) + 1).tolist()
        if above[0]:
            starts.insert(0, 0)
        if above[-1]:
            ends.append(n)

        for i, j in zip(starts, ends):
            clipped_start = i == 0
            clipped_end = j == n
            if clipped_start:
                rise = offsets[i]
            elif refine == "bisect":
                rise = self._bisect_crossing(
                    epoch, offsets[i - 1], offsets[i], rising=True,
                    tol=refine_tol_s)
            else:
                rise = self._interp_crossing(
                    offsets[i - 1], offsets[i], elev[i - 1], elev[i])
            if clipped_end:
                set_ = offsets[j - 1]
            elif refine == "bisect":
                set_ = self._bisect_crossing(
                    epoch, offsets[j - 1], offsets[j], rising=False,
                    tol=refine_tol_s)
            else:
                set_ = self._interp_crossing(
                    offsets[j - 1], offsets[j], elev[j - 1], elev[j])

            if refine == "bisect":
                culm_s, max_el = self._refine_culmination(
                    epoch, offsets[i:j], elev[i:j], rise, set_)
            else:
                culm_s, max_el = self._interp_culmination(
                    offsets[i:j], elev[i:j], rise, set_)
            windows.append(ContactWindow(
                rise_s=float(rise), set_s=float(set_),
                culmination_s=float(culm_s),
                max_elevation_deg=float(max_el),
                norad_id=self.propagator.tle.norad_id,
                clipped_start=clipped_start, clipped_end=clipped_end))
        return windows

    # ------------------------------------------------------------------
    def _bisect_crossing(self, epoch: Epoch, t_lo: float, t_hi: float,
                         rising: bool, tol: float) -> float:
        """Bisect the instant where elevation crosses the mask."""
        lo, hi = float(t_lo), float(t_hi)
        for _ in range(64):
            if hi - lo <= tol:
                break
            mid = 0.5 * (lo + hi)
            above = self.elevation_at(epoch, mid) > self.min_elevation_deg
            if above == rising:
                # rising: above at mid means crossing is earlier.
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)

    def _interp_crossing(self, t_out: float, t_in: float,
                         e_out: float, e_in: float) -> float:
        """Linear interpolation of the mask crossing (no SGP4 calls).

        ``(t_out, e_out)`` is the below-mask grid sample, ``(t_in,
        e_in)`` the above-mask one; by construction ``e_in > mask >=
        e_out`` so the denominator cannot vanish.
        """
        t_out, t_in = float(t_out), float(t_in)
        e_out, e_in = float(e_out), float(e_in)
        frac = (self.min_elevation_deg - e_out) / (e_in - e_out)
        return t_out + frac * (t_in - t_out)

    def _refine_culmination(self, epoch: Epoch, seg_offsets: np.ndarray,
                            seg_elev: np.ndarray, rise: float,
                            set_: float) -> tuple:
        """Parabolic refinement of the elevation maximum inside a segment."""
        k = int(np.argmax(seg_elev))
        t_best = float(seg_offsets[k])
        el_best = float(seg_elev[k])
        if 0 < k < len(seg_offsets) - 1:
            t0, t1, t2 = seg_offsets[k - 1:k + 2]
            e0, e1, e2 = seg_elev[k - 1:k + 2]
            denom = (e0 - 2.0 * e1 + e2)
            if abs(denom) > 1e-12:
                t_para = float(t1 + 0.5 * (t1 - t0) * (e0 - e2) / denom)
                t_para = min(max(t_para, float(seg_offsets[0])),
                             float(seg_offsets[-1]))
                el_para = self.elevation_at(epoch, t_para)
                if el_para > el_best:
                    t_best, el_best = t_para, el_para
        t_best = min(max(t_best, rise), set_)
        return t_best, el_best

    def _interp_culmination(self, seg_offsets: np.ndarray,
                            seg_elev: np.ndarray, rise: float,
                            set_: float) -> tuple:
        """Closed-form parabolic culmination from the grid samples only."""
        k = int(np.argmax(seg_elev))
        t_best = float(seg_offsets[k])
        el_best = float(seg_elev[k])
        if 0 < k < len(seg_offsets) - 1:
            t0, t1, t2 = seg_offsets[k - 1:k + 2]
            e0, e1, e2 = seg_elev[k - 1:k + 2]
            denom = (e0 - 2.0 * e1 + e2)
            if abs(denom) > 1e-12:
                t_para = float(t1 + 0.5 * (t1 - t0) * (e0 - e2) / denom)
                t_para = min(max(t_para, float(t0)), float(t2))
                el_para = float(e1 - 0.125 * (e0 - e2) ** 2 / denom)
                if el_para > el_best:
                    t_best, el_best = t_para, el_para
        t_best = min(max(t_best, rise), set_)
        return t_best, el_best


# ----------------------------------------------------------------------
# Multi-observer batch path
# ----------------------------------------------------------------------
def _visibility_prefilter(sites: np.ndarray,
                          r_ecef: np.ndarray,
                          min_elevation_deg: float) -> np.ndarray:
    """Conservative per-(observer, sample) candidate mask ``(M, N)``.

    ``True`` wherever the satellite *might* be above the observer's
    elevation mask.  Uses the spherical central-angle bound ``lambda =
    arccos((R/r) cos m) - m`` with a deliberately small Earth radius and
    a 3-degree slack, so a truly above-mask sample can never be
    excluded (soundness is load-bearing: the pass finder skips the
    exact elevation kernel outside the mask).
    """
    r_norm = np.sqrt(np.sum(r_ecef * r_ecef, axis=-1))       # (N,)
    u_sat = r_ecef / r_norm[..., None]                        # (N, 3)
    m_rad = min_elevation_deg * DEG2RAD
    ratio = np.clip(_PREFILTER_RADIUS_KM / r_norm, -1.0, 1.0)
    lam = (np.arccos(np.clip(ratio * np.cos(m_rad), -1.0, 1.0))
           - m_rad + _PREFILTER_SLACK_DEG * DEG2RAD)          # (N,)
    cos_lam = np.cos(np.clip(lam, 0.0, np.pi))

    u_obs = sites / np.sqrt(np.sum(sites * sites,
                                   axis=-1, keepdims=True))
    cos_psi = u_obs @ u_sat.T                                 # (M, N)
    cand = cos_psi >= cos_lam[None, :]
    # Dilate by one grid step each way so crossing interpolation always
    # sees exact below-mask neighbours (copy first: in-place |= on
    # overlapping views would cascade).
    dilated = cand.copy()
    dilated[:, :-1] |= cand[:, 1:]
    dilated[:, 1:] |= cand[:, :-1]
    return dilated


def observer_geometry(observers: Sequence[GeodeticPoint],
                      ) -> List[tuple]:
    """Precompute ``(site_ecef, sez_rotation)`` per observer.

    The serving layer computes this once per batch and reuses it across
    every satellite of a constellation.
    """
    return [(obs.ecef(),
             sez_rotation(obs.latitude_rad, obs.longitude_rad))
            for obs in observers]


def find_passes_multi(propagator: SGP4,
                      observers: Sequence[GeodeticPoint],
                      epoch: Epoch, duration_s: float,
                      coarse_step_s: float = 30.0,
                      min_elevation_deg: float = 0.0,
                      refine_tol_s: float = 0.5,
                      refine: str = "bisect",
                      grid_provider=None,
                      geometry: Optional[Sequence[tuple]] = None,
                      ) -> List[List[ContactWindow]]:
    """Contact windows of one satellite over N observers at once.

    One SGP4 grid evaluation (or one ``grid_provider`` call — pass
    :meth:`satiot.runtime.EphemerisCache.grid_provider` to share grids
    across satellites and requests) and one TEME→ECEF conversion are
    shared by all observers; the exact elevation kernel runs only on
    the visibility-cone candidate samples of each observer.
    ``geometry`` may carry :func:`observer_geometry` output to amortize
    site/rotation setup across satellites.

    Returns one window list per observer, **bit-identical** to the
    serial ``PassPredictor(propagator, obs, ...).find_passes(...)``
    result with the same parameters.
    """
    observers = list(observers)
    if not observers:
        return []
    offsets = PassPredictor.coarse_offsets(duration_s, coarse_step_s)
    if grid_provider is not None:
        r, v = grid_provider(epoch, offsets)
    else:
        tsince = float(epoch - propagator.tle.epoch) + offsets
        r, v = propagator.propagate(tsince)
    jd = epoch.offset_jd(offsets)
    r_ecef = teme_to_ecef(r, jd)

    if geometry is None:
        geometry = observer_geometry(observers)
    return _windows_from_ecef(propagator, observers, geometry, epoch,
                              offsets, r_ecef, min_elevation_deg,
                              refine_tol_s, refine,
                              grid_provider=grid_provider)


def _windows_from_ecef(propagator: SGP4,
                       observers: Sequence[GeodeticPoint],
                       geometry: Sequence[tuple],
                       epoch: Epoch, offsets: np.ndarray,
                       r_ecef: np.ndarray,
                       min_elevation_deg: float,
                       refine_tol_s: float, refine: str,
                       grid_provider=None,
                       ) -> List[List[ContactWindow]]:
    """Per-observer windows of one satellite from its ECEF grid track.

    Shared core of :func:`find_passes_multi` and
    :func:`find_passes_fleet`: prefilter, exact elevation on candidate
    samples, then the scalar refinement path — so both batch entry
    points inherit the serial path's bit-identity by construction.
    """
    sites = np.stack([site for site, _ in geometry])
    cand = _visibility_prefilter(sites, r_ecef, min_elevation_deg)

    n = offsets.size
    results: List[List[ContactWindow]] = []
    for m, observer in enumerate(observers):
        predictor = PassPredictor(propagator, observer,
                                  min_elevation_deg,
                                  grid_provider=grid_provider)
        site, rot = geometry[m]
        idx = np.nonzero(cand[m])[0]
        if idx.size == n:
            elev_row = np.asarray(
                elevation_from_ecef(observer, r_ecef, site, rot))
        else:
            # Samples outside the candidate set are provably below the
            # mask; any below-mask filler keeps the window extraction
            # bit-identical (crossing neighbours are inside the dilated
            # candidate set, hence exact).
            elev_row = np.full(n, -90.0)
            if idx.size:
                elev_row[idx] = elevation_from_ecef(
                    observer, r_ecef[idx], site, rot)
        results.append(predictor.windows_from_coarse(
            epoch, offsets, elev_row, refine_tol_s=refine_tol_s,
            refine=refine))
    return results


def find_passes_fleet(propagators: Sequence[SGP4],
                      observers: Sequence[GeodeticPoint],
                      epoch: Epoch, duration_s: float,
                      coarse_step_s: float = 30.0,
                      min_elevation_deg: float = 0.0,
                      refine_tol_s: float = 0.5,
                      refine: str = "bisect",
                      fleet_grid_provider=None,
                      geometry: Optional[Sequence[tuple]] = None,
                      ) -> List[List[List[ContactWindow]]]:
    """Contact windows of N satellites over M observers at once.

    The whole fleet is propagated in one :class:`SGP4Batch` call over
    one shared coarse grid (or one ``fleet_grid_provider`` call — pass
    :meth:`satiot.runtime.EphemerisCache.fleet_grid_provider` to share
    constellation grids across requests), GMST and the TEME→ECEF
    rotation are evaluated **once per grid** instead of once per
    satellite, and observer geometry is computed once and reused by
    every satellite.

    ``fleet_grid_provider`` must be a callable ``(epoch, offsets) ->
    (r, v)`` returning ``(N, T, 3)`` stacks whose row ``n`` equals what
    ``propagators[n].propagate`` would produce.

    Returns ``results[n][m]``: the window list of satellite ``n`` over
    observer ``m``, **bit-identical** to the nested serial
    ``PassPredictor(propagators[n], observers[m], ...).find_passes(...)``
    (and hence to per-satellite :func:`find_passes_multi` calls) with
    the same parameters.
    """
    propagators = list(propagators)
    observers = list(observers)
    if not propagators:
        return []
    if not observers:
        return [[] for _ in propagators]
    offsets = PassPredictor.coarse_offsets(duration_s, coarse_step_s)
    if fleet_grid_provider is not None:
        r, v = fleet_grid_provider(epoch, offsets)
    else:
        from .sgp4_batch import SGP4Batch
        batch = SGP4Batch.from_propagators(propagators)
        r, v = batch.propagate_offsets(epoch, offsets)
    r = np.asarray(r, dtype=float)
    if r.ndim != 3 or r.shape[0] != len(propagators):
        raise ValueError(
            f"fleet grid must have shape (N, T, 3), got {r.shape}")
    jd = epoch.offset_jd(offsets)
    # One GMST + one rotation for the whole (N, T, 3) stack: the jd row
    # broadcasts across satellites, so the trigonometry runs once.
    r_ecef = teme_to_ecef(r, jd)

    if geometry is None:
        geometry = observer_geometry(observers)
    return [_windows_from_ecef(propagator, observers, geometry, epoch,
                               offsets, r_ecef[i], min_elevation_deg,
                               refine_tol_s, refine)
            for i, propagator in enumerate(propagators)]
