"""Contact-window (pass) prediction for a satellite over a ground site.

This implements the paper's notion of a *theoretical contact window*: the
span during which a satellite is above the observer's elevation mask,
computed from TLEs via SGP4 — the quantity Figure 3a/4a compare effective
measurements against.

The finder samples elevation on a coarse grid (vectorized SGP4), then
refines each horizon crossing by bisection to sub-second accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .frames import GeodeticPoint
from .sgp4 import SGP4
from .timebase import Epoch
from .topocentric import LookAngles, look_angles

__all__ = ["ContactWindow", "PassPredictor"]


@dataclass(frozen=True)
class ContactWindow:
    """One theoretical pass of a satellite over an observer.

    Times are seconds relative to the prediction epoch.
    """

    rise_s: float
    set_s: float
    culmination_s: float
    max_elevation_deg: float
    norad_id: int = 0
    clipped_start: bool = False
    clipped_end: bool = False

    def __post_init__(self) -> None:
        if self.set_s < self.rise_s:
            raise ValueError("contact window ends before it begins")

    @property
    def duration_s(self) -> float:
        return self.set_s - self.rise_s

    @property
    def midpoint_s(self) -> float:
        return 0.5 * (self.rise_s + self.set_s)

    def contains(self, t_s: float) -> bool:
        return self.rise_s <= t_s <= self.set_s

    def normalized_position(self, t_s: float) -> float:
        """Position of an instant within the window, 0 at rise, 1 at set."""
        if self.duration_s <= 0.0:
            return 0.0
        return (t_s - self.rise_s) / self.duration_s


class PassPredictor:
    """Predicts contact windows of one satellite over one observer.

    Parameters
    ----------
    propagator:
        Bound SGP4 instance for the satellite.
    observer:
        Ground-site geodetic location.
    min_elevation_deg:
        Elevation mask defining the theoretical window (paper uses the
        visibility horizon; TinyGS antennas see essentially to 0 deg).
    grid_provider:
        Optional callable ``(epoch, offsets) -> (r, v)`` supplying the
        coarse-grid TEME states instead of a direct SGP4 evaluation.
        Used by :class:`satiot.runtime.EphemerisCache` to share one
        propagation grid across every observer site; a provider **must**
        return exactly what ``propagator.propagate`` would, or window
        predictions will silently diverge.
    """

    def __init__(self, propagator: SGP4, observer: GeodeticPoint,
                 min_elevation_deg: float = 0.0,
                 grid_provider=None) -> None:
        if min_elevation_deg < -5.0 or min_elevation_deg >= 90.0:
            raise ValueError("unreasonable elevation mask")
        self.propagator = propagator
        self.observer = observer
        self.min_elevation_deg = min_elevation_deg
        self.grid_provider = grid_provider

    # ------------------------------------------------------------------
    def look_angles_at(self, epoch: Epoch, offsets_s) -> LookAngles:
        """Vectorized look angles at ``epoch + offsets_s`` seconds."""
        offsets = np.asarray(offsets_s, dtype=float)
        tsince = float(epoch - self.propagator.tle.epoch) + offsets
        r, v = self.propagator.propagate(tsince)
        jd = epoch.offset_jd(offsets)
        return look_angles(self.observer, r, v, jd)

    def elevation_at(self, epoch: Epoch, offset_s: float) -> float:
        return float(self.look_angles_at(epoch, float(offset_s)).elevation_deg)

    def _coarse_elevations(self, epoch: Epoch,
                           offsets: np.ndarray) -> np.ndarray:
        """Elevation on the coarse grid, via the grid provider if set."""
        if self.grid_provider is not None:
            r, v = self.grid_provider(epoch, offsets)
            jd = epoch.offset_jd(offsets)
            return np.asarray(
                look_angles(self.observer, r, v, jd).elevation_deg)
        return np.asarray(self.look_angles_at(epoch, offsets).elevation_deg)

    # ------------------------------------------------------------------
    def find_passes(self, epoch: Epoch, duration_s: float,
                    coarse_step_s: float = 30.0,
                    refine_tol_s: float = 0.5) -> List[ContactWindow]:
        """All contact windows within ``[epoch, epoch + duration_s]``.

        Windows in progress at the span boundaries are clipped and
        flagged via ``clipped_start`` / ``clipped_end``.
        """
        if duration_s <= 0.0:
            raise ValueError("duration must be positive")
        if coarse_step_s <= 0.0:
            raise ValueError("coarse step must be positive")

        offsets = np.arange(0.0, duration_s + coarse_step_s, coarse_step_s)
        offsets = offsets[offsets <= duration_s]
        if offsets[-1] < duration_s:
            offsets = np.append(offsets, duration_s)
        elev = self._coarse_elevations(epoch, offsets)
        above = elev > self.min_elevation_deg

        windows: List[ContactWindow] = []
        i = 0
        n = len(offsets)
        while i < n:
            if not above[i]:
                i += 1
                continue
            # Segment [i, j) is above the mask.
            j = i
            while j < n and above[j]:
                j += 1

            clipped_start = i == 0
            clipped_end = j == n
            rise = offsets[i] if clipped_start else self._bisect_crossing(
                epoch, offsets[i - 1], offsets[i], rising=True,
                tol=refine_tol_s)
            set_ = offsets[j - 1] if clipped_end else self._bisect_crossing(
                epoch, offsets[j - 1], offsets[j], rising=False,
                tol=refine_tol_s)

            culm_s, max_el = self._refine_culmination(
                epoch, offsets[i:j], elev[i:j], rise, set_)
            windows.append(ContactWindow(
                rise_s=float(rise), set_s=float(set_),
                culmination_s=float(culm_s),
                max_elevation_deg=float(max_el),
                norad_id=self.propagator.tle.norad_id,
                clipped_start=clipped_start, clipped_end=clipped_end))
            i = j
        return windows

    # ------------------------------------------------------------------
    def _bisect_crossing(self, epoch: Epoch, t_lo: float, t_hi: float,
                         rising: bool, tol: float) -> float:
        """Bisect the instant where elevation crosses the mask."""
        lo, hi = float(t_lo), float(t_hi)
        for _ in range(64):
            if hi - lo <= tol:
                break
            mid = 0.5 * (lo + hi)
            above = self.elevation_at(epoch, mid) > self.min_elevation_deg
            if above == rising:
                # rising: above at mid means crossing is earlier.
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)

    def _refine_culmination(self, epoch: Epoch, seg_offsets: np.ndarray,
                            seg_elev: np.ndarray, rise: float,
                            set_: float) -> tuple:
        """Parabolic refinement of the elevation maximum inside a segment."""
        k = int(np.argmax(seg_elev))
        t_best = float(seg_offsets[k])
        el_best = float(seg_elev[k])
        if 0 < k < len(seg_offsets) - 1:
            t0, t1, t2 = seg_offsets[k - 1:k + 2]
            e0, e1, e2 = seg_elev[k - 1:k + 2]
            denom = (e0 - 2.0 * e1 + e2)
            if abs(denom) > 1e-12:
                t_para = float(t1 + 0.5 * (t1 - t0) * (e0 - e2) / denom)
                t_para = min(max(t_para, float(seg_offsets[0])),
                             float(seg_offsets[-1]))
                el_para = self.elevation_at(epoch, t_para)
                if el_para > el_best:
                    t_best, el_best = t_para, el_para
        t_best = min(max(t_best, rise), set_)
        return t_best, el_best
