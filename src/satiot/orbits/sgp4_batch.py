"""Constellation-batched SGP4: struct-of-arrays fleet propagation.

:class:`SGP4Batch` holds a whole constellation's element sets as
*stacked* NumPy arrays — one ``(N, 1)`` column per SGP4 coefficient —
and propagates all N satellites over a shared time grid in a single
broadcasted ``(N, T)`` evaluation.  The per-sample arithmetic is the
**same element-wise expression chain** as the scalar
:meth:`satiot.orbits.sgp4.SGP4.propagate`, so row ``n`` of the batched
output is **bit-identical** to ``SGP4(tles[n]).propagate(tsince[n])`` —
the contract ``tests/orbits/test_sgp4_batch.py`` property-tests and
every downstream consumer (pass search, ephemeris cache, serving)
relies on for cache-key compatibility.

Three scalar-path behaviours need explicit care to preserve bit
identity:

* **Initialisation** is *not* vectorized: the per-satellite
  ``sgp4init`` coefficients are computed by the existing scalar code
  (``math.cos`` and ``np.cos`` may differ in the last ULP) and merely
  stacked.  Init is a one-off cost of ~10 µs per satellite;
  propagation is the hot loop.
* **The drag branch** (``isimp``) is applied per *row subset*, exactly
  like each scalar propagator would, because simple-drag satellites
  skip the higher-order correction block entirely (not merely with
  zero coefficients — ``omgcof`` can be non-zero for them).
* **Kepler's equation** converges per *row*: a satellite's Newton
  iteration stops the moment its own residual drops below tolerance,
  never receiving the extra iterations a fleet-wide convergence test
  would apply.

Why batch at all?  The scalar propagator already vectorizes over time,
but a fleet sweep re-enters the Python interpreter once per satellite
and every downstream consumer re-derives GMST and the TEME→ECEF
rotation per satellite.  Batching moves the satellite axis into the
same NumPy kernels (one pass over ``(N, T)`` instead of N passes over
``(T,)``) and lets callers compute the time-grid trigonometry once for
the whole fleet.

The kernel is memory-bound: it materialises ~50 intermediate arrays,
so an unblocked ``(N, T)`` sweep over a long grid streams every
temporary through main memory and can *lose* to the per-satellite
loop, whose ``(T,)`` temporaries fit in L2.  :meth:`propagate`
therefore processes satellites in ascending row blocks sized so one
block's temporaries stay cache-resident (see
``_BLOCK_TARGET_ELEMENTS``) — pure row partitioning, so bit identity
is unaffected.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple, Union

import numpy as np

from .constants import TWO_PI, GravityModel, WGS72
from .sgp4 import SGP4, DecayedError, SGP4Error
from .timebase import Epoch
from .tle import TLE

__all__ = ["SGP4Batch", "BATCH_ENV", "batching_enabled"]

ArrayLike = Union[float, np.ndarray]

#: Kill switch: set to 0/false/off to force every fleet-level consumer
#: (scheduler, serving, fleet sweeps) back onto the per-satellite
#: scalar path.  Results are bit-identical either way — the switch
#: exists for A/B verification and debugging, not correctness.
BATCH_ENV = "SATIOT_BATCH_SGP4"


def batching_enabled() -> bool:
    """Whether fleet-level consumers should use the batched kernel."""
    return os.environ.get(BATCH_ENV, "1").strip().lower() not in (
        "0", "false", "off", "no")


#: Scalar sgp4init products stacked into (N, 1) coefficient columns.
_COEF_FIELDS = (
    "ecco", "inclo", "nodeo", "argpo", "mo", "bstar", "no_unkozai",
    "eta", "cc1", "x1mth2", "cc4", "cc5", "mdot", "argpdot", "nodedot",
    "omgcof", "xmcof", "nodecf", "t2cof", "xlcof", "aycof", "delmo",
    "sinmao", "x7thm1", "con41", "cosio", "sinio", "ao",
    "d2", "d3", "d4", "t3cof", "t4cof", "t5cof",
)


class SGP4Batch:
    """Struct-of-arrays SGP4 propagator over a whole fleet.

    Parameters
    ----------
    tles:
        The element sets to stack.  Each must be near-earth (the same
        restriction as :class:`~satiot.orbits.sgp4.SGP4`).
    gravity:
        Gravity constant set shared by every satellite.

    Examples
    --------
    >>> # batch = SGP4Batch(tles)
    >>> # r, v = batch.propagate_offsets(epoch, offsets)   # (N, T, 3)
    """

    def __init__(self, tles: Sequence[TLE],
                 gravity: GravityModel = WGS72) -> None:
        propagators = [SGP4(tle, gravity) for tle in tles]
        self._bind(propagators, gravity)

    @classmethod
    def from_propagators(cls, propagators: Sequence[SGP4]) -> "SGP4Batch":
        """Stack already-initialised scalar propagators (no re-init).

        This is the cheap constructor used on hot paths: it only reads
        the ~34 scalar coefficients off each :class:`SGP4` instance.
        All propagators must share one gravity model.
        """
        propagators = list(propagators)
        if not propagators:
            raise ValueError("SGP4Batch needs at least one propagator")
        gravity = propagators[0].gravity
        for p in propagators[1:]:
            if p.gravity is not gravity and p.gravity != gravity:
                raise ValueError(
                    "all batched propagators must share one gravity model")
        batch = cls.__new__(cls)
        batch._bind(propagators, gravity)
        return batch

    # ------------------------------------------------------------------
    def _bind(self, propagators: List[SGP4],
              gravity: GravityModel) -> None:
        if not propagators:
            raise ValueError("SGP4Batch needs at least one element set")
        self.gravity = gravity
        self.propagators = propagators
        self.tles = [p.tle for p in propagators]
        self._n = len(propagators)
        for name in _COEF_FIELDS:
            column = np.array([getattr(p, name) for p in propagators],
                              dtype=float)[:, None]
            setattr(self, name, column)
        self.isimp = np.array([p.isimp for p in propagators],
                              dtype=np.int64)
        self.norad_ids = np.array([t.norad_id for t in self.tles],
                                  dtype=np.int64)
        #: Element-set epochs as Julian dates, one per satellite.
        self.epochs_jd = np.array([t.epoch.jd for t in self.tles],
                                  dtype=float)

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # Time-grid helpers
    # ------------------------------------------------------------------
    def tsince_from_epoch(self, epoch: Epoch,
                          offsets_s: ArrayLike) -> np.ndarray:
        """Per-satellite seconds-since-element-epoch matrix ``(N, T)``.

        Row ``n`` equals ``float(epoch - tles[n].epoch) + offsets_s`` —
        the exact expression the scalar pass pipeline evaluates — so a
        shared absolute grid maps onto each satellite's own epoch
        without losing bit identity.
        """
        offsets = np.asarray(offsets_s, dtype=float)
        if offsets.ndim != 1:
            raise ValueError("offsets_s must be one-dimensional")
        deltas = np.array([float(epoch - tle.epoch) for tle in self.tles],
                          dtype=float)
        return deltas[:, None] + offsets[None, :]

    def propagate_offsets(self, epoch: Epoch, offsets_s: ArrayLike,
                          check_decay: bool = True,
                          ) -> Tuple[np.ndarray, np.ndarray]:
        """Propagate the fleet over one shared absolute time grid."""
        return self.propagate(self.tsince_from_epoch(epoch, offsets_s),
                              check_decay=check_decay)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    #: Row-block sizing: one block's ``(B, T)`` temporaries should sum
    #: to roughly the L2 working set (~50 kernel intermediates of
    #: ``B*T`` float64 each).  Long grids degrade toward ``B = 1``
    #: (which still wins: the Python-level loop shrinks from N
    #: interpreter re-entries of the *scalar* kernel to N/B calls of a
    #: shared one and all grid trigonometry downstream is shared);
    #: short grids coalesce many satellites per NumPy call.
    _BLOCK_TARGET_ELEMENTS = 8192

    @classmethod
    def _block_rows(cls, t_len: int) -> int:
        """Satellite rows per kernel block for a grid of ``t_len``."""
        return max(1, cls._BLOCK_TARGET_ELEMENTS // max(1, t_len))

    def propagate(self, tsince_s: ArrayLike, check_decay: bool = True,
                  ) -> Tuple[np.ndarray, np.ndarray]:
        """TEME state of every satellite at offsets from its epoch.

        Parameters
        ----------
        tsince_s:
            Seconds since each element set's epoch: shape ``(T,)``
            (shared by all satellites) or ``(N, T)`` (per-satellite
            rows, e.g. from :meth:`tsince_from_epoch`).
        check_decay:
            If true (default), raise :class:`DecayedError` naming the
            first (lowest-index) decayed satellite, mirroring a
            satellite-by-satellite scalar loop.

        Returns
        -------
        (r, v):
            Arrays of shape ``(N, T, 3)`` in km and km/s.  Row ``n``
            is bit-identical to the scalar
            ``SGP4(tles[n]).propagate(tsince_s[n])``.
        """
        n = self._n
        t = np.asarray(tsince_s, dtype=float) / 60.0  # minutes
        if t.ndim == 1:
            t = np.broadcast_to(t, (n, t.shape[0]))
        if t.ndim != 2 or t.shape[0] != n:
            raise ValueError(
                f"tsince_s must have shape (T,) or ({n}, T), "
                f"got {np.shape(tsince_s)}")
        t_len = t.shape[1]
        block = self._block_rows(t_len)
        if block >= n:
            return self._propagate_rows(t, slice(0, n), check_decay)
        r = np.empty((n, t_len, 3), dtype=float)
        v = np.empty((n, t_len, 3), dtype=float)
        # Ascending row order so the lowest-index decayed satellite
        # raises first, exactly like a satellite-by-satellite loop.
        for start in range(0, n, block):
            rows = slice(start, min(start + block, n))
            r[rows], v[rows] = self._propagate_rows(t[rows], rows,
                                                    check_decay)
        return r, v

    def _propagate_rows(self, t: np.ndarray, rows: slice,
                        check_decay: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Run the kernel over a contiguous row block.

        ``t`` is the block's ``(B, T)`` minutes-since-epoch matrix and
        ``rows`` selects the matching coefficient rows.  Every
        operation below is row-independent, so partitioning the fleet
        into blocks cannot change any element's value.
        """
        grav = self.gravity
        (ecco, inclo, nodeo, argpo, mo, bstar, no_unkozai, eta, cc1,
         x1mth2, cc4, cc5, mdot, argpdot, nodedot, omgcof, xmcof,
         nodecf, t2cof, xlcof, aycof, delmo, sinmao, x7thm1, con41,
         cosio, sinio, ao, d2, d3, d4, t3cof, t4cof, t5cof) = (
            getattr(self, name)[rows] for name in _COEF_FIELDS)
        isimp = self.isimp[rows]
        norad_ids = self.norad_ids[rows]
        nrows = t.shape[0]

        # --- secular gravity and drag -------------------------------------
        xmdf = mo + mdot * t
        argpdf = argpo + argpdot * t
        nodedf = nodeo + nodedot * t
        argpm = argpdf.copy()
        mm = xmdf.copy()
        t2 = t * t
        nodem = nodedf + nodecf * t2
        tempa = 1.0 - cc1 * t
        tempe = bstar * cc4 * t
        templ = t2cof * t2

        idx = np.flatnonzero(isimp != 1)
        if idx.size:
            full = idx.size == nrows
            sel: Union[slice, np.ndarray] = slice(None) if full else idx

            def sub(a: np.ndarray) -> np.ndarray:
                return a if full else a[idx]

            ts = sub(t)
            t2s = sub(t2)
            xmdfs = sub(xmdf)
            delomg = sub(omgcof) * ts
            delmtemp = 1.0 + sub(eta) * np.cos(xmdfs)
            delm = sub(xmcof) * (delmtemp ** 3 - sub(delmo))
            temp = delomg + delm
            mms = xmdfs + temp
            mm[sel] = mms
            argpm[sel] = sub(argpdf) - temp
            t3 = t2s * ts
            t4 = t3 * ts
            tempa[sel] = (sub(tempa) - sub(d2) * t2s - sub(d3) * t3
                          - sub(d4) * t4)
            tempe[sel] = (sub(tempe) + sub(bstar) * sub(cc5)
                          * (np.sin(mms) - sub(sinmao)))
            templ[sel] = (sub(templ) + sub(t3cof) * t3
                          + t4 * (sub(t4cof) + ts * sub(t5cof)))

        nm = no_unkozai
        em = ecco - tempe
        am = ao * tempa * tempa

        if check_decay:
            # Mirror the satellite-by-satellite loop: the lowest-index
            # decayed satellite raises, with the scalar path's message.
            bad = (np.any(tempa <= 0.0, axis=1)
                   | np.any(am < 0.95, axis=1)
                   | np.any(em >= 1.0, axis=1))
            if bad.any():
                norad = int(norad_ids[int(np.argmax(bad))])
                raise DecayedError(
                    f"satellite {norad} decayed during propagation")
        em = np.clip(em, 1.0e-6, 0.999999)

        mm = mm + no_unkozai * templ
        xlm = mm + argpm + nodem

        nodem = np.remainder(nodem, TWO_PI)
        argpm = np.remainder(argpm, TWO_PI)
        xlm = np.remainder(xlm, TWO_PI)
        mm = np.remainder(xlm - argpm - nodem, TWO_PI)

        # --- long-period periodics ----------------------------------------
        axnl = em * np.cos(argpm)
        temp = 1.0 / (am * (1.0 - em * em))
        aynl = em * np.sin(argpm) + temp * aycof
        xl = mm + argpm + nodem + temp * xlcof * axnl

        # --- Kepler's equation: per-element-converging Newton --------------
        # Mirrors the scalar path exactly: each element iterates until
        # its own residual converges and is then frozen, so every
        # (satellite, instant) cell is independent of the rest of the
        # grid.  Time-axis memorylessness is what lets the incremental
        # ephemeris extension tier concatenate a propagated suffix onto
        # a cached prefix bit-identically.
        u = np.remainder(xl - nodem, TWO_PI)
        eo1 = u.copy()
        pending = np.ones(u.shape, dtype=bool)
        for _ in range(12):
            sineo1 = np.sin(eo1)
            coseo1 = np.cos(eo1)
            tem5 = ((u - aynl * coseo1 + axnl * sineo1 - eo1)
                    / (1.0 - coseo1 * axnl - sineo1 * aynl))
            tem5 = np.clip(tem5, -0.95, 0.95)
            eo1 = np.where(pending, eo1 + tem5, eo1)
            pending &= np.abs(tem5) >= 1.0e-12
            if not pending.any():
                break
        sineo1 = np.sin(eo1)
        coseo1 = np.cos(eo1)

        # --- short-period periodics ----------------------------------------
        ecose = axnl * coseo1 + aynl * sineo1
        esine = axnl * sineo1 - aynl * coseo1
        el2 = axnl * axnl + aynl * aynl
        pl = am * (1.0 - el2)
        if np.any(pl < 0.0):
            raise SGP4Error("semi-latus rectum went negative")

        rl = am * (1.0 - ecose)
        rdotl = np.sqrt(am) * esine / rl
        rvdotl = np.sqrt(pl) / rl
        betal = np.sqrt(1.0 - el2)
        temp = esine / (1.0 + betal)
        sinu = am / rl * (sineo1 - aynl - axnl * temp)
        cosu = am / rl * (coseo1 - axnl + aynl * temp)
        su = np.arctan2(sinu, cosu)
        sin2u = (cosu + cosu) * sinu
        cos2u = 1.0 - 2.0 * sinu * sinu
        temp = 1.0 / pl
        temp1 = 0.5 * grav.j2 * temp
        temp2 = temp1 * temp

        mrt = (rl * (1.0 - 1.5 * temp2 * betal * con41)
               + 0.5 * temp1 * x1mth2 * cos2u)
        su = su - 0.25 * temp2 * x7thm1 * sin2u
        xnode = nodem + 1.5 * temp2 * cosio * sin2u
        xinc = inclo + 1.5 * temp2 * cosio * sinio * cos2u
        mvt = rdotl - nm * temp1 * x1mth2 * sin2u / grav.xke
        rvdot = rvdotl + nm * temp1 * (x1mth2 * cos2u
                                       + 1.5 * con41) / grav.xke

        # --- orientation vectors -------------------------------------------
        sinsu = np.sin(su)
        cossu = np.cos(su)
        snod = np.sin(xnode)
        cnod = np.cos(xnode)
        sini = np.sin(xinc)
        cosi = np.cos(xinc)
        xmx = -snod * cosi
        xmy = cnod * cosi
        ux = xmx * sinsu + cnod * cossu
        uy = xmy * sinsu + snod * cossu
        uz = sini * sinsu
        vx = xmx * cossu - cnod * sinsu
        vy = xmy * cossu - snod * sinsu
        vz = sini * cossu

        vkmpersec = grav.radiusearthkm * grav.xke / 60.0
        r = np.stack([mrt * ux, mrt * uy, mrt * uz],
                     axis=-1) * grav.radiusearthkm
        v = np.stack([mvt * ux + rvdot * vx,
                      mvt * uy + rvdot * vy,
                      mvt * uz + rvdot * vz], axis=-1) * vkmpersec

        if check_decay:
            bad_mrt = np.any(mrt < 1.0, axis=1)
            if bad_mrt.any():
                norad = int(norad_ids[int(np.argmax(bad_mrt))])
                raise DecayedError(
                    f"satellite {norad} decayed during propagation")

        return r, v

    def positions_at(self, epoch: Epoch,
                     offsets_s: ArrayLike) -> np.ndarray:
        """Convenience accessor: TEME positions only, shape (N, T, 3)."""
        r, _ = self.propagate_offsets(epoch, offsets_s)
        return r

    # ------------------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "SGP4Batch":
        """A new batch over a row subset (stacks the same propagators)."""
        props = [self.propagators[int(i)] for i in indices]
        return SGP4Batch.from_propagators(props)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SGP4Batch(n={self._n})"
