"""Topocentric geometry: look angles, slant range and range rate.

All the link-budget quantities of the study derive from this module:
elevation angle gates contact windows, slant range sets path loss, and
range rate sets Doppler shift.

Besides the classic single-observer :func:`look_angles`, the module
provides the **multi-observer batch path** used by ``satiot.serving``:
the TEME→ECEF conversion (the expensive, observer-*independent* half of
the pipeline) is computed once via :func:`ecef_states`, and the cheap
observer-dependent SEZ projection is applied per observer
(:func:`look_angles_from_ecef`, :func:`elevation_from_ecef`,
:func:`batch_look_angles`, :func:`batch_elevations`).

Bit-identity contract
---------------------
The SEZ projection is written as explicit element-wise expressions (no
matrix product), so every per-element operation is a NumPy ufunc whose
result does not depend on the shape of the array it is embedded in.
Consequently a batched evaluation over N observers is **bit-identical**
to N independent serial calls — the contract the serving layer's
micro-batcher relies on, verified by
``tests/orbits/test_multi_observer.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .constants import RAD2DEG
from .frames import GeodeticPoint, ecef_velocity_from_teme, teme_to_ecef

__all__ = [
    "LookAngles",
    "batch_elevations",
    "batch_look_angles",
    "ecef_states",
    "elevation_from_ecef",
    "look_angles",
    "look_angles_from_ecef",
    "sez_rotation",
]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class LookAngles:
    """Observer-relative geometry of a satellite sample (vectorized).

    ``azimuth_deg``/``elevation_deg`` in degrees, ``range_km`` in km,
    ``range_rate_km_s`` in km/s (positive = receding).
    """

    azimuth_deg: ArrayLike
    elevation_deg: ArrayLike
    range_km: ArrayLike
    range_rate_km_s: ArrayLike


def sez_rotation(latitude_rad: float, longitude_rad: float) -> np.ndarray:
    """Rotation matrix from ECEF into the observer's SEZ frame."""
    sin_lat, cos_lat = np.sin(latitude_rad), np.cos(latitude_rad)
    sin_lon, cos_lon = np.sin(longitude_rad), np.cos(longitude_rad)
    return np.array([
        [sin_lat * cos_lon, sin_lat * sin_lon, -cos_lat],
        [-sin_lon, cos_lon, 0.0],
        [cos_lat * cos_lon, cos_lat * sin_lon, sin_lat],
    ])


def ecef_states(r_teme: np.ndarray, v_teme: np.ndarray,
                jd_ut1: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
    """Observer-independent half of the look-angle pipeline.

    Returns ``(r_ecef, v_ecef)`` for TEME state(s) of shape ``(..., 3)``.
    This is the expensive part (GMST trigonometry and three frame
    rotations); batching layers compute it once and share it across all
    observers.
    """
    r_ecef = teme_to_ecef(r_teme, jd_ut1)
    v_ecef = ecef_velocity_from_teme(r_teme, v_teme, jd_ut1)
    return r_ecef, v_ecef


def _sez_components(vec: np.ndarray, rot: np.ndarray):
    """Project ECEF vector(s) into SEZ with fixed element-wise ops.

    Written without a matrix product so each output element is an
    identical chain of scalar IEEE operations regardless of the batch
    shape — the root of the serial == batched bit-identity contract.
    """
    x, y, z = vec[..., 0], vec[..., 1], vec[..., 2]
    s = x * rot[0, 0] + y * rot[0, 1] + z * rot[0, 2]
    e = x * rot[1, 0] + y * rot[1, 1] + z * rot[1, 2]
    zz = x * rot[2, 0] + y * rot[2, 1] + z * rot[2, 2]
    return s, e, zz


def look_angles_from_ecef(observer: GeodeticPoint,
                          r_ecef: np.ndarray,
                          v_ecef: np.ndarray) -> LookAngles:
    """Observer-dependent half: SEZ projection and angle extraction.

    ``r_ecef``/``v_ecef`` come from :func:`ecef_states` and may be
    shared between many observers.
    """
    site = observer.ecef()
    rot = sez_rotation(observer.latitude_rad, observer.longitude_rad)
    rho_ecef = np.asarray(r_ecef, dtype=float) - site

    s, e, z = _sez_components(rho_ecef, rot)
    ds, de, dz = _sez_components(np.asarray(v_ecef, float), rot)

    rng = np.sqrt(s * s + e * e + z * z)
    elevation = np.arcsin(np.clip(z / rng, -1.0, 1.0)) * RAD2DEG
    azimuth = np.remainder(np.arctan2(e, -s) * RAD2DEG, 360.0)
    range_rate = (s * ds + e * de + z * dz) / rng

    if np.ndim(rng) == 0:
        return LookAngles(float(azimuth), float(elevation),
                          float(rng), float(range_rate))
    return LookAngles(azimuth, elevation, rng, range_rate)


def elevation_from_ecef(observer: GeodeticPoint,
                        r_ecef: np.ndarray,
                        site: Optional[np.ndarray] = None,
                        rot: Optional[np.ndarray] = None) -> np.ndarray:
    """Elevation (deg) only — the pass-finder's hot kernel.

    Skips the velocity projection and azimuth extraction entirely;
    bit-identical to ``look_angles(...).elevation_deg`` on the same
    states (same element-wise expression chain).  ``site``/``rot`` may
    carry the precomputed ``observer.ecef()`` / :func:`sez_rotation` to
    amortize them across repeated calls (they are trusted verbatim).
    """
    if site is None:
        site = observer.ecef()
    if rot is None:
        rot = sez_rotation(observer.latitude_rad, observer.longitude_rad)
    rho_ecef = np.asarray(r_ecef, dtype=float) - site
    s, e, z = _sez_components(rho_ecef, rot)
    rng = np.sqrt(s * s + e * e + z * z)
    return np.arcsin(np.clip(z / rng, -1.0, 1.0)) * RAD2DEG


def look_angles(observer: GeodeticPoint,
                r_teme: np.ndarray,
                v_teme: np.ndarray,
                jd_ut1: ArrayLike) -> LookAngles:
    """Compute az/el/range/range-rate of TEME state(s) from an observer.

    Accepts single states of shape (3,) or batched states of shape (N, 3)
    with matching ``jd_ut1`` of shape () or (N,).
    """
    r_ecef, v_ecef = ecef_states(r_teme, v_teme, jd_ut1)
    return look_angles_from_ecef(observer, r_ecef, v_ecef)


def batch_look_angles(observers: Sequence[GeodeticPoint],
                      r_teme: np.ndarray,
                      v_teme: np.ndarray,
                      jd_ut1: ArrayLike) -> LookAngles:
    """Look angles of shared TEME states from M observers at once.

    Returns a :class:`LookAngles` whose fields are arrays of shape
    ``(M,) + state_shape`` — row ``m`` is bit-identical to
    ``look_angles(observers[m], r_teme, v_teme, jd_ut1)``.  The frame
    conversion (the dominant cost) is evaluated once and shared.
    """
    r_ecef, v_ecef = ecef_states(r_teme, v_teme, jd_ut1)
    rows = [look_angles_from_ecef(obs, r_ecef, v_ecef)
            for obs in observers]
    return LookAngles(
        azimuth_deg=np.stack([np.asarray(r.azimuth_deg) for r in rows]),
        elevation_deg=np.stack([np.asarray(r.elevation_deg)
                                for r in rows]),
        range_km=np.stack([np.asarray(r.range_km) for r in rows]),
        range_rate_km_s=np.stack([np.asarray(r.range_rate_km_s)
                                  for r in rows]))


def batch_elevations(observers: Sequence[GeodeticPoint],
                     r_ecef: np.ndarray) -> np.ndarray:
    """Elevation matrix ``(M, N)`` of shared ECEF states from M observers.

    Row ``m`` is bit-identical to
    ``elevation_from_ecef(observers[m], r_ecef)``.
    """
    return np.stack([np.asarray(elevation_from_ecef(obs, r_ecef))
                     for obs in observers])
