"""Topocentric geometry: look angles, slant range and range rate.

All the link-budget quantities of the study derive from this module:
elevation angle gates contact windows, slant range sets path loss, and
range rate sets Doppler shift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from .constants import RAD2DEG
from .frames import GeodeticPoint, ecef_velocity_from_teme, teme_to_ecef

__all__ = ["LookAngles", "look_angles", "sez_rotation"]

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class LookAngles:
    """Observer-relative geometry of a satellite sample (vectorized).

    ``azimuth_deg``/``elevation_deg`` in degrees, ``range_km`` in km,
    ``range_rate_km_s`` in km/s (positive = receding).
    """

    azimuth_deg: ArrayLike
    elevation_deg: ArrayLike
    range_km: ArrayLike
    range_rate_km_s: ArrayLike


def sez_rotation(latitude_rad: float, longitude_rad: float) -> np.ndarray:
    """Rotation matrix from ECEF into the observer's SEZ frame."""
    sin_lat, cos_lat = np.sin(latitude_rad), np.cos(latitude_rad)
    sin_lon, cos_lon = np.sin(longitude_rad), np.cos(longitude_rad)
    return np.array([
        [sin_lat * cos_lon, sin_lat * sin_lon, -cos_lat],
        [-sin_lon, cos_lon, 0.0],
        [cos_lat * cos_lon, cos_lat * sin_lon, sin_lat],
    ])


def look_angles(observer: GeodeticPoint,
                r_teme: np.ndarray,
                v_teme: np.ndarray,
                jd_ut1: ArrayLike) -> LookAngles:
    """Compute az/el/range/range-rate of TEME state(s) from an observer.

    Accepts single states of shape (3,) or batched states of shape (N, 3)
    with matching ``jd_ut1`` of shape () or (N,).
    """
    r_ecef = teme_to_ecef(r_teme, jd_ut1)
    v_ecef = ecef_velocity_from_teme(r_teme, v_teme, jd_ut1)

    site = observer.ecef()
    rho_ecef = r_ecef - site

    rot = sez_rotation(observer.latitude_rad, observer.longitude_rad)
    rho_sez = rho_ecef @ rot.T
    drho_sez = v_ecef @ rot.T  # site is fixed in ECEF, so d(rho)=v_ecef

    s, e, z = rho_sez[..., 0], rho_sez[..., 1], rho_sez[..., 2]
    rng = np.sqrt(s * s + e * e + z * z)
    elevation = np.arcsin(np.clip(z / rng, -1.0, 1.0)) * RAD2DEG
    azimuth = np.remainder(np.arctan2(e, -s) * RAD2DEG, 360.0)
    range_rate = np.sum(rho_sez * drho_sez, axis=-1) / rng

    if np.ndim(rng) == 0:
        return LookAngles(float(azimuth), float(elevation),
                          float(rng), float(range_rate))
    return LookAngles(azimuth, elevation, rng, range_rate)
