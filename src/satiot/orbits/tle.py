"""Two-Line Element (TLE) codec.

Parses and formats NORAD two-line element sets, including the fixed-point
"assumed decimal" notation used for B*, n-dot/n-ddot and eccentricity, plus
the modulo-10 line checksum.  The :class:`TLE` value type is the interchange
format between the constellation generator and the SGP4 propagator.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Tuple


from .constants import DEG2RAD, MINUTES_PER_DAY, TWO_PI
from .timebase import Epoch, epoch_from_tle_date

__all__ = ["TLE", "TLEError", "checksum", "parse_tle", "parse_tle_file",
           "format_tle"]


class TLEError(ValueError):
    """Raised for malformed TLE lines."""


def checksum(line: str) -> int:
    """Modulo-10 TLE checksum of the first 68 columns.

    Digits count as their value; minus signs count as 1; everything else
    counts as 0.
    """
    total = 0
    for ch in line[:68]:
        if ch.isdigit():
            total += int(ch)
        elif ch == "-":
            total += 1
    return total % 10


def _parse_exp_field(field: str) -> float:
    """Parse the TLE 'assumed decimal with exponent' notation, e.g. ' 12345-4'."""
    field = field.strip()
    if not field or set(field) <= {"0", "+", "-", " "}:
        return 0.0
    sign = -1.0 if field[0] == "-" else 1.0
    body = field[1:] if field[0] in "+-" else field
    match = re.fullmatch(r"(\d+)([+-]\d)", body)
    if match is None:
        raise TLEError(f"bad exponent field: {field!r}")
    mantissa, exponent = match.groups()
    return sign * float(f"0.{mantissa}") * 10.0 ** int(exponent)


def _format_exp_field(value: float) -> str:
    """Inverse of :func:`_parse_exp_field`, producing an 8-column field.

    The field holds a 5-digit mantissa and a single signed exponent
    digit.  Normalized mantissas cover ``[1e-10, 1e9)``; below that the
    mantissa is *denormalized* (leading zeros, exponent pinned at -9,
    e.g. ``1e-11`` -> ``' 01000-9'``) down to the absolute floor of
    ``5e-15``, under which the value underflows to the zero field.
    Magnitudes at or above ``1e9`` cannot be written and raise
    :class:`TLEError`.
    """
    if value == 0.0:
        return " 00000+0"
    sign = "-" if value < 0 else " "
    mag = abs(value)
    exponent = int(math.floor(math.log10(mag))) + 1
    if exponent < -9:
        # Denormalized: parse accepts leading-zero mantissas (Celestrak
        # emits them), so sub-1e-10 magnitudes keep their digits instead
        # of collapsing to zero — format(parse(line)) stays a fixed
        # point on such lines.
        mantissa_digits = int(round(mag * 1e14))
        if mantissa_digits == 0:
            return " 00000+0"
        return f"{sign}{mantissa_digits:05d}-9"
    mantissa = mag / 10.0 ** exponent
    mantissa_digits = int(round(mantissa * 1e5))
    if mantissa_digits >= 100000:  # rounding carried over, e.g. 0.999999
        mantissa_digits = 10000
        exponent += 1
    if exponent > 9:
        raise TLEError(f"magnitude too large for exponent field: {value!r}")
    exp_str = f"{exponent:+d}"
    return f"{sign}{mantissa_digits:05d}{exp_str}"


@dataclass(frozen=True)
class TLE:
    """A parsed two-line element set.

    Angles are stored in **degrees** and mean motion in **revolutions per
    day**, exactly as written in the element set; use the ``*_rad`` /
    :meth:`no_kozai_rad_min` accessors for propagation units.
    """

    name: str
    norad_id: int
    classification: str
    intl_designator: str
    epochyr: int          # two-digit year
    epochdays: float      # fractional day of year (1.0 = Jan 1, 00:00)
    ndot: float           # rev/day^2 / 2 (as written in the TLE)
    nddot: float          # rev/day^3 / 6
    bstar: float          # 1/earth-radii
    ephemeris_type: int
    element_set_no: int
    inclination_deg: float
    raan_deg: float
    eccentricity: float
    argp_deg: float
    mean_anomaly_deg: float
    mean_motion_rev_day: float
    rev_number: int

    # ------------------------------------------------------------------
    # Derived accessors
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> Epoch:
        return Epoch(epoch_from_tle_date(self.epochyr, self.epochdays))

    @property
    def inclination_rad(self) -> float:
        return self.inclination_deg * DEG2RAD

    @property
    def raan_rad(self) -> float:
        return self.raan_deg * DEG2RAD

    @property
    def argp_rad(self) -> float:
        return self.argp_deg * DEG2RAD

    @property
    def mean_anomaly_rad(self) -> float:
        return self.mean_anomaly_deg * DEG2RAD

    @property
    def no_kozai_rad_min(self) -> float:
        """Mean motion in radians per minute (the SGP4 input unit)."""
        return self.mean_motion_rev_day * TWO_PI / MINUTES_PER_DAY

    @property
    def period_minutes(self) -> float:
        return MINUTES_PER_DAY / self.mean_motion_rev_day

    def with_name(self, name: str) -> "TLE":
        return replace(self, name=name)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_lines(self) -> Tuple[str, str]:
        return format_tle(self)

    def __str__(self) -> str:
        line1, line2 = self.to_lines()
        return f"{self.name}\n{line1}\n{line2}"


def parse_tle(line1: str, line2: str, name: str = "",
              validate_checksum: bool = True) -> TLE:
    """Parse a TLE from its two element lines."""
    line1 = line1.rstrip("\n")
    line2 = line2.rstrip("\n")
    if len(line1) < 69 or len(line2) < 69:
        raise TLEError("TLE lines must be at least 69 columns")
    if line1[0] != "1" or line2[0] != "2":
        raise TLEError("TLE line numbers must be 1 and 2")
    if validate_checksum:
        for line in (line1, line2):
            expected = checksum(line)
            actual = int(line[68])
            if expected != actual:
                raise TLEError(
                    f"checksum mismatch on line {line[0]}: "
                    f"expected {expected}, found {actual}")

    norad1 = int(line1[2:7])
    norad2 = int(line2[2:7])
    if norad1 != norad2:
        raise TLEError(f"catalog number mismatch: {norad1} vs {norad2}")

    try:
        tle = TLE(
            name=name.strip(),
            norad_id=norad1,
            classification=line1[7],
            intl_designator=line1[9:17].strip(),
            epochyr=int(line1[18:20]),
            epochdays=float(line1[20:32]),
            ndot=float(line1[33:43]),
            nddot=_parse_exp_field(line1[44:52]),
            bstar=_parse_exp_field(line1[53:61]),
            ephemeris_type=int(line1[62]) if line1[62].strip() else 0,
            element_set_no=int(line1[64:68]),
            inclination_deg=float(line2[8:16]),
            raan_deg=float(line2[17:25]),
            eccentricity=float("0." + line2[26:33].strip()),
            argp_deg=float(line2[34:42]),
            mean_anomaly_deg=float(line2[43:51]),
            mean_motion_rev_day=float(line2[52:63]),
            rev_number=int(line2[63:68]),
        )
    except ValueError as exc:
        raise TLEError(f"malformed TLE field: {exc}") from exc

    if not 0.0 <= tle.eccentricity < 1.0:
        raise TLEError(f"eccentricity out of range: {tle.eccentricity}")
    if tle.mean_motion_rev_day <= 0.0:
        raise TLEError("mean motion must be positive")
    if not 0.0 < tle.epochdays < 367.0:
        raise TLEError(f"epoch day-of-year out of range: {tle.epochdays}")
    return tle


def format_tle(tle: TLE) -> Tuple[str, str]:
    """Render a :class:`TLE` back to its two 69-column lines."""
    if not 0 <= tle.norad_id <= 99999:
        raise TLEError(f"catalog number out of range: {tle.norad_id}")
    if not 0 <= tle.epochyr <= 99:
        raise TLEError(f"two-digit epoch year out of range: {tle.epochyr}")
    if not 0.0 < tle.epochdays < 367.0:
        raise TLEError(f"epoch day-of-year out of range: {tle.epochdays}")
    if len(tle.intl_designator) > 8:
        raise TLEError(
            f"international designator too long: {tle.intl_designator!r}")
    if not 0 <= tle.element_set_no <= 9999:
        raise TLEError(
            f"element set number out of range: {tle.element_set_no}")
    if not 0 <= tle.ephemeris_type <= 9:
        raise TLEError(
            f"ephemeris type out of range: {tle.ephemeris_type}")
    if not 0 <= tle.rev_number <= 99999:
        raise TLEError(f"rev number out of range: {tle.rev_number}")
    # First-derivative field is written ' .00001234' / '-.00001234':
    # a sign column followed by the fraction with its leading zero dropped.
    # The field has no integer digits, so |ndot| must round below 1; a
    # magnitude that rounds to zero loses its sign (parsing the zero
    # field yields +0.0, so writing '-' would break the parse → format
    # fixed point the fingerprint cache relies on).
    ndot_body = f"{abs(tle.ndot):.8f}"
    if not ndot_body.startswith("0."):
        raise TLEError(f"ndot out of representable range: {tle.ndot}")
    sign = "-" if tle.ndot < 0 and float(ndot_body) != 0.0 else " "
    ndot_str = sign + ndot_body[1:]

    # Validate the *rounded* epoch day too: 366.999999999 is in range
    # but renders as '367.00000000', which the parser rejects.
    days_str = f"{tle.epochdays:012.8f}"
    if not 0.0 < float(days_str) < 367.0:
        raise TLEError(
            f"epoch day-of-year rounds out of range: {tle.epochdays!r} "
            f"-> {days_str}")

    line1 = (f"1 {tle.norad_id:05d}{tle.classification} "
             f"{tle.intl_designator:<8s} "
             f"{tle.epochyr:02d}{days_str} "
             f"{ndot_str} "
             f"{_format_exp_field(tle.nddot)} "
             f"{_format_exp_field(tle.bstar)} "
             f"{tle.ephemeris_type:1d} "
             f"{tle.element_set_no:4d}")
    line1 = f"{line1}{checksum(line1)}"

    # The eccentricity field holds only the 7 fraction digits, so a
    # value that *rounds* to 1.0 cannot be written (0.99999996 would
    # silently come back as 0.0).
    ecc_full = f"{tle.eccentricity:.7f}"
    if not ecc_full.startswith("0."):
        raise TLEError(
            f"eccentricity rounds outside [0, 1): {tle.eccentricity!r}")
    ecc_str = ecc_full[2:]
    line2 = (f"2 {tle.norad_id:05d} "
             f"{tle.inclination_deg:8.4f} "
             f"{tle.raan_deg:8.4f} "
             f"{ecc_str} "
             f"{tle.argp_deg:8.4f} "
             f"{tle.mean_anomaly_deg:8.4f} "
             f"{tle.mean_motion_rev_day:11.8f}"
             f"{tle.rev_number:5d}")
    line2 = f"{line2}{checksum(line2)}"

    if len(line1) != 69 or len(line2) != 69:
        raise TLEError("internal error: formatted line width != 69")
    return line1, line2


def parse_tle_file(lines: Iterable[str],
                   validate_checksum: bool = True) -> List[TLE]:
    """Parse a 2-line or 3-line (named) element file."""
    out: List[TLE] = []
    pending_name = ""
    it: Iterator[str] = iter([ln.rstrip("\n") for ln in lines if ln.strip()])
    for line in it:
        if line.startswith("1 ") and len(line) >= 69:
            try:
                line2 = next(it)
            except StopIteration:
                raise TLEError("dangling line 1 at end of file") from None
            out.append(parse_tle(line, line2, name=pending_name,
                                 validate_checksum=validate_checksum))
            pending_name = ""
        else:
            pending_name = line.strip()
    return out
