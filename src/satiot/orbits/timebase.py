"""Time-scale utilities: Julian dates, epochs and sidereal time.

The simulator runs on a single scalar timebase — **seconds since an epoch**
expressed as a Julian date (UTC).  We deliberately ignore the UT1/UTC and
leap-second distinctions: they shift ground tracks by well under a
kilometre, far below the fidelity a link-budget study needs.

GMST uses the IAU 1982 model, which is what classic TLE tooling pairs
with the TEME frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from .constants import SECONDS_PER_DAY, TWO_PI

__all__ = [
    "jday",
    "invjday",
    "days_in_year",
    "epoch_from_tle_date",
    "gmst",
    "Epoch",
]

ArrayLike = Union[float, np.ndarray]

_DAYS_PER_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def days_in_year(year: int) -> int:
    """Number of days in a Gregorian calendar year."""
    return 366 if _is_leap(year) else 365


def jday(year: int, month: int, day: int,
         hour: int = 0, minute: int = 0, second: float = 0.0) -> float:
    """Julian date (UTC) of a Gregorian calendar instant.

    Valid for years 1901-2099, which covers every TLE epoch.
    """
    if not 1 <= month <= 12:
        raise ValueError(f"month out of range: {month}")
    jd = (367.0 * year
          - math.floor(7.0 * (year + math.floor((month + 9) / 12.0)) * 0.25)
          + math.floor(275.0 * month / 9.0)
          + day + 1721013.5)
    frac = (second + minute * 60.0 + hour * 3600.0) / SECONDS_PER_DAY
    return jd + frac


def invjday(jd: float) -> Tuple[int, int, int, int, int, float]:
    """Inverse of :func:`jday` — Gregorian calendar date of a Julian date."""
    temp = jd - 2415019.5
    tu = temp / 365.25
    year = 1900 + int(math.floor(tu))
    leapyrs = int(math.floor((year - 1901) * 0.25))
    days = temp - ((year - 1900) * 365.0 + leapyrs)
    if days < 1.0:
        year -= 1
        leapyrs = int(math.floor((year - 1901) * 0.25))
        days = temp - ((year - 1900) * 365.0 + leapyrs)

    dayofyr = int(math.floor(days))
    # Month/day from day of year.
    lmonth = list(_DAYS_PER_MONTH)
    if _is_leap(year):
        lmonth[1] = 29
    i, inttemp = 0, 0
    while i < 11 and dayofyr > inttemp + lmonth[i]:
        inttemp += lmonth[i]
        i += 1
    month = i + 1
    day = dayofyr - inttemp

    temp = (days - dayofyr) * 24.0
    hour = int(math.floor(temp))
    temp = (temp - hour) * 60.0
    minute = int(math.floor(temp))
    second = (temp - minute) * 60.0
    return year, month, day, hour, minute, second


def epoch_from_tle_date(epochyr: int, epochdays: float) -> float:
    """Julian date from a TLE two-digit year and fractional day-of-year."""
    year = epochyr + 2000 if epochyr < 57 else epochyr + 1900
    jd_jan0 = jday(year, 1, 1) - 1.0
    return jd_jan0 + epochdays


def gmst(jd_ut1: ArrayLike) -> ArrayLike:
    """Greenwich Mean Sidereal Time (radians), IAU 1982 model.

    Accepts scalars or numpy arrays of Julian dates.
    """
    tut1 = (np.asarray(jd_ut1, dtype=float) - 2451545.0) / 36525.0
    temp = (-6.2e-6 * tut1 ** 3 + 0.093104 * tut1 ** 2
            + (876600.0 * 3600.0 + 8640184.812866) * tut1 + 67310.54841)
    theta = np.remainder(temp * TWO_PI / SECONDS_PER_DAY, TWO_PI)
    theta = np.where(theta < 0.0, theta + TWO_PI, theta)
    if np.ndim(jd_ut1) == 0:
        return float(theta)
    return theta


@dataclass(frozen=True, order=True)
class Epoch:
    """An absolute instant, stored as a Julian date (UTC).

    Thin value type used throughout the simulator; arithmetic is in
    seconds so protocol code never touches Julian-date fractions.
    """

    jd: float

    @classmethod
    def from_calendar(cls, year: int, month: int, day: int,
                      hour: int = 0, minute: int = 0,
                      second: float = 0.0) -> "Epoch":
        return cls(jday(year, month, day, hour, minute, second))

    def __add__(self, seconds: float) -> "Epoch":
        return Epoch(self.jd + seconds / SECONDS_PER_DAY)

    def __sub__(self, other: Union["Epoch", float]) -> Union[float, "Epoch"]:
        if isinstance(other, Epoch):
            return (self.jd - other.jd) * SECONDS_PER_DAY
        return Epoch(self.jd - other / SECONDS_PER_DAY)

    def offset_jd(self, seconds: ArrayLike) -> ArrayLike:
        """Julian date(s) at ``self + seconds`` (vectorized)."""
        return self.jd + np.asarray(seconds, dtype=float) / SECONDS_PER_DAY

    def calendar(self) -> Tuple[int, int, int, int, int, float]:
        return invjday(self.jd)

    def isoformat(self) -> str:
        y, mo, d, h, mi, s = self.calendar()
        return f"{y:04d}-{mo:02d}-{d:02d}T{h:02d}:{mi:02d}:{s:06.3f}Z"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Epoch({self.isoformat()})"
