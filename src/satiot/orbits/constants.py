"""Physical and geodetic constants used by the astrodynamics substrate.

Two gravity models are provided.  SGP4 historically uses WGS-72 constants
(this is what the distributed TLEs are fitted against), while coordinate
conversions between Earth-fixed and geodetic frames use the WGS-84
ellipsoid.  Mixing the two in this way mirrors standard practice
(Vallado, *Revisiting Spacetrack Report #3*, 2006).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "GravityModel",
    "WGS72",
    "WGS84",
    "EARTH_RADIUS_KM",
    "EARTH_FLATTENING",
    "EARTH_ROTATION_RAD_S",
    "SPEED_OF_LIGHT_M_S",
    "MU_EARTH_KM3_S2",
    "SECONDS_PER_DAY",
    "MINUTES_PER_DAY",
    "TWO_PI",
    "DEG2RAD",
    "RAD2DEG",
]

TWO_PI = 2.0 * math.pi
DEG2RAD = math.pi / 180.0
RAD2DEG = 180.0 / math.pi

SECONDS_PER_DAY = 86400.0
MINUTES_PER_DAY = 1440.0

#: Speed of light, used for Doppler and propagation delays.
SPEED_OF_LIGHT_M_S = 299_792_458.0

#: WGS-84 rotation rate of the Earth (rad/s), used for ECEF velocity.
EARTH_ROTATION_RAD_S = 7.292115e-5

#: WGS-84 equatorial radius (km) and flattening, used for geodetic frames.
EARTH_RADIUS_KM = 6378.137
EARTH_FLATTENING = 1.0 / 298.257223563

#: WGS-84 gravitational parameter (km^3/s^2); used for circular-orbit sizing.
MU_EARTH_KM3_S2 = 398600.4418


@dataclass(frozen=True)
class GravityModel:
    """Constant set consumed by the SGP4 propagator.

    Attributes mirror the naming of the reference implementation:

    * ``mu`` — gravitational parameter, km^3/s^2
    * ``radiusearthkm`` — equatorial radius, km
    * ``xke`` — sqrt(mu) in Earth-radii^1.5 per minute
    * ``tumin`` — minutes per time unit (1/xke)
    * ``j2``, ``j3``, ``j4`` — zonal harmonics
    """

    mu: float
    radiusearthkm: float
    xke: float
    tumin: float
    j2: float
    j3: float
    j4: float

    @property
    def j3oj2(self) -> float:
        return self.j3 / self.j2

    @classmethod
    def from_mu(cls, mu: float, radiusearthkm: float,
                j2: float, j3: float, j4: float) -> "GravityModel":
        xke = 60.0 / math.sqrt(radiusearthkm ** 3 / mu)
        return cls(mu=mu, radiusearthkm=radiusearthkm, xke=xke,
                   tumin=1.0 / xke, j2=j2, j3=j3, j4=j4)


#: WGS-72 constants — the canonical SGP4 gravity model.
WGS72 = GravityModel.from_mu(
    mu=398600.8,
    radiusearthkm=6378.135,
    j2=0.001082616,
    j3=-0.00000253881,
    j4=-0.00000165597,
)

#: WGS-84 constants, offered for completeness / cross-checks.
WGS84 = GravityModel.from_mu(
    mu=398600.5,
    radiusearthkm=6378.137,
    j2=0.00108262998905,
    j3=-0.00000253215306,
    j4=-0.00000161098761,
)
