"""Keplerian element utilities and the elliptic Kepler equation solver.

These routines back both the synthetic-TLE generator (sizing orbits from
altitudes) and the independent J2 secular propagator used to cross-check
SGP4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from .constants import (EARTH_RADIUS_KM, MINUTES_PER_DAY, MU_EARTH_KM3_S2,
                        SECONDS_PER_DAY, TWO_PI)

__all__ = [
    "solve_kepler",
    "true_from_eccentric",
    "eccentric_from_true",
    "mean_motion_rad_s",
    "semi_major_axis_km",
    "mean_motion_rev_day_from_altitude",
    "orbital_period_s",
    "circular_velocity_km_s",
    "KeplerianElements",
    "elements_from_state",
]

ArrayLike = Union[float, np.ndarray]


def solve_kepler(mean_anomaly: ArrayLike, eccentricity: ArrayLike,
                 tol: float = 1e-12, max_iter: int = 25) -> ArrayLike:
    """Solve Kepler's equation ``M = E - e sin E`` for the eccentric anomaly.

    Vectorized Newton-Raphson with a third-order starter; converges in a
    handful of iterations for any elliptic eccentricity.
    """
    m = np.remainder(np.asarray(mean_anomaly, dtype=float), TWO_PI)
    e = np.asarray(eccentricity, dtype=float)
    if np.any(e < 0.0) or np.any(e >= 1.0):
        raise ValueError("eccentricity must be in [0, 1)")

    # Starter: E0 = M + e sin M gives quadratic convergence everywhere
    # except very high e near M=0, where Newton still converges.
    ecc_anom = m + e * np.sin(m)
    for _ in range(max_iter):
        f = ecc_anom - e * np.sin(ecc_anom) - m
        fp = 1.0 - e * np.cos(ecc_anom)
        delta = f / fp
        ecc_anom = ecc_anom - delta
        if np.max(np.abs(delta)) < tol:
            break
    if np.ndim(mean_anomaly) == 0 and np.ndim(eccentricity) == 0:
        return float(ecc_anom)
    return ecc_anom


def true_from_eccentric(ecc_anom: ArrayLike, eccentricity: ArrayLike) -> ArrayLike:
    """True anomaly from eccentric anomaly."""
    e = np.asarray(eccentricity, dtype=float)
    big_e = np.asarray(ecc_anom, dtype=float)
    beta = np.sqrt((1.0 + e) / (1.0 - e))
    nu = 2.0 * np.arctan2(beta * np.sin(big_e / 2.0), np.cos(big_e / 2.0))
    if np.ndim(ecc_anom) == 0 and np.ndim(eccentricity) == 0:
        return float(nu)
    return nu


def eccentric_from_true(true_anom: ArrayLike, eccentricity: ArrayLike) -> ArrayLike:
    """Eccentric anomaly from true anomaly (inverse of the above)."""
    e = np.asarray(eccentricity, dtype=float)
    nu = np.asarray(true_anom, dtype=float)
    beta = np.sqrt((1.0 - e) / (1.0 + e))
    big_e = 2.0 * np.arctan2(beta * np.sin(nu / 2.0), np.cos(nu / 2.0))
    if np.ndim(true_anom) == 0 and np.ndim(eccentricity) == 0:
        return float(big_e)
    return big_e


def mean_motion_rad_s(semi_major_axis: float,
                      mu: float = MU_EARTH_KM3_S2) -> float:
    """Mean motion (rad/s) of an orbit with the given semi-major axis (km)."""
    if semi_major_axis <= 0.0:
        raise ValueError("semi-major axis must be positive")
    return math.sqrt(mu / semi_major_axis ** 3)


def semi_major_axis_km(mean_motion_rev_day: float,
                       mu: float = MU_EARTH_KM3_S2) -> float:
    """Semi-major axis (km) from mean motion in revolutions per day."""
    if mean_motion_rev_day <= 0.0:
        raise ValueError("mean motion must be positive")
    n_rad_s = mean_motion_rev_day * TWO_PI / SECONDS_PER_DAY
    return (mu / n_rad_s ** 2) ** (1.0 / 3.0)


def mean_motion_rev_day_from_altitude(altitude_km: float,
                                      mu: float = MU_EARTH_KM3_S2,
                                      earth_radius_km: float = EARTH_RADIUS_KM,
                                      ) -> float:
    """Mean motion (rev/day) of a circular orbit at the given altitude."""
    a = earth_radius_km + altitude_km
    n = mean_motion_rad_s(a, mu)
    return n * SECONDS_PER_DAY / TWO_PI


def orbital_period_s(semi_major_axis: float,
                     mu: float = MU_EARTH_KM3_S2) -> float:
    """Orbital period (seconds) for the given semi-major axis (km)."""
    return TWO_PI / mean_motion_rad_s(semi_major_axis, mu)


def circular_velocity_km_s(altitude_km: float,
                           mu: float = MU_EARTH_KM3_S2,
                           earth_radius_km: float = EARTH_RADIUS_KM) -> float:
    """Circular orbital speed (km/s) at the given altitude."""
    return math.sqrt(mu / (earth_radius_km + altitude_km))


@dataclass(frozen=True)
class KeplerianElements:
    """Classical orbital elements (angles in radians, lengths in km)."""

    semi_major_axis_km: float
    eccentricity: float
    inclination_rad: float
    raan_rad: float
    argp_rad: float
    mean_anomaly_rad: float

    def __post_init__(self) -> None:
        if self.semi_major_axis_km <= 0.0:
            raise ValueError("semi-major axis must be positive")
        if not 0.0 <= self.eccentricity < 1.0:
            raise ValueError("eccentricity must be in [0, 1)")

    @property
    def mean_motion_rad_s(self) -> float:
        return mean_motion_rad_s(self.semi_major_axis_km)

    @property
    def mean_motion_rev_day(self) -> float:
        return self.mean_motion_rad_s * SECONDS_PER_DAY / TWO_PI

    @property
    def period_minutes(self) -> float:
        return MINUTES_PER_DAY / self.mean_motion_rev_day

    @property
    def perigee_altitude_km(self) -> float:
        return (self.semi_major_axis_km * (1.0 - self.eccentricity)
                - EARTH_RADIUS_KM)

    @property
    def apogee_altitude_km(self) -> float:
        return (self.semi_major_axis_km * (1.0 + self.eccentricity)
                - EARTH_RADIUS_KM)

    def to_perifocal(self, at_mean_anomaly: float) -> Tuple[np.ndarray, np.ndarray]:
        """Position/velocity (km, km/s) in the perifocal (PQW) frame."""
        e = self.eccentricity
        big_e = solve_kepler(at_mean_anomaly, e)
        nu = true_from_eccentric(big_e, e)
        p = self.semi_major_axis_km * (1.0 - e * e)
        r = p / (1.0 + e * math.cos(nu))
        pos = np.array([r * math.cos(nu), r * math.sin(nu), 0.0])
        coef = math.sqrt(MU_EARTH_KM3_S2 / p)
        vel = np.array([-coef * math.sin(nu), coef * (e + math.cos(nu)), 0.0])
        return pos, vel

    def to_inertial(self, at_mean_anomaly: float) -> Tuple[np.ndarray, np.ndarray]:
        """Position/velocity in the parent inertial frame (km, km/s)."""
        pos_pqw, vel_pqw = self.to_perifocal(at_mean_anomaly)
        rot = _pqw_to_eci(self.raan_rad, self.inclination_rad, self.argp_rad)
        return rot @ pos_pqw, rot @ vel_pqw


def _pqw_to_eci(raan: float, incl: float, argp: float) -> np.ndarray:
    cr, sr = math.cos(raan), math.sin(raan)
    ci, si = math.cos(incl), math.sin(incl)
    cw, sw = math.cos(argp), math.sin(argp)
    return np.array([
        [cr * cw - sr * sw * ci, -cr * sw - sr * cw * ci, sr * si],
        [sr * cw + cr * sw * ci, -sr * sw + cr * cw * ci, -cr * si],
        [sw * si, cw * si, ci],
    ])


def elements_from_state(position_km: np.ndarray,
                        velocity_km_s: np.ndarray,
                        mu: float = MU_EARTH_KM3_S2) -> KeplerianElements:
    """Classical orbital elements from an inertial state vector (RV→COE).

    Standard vector derivation (angular momentum, node and eccentricity
    vectors); valid for elliptic, non-degenerate orbits.  Closes the
    loop with :meth:`KeplerianElements.to_inertial`, which the tests use
    as a round-trip check on both implementations.
    """
    r = np.asarray(position_km, dtype=float)
    v = np.asarray(velocity_km_s, dtype=float)
    if r.shape != (3,) or v.shape != (3,):
        raise ValueError("state vectors must have shape (3,)")
    r_mag = float(np.linalg.norm(r))
    v_mag = float(np.linalg.norm(v))
    if r_mag <= 0.0:
        raise ValueError("position vector is zero")

    h_vec = np.cross(r, v)
    h_mag = float(np.linalg.norm(h_vec))
    if h_mag < 1e-9:
        raise ValueError("degenerate (rectilinear) orbit")
    k_hat = np.array([0.0, 0.0, 1.0])
    n_vec = np.cross(k_hat, h_vec)
    n_mag = float(np.linalg.norm(n_vec))

    e_vec = (np.cross(v, h_vec) / mu) - r / r_mag
    ecc = float(np.linalg.norm(e_vec))
    if ecc >= 1.0:
        raise ValueError(f"orbit is not elliptic (e={ecc:.4f})")

    energy = 0.5 * v_mag ** 2 - mu / r_mag
    a = -mu / (2.0 * energy)

    incl = math.acos(max(-1.0, min(1.0, h_vec[2] / h_mag)))

    # RAAN; for equatorial orbits the node is undefined — use 0.
    if n_mag > 1e-11:
        raan = math.acos(max(-1.0, min(1.0, n_vec[0] / n_mag)))
        if n_vec[1] < 0.0:
            raan = TWO_PI - raan
    else:
        raan = 0.0
        n_vec = np.array([1.0, 0.0, 0.0])
        n_mag = 1.0

    # Argument of perigee; for circular orbits it is undefined — use 0.
    if ecc > 1e-11:
        argp = math.acos(max(-1.0, min(1.0,
                                       float(np.dot(n_vec, e_vec))
                                       / (n_mag * ecc))))
        if e_vec[2] < 0.0:
            argp = TWO_PI - argp
        nu = math.acos(max(-1.0, min(1.0,
                                     float(np.dot(e_vec, r))
                                     / (ecc * r_mag))))
        if float(np.dot(r, v)) < 0.0:
            nu = TWO_PI - nu
    else:
        argp = 0.0
        nu = math.acos(max(-1.0, min(1.0,
                                     float(np.dot(n_vec, r))
                                     / (n_mag * r_mag))))
        if r[2] < 0.0:
            nu = TWO_PI - nu

    big_e = eccentric_from_true(nu, ecc)
    mean_anom = (big_e - ecc * math.sin(big_e)) % TWO_PI

    return KeplerianElements(
        semi_major_axis_km=a, eccentricity=ecc, inclination_rad=incl,
        raan_rad=raan % TWO_PI, argp_rad=argp % TWO_PI,
        mean_anomaly_rad=mean_anom)
