"""Independent J2 secular propagator used to cross-validate SGP4.

This is a deliberately simple model: two-body motion plus the secular
(orbit-averaged) J2 rates on RAAN, argument of perigee and mean anomaly.
It shares no code with :mod:`satiot.orbits.sgp4`, so agreement between
the two on near-circular LEO orbits is strong evidence that neither has
a sign or unit error.
"""

from __future__ import annotations

import math
from typing import Tuple, Union

import numpy as np

from .constants import EARTH_RADIUS_KM, MU_EARTH_KM3_S2

from .kepler import KeplerianElements, solve_kepler, true_from_eccentric

__all__ = ["J2Propagator", "J2_EARTH"]

ArrayLike = Union[float, np.ndarray]

J2_EARTH = 0.00108262998905


class J2Propagator:
    """Analytic two-body + secular-J2 propagator.

    Parameters
    ----------
    elements:
        Osculating elements at the epoch.
    """

    def __init__(self, elements: KeplerianElements,
                 j2: float = J2_EARTH,
                 mu: float = MU_EARTH_KM3_S2,
                 earth_radius_km: float = EARTH_RADIUS_KM) -> None:
        self.elements = elements
        a = elements.semi_major_axis_km
        e = elements.eccentricity
        i = elements.inclination_rad
        n = math.sqrt(mu / a ** 3)  # rad/s
        p = a * (1.0 - e * e)
        factor = 1.5 * j2 * (earth_radius_km / p) ** 2 * n
        cos_i = math.cos(i)

        self.mu = mu
        self.n = n
        #: Secular nodal regression rate (rad/s).
        self.raan_dot = -factor * cos_i
        #: Secular apsidal rotation rate (rad/s).
        self.argp_dot = factor * (2.0 - 2.5 * math.sin(i) ** 2)
        #: Secular mean-anomaly correction (rad/s).
        self.m_dot = n + factor * math.sqrt(1.0 - e * e) \
            * (1.0 - 1.5 * math.sin(i) ** 2)

    def propagate(self, tsince_s: ArrayLike) -> Tuple[np.ndarray, np.ndarray]:
        """Inertial position (km) and velocity (km/s) at offsets from epoch."""
        t = np.atleast_1d(np.asarray(tsince_s, dtype=float))
        el = self.elements
        e = el.eccentricity
        a = el.semi_major_axis_km
        raan = el.raan_rad + self.raan_dot * t
        argp = el.argp_rad + self.argp_dot * t
        m = el.mean_anomaly_rad + self.m_dot * t

        big_e = solve_kepler(m, np.full_like(t, e))
        nu = true_from_eccentric(big_e, np.full_like(t, e))
        p = a * (1.0 - e * e)
        r_mag = p / (1.0 + e * np.cos(nu))

        cos_nu, sin_nu = np.cos(nu), np.sin(nu)
        r_pqw = np.stack([r_mag * cos_nu, r_mag * sin_nu,
                          np.zeros_like(nu)], axis=-1)
        coef = math.sqrt(self.mu / p)
        v_pqw = np.stack([-coef * sin_nu, coef * (e + cos_nu),
                          np.zeros_like(nu)], axis=-1)

        cr, sr = np.cos(raan), np.sin(raan)
        ci = math.cos(el.inclination_rad)
        si = math.sin(el.inclination_rad)
        cw, sw = np.cos(argp), np.sin(argp)

        # Row-wise rotation PQW -> inertial with time-varying raan/argp.
        r11 = cr * cw - sr * sw * ci
        r12 = -cr * sw - sr * cw * ci
        r21 = sr * cw + cr * sw * ci
        r22 = -sr * sw + cr * cw * ci
        r31 = sw * si
        r32 = cw * si

        def rotate(vec: np.ndarray) -> np.ndarray:
            x = r11 * vec[..., 0] + r12 * vec[..., 1]
            y = r21 * vec[..., 0] + r22 * vec[..., 1]
            z = r31 * vec[..., 0] + r32 * vec[..., 1]
            return np.stack([x, y, z], axis=-1)

        r_out = rotate(r_pqw)
        v_out = rotate(v_pqw)
        if np.ndim(tsince_s) == 0:
            return r_out[0], v_out[0]
        return r_out, v_out
