"""Reference-frame conversions: TEME → ECEF → geodetic.

TEME (true equator, mean equinox) is the frame SGP4 states are expressed
in.  We convert to an Earth-fixed frame by rotating through Greenwich
Mean Sidereal Time; polar motion (a few metres) is neglected, consistent
with the fidelity of a link-budget study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from .constants import (DEG2RAD, EARTH_FLATTENING, EARTH_RADIUS_KM,
                        EARTH_ROTATION_RAD_S, RAD2DEG)
from .timebase import gmst

__all__ = [
    "GeodeticPoint",
    "teme_to_ecef",
    "ecef_to_geodetic",
    "geodetic_to_ecef",
    "ecef_velocity_from_teme",
]

ArrayLike = Union[float, np.ndarray]

_E2 = EARTH_FLATTENING * (2.0 - EARTH_FLATTENING)  # first eccentricity^2


@dataclass(frozen=True)
class GeodeticPoint:
    """A point on/above the WGS-84 ellipsoid (degrees, km)."""

    latitude_deg: float
    longitude_deg: float
    altitude_km: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError(f"latitude out of range: {self.latitude_deg}")
        if not -180.0 <= self.longitude_deg <= 180.0:
            raise ValueError(f"longitude out of range: {self.longitude_deg}")

    @property
    def latitude_rad(self) -> float:
        return self.latitude_deg * DEG2RAD

    @property
    def longitude_rad(self) -> float:
        return self.longitude_deg * DEG2RAD

    def ecef(self) -> np.ndarray:
        """ECEF position of this point (km)."""
        return geodetic_to_ecef(self.latitude_deg, self.longitude_deg,
                                self.altitude_km)


def teme_to_ecef(r_teme: np.ndarray, jd_ut1: ArrayLike) -> np.ndarray:
    """Rotate TEME position(s) of shape (..., 3) into ECEF.

    ``jd_ut1`` must broadcast against the leading dimensions of ``r_teme``.
    """
    r = np.asarray(r_teme, dtype=float)
    theta = np.asarray(gmst(jd_ut1), dtype=float)
    cos_t = np.cos(theta)
    sin_t = np.sin(theta)
    x = cos_t * r[..., 0] + sin_t * r[..., 1]
    y = -sin_t * r[..., 0] + cos_t * r[..., 1]
    return np.stack([x, y, r[..., 2]], axis=-1)


def ecef_velocity_from_teme(r_teme: np.ndarray, v_teme: np.ndarray,
                            jd_ut1: ArrayLike) -> np.ndarray:
    """ECEF-relative velocity (km/s) from TEME state.

    Subtracts the Earth-rotation transport term ``omega x r`` so the result
    is the velocity seen by a ground observer (used for Doppler).
    """
    v_rot = teme_to_ecef(np.asarray(v_teme, dtype=float), jd_ut1)
    r_ecef = teme_to_ecef(np.asarray(r_teme, dtype=float), jd_ut1)
    omega = EARTH_ROTATION_RAD_S
    vx = v_rot[..., 0] + omega * r_ecef[..., 1]
    vy = v_rot[..., 1] - omega * r_ecef[..., 0]
    return np.stack([vx, vy, v_rot[..., 2]], axis=-1)


def geodetic_to_ecef(latitude_deg: ArrayLike, longitude_deg: ArrayLike,
                     altitude_km: ArrayLike = 0.0) -> np.ndarray:
    """ECEF position(s) (km) of geodetic coordinates on WGS-84."""
    lat = np.asarray(latitude_deg, dtype=float) * DEG2RAD
    lon = np.asarray(longitude_deg, dtype=float) * DEG2RAD
    alt = np.asarray(altitude_km, dtype=float)
    sin_lat = np.sin(lat)
    n = EARTH_RADIUS_KM / np.sqrt(1.0 - _E2 * sin_lat ** 2)
    x = (n + alt) * np.cos(lat) * np.cos(lon)
    y = (n + alt) * np.cos(lat) * np.sin(lon)
    z = (n * (1.0 - _E2) + alt) * sin_lat
    return np.stack([x, y, z], axis=-1)


def ecef_to_geodetic(r_ecef: np.ndarray,
                     max_iter: int = 10) -> Tuple[ArrayLike, ArrayLike, ArrayLike]:
    """Geodetic latitude/longitude (deg) and altitude (km) of ECEF points.

    Iterative Bowring-style solution; converges to sub-millimetre in a
    few iterations for any LEO/ground point.
    """
    r = np.asarray(r_ecef, dtype=float)
    x, y, z = r[..., 0], r[..., 1], r[..., 2]
    lon = np.arctan2(y, x)
    p = np.hypot(x, y)
    # Initial guess: spherical latitude.
    lat = np.arctan2(z, p * (1.0 - _E2))
    for _ in range(max_iter):
        sin_lat = np.sin(lat)
        n = EARTH_RADIUS_KM / np.sqrt(1.0 - _E2 * sin_lat ** 2)
        lat_new = np.arctan2(z + n * _E2 * sin_lat, p)
        if np.max(np.abs(lat_new - lat)) < 1.0e-12:
            lat = lat_new
            break
        lat = lat_new
    sin_lat = np.sin(lat)
    n = EARTH_RADIUS_KM / np.sqrt(1.0 - _E2 * sin_lat ** 2)
    cos_lat = np.cos(lat)
    # Altitude from the dominant component to stay stable near the poles.
    alt = np.where(np.abs(cos_lat) > 1e-8,
                   p / np.maximum(cos_lat, 1e-12) - n,
                   z / np.where(np.abs(sin_lat) > 1e-12, sin_lat, 1.0)
                   - n * (1.0 - _E2))
    lat_deg = lat * RAD2DEG
    lon_deg = lon * RAD2DEG
    if r.ndim == 1:
        return float(lat_deg), float(lon_deg), float(alt)
    return lat_deg, lon_deg, alt
