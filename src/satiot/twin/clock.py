"""Deterministic wall-clock → simulation-time mapping for the twin.

The digital-twin serving mode answers "where is the fleet *now*?"
against the same synthetic epoch the offline campaigns use.  The
mapping is one affine function::

    sim_offset_s = max(0, (real_now - anchor)) * rate

with three properties the serving layer depends on:

* **deterministic across processes** — ``anchor`` is an absolute unix
  timestamp carried in the (pickled) serving config, so every fleet
  worker computes the same mapping instead of each anchoring at its own
  fork instant;
* **monotonic** — ``time.time`` may step backwards (NTP); a high-water
  mark guarantees the sim offset never decreases within a process;
* **quantized for queries** — :meth:`SimClock.query_offset_s` floors
  the offset to ``quantum_s``.  Two workers asked for ``start=now``
  inside the same quantum resolve to the *same* offset, which keeps
  responses byte-identical across the fleet and turns the advancing
  clock into a slowly growing, cache-friendly sequence of time grids
  (each step extends the previous grid instead of keying a fresh one).

``time_source`` is injectable so tests drive the clock explicitly.
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import Callable, Optional, Tuple

from ..orbits.timebase import Epoch, jday

__all__ = ["SimClock", "parse_time_query", "MAX_QUERY_HORIZON_S",
           "SKEW_TOLERANCE_S"]

#: Hard ceiling on resolved start offsets — mirrors the serving layer's
#: seven-day prediction horizon.
MAX_QUERY_HORIZON_S = 7 * 86400.0

#: ISO timestamps this little *before* the constellation epoch are
#: clamped to 0 instead of rejected: clients anchor "now" on their own
#: wall clock, and a skewed-but-honest clock should not 4xx.
SKEW_TOLERANCE_S = 120.0

_ISO_RE = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})[Tt ]"
    r"(\d{2}):(\d{2}):(\d{2}(?:\.\d+)?)"
    r"(?:[Zz])?$")


class SimClock:
    """Monotonic simulated clock: sim seconds since the serving epoch.

    Parameters
    ----------
    rate:
        Simulation seconds per real second (``2.0`` = twice real time).
    anchor:
        Unix timestamp mapped to sim offset 0.  ``None`` anchors at
        construction.  Fleet supervisors resolve the anchor **once**
        and ship it to every worker so the mapping is fleet-global.
    time_source:
        Wall-clock source (defaults to :func:`time.time`); injectable
        for deterministic tests.
    quantum_s:
        Query-resolution granularity: :meth:`query_offset_s` floors to
        a multiple of this.  Must be positive.
    """

    def __init__(self, rate: float = 1.0,
                 anchor: Optional[float] = None,
                 time_source: Callable[[], float] = time.time,
                 quantum_s: float = 1.0) -> None:
        rate = float(rate)
        if not math.isfinite(rate) or rate <= 0:
            raise ValueError(f"clock rate must be a positive finite "
                             f"number, got {rate!r}")
        if not quantum_s > 0:
            raise ValueError("quantum_s must be positive")
        self.rate = rate
        self.quantum_s = float(quantum_s)
        self._time_source = time_source
        self.anchor = float(anchor) if anchor is not None \
            else float(time_source())
        self._high_water = 0.0
        self._lock = threading.Lock()

    def now_offset_s(self) -> float:
        """Current sim offset (seconds since the epoch), never negative
        and never decreasing within this process."""
        raw = (float(self._time_source()) - self.anchor) * self.rate
        with self._lock:
            self._high_water = max(self._high_water, raw, 0.0)
            return self._high_water

    def query_offset_s(self) -> float:
        """The offset ``start=now`` resolves to: floored to the quantum
        so every worker inside one quantum answers identically."""
        return math.floor(self.now_offset_s() / self.quantum_s) \
            * self.quantum_s

    def now_epoch(self, epoch: Epoch) -> Epoch:
        """The absolute sim instant, relative to ``epoch``."""
        return epoch + self.now_offset_s()


def _parse_iso(value: str) -> Optional[float]:
    """Julian date of an ISO-8601 timestamp, or None if not ISO-shaped.

    Stricter than a bare regex: calendar field ranges are validated
    here so ``2024-13-40T99:99:99`` is a clear error, not a weird date.
    """
    match = _ISO_RE.match(value)
    if match is None:
        return None
    year, month, day = (int(match.group(i)) for i in (1, 2, 3))
    hour, minute = int(match.group(4)), int(match.group(5))
    second = float(match.group(6))
    if not 1901 <= year <= 2099:
        raise ValueError(f"timestamp year {year} outside the supported "
                         f"1901-2099 range")
    if not 1 <= month <= 12:
        raise ValueError(f"timestamp month {month} out of range 1-12")
    if not 1 <= day <= 31:
        raise ValueError(f"timestamp day {day} out of range 1-31")
    if hour > 23 or minute > 59 or second >= 60.0:
        raise ValueError(f"timestamp time {value!r} out of range")
    return jday(year, month, day, hour, minute, second)


def parse_time_query(value, *, clock: Optional[SimClock] = None,
                     epoch: Optional[Epoch] = None,
                     horizon_s: float = MAX_QUERY_HORIZON_S,
                     allow_next: bool = True,
                     ) -> Tuple[float, str]:
    """Resolve a ``start=`` query value to ``(offset_s, mode)``.

    Accepted forms, in resolution order:

    * ``None`` / ``""`` — offset 0 (the constellation epoch);
    * a number — literal offset in seconds since the epoch;
    * ``"now"`` / ``"next"`` — the :class:`SimClock`'s quantized
      offset (requires a clock, i.e. ``--realtime``); ``"next"`` is
      reported as its own mode so pass queries can clamp to one pass;
    * ISO-8601 (``YYYY-MM-DDTHH:MM:SS[.fff][Z]``) — absolute UTC,
      resolved against ``epoch``; instants up to
      :data:`SKEW_TOLERANCE_S` before the epoch clamp to 0
      (client clock skew), earlier ones are rejected.

    Every rejection is a :class:`ValueError` with an actionable
    message — the serving layer maps these to 400s, never 500s.
    """
    mode = "offset"
    if value is None:
        return 0.0, mode
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        offset = float(value)
    else:
        text = str(value).strip()
        if not text:
            return 0.0, mode
        lowered = text.lower()
        if lowered in ("now", "next"):
            if lowered == "next" and not allow_next:
                raise ValueError(
                    "start='next' is only meaningful for pass queries; "
                    "use start='now'")
            if clock is None:
                raise ValueError(
                    f"start={lowered!r} needs the server's real-time "
                    f"clock; start it with --realtime (or use a "
                    f"numeric offset / ISO-8601 timestamp)")
            offset = clock.query_offset_s()
            mode = lowered
        else:
            try:
                jd = _parse_iso(text)
            except ValueError as exc:
                raise ValueError(f"bad start timestamp: {exc}") from exc
            if jd is not None:
                if epoch is None:
                    raise ValueError(
                        "ISO-8601 start timestamps need a "
                        "constellation epoch to resolve against")
                offset = float(Epoch(jd) - epoch)
                mode = "iso"
                if -SKEW_TOLERANCE_S <= offset < 0.0:
                    offset = 0.0  # skewed client clock: clamp, don't 4xx
                elif offset < 0.0:
                    raise ValueError(
                        f"start {text!r} predates the constellation "
                        f"epoch {epoch.isoformat()} by "
                        f"{-offset:.0f}s (beyond the "
                        f"{SKEW_TOLERANCE_S:.0f}s clock-skew "
                        f"tolerance)")
            else:
                try:
                    offset = float(text)
                except ValueError:
                    raise ValueError(
                        f"bad start {value!r}: expected 'now', 'next', "
                        f"a numeric offset in seconds, or an ISO-8601 "
                        f"timestamp (YYYY-MM-DDTHH:MM:SSZ)") from None
    if not math.isfinite(offset):
        raise ValueError(f"start offset must be finite, got {value!r}")
    if offset < 0.0:
        raise ValueError(
            f"start offset must be non-negative, got {offset:g}")
    if offset > horizon_s:
        raise ValueError(
            f"start offset {offset:.0f}s is beyond the "
            f"{horizon_s:.0f}s serving horizon")
    return offset, mode
