"""Real-time digital-twin support: sim clocks and time-query parsing.

The twin tier maps wall-clock time onto the simulation timeline so the
serving layer can answer ``start=now`` / ``start=next`` queries, and
feeds the incremental ephemeris extension path in
:mod:`satiot.runtime.ephemeris_cache`.
"""

from .clock import (MAX_QUERY_HORIZON_S, SKEW_TOLERANCE_S, SimClock,
                    parse_time_query)

__all__ = [
    "MAX_QUERY_HORIZON_S",
    "SKEW_TOLERANCE_S",
    "SimClock",
    "parse_time_query",
]
