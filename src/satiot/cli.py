"""Command-line interface.

Subcommands mirror the library's workflows::

    python -m satiot tle tianqi                 # export element sets
    python -m satiot passes tianqi --site HK    # contact windows
    python -m satiot presence --site HK         # Fig. 3a style table
    python -m satiot passive --sites HK --days 1 --out traces.npz
    python -m satiot active --days 2
    python -m satiot coverage tianqi --hours 24
    python -m satiot dataset export archive/ --sites HK,SYD --days 1
    python -m satiot dataset info archive/     # manifest + per-site table
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence


import numpy as np

from . import __version__
from .faults import FAULTS_ENV, FaultPlane, install_plane
from .constellations.catalog import (CONSTELLATION_SPECS,
                                     build_all_constellations,
                                     build_constellation)
from .core.active import ActiveCampaign, ActiveCampaignConfig
from .core.availability import daily_presence_hours
from .core.campaign import PassiveCampaign, PassiveCampaignConfig
from .core.contacts import analyze_contacts
from .core.performance import compare_systems
from .core.report import format_kv, format_table
from .core.sites import SITES
from .orbits.frames import GeodeticPoint
from .orbits.groundtrack import CoverageGrid
from .orbits.passes import PassPredictor
from .orbits.tle import format_tle

__all__ = ["main", "build_parser"]


def _resolve_location(args: argparse.Namespace) -> GeodeticPoint:
    if args.site is not None:
        if args.site not in SITES:
            raise SystemExit(f"unknown site {args.site!r}; "
                             f"choose from {sorted(SITES)}")
        return SITES[args.site].location
    if args.lat is None or args.lon is None:
        raise SystemExit("provide --site or both --lat and --lon")
    return GeodeticPoint(args.lat, args.lon)


def _add_location_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--site", choices=sorted(SITES), default=None,
                        help="a paper measurement site code")
    parser.add_argument("--lat", type=float, default=None)
    parser.add_argument("--lon", type=float, default=None)


def _add_trace_format_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-format", choices=("auto", "csv", "jsonl", "npz"),
        default="auto",
        help="trace file format (auto = npz for large runs, csv "
             "otherwise)")


def _resolve_trace_format(choice: str, total_traces: int,
                          out_path: Optional[str] = None) -> str:
    """``auto`` honours a recognised output suffix, then run size."""
    from pathlib import Path

    from .datasets import NPZ_AUTO_THRESHOLD
    from .groundstation.traces import TRACE_FORMATS
    if choice != "auto":
        return choice
    if out_path is not None:
        suffix = Path(out_path).suffix.lower().lstrip(".")
        if suffix in TRACE_FORMATS:
            return suffix
    return "npz" if total_traces >= NPZ_AUTO_THRESHOLD else "csv"


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="shard workers (default: $SATIOT_WORKERS or 1 = serial; "
             "0 = one per CPU); parallel runs are bit-identical to "
             "serial ones")
    parser.add_argument(
        "--timing", action="store_true",
        help="print per-shard runtime telemetry (wall time, events/s, "
             "ephemeris-cache hit/miss)")
    _add_faults_arg(parser)


def _add_faults_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="seeded fault-injection spec, e.g. "
             "'seed=7;cache.disk_read=p0.5;executor.task=n1' "
             "(also exported as $SATIOT_FAULTS so shard workers see "
             "it); see docs/faults.md")


def _install_faults(args: argparse.Namespace) -> None:
    """Arm the fault plane from ``--faults`` (and export the spec)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return
    try:
        plane = FaultPlane.from_spec(spec)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    # Export first: shard worker processes rebuild their plane from the
    # environment, the parent uses the installed instance.
    os.environ[FAULTS_ENV] = spec
    install_plane(plane)


# ----------------------------------------------------------------------
def cmd_tle(args: argparse.Namespace) -> int:
    constellation = build_constellation(args.constellation,
                                        seed=args.seed)
    for satellite in constellation:
        line1, line2 = format_tle(satellite.tle)
        print(satellite.name)
        print(line1)
        print(line2)
    return 0


def cmd_passes(args: argparse.Namespace) -> int:
    location = _resolve_location(args)
    constellation = build_constellation(args.constellation,
                                        seed=args.seed)
    epoch = constellation.satellites[0].tle.epoch
    rows = []
    for satellite in constellation:
        predictor = PassPredictor(satellite.propagator, location,
                                  args.min_elevation)
        for window in predictor.find_passes(epoch, args.days * 86400.0):
            rows.append([satellite.name, window.rise_s / 3600.0,
                         window.duration_s / 60.0,
                         window.max_elevation_deg])
    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["Satellite", "rise (h)", "duration (min)", "max el (deg)"],
        rows, precision=1,
        title=f"{constellation.name} passes, {args.days:g} day(s)"))
    print(f"{len(rows)} passes")
    return 0


def cmd_presence(args: argparse.Namespace) -> int:
    location = _resolve_location(args)
    rows = []
    for name, constellation in sorted(
            build_all_constellations(seed=args.seed).items()):
        epoch = constellation.satellites[0].tle.epoch
        hours = daily_presence_hours(constellation, location, epoch,
                                     days=args.days,
                                     min_elevation_deg=args.min_elevation)
        rows.append([constellation.name, len(constellation), hours])
    print(format_table(
        ["Constellation", "#SATs", "presence (h/day)"], rows,
        precision=1, title="Theoretical daily presence (Figure 3a)"))
    return 0


def cmd_passive(args: argparse.Namespace) -> int:
    _install_faults(args)
    sites = tuple(s.strip() for s in args.sites.split(",") if s.strip())
    config = PassiveCampaignConfig(sites=sites, days=args.days,
                                   seed=args.seed)
    result = PassiveCampaign(config, workers=args.workers).run()
    print(f"collected {result.total_traces} traces at "
          f"{len(sites)} site(s)")
    if args.timing and result.telemetry is not None:
        print()
        print(result.telemetry.render())
    for name in sorted(result.constellations):
        for code in sites:
            stats = analyze_contacts(result.receptions(code, name),
                                     result.duration_s)
            print(f"  {name:7s} @ {code}: "
                  f"theo {stats.theoretical_daily_hours:5.1f} h/day, "
                  f"eff {stats.effective_daily_hours:4.1f} h/day, "
                  f"shrink {stats.duration_shrinkage:.0%}")
    if args.out:
        fmt = _resolve_trace_format(args.trace_format,
                                    result.total_traces, args.out)
        fmt = result.dataset.save(args.out, trace_format=fmt)
        print(f"wrote {args.out} ({fmt})")
    return 0


# ----------------------------------------------------------------------
def _dataset_error(action: str, root: str, error: Exception) -> int:
    """Uniform dataset-CLI failure: clear message on stderr, exit 2.

    Covers missing archives, unreadable/corrupt files and malformed
    manifests — operator mistakes, not crashes, so no traceback.
    """
    print(f"error: cannot {action} dataset archive {root!r}: {error}",
          file=sys.stderr)
    return 2


def cmd_dataset_export(args: argparse.Namespace) -> int:
    from .datasets import export_dataset
    _install_faults(args)
    sites = tuple(s.strip() for s in args.sites.split(",") if s.strip())
    config = PassiveCampaignConfig(sites=sites, days=args.days,
                                   seed=args.seed)
    result = PassiveCampaign(config, workers=args.workers).run()
    try:
        manifest = export_dataset(result, args.root, name=args.name,
                                  trace_format=args.trace_format)
    except (OSError, ValueError) as error:
        return _dataset_error("write", args.root, error)
    print(f"archived {manifest.total_traces} traces "
          f"({manifest.trace_format}) under {args.root}")
    for code, count in sorted(manifest.sites.items()):
        print(f"  {code}: {count} traces")
    return 0


def cmd_dataset_info(args: argparse.Namespace) -> int:
    from .datasets import load_dataset
    try:
        manifest, datasets = load_dataset(args.root)
    except (OSError, ValueError, TypeError, KeyError) as error:
        return _dataset_error("read", args.root, error)
    print(format_kv([
        ("name", manifest.name),
        ("seed", manifest.seed),
        ("days", manifest.days),
        ("trace format", manifest.trace_format),
        ("total traces", manifest.total_traces),
    ], precision=1, title=f"Dataset archive {args.root}"))
    rows = []
    for code in sorted(datasets):
        dataset = datasets[code]
        rssi = dataset.column("rssi_dbm")
        rows.append([code, len(dataset),
                     ", ".join(dataset.constellations()),
                     float(np.median(rssi)) if rssi.size else
                     float("nan")])
    print(format_table(
        ["Site", "traces", "constellations", "median RSSI (dBm)"],
        rows, precision=1))
    return 0


def cmd_active(args: argparse.Namespace) -> int:
    config = ActiveCampaignConfig(days=args.days, seed=args.seed,
                                  max_retransmissions=args.retx,
                                  payload_bytes=args.payload)
    result = ActiveCampaign(config).run()
    comparison = compare_systems(result.all_satellite_records(),
                                 result.all_terrestrial_records())
    print(format_kv([
        ("satellite reliability", comparison.satellite_reliability),
        ("terrestrial reliability", comparison.terrestrial_reliability),
        ("satellite latency (min)", comparison.satellite_latency_min),
        ("terrestrial latency (min)",
         comparison.terrestrial_latency_min),
        ("latency ratio", comparison.latency_ratio),
        ("wait / DtS / delivery (min)",
         f"{comparison.wait_min:.1f} / {comparison.dts_min:.1f} / "
         f"{comparison.delivery_min:.1f}"),
    ], precision=3, title=f"Active campaign, {args.days:g} day(s)"))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .core.summary import ReportScale, full_report
    _install_faults(args)
    scale = ReportScale(passive_days=args.passive_days,
                        active_days=args.active_days, seed=args.seed)
    print(full_report(scale, workers=args.workers,
                      timing=args.timing))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .core.validation import run_self_checks
    results = run_self_checks()
    failures = 0
    for check in results:
        status = "PASS" if check.passed else "FAIL"
        print(f"[{status}] {check.name}: {check.detail}")
        failures += 0 if check.passed else 1
    print(f"{len(results) - failures}/{len(results)} checks passed")
    return 1 if failures else 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serving import ServingConfig, ServingServer
    _install_faults(args)
    constellations = tuple(
        s.strip().lower() for s in args.constellations.split(",")
        if s.strip())
    for name in constellations:
        if name not in CONSTELLATION_SPECS:
            raise SystemExit(f"unknown constellation {name!r}; choose "
                             f"from {sorted(CONSTELLATION_SPECS)}")
    config = ServingConfig(
        host=args.host, port=args.port,
        constellations=constellations,
        window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        batching=not args.no_batching,
        cache_ttl_s=args.cache_ttl,
        coarse_step_s=args.step)
    server = ServingServer(config)

    async def run() -> None:
        await server.start()
        mode = "micro-batched" if config.batching else "unbatched"
        print(f"satiot serving on "
              f"http://{config.host}:{server.bound_port} "
              f"({mode}; constellations: "
              f"{', '.join(server.service.constellation_names)})")
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    constellation = build_constellation(args.constellation,
                                        seed=args.seed)
    epoch = constellation.satellites[0].tle.epoch
    grid = CoverageGrid.empty(args.grid, args.hours * 3600.0)
    grid.accumulate_union([s.propagator for s in constellation], epoch,
                          step_s=args.step)
    print(format_kv([
        ("constellation", constellation.name),
        ("span (h)", args.hours),
        ("covered fraction of Earth", grid.covered_fraction()),
        ("mean access (h/day)", grid.mean_daily_hours()),
        ("access at Hong Kong (h)", grid.hours_at(22.3, 114.2)),
        ("access at the poles (h)", grid.hours_at(89.0, 0.0)),
    ], precision=2, title="Global coverage"))
    if args.map:
        print()
        print(grid.render_ascii())
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="satiot",
        description="Satellite IoT measurement-study reproduction")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--seed", type=int, default=42)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tle", help="print a constellation's element sets")
    p.add_argument("constellation", choices=sorted(CONSTELLATION_SPECS))
    p.set_defaults(func=cmd_tle)

    p = sub.add_parser("passes", help="predict contact windows")
    p.add_argument("constellation", choices=sorted(CONSTELLATION_SPECS))
    _add_location_args(p)
    p.add_argument("--days", type=float, default=1.0)
    p.add_argument("--min-elevation", type=float, default=0.0)
    p.set_defaults(func=cmd_passes)

    p = sub.add_parser("presence",
                       help="daily presence per constellation (Fig. 3a)")
    _add_location_args(p)
    p.add_argument("--days", type=float, default=1.0)
    p.add_argument("--min-elevation", type=float, default=0.0)
    p.set_defaults(func=cmd_presence)

    p = sub.add_parser("passive", help="run a passive campaign")
    p.add_argument("--sites", default="HK",
                   help="comma-separated site codes")
    p.add_argument("--days", type=float, default=1.0)
    p.add_argument("--out", default=None,
                   help="trace output path (csv/jsonl/npz)")
    _add_trace_format_arg(p)
    _add_runtime_args(p)
    p.set_defaults(func=cmd_passive)

    p = sub.add_parser("dataset",
                       help="archive / inspect trace datasets")
    dataset_sub = p.add_subparsers(dest="dataset_command", required=True)

    p = dataset_sub.add_parser(
        "export", help="run a passive campaign and archive it "
                       "(SINet layout: per-site files + manifest)")
    p.add_argument("root", help="archive directory")
    p.add_argument("--sites", default="HK",
                   help="comma-separated site codes")
    p.add_argument("--days", type=float, default=1.0)
    p.add_argument("--name", default="sinet-sim")
    _add_trace_format_arg(p)
    _add_runtime_args(p)
    p.set_defaults(func=cmd_dataset_export)

    p = dataset_sub.add_parser(
        "info", help="load an archive (format auto-detected from the "
                     "manifest) and summarise it")
    p.add_argument("root", help="archive directory")
    p.set_defaults(func=cmd_dataset_info)

    p = sub.add_parser("active", help="run the active Tianqi campaign")
    p.add_argument("--days", type=float, default=2.0)
    p.add_argument("--retx", type=int, default=5)
    p.add_argument("--payload", type=int, default=20)
    p.set_defaults(func=cmd_active)

    p = sub.add_parser("report",
                       help="run both campaigns, print the findings")
    p.add_argument("--passive-days", type=float, default=1.0)
    p.add_argument("--active-days", type=float, default=2.0)
    _add_runtime_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("validate",
                       help="run cross-implementation self-checks")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "serve", help="run the micro-batched pass/link-budget query "
                      "service (HTTP/JSON)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8340,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--constellations", default="tianqi",
                   help="comma-separated constellation names to load")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="micro-batch coalescing window (ms)")
    p.add_argument("--max-batch", type=int, default=256,
                   help="flush a batch at this many pending requests")
    p.add_argument("--max-pending", type=int, default=1024,
                   help="request-queue bound; beyond it clients get "
                        "429 + Retry-After")
    p.add_argument("--no-batching", action="store_true",
                   help="serve each request serially (baseline mode)")
    p.add_argument("--cache-ttl", type=float, default=60.0,
                   help="result-cache TTL (s)")
    p.add_argument("--step", type=float, default=30.0,
                   help="coarse pass-search step (s)")
    _add_faults_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("coverage", help="global coverage grid")
    p.add_argument("constellation", choices=sorted(CONSTELLATION_SPECS))
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--grid", type=float, default=10.0)
    p.add_argument("--step", type=float, default=60.0)
    p.add_argument("--map", action="store_true",
                   help="print an ASCII access-hours map")
    p.set_defaults(func=cmd_coverage)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
