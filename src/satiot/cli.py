"""Command-line interface.

Subcommands mirror the library's workflows::

    python -m satiot tle tianqi                 # export element sets
    python -m satiot passes tianqi --site HK    # contact windows
    python -m satiot presence --site HK         # Fig. 3a style table
    python -m satiot passive --sites HK --days 1 --out traces.npz
    python -m satiot active --days 2
    python -m satiot coverage tianqi --hours 24
    python -m satiot dataset export archive/ --sites HK,SYD --days 1
    python -m satiot dataset info archive/     # manifest-only, O(1)
    python -m satiot dataset info spill/ --verify  # checksum v2 shards
    python -m satiot passive --days 7 --spill spill/  # out-of-core run
    python -m satiot catalog synth fleet.3le.gz   # 5k-sat mega fleet
    python -m satiot catalog insert cat.db fleet.3le.gz --group-from-name
    python -m satiot catalog get cat.db group:MEGA-SHELL-D
    python -m satiot catalog history cat.db 70001 --last 3
    python -m satiot catalog stats cat.db
    python -m satiot scenario validate spec.json  # strict spec check
    python -m satiot scenario grid spec.json      # expanded sweep matrix
    python -m satiot scenario run spec.json --out runs/a --workers 4
    python -m satiot scenario diff runs/a runs/b  # KPI deltas (exit 1)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence


from . import __version__
from .faults import FAULTS_ENV, FaultPlane, install_plane
from .constellations.catalog import (CONSTELLATION_SPECS,
                                     build_all_constellations,
                                     build_constellation)
from .core.active import ActiveCampaign, ActiveCampaignConfig
from .core.availability import daily_presence_hours
from .core.campaign import PassiveCampaign, PassiveCampaignConfig
from .core.contacts import analyze_contacts
from .core.performance import compare_systems
from .core.report import format_kv, format_table
from .core.sites import SITES
from .orbits.frames import GeodeticPoint
from .orbits.groundtrack import CoverageGrid
from .orbits.passes import PassPredictor

__all__ = ["main", "build_parser"]


def _resolve_location(args: argparse.Namespace) -> GeodeticPoint:
    if args.site is not None:
        if args.site not in SITES:
            raise SystemExit(f"unknown site {args.site!r}; "
                             f"choose from {sorted(SITES)}")
        return SITES[args.site].location
    if args.lat is None or args.lon is None:
        raise SystemExit("provide --site or both --lat and --lon")
    return GeodeticPoint(args.lat, args.lon)


def _add_location_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--site", choices=sorted(SITES), default=None,
                        help="a paper measurement site code")
    parser.add_argument("--lat", type=float, default=None)
    parser.add_argument("--lon", type=float, default=None)


def _add_trace_format_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-format", choices=("auto", "csv", "jsonl", "npz"),
        default="auto",
        help="trace file format (auto = npz for large runs, csv "
             "otherwise)")


def _resolve_trace_format(choice: str, total_traces: int,
                          out_path: Optional[str] = None) -> str:
    """``auto`` honours a recognised output suffix, then run size."""
    from pathlib import Path

    from .datasets import NPZ_AUTO_THRESHOLD
    from .groundstation.traces import TRACE_FORMATS
    if choice != "auto":
        return choice
    if out_path is not None:
        suffix = Path(out_path).suffix.lower().lstrip(".")
        if suffix in TRACE_FORMATS:
            return suffix
    return "npz" if total_traces >= NPZ_AUTO_THRESHOLD else "csv"


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help="shard workers (default: $SATIOT_WORKERS or 1 = serial; "
             "0 = one per CPU); parallel runs are bit-identical to "
             "serial ones")
    parser.add_argument(
        "--timing", action="store_true",
        help="print per-shard runtime telemetry (wall time, events/s, "
             "ephemeris-cache hit/miss)")
    _add_faults_arg(parser)


def _add_spill_args(parser: argparse.ArgumentParser,
                    resume: bool = False) -> None:
    parser.add_argument(
        "--spill", default=None, metavar="DIR",
        help="stream traces into a sharded satiot-traces-v2 archive "
             "under DIR (bounded memory; see docs/streams.md)")
    parser.add_argument(
        "--rows-per-shard", type=int, default=100_000,
        help="rows per spilled shard (default: 100000)")
    if resume:
        parser.add_argument(
            "--resume", action="store_true",
            help="resume a killed run from DIR's checkpoint; the "
                 "finished archive is byte-identical to an "
                 "uninterrupted run")


def _add_faults_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="seeded fault-injection spec, e.g. "
             "'seed=7;cache.disk_read=p0.5;executor.task=n1' "
             "(also exported as $SATIOT_FAULTS so shard workers see "
             "it); see docs/faults.md")


def _install_faults(args: argparse.Namespace) -> None:
    """Arm the fault plane from ``--faults`` (and export the spec)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return
    try:
        plane = FaultPlane.from_spec(spec)
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    # Export first: shard worker processes rebuild their plane from the
    # environment, the parent uses the installed instance.
    os.environ[FAULTS_ENV] = spec
    install_plane(plane)


# ----------------------------------------------------------------------
def cmd_tle(args: argparse.Namespace) -> int:
    from .catalog import format_catalog, write_catalog
    constellation = build_constellation(args.constellation,
                                        seed=args.seed)
    tles = [satellite.tle for satellite in constellation]
    if args.out:
        count = write_catalog(tles, args.out, fmt=args.format)
        print(f"wrote {count} element sets ({args.format}) to {args.out}")
        return 0
    for line in format_catalog(tles, fmt=args.format):
        print(line)
    return 0


def cmd_passes(args: argparse.Namespace) -> int:
    location = _resolve_location(args)
    constellation = build_constellation(args.constellation,
                                        seed=args.seed)
    epoch = constellation.satellites[0].tle.epoch
    rows = []
    for satellite in constellation:
        predictor = PassPredictor(satellite.propagator, location,
                                  args.min_elevation)
        for window in predictor.find_passes(epoch, args.days * 86400.0):
            rows.append([satellite.name, window.rise_s / 3600.0,
                         window.duration_s / 60.0,
                         window.max_elevation_deg])
    rows.sort(key=lambda r: r[1])
    print(format_table(
        ["Satellite", "rise (h)", "duration (min)", "max el (deg)"],
        rows, precision=1,
        title=f"{constellation.name} passes, {args.days:g} day(s)"))
    print(f"{len(rows)} passes")
    return 0


def cmd_presence(args: argparse.Namespace) -> int:
    location = _resolve_location(args)
    rows = []
    for name, constellation in sorted(
            build_all_constellations(seed=args.seed).items()):
        epoch = constellation.satellites[0].tle.epoch
        hours = daily_presence_hours(constellation, location, epoch,
                                     days=args.days,
                                     min_elevation_deg=args.min_elevation)
        rows.append([constellation.name, len(constellation), hours])
    print(format_table(
        ["Constellation", "#SATs", "presence (h/day)"], rows,
        precision=1, title="Theoretical daily presence (Figure 3a)"))
    return 0


def cmd_passive(args: argparse.Namespace) -> int:
    _install_faults(args)
    sites = tuple(s.strip() for s in args.sites.split(",") if s.strip())
    config = PassiveCampaignConfig(sites=sites, days=args.days,
                                   seed=args.seed)
    result = PassiveCampaign(config, workers=args.workers).run()
    print(f"collected {result.total_traces} traces at "
          f"{len(sites)} site(s)")
    if args.timing and result.telemetry is not None:
        print()
        print(result.telemetry.render())
    for name in sorted(result.constellations):
        for code in sites:
            stats = analyze_contacts(result.receptions(code, name),
                                     result.duration_s)
            print(f"  {name:7s} @ {code}: "
                  f"theo {stats.theoretical_daily_hours:5.1f} h/day, "
                  f"eff {stats.effective_daily_hours:4.1f} h/day, "
                  f"shrink {stats.duration_shrinkage:.0%}")
    if args.out:
        fmt = _resolve_trace_format(args.trace_format,
                                    result.total_traces, args.out)
        fmt = result.dataset.save(args.out, trace_format=fmt)
        print(f"wrote {args.out} ({fmt})")
    if args.spill:
        manifest = result.spill_to(args.spill,
                                   rows_per_shard=args.rows_per_shard)
        print(f"spilled {manifest['total_rows']} traces into "
              f"{len(manifest['shards'])} shard(s) under {args.spill}")
    return 0


# ----------------------------------------------------------------------
def _dataset_error(action: str, root: str, error: Exception) -> int:
    """Uniform dataset-CLI failure: clear message on stderr, exit 2.

    Covers missing archives, unreadable/corrupt files and malformed
    manifests — operator mistakes, not crashes, so no traceback.
    """
    print(f"error: cannot {action} dataset archive {root!r}: {error}",
          file=sys.stderr)
    return 2


def cmd_dataset_export(args: argparse.Namespace) -> int:
    from .datasets import export_dataset
    _install_faults(args)
    sites = tuple(s.strip() for s in args.sites.split(",") if s.strip())
    config = PassiveCampaignConfig(sites=sites, days=args.days,
                                   seed=args.seed)
    result = PassiveCampaign(config, workers=args.workers).run()
    try:
        manifest = export_dataset(result, args.root, name=args.name,
                                  trace_format=args.trace_format)
    except (OSError, ValueError) as error:
        return _dataset_error("write", args.root, error)
    print(f"archived {manifest.total_traces} traces "
          f"({manifest.trace_format}) under {args.root}")
    for code, count in sorted(manifest.sites.items()):
        print(f"  {code}: {count} traces")
    if args.spill:
        try:
            stream = result.spill_to(
                args.spill, rows_per_shard=args.rows_per_shard)
        except (OSError, ValueError) as error:
            return _dataset_error("write", args.spill, error)
        print(f"spilled {stream['total_rows']} traces into "
              f"{len(stream['shards'])} shard(s) under {args.spill}")
    return 0


def _stream_archive_info(args: argparse.Namespace) -> int:
    """Summarise a sharded ``satiot-traces-v2`` spill archive.

    Reads only ``manifest.json`` — O(1) in archive size — unless
    ``--verify`` asks for the full checksum walk.  A truncated or
    corrupt shard surfaces as exit 2 with the offending file named.
    """
    from .streams.spill import ShardedTraceReader
    try:
        reader = ShardedTraceReader(args.root)
        if args.verify:
            reader.verify()
    except (OSError, ValueError, TypeError, KeyError) as error:
        return _dataset_error("read", args.root, error)
    manifest = reader.manifest
    meta = reader.meta
    print(format_kv([
        ("format", manifest["format"]),
        ("engine", meta.get("engine", "-")),
        ("total rows", reader.total_rows),
        ("shards", reader.shard_count),
        ("rows per shard", manifest["rows_per_shard"]),
        ("fingerprint", (manifest.get("fingerprint") or "-")[:16]),
        ("verified", "checksums OK" if args.verify
         else "no (manifest only; use --verify)"),
    ], precision=1, title=f"Dataset archive {args.root}"))
    print(format_table(
        ["Shard", "rows", "sha256"],
        [[entry["name"], entry["rows"], entry["sha256"][:12]]
         for entry in manifest["shards"]], precision=0))
    return 0


def cmd_dataset_info(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .datasets import _site_traces_path, read_manifest
    from .streams.spill import is_stream_archive
    if is_stream_archive(args.root):
        return _stream_archive_info(args)
    try:
        manifest = read_manifest(args.root)
        # O(1) per site: stat the trace file, never parse it.  --verify
        # upgrades to a full load with row-count validation.
        site_rows = []
        for code in sorted(manifest.sites):
            path = _site_traces_path(Path(args.root), code,
                                     manifest.trace_format)
            site_rows.append([code, manifest.sites[code], path.name,
                              path.stat().st_size / 1024.0])
        if args.verify:
            from .datasets import load_dataset
            load_dataset(args.root)
    except (OSError, ValueError, TypeError, KeyError) as error:
        return _dataset_error("read", args.root, error)
    print(format_kv([
        ("name", manifest.name),
        ("seed", manifest.seed),
        ("days", manifest.days),
        ("trace format", manifest.trace_format),
        ("total traces", manifest.total_traces),
        ("verified", "row counts OK" if args.verify
         else "no (manifest only; use --verify)"),
    ], precision=1, title=f"Dataset archive {args.root}"))
    print(format_table(
        ["Site", "traces", "file", "size (KiB)"], site_rows,
        precision=1))
    return 0


def cmd_active(args: argparse.Namespace) -> int:
    config = ActiveCampaignConfig(days=args.days, seed=args.seed,
                                  max_retransmissions=args.retx,
                                  payload_bytes=args.payload)
    result = ActiveCampaign(config).run()
    comparison = compare_systems(result.all_satellite_records(),
                                 result.all_terrestrial_records())
    print(format_kv([
        ("satellite reliability", comparison.satellite_reliability),
        ("terrestrial reliability", comparison.terrestrial_reliability),
        ("satellite latency (min)", comparison.satellite_latency_min),
        ("terrestrial latency (min)",
         comparison.terrestrial_latency_min),
        ("latency ratio", comparison.latency_ratio),
        ("wait / DtS / delivery (min)",
         f"{comparison.wait_min:.1f} / {comparison.dts_min:.1f} / "
         f"{comparison.delivery_min:.1f}"),
    ], precision=3, title=f"Active campaign, {args.days:g} day(s)"))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .core.summary import ReportScale, full_report
    _install_faults(args)
    scale = ReportScale(passive_days=args.passive_days,
                        active_days=args.active_days, seed=args.seed)
    print(full_report(scale, workers=args.workers,
                      timing=args.timing))
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .core.validation import run_self_checks
    results = run_self_checks()
    failures = 0
    for check in results:
        status = "PASS" if check.passed else "FAIL"
        print(f"[{status}] {check.name}: {check.detail}")
        failures += 0 if check.passed else 1
    print(f"{len(results) - failures}/{len(results)} checks passed")
    return 1 if failures else 0


def _serve_fleet(args: argparse.Namespace, config, workers: int) -> int:
    """Run ``satiot serve`` as a supervised multi-worker fleet."""
    import json
    import time as _time

    from .serving.supervisor import FleetConfig, ServingFleet

    try:
        fleet = ServingFleet(config, FleetConfig(
            workers=workers,
            ephemeris_dir=args.cache_dir,
            catalog=args.catalog,
            select=tuple(args.select) if args.select else None,
            catalog_name=args.catalog_name))
    except RuntimeError as error:
        raise SystemExit(f"error: {error}")
    port = fleet.start()
    try:
        fleet.wait_ready()
        names = ", ".join(config.constellations) or args.catalog_name
        print(f"satiot serving on http://{config.host}:{port} "
              f"({workers} workers, {fleet.mode}; constellations: "
              f"{names})", flush=True)
        while True:
            _time.sleep(3600.0)
    except KeyboardInterrupt:
        # Final fleet view: per-worker /metrics merged by the
        # supervisor (counters summed, histograms bucket-wise, latency
        # quantiles pooled) — the multi-process analogue of the
        # single-server shutdown stats.
        print("shutting down")
        try:
            print(json.dumps(fleet.fleet_metrics(timeout=2.0),
                             indent=2, sort_keys=True), flush=True)
        except Exception:
            pass
    finally:
        fleet.stop()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serving import ServingConfig, ServingServer
    from .serving.service import ConstellationService
    _install_faults(args)
    constellations = tuple(
        s.strip().lower() for s in args.constellations.split(",")
        if s.strip())
    for name in constellations:
        if name not in CONSTELLATION_SPECS:
            raise SystemExit(f"unknown constellation {name!r}; choose "
                             f"from {sorted(CONSTELLATION_SPECS)}")
    extra = []
    if args.catalog:
        from .catalog import TleNotFound, constellation_from_catalog
        from .orbits.tle import TLEError
        try:
            extra.append(constellation_from_catalog(
                args.catalog, args.select or None,
                name=args.catalog_name))
        except (OSError, TleNotFound, TLEError, ValueError) as error:
            raise SystemExit(
                f"error: cannot load catalog {args.catalog!r}: {error}")
    elif args.select:
        raise SystemExit("--select requires --catalog")
    if not constellations and not extra:
        raise SystemExit("nothing to serve: give --constellations "
                         "and/or --catalog")
    providers = None
    if args.providers is not None:
        from .econ.providers import PROVIDERS
        providers = tuple(
            s.strip().lower() for s in args.providers.split(",")
            if s.strip())
        for name in providers:
            if name not in PROVIDERS:
                raise SystemExit(f"unknown provider {name!r}; choose "
                                 f"from {sorted(PROVIDERS)}")
        if not providers:
            raise SystemExit("error: --providers given but empty")
    if args.rate <= 0:
        raise SystemExit("error: --rate must be positive")
    if args.rate != 1.0 and not args.realtime:
        raise SystemExit("error: --rate requires --realtime")
    config = ServingConfig(
        host=args.host, port=args.port,
        constellations=constellations,
        window_s=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        batching=not args.no_batching,
        cache_ttl_s=args.cache_ttl,
        coarse_step_s=args.step,
        realtime=args.realtime,
        rate=args.rate,
        providers=providers)

    from .serving.supervisor import default_workers
    try:
        workers = args.workers if args.workers is not None \
            else default_workers()
    except ValueError as error:
        raise SystemExit(f"error: {error}")
    if workers < 1:
        raise SystemExit("error: --workers must be a positive integer")
    if workers > 1:
        return _serve_fleet(args, config, workers)

    service = ConstellationService(constellations=constellations,
                                   coarse_step_s=config.coarse_step_s,
                                   extra=extra, providers=providers,
                                   realtime=config.realtime)
    server = ServingServer(config, service=service)

    async def run() -> None:
        await server.start()
        mode = "micro-batched" if config.batching else "unbatched"
        if config.realtime:
            mode += f", realtime x{config.rate:g}"
        print(f"satiot serving on "
              f"http://{config.host}:{server.bound_port} "
              f"({mode}; constellations: "
              f"{', '.join(server.service.constellation_names)})")
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def cmd_coverage(args: argparse.Namespace) -> int:
    constellation = build_constellation(args.constellation,
                                        seed=args.seed)
    epoch = constellation.satellites[0].tle.epoch
    grid = CoverageGrid.empty(args.grid, args.hours * 3600.0)
    grid.accumulate_union([s.propagator for s in constellation], epoch,
                          step_s=args.step)
    print(format_kv([
        ("constellation", constellation.name),
        ("span (h)", args.hours),
        ("covered fraction of Earth", grid.covered_fraction()),
        ("mean access (h/day)", grid.mean_daily_hours()),
        ("access at Hong Kong (h)", grid.hours_at(22.3, 114.2)),
        ("access at the poles (h)", grid.hours_at(89.0, 0.0)),
    ], precision=2, title="Global coverage"))
    if args.map:
        print()
        print(grid.render_ascii())
    return 0


# ----------------------------------------------------------------------
def _catalog_error(action: str, error: Exception) -> int:
    """Uniform catalog-CLI failure: message on stderr, exit 2.

    Selector misses, corrupt catalog files and bad arguments are
    operator mistakes, not crashes — no traceback.
    """
    print(f"error: cannot {action}: {error}", file=sys.stderr)
    return 2


def _catalog_entry_rows(entries) -> list:
    return [[e.norad_id, e.name, e.group or "-",
             f"{e.epoch_jd:.6f}",
             e.tle.inclination_deg, e.tle.mean_motion_rev_day]
            for e in entries]


_CATALOG_TABLE_HEADER = ["NORAD", "Name", "Group", "epoch (JD)",
                         "incl (deg)", "n (rev/day)"]


def cmd_catalog_insert(args: argparse.Namespace) -> int:
    from .catalog import TleDb
    from .orbits.tle import TLEError
    try:
        with TleDb(args.db) as db:
            stats = db.insert_file(
                args.file, group=args.group or "",
                group_from_name=args.group_from_name,
                validate_checksum=not args.no_validate_checksum)
    except (OSError, TLEError, ValueError) as error:
        return _catalog_error(f"ingest {args.file!r}", error)
    print(f"{args.db}: {stats.inserted} element sets inserted "
          f"({stats.duplicates} duplicates skipped, "
          f"{stats.new_objects} new objects)")
    return 0


def cmd_catalog_get(args: argparse.Namespace) -> int:
    from .catalog import TleNotFound, format_catalog, open_any_catalog
    try:
        with open_any_catalog(args.db) as db:
            entries = db.get(args.selectors or None,
                             as_of_jd=args.as_of)
    except (OSError, TleNotFound, ValueError) as error:
        return _catalog_error(f"select from {args.db!r}", error)
    if args.format == "table":
        print(format_table(_CATALOG_TABLE_HEADER,
                           _catalog_entry_rows(entries), precision=4,
                           title=f"{len(entries)} element set(s)"))
        return 0
    for line in format_catalog([e.tle for e in entries],
                               fmt=args.format):
        print(line)
    return 0


def cmd_catalog_history(args: argparse.Namespace) -> int:
    from .catalog import TleNotFound, open_any_catalog
    try:
        with open_any_catalog(args.db) as db:
            entries = db.history(args.selectors, last=args.last)
    except (OSError, TleNotFound, ValueError) as error:
        return _catalog_error(f"read history from {args.db!r}", error)
    print(format_table(_CATALOG_TABLE_HEADER,
                       _catalog_entry_rows(entries), precision=4,
                       title=f"{len(entries)} element set(s), "
                             f"epoch-ordered per object"))
    return 0


def cmd_catalog_find(args: argparse.Namespace) -> int:
    from .catalog import open_any_catalog
    try:
        with open_any_catalog(args.db) as db:
            entries = db.find(args.text)
    except (OSError, ValueError) as error:
        return _catalog_error(f"search {args.db!r}", error)
    print(format_table(_CATALOG_TABLE_HEADER,
                       _catalog_entry_rows(entries), precision=4,
                       title=f"{len(entries)} match(es) for "
                             f"{args.text!r}"))
    return 0


def cmd_catalog_stats(args: argparse.Namespace) -> int:
    from .catalog import open_any_catalog
    try:
        with open_any_catalog(args.db) as db:
            stats = db.stats()
    except (OSError, ValueError) as error:
        return _catalog_error(f"read {args.db!r}", error)
    print(format_kv([
        ("objects", stats.objects),
        ("element sets", stats.element_sets),
        ("groups", len(stats.groups)),
        ("first epoch (JD)", stats.first_epoch_jd or float("nan")),
        ("last epoch (JD)", stats.last_epoch_jd or float("nan")),
        ("epoch span (days)", stats.epoch_span_days),
    ], precision=6, title=f"Catalog {args.db}"))
    if stats.groups:
        print()
        print(format_table(
            ["Group", "objects"],
            [[grp, count] for grp, count in sorted(stats.groups.items())],
            precision=0))
    return 0


def cmd_catalog_synth(args: argparse.Namespace) -> int:
    from .catalog import (MEGACONST_5K, TleDb,
                          synthesize_mega_constellation, write_catalog)
    tles = synthesize_mega_constellation(MEGACONST_5K, seed=args.seed)
    if args.out.endswith(".db") or args.out.endswith(".sqlite"):
        with TleDb(args.out) as db:
            stats = db.insert(tles, group_from_name=True)
        print(f"synthesized {MEGACONST_5K.name}: {stats.inserted} "
              f"element sets into {args.out}")
        return 0
    count = write_catalog(tles, args.out, fmt=args.format)
    print(f"synthesized {MEGACONST_5K.name}: {count} element sets "
          f"({args.format}) to {args.out}")
    return 0


# ----------------------------------------------------------------------
def _scenario_error(action: str, error: Exception) -> int:
    """Uniform scenario-CLI failure: message on stderr, exit 2.

    Spec typos, unreadable files and non-run directories are operator
    mistakes, not crashes — no traceback.
    """
    print(f"error: cannot {action}: {error}", file=sys.stderr)
    return 2


def _load_scenario_document(path: str) -> dict:
    import json
    from pathlib import Path

    from .scenarios import ScenarioError
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ScenarioError("", f"{path}: {error}")
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise ScenarioError("", f"{path}: not valid JSON ({error})")


def cmd_scenario_run(args: argparse.Namespace) -> int:
    from .scenarios import (ScenarioError, parse_scenario,
                            render_kpi_table, run_scenario,
                            smoke_document)
    _install_faults(args)
    try:
        document = _load_scenario_document(args.spec)
        parse_scenario(document)  # validate the committed spec as-is
        if args.smoke:
            document = smoke_document(document)
        spec = parse_scenario(document)
    except ScenarioError as error:
        return _scenario_error(f"run scenario {args.spec!r}", error)
    run = run_scenario(spec, workers=args.workers, out_dir=args.out,
                       spill_dir=args.spill,
                       rows_per_shard=args.rows_per_shard,
                       resume=args.resume)
    print(render_kpi_table(run, spec.kpis))
    if args.out:
        print(f"wrote manifest.json + kpis.npz "
              f"({run.manifest['kpi_rows']} KPI rows) to {args.out}")
    if args.timing and run.telemetry is not None:
        print()
        print(run.telemetry.render())
    return 0


def cmd_scenario_grid(args: argparse.Namespace) -> int:
    from .scenarios import (ScenarioError, compile_cells, load_scenario,
                            render_grid)
    try:
        spec = load_scenario(args.spec)
        cells = compile_cells(spec)
    except ScenarioError as error:
        return _scenario_error(f"expand scenario {args.spec!r}", error)
    print(render_grid(spec, cells))
    return 0


def cmd_scenario_diff(args: argparse.Namespace) -> int:
    from .scenarios import ScenarioError, diff_runs, render_diff_report
    try:
        diff, manifest_a, manifest_b = diff_runs(
            args.run_a, args.run_b, rtol=args.rtol, atol=args.atol)
    except (OSError, ValueError, ScenarioError) as error:
        return _scenario_error(
            f"diff {args.run_a!r} vs {args.run_b!r}", error)
    print(render_diff_report(diff, manifest_a, manifest_b))
    return 0 if diff.identical else 1


def cmd_scenario_validate(args: argparse.Namespace) -> int:
    from .scenarios import (ScenarioError, compile_cells, load_scenario)
    failures = 0
    for path in args.specs:
        try:
            spec = load_scenario(path)
            cells = compile_cells(spec)
        except ScenarioError as error:
            print(f"[FAIL] {path}: {error}")
            failures += 1
            continue
        print(f"[ OK ] {path}: {spec.name} [{spec.kind}] — "
              f"{len(cells)} cell(s), seed {spec.seed}")
    return 1 if failures else 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="satiot",
        description="Satellite IoT measurement-study reproduction")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("--seed", type=int, default=42)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tle", help="print a constellation's element sets")
    p.add_argument("constellation", choices=sorted(CONSTELLATION_SPECS))
    p.add_argument("--format", choices=("3le", "2le"), default="3le",
                   help="catalog serialization (3le = named triples, "
                        "the default; 2le = bare line pairs)")
    p.add_argument("--out", default=None,
                   help="write to a catalog file instead of stdout "
                        "(gzip'd iff *.gz); re-ingestable via "
                        "'satiot catalog insert'")
    p.set_defaults(func=cmd_tle)

    p = sub.add_parser("passes", help="predict contact windows")
    p.add_argument("constellation", choices=sorted(CONSTELLATION_SPECS))
    _add_location_args(p)
    p.add_argument("--days", type=float, default=1.0)
    p.add_argument("--min-elevation", type=float, default=0.0)
    p.set_defaults(func=cmd_passes)

    p = sub.add_parser("presence",
                       help="daily presence per constellation (Fig. 3a)")
    _add_location_args(p)
    p.add_argument("--days", type=float, default=1.0)
    p.add_argument("--min-elevation", type=float, default=0.0)
    p.set_defaults(func=cmd_presence)

    p = sub.add_parser("passive", help="run a passive campaign")
    p.add_argument("--sites", default="HK",
                   help="comma-separated site codes")
    p.add_argument("--days", type=float, default=1.0)
    p.add_argument("--out", default=None,
                   help="trace output path (csv/jsonl/npz)")
    _add_trace_format_arg(p)
    _add_spill_args(p)
    _add_runtime_args(p)
    p.set_defaults(func=cmd_passive)

    p = sub.add_parser("dataset",
                       help="archive / inspect trace datasets")
    dataset_sub = p.add_subparsers(dest="dataset_command", required=True)

    p = dataset_sub.add_parser(
        "export", help="run a passive campaign and archive it "
                       "(SINet layout: per-site files + manifest)")
    p.add_argument("root", help="archive directory")
    p.add_argument("--sites", default="HK",
                   help="comma-separated site codes")
    p.add_argument("--days", type=float, default=1.0)
    p.add_argument("--name", default="sinet-sim")
    _add_trace_format_arg(p)
    _add_spill_args(p)
    _add_runtime_args(p)
    p.set_defaults(func=cmd_dataset_export)

    p = dataset_sub.add_parser(
        "info", help="summarise an archive from its manifest alone "
                     "(O(1); works on SINet layouts and sharded "
                     "satiot-traces-v2 spill archives)")
    p.add_argument("root", help="archive directory")
    p.add_argument("--verify", action="store_true",
                   help="also read every trace file: checksum each "
                        "v2 shard / row-count-check each site file")
    p.set_defaults(func=cmd_dataset_info)

    p = sub.add_parser("active", help="run the active Tianqi campaign")
    p.add_argument("--days", type=float, default=2.0)
    p.add_argument("--retx", type=int, default=5)
    p.add_argument("--payload", type=int, default=20)
    p.set_defaults(func=cmd_active)

    p = sub.add_parser("report",
                       help="run both campaigns, print the findings")
    p.add_argument("--passive-days", type=float, default=1.0)
    p.add_argument("--active-days", type=float, default=2.0)
    _add_runtime_args(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("validate",
                       help="run cross-implementation self-checks")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "serve", help="run the micro-batched pass/link-budget query "
                      "service (HTTP/JSON)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8340,
                   help="TCP port (0 = ephemeral)")
    p.add_argument("--constellations", default="tianqi",
                   help="comma-separated constellation names to load "
                        "('' with --catalog to serve the catalog only)")
    p.add_argument("--catalog", default=None, metavar="PATH",
                   help="also serve a catalog selection (sqlite archive "
                        "or TLE/3LE file) as one constellation")
    p.add_argument("--select", action="append", default=None,
                   metavar="SELECTOR",
                   help="catalog selector (repeatable; default: whole "
                        "catalog)")
    p.add_argument("--catalog-name", default="catalog",
                   help="name the catalog constellation is served under")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   help="micro-batch coalescing window (ms)")
    p.add_argument("--max-batch", type=int, default=256,
                   help="flush a batch at this many pending requests")
    p.add_argument("--max-pending", type=int, default=1024,
                   help="request-queue bound; beyond it clients get "
                        "429 + Retry-After")
    p.add_argument("--no-batching", action="store_true",
                   help="serve each request serially (baseline mode)")
    p.add_argument("--cache-ttl", type=float, default=60.0,
                   help="result-cache TTL (s)")
    p.add_argument("--step", type=float, default=30.0,
                   help="coarse pass-search step (s)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes answering on one port "
                        "(default: $SATIOT_SERVE_WORKERS or 1; >1 "
                        "starts the supervised SO_REUSEPORT fleet)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="shared ephemeris disk tier for fleet workers "
                        "(mmap'd read-only by every worker; default: "
                        "a private temp directory)")
    p.add_argument("--realtime", action="store_true",
                   help="digital-twin mode: arm the sim clock so "
                        "queries may say start=now / start=next")
    p.add_argument("--rate", type=float, default=1.0,
                   help="simulation seconds per real second "
                        "(with --realtime; default 1.0)")
    p.add_argument("--providers", default=None,
                   help="comma-separated provider names /v1/compare "
                        "may select (default: all registered)")
    _add_faults_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "catalog", help="element-set archive: ingest, query, history, "
                        "mega-constellation synthesis")
    catalog_sub = p.add_subparsers(dest="catalog_command", required=True)

    p = catalog_sub.add_parser(
        "insert", help="ingest a TLE/3LE catalog file (strict: "
                       "checksums + structure validated)")
    p.add_argument("db", help="sqlite archive (created on first use)")
    p.add_argument("file", help="catalog file, gzip'd or plain")
    p.add_argument("--group", default=None,
                   help="tag every inserted element set with this group")
    p.add_argument("--group-from-name", action="store_true",
                   help="derive each group from the satellite name "
                        "(strip the trailing -<digits> member suffix)")
    p.add_argument("--no-validate-checksum", action="store_true",
                   help="skip mod-10 line checksum verification")
    p.set_defaults(func=cmd_catalog_insert)

    p = catalog_sub.add_parser(
        "get", help="latest element set per selected object")
    p.add_argument("db", help="sqlite archive or TLE/3LE catalog file")
    p.add_argument("selectors", nargs="*", metavar="SELECTOR",
                   help="norad id, name, or norad:/name:/group: prefix "
                        "(none = whole catalog)")
    p.add_argument("--as-of", type=float, default=None, metavar="JD",
                   help="newest element set at or before this Julian "
                        "date, per object")
    p.add_argument("--format", choices=("table", "3le", "2le"),
                   default="table")
    p.set_defaults(func=cmd_catalog_get)

    p = catalog_sub.add_parser(
        "history", help="every archived element set of the selected "
                        "objects, epoch-ordered")
    p.add_argument("db", help="sqlite archive or TLE/3LE catalog file")
    p.add_argument("selectors", nargs="+", metavar="SELECTOR")
    p.add_argument("--last", type=int, default=None,
                   help="keep only each object's newest N element sets")
    p.set_defaults(func=cmd_catalog_history)

    p = catalog_sub.add_parser(
        "find", help="substring search over satellite names")
    p.add_argument("db", help="sqlite archive or TLE/3LE catalog file")
    p.add_argument("text")
    p.set_defaults(func=cmd_catalog_find)

    p = catalog_sub.add_parser(
        "stats", help="object/element-set/group counts and epoch span")
    p.add_argument("db", help="sqlite archive or TLE/3LE catalog file")
    p.set_defaults(func=cmd_catalog_stats)

    p = catalog_sub.add_parser(
        "synth", help="synthesize the 5000-satellite multi-shell mega-"
                      "constellation (seeded; --seed 2025 reproduces "
                      "the committed fixture byte-for-byte)")
    p.add_argument("out", help="output: catalog file (gzip'd iff *.gz) "
                               "or sqlite archive (*.db / *.sqlite)")
    p.add_argument("--format", choices=("3le", "2le"), default="3le")
    p.set_defaults(func=cmd_catalog_synth)

    p = sub.add_parser(
        "scenario", help="declarative campaign specs: validate, expand, "
                         "run, diff (see docs/scenarios.md)")
    scenario_sub = p.add_subparsers(dest="scenario_command",
                                    required=True)

    p = scenario_sub.add_parser(
        "run", help="run a scenario matrix and extract its KPI store")
    p.add_argument("spec", help="scenario JSON file")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write manifest.json + kpis.npz run directory")
    p.add_argument("--smoke", action="store_true",
                   help="shrink durations and truncate sweep axes to "
                        "their first two values (CI smoke mode)")
    _add_spill_args(p, resume=True)
    _add_runtime_args(p)
    p.set_defaults(func=cmd_scenario_run)

    p = scenario_sub.add_parser(
        "grid", help="print the expanded sweep matrix without running")
    p.add_argument("spec", help="scenario JSON file")
    p.set_defaults(func=cmd_scenario_grid)

    p = scenario_sub.add_parser(
        "diff", help="compare two run directories KPI-by-KPI "
                     "(exit 1 when they differ)")
    p.add_argument("run_a", help="baseline run directory")
    p.add_argument("run_b", help="candidate run directory")
    p.add_argument("--rtol", type=float, default=0.0,
                   help="relative tolerance (default 0 = bit-equal)")
    p.add_argument("--atol", type=float, default=0.0,
                   help="absolute tolerance (default 0 = bit-equal)")
    p.set_defaults(func=cmd_scenario_diff)

    p = scenario_sub.add_parser(
        "validate", help="strict-validate scenario files "
                         "(exit 1 on the first invalid spec)")
    p.add_argument("specs", nargs="+", metavar="SPEC",
                   help="scenario JSON file(s)")
    p.set_defaults(func=cmd_scenario_validate)

    p = sub.add_parser("coverage", help="global coverage grid")
    p.add_argument("constellation", choices=sorted(CONSTELLATION_SPECS))
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--grid", type=float, default=10.0)
    p.add_argument("--step", type=float, default=60.0)
    p.add_argument("--map", action="store_true",
                   help="print an ASCII access-hours map")
    p.set_defaults(func=cmd_coverage)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `satiot catalog get … | head`):
        # stop quietly like other Unix tools instead of dumping a
        # traceback.  Detach stdout so interpreter shutdown does not
        # trip over the dead descriptor while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the conventional exit status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
