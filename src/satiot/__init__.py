"""satiot — a simulation-based reproduction of
"Satellite IoT in Practice: A First Measurement Study on Network
Availability, Performance, and Costs" (IMC 2025).

The package provides every substrate the study depends on — an SGP4/TLE
astrodynamics stack, a LoRa PHY and channel model, ground-station and
constellation models, a discrete-event network simulator implementing the
Direct-to-Satellite (DtS) store-and-forward paradigm, and energy/cost
models — plus the measurement campaigns and analyses that regenerate the
paper's tables and figures.

Quickstart::

    from satiot import PassiveCampaign, PassiveCampaignConfig
    result = PassiveCampaign(PassiveCampaignConfig(days=1.0)).run()
    print(result.total_traces, "beacons received")
"""

from .constellations import (Constellation, DtSRadioProfile, Satellite,
                             build_all_constellations, build_constellation)
from .core import (ActiveCampaign, ActiveCampaignConfig,
                   ActiveCampaignResult, PassiveCampaign,
                   PassiveCampaignConfig, PassiveCampaignResult,
                   analyze_contacts, compare_energy, compare_systems,
                   daily_presence_hours)
from .groundstation import (BeaconReceiver, BeaconTrace, GroundStation,
                            Scheduler, TraceColumns, TraceDataset)
from .orbits import (SGP4, TLE, ContactWindow, Epoch, GeodeticPoint,
                     PassPredictor, parse_tle, parse_tle_file)
from .phy import DtSChannel, LinkBudget, LoRaModulation
from .runtime import (CampaignTelemetry, EphemerisCache, Shard,
                      ShardError, ShardExecutor, ShardTelemetry)

__version__ = "1.0.0"

__all__ = [
    "Constellation", "DtSRadioProfile", "Satellite",
    "build_all_constellations", "build_constellation",
    "ActiveCampaign", "ActiveCampaignConfig", "ActiveCampaignResult",
    "PassiveCampaign", "PassiveCampaignConfig", "PassiveCampaignResult",
    "analyze_contacts", "compare_energy", "compare_systems",
    "daily_presence_hours",
    "BeaconReceiver", "BeaconTrace", "GroundStation", "Scheduler",
    "TraceColumns", "TraceDataset",
    "SGP4", "TLE", "ContactWindow", "Epoch", "GeodeticPoint",
    "PassPredictor", "parse_tle", "parse_tle_file",
    "DtSChannel", "LinkBudget", "LoRaModulation",
    "CampaignTelemetry", "EphemerisCache", "Shard", "ShardError",
    "ShardExecutor", "ShardTelemetry",
    "__version__",
]
