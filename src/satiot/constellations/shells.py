"""Synthetic constellation shell generator.

Real element sets for the measured constellations are not redistributable,
so we synthesise TLEs from the orbital parameters published in paper
Table 3 (altitude band, inclination, satellite count).  Satellites are
spread Walker-style across planes with deterministic phasing so that
campaigns are reproducible; a seeded jitter keeps the geometry from being
artificially regular (these are rideshare CubeSats, not a designed Walker
constellation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from typing import List, Optional

import numpy as np

from ..orbits.kepler import mean_motion_rev_day_from_altitude
from ..orbits.tle import TLE

__all__ = ["ShellSpec", "generate_shell_tles"]


@dataclass(frozen=True)
class ShellSpec:
    """One orbital shell of a constellation (one row of paper Table 3)."""

    name: str
    count: int
    altitude_min_km: float
    altitude_max_km: float
    inclination_deg: float
    planes: Optional[int] = None
    eccentricity: float = 0.0008
    bstar: float = 2.0e-5
    raan_offset_deg: float = 0.0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("shell must contain at least one satellite")
        if self.altitude_max_km < self.altitude_min_km:
            raise ValueError("altitude_max_km < altitude_min_km")
        if not 0.0 <= self.inclination_deg <= 180.0:
            raise ValueError("inclination out of range")
        if not 0.0 <= self.eccentricity < 0.05:
            raise ValueError("shells model near-circular LEO orbits only")

    @property
    def mean_altitude_km(self) -> float:
        return 0.5 * (self.altitude_min_km + self.altitude_max_km)

    def plane_count(self) -> int:
        if self.planes is not None:
            if self.planes <= 0:
                raise ValueError("plane count must be positive")
            return min(self.planes, self.count)
        # Default: roughly sqrt(N) planes, at least one.
        return max(1, int(round(math.sqrt(self.count))))


def generate_shell_tles(spec: ShellSpec,
                        epochyr: int,
                        epochdays: float,
                        norad_base: int,
                        seed: int = 0,
                        raan_jitter_deg: float = 8.0,
                        phase_jitter_deg: float = 15.0) -> List[TLE]:
    """Generate one TLE per satellite in the shell.

    Altitudes are spread evenly across the shell's altitude band (matching
    the min-max ranges the paper reports), planes are spread in RAAN, and
    satellites within a plane are phased in mean anomaly.  ``seed`` feeds a
    dedicated RNG so repeated calls are bit-identical.
    """
    rng = np.random.default_rng(seed ^ (norad_base * 2654435761 % 2 ** 31))
    planes = spec.plane_count()
    sats_per_plane = int(math.ceil(spec.count / planes))

    if spec.count == 1:
        altitudes = [spec.mean_altitude_km]
    else:
        altitudes = list(np.linspace(spec.altitude_min_km,
                                     spec.altitude_max_km, spec.count))

    tles: List[TLE] = []
    for idx in range(spec.count):
        plane = idx // sats_per_plane
        slot = idx % sats_per_plane
        raan = (spec.raan_offset_deg + 360.0 * plane / planes
                + float(rng.uniform(-raan_jitter_deg, raan_jitter_deg)))
        mean_anom = (360.0 * slot / sats_per_plane
                     + 360.0 * plane / (planes * sats_per_plane)
                     + float(rng.uniform(-phase_jitter_deg,
                                         phase_jitter_deg)))
        n_rev_day = mean_motion_rev_day_from_altitude(altitudes[idx])
        tles.append(TLE(
            name=f"{spec.name}-{idx + 1:02d}",
            norad_id=norad_base + idx,
            classification="U",
            intl_designator=f"{epochyr:02d}{(norad_base % 900) + 1:03d}"
                            f"{chr(ord('A') + idx % 26)}",
            epochyr=epochyr,
            epochdays=epochdays,
            ndot=0.0,
            nddot=0.0,
            bstar=spec.bstar,
            ephemeris_type=0,
            element_set_no=999,
            inclination_deg=spec.inclination_deg,
            raan_deg=raan % 360.0,
            eccentricity=spec.eccentricity,
            argp_deg=float(rng.uniform(0.0, 360.0)),
            mean_anomaly_deg=mean_anom % 360.0,
            mean_motion_rev_day=n_rev_day,
            rev_number=1,
        ))
    return tles
