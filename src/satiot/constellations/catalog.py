"""Catalog of the four constellations measured by the paper (Table 3).

The orbital structure (satellite counts, altitude bands, inclinations,
DtS frequencies) comes straight from paper Table 3; the radio-link
parameters are the calibration knobs of the reproduction, chosen so the
simulated beacon statistics match the paper's measured availability
numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from functools import cached_property
from typing import Dict, List, Optional, Tuple


from ..orbits.sgp4 import SGP4
from ..orbits.tle import TLE
from .footprint import footprint_area_km2
from .shells import ShellSpec, generate_shell_tles

__all__ = [
    "DtSRadioProfile",
    "Satellite",
    "Constellation",
    "CONSTELLATION_SPECS",
    "build_constellation",
    "build_all_constellations",
]


@dataclass(frozen=True)
class DtSRadioProfile:
    """LoRa radio configuration of a constellation's DtS link."""

    frequency_hz: float
    spreading_factor: int = 10
    bandwidth_hz: float = 125_000.0
    coding_rate: int = 5               # 4/5
    beacon_period_s: float = 10.0
    beacon_payload_bytes: int = 24
    beacon_eirp_dbm: float = 12.0      # effective beacon EIRP (incl. pointing loss)
    uplink_max_eirp_dbm: float = 22.0  # ground-node transmit EIRP budget
    preamble_symbols: int = 8
    explicit_header: bool = True
    low_data_rate_optimize: bool = True

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if not 5 <= self.spreading_factor <= 12:
            raise ValueError("LoRa spreading factor must be in 5..12")
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        if not 5 <= self.coding_rate <= 8:
            raise ValueError("coding rate denominator must be in 5..8")
        if self.beacon_period_s <= 0:
            raise ValueError("beacon period must be positive")


@dataclass(frozen=True)
class Satellite:
    """One satellite: element set plus the constellation's radio profile."""

    tle: TLE
    constellation_name: str
    radio: DtSRadioProfile
    shell_name: str = ""

    @cached_property
    def propagator(self) -> SGP4:
        return SGP4(self.tle)

    @property
    def name(self) -> str:
        return self.tle.name

    @property
    def norad_id(self) -> int:
        return self.tle.norad_id

    @property
    def mean_altitude_km(self) -> float:
        from ..orbits.kepler import semi_major_axis_km
        from ..orbits.constants import EARTH_RADIUS_KM
        return (semi_major_axis_km(self.tle.mean_motion_rev_day)
                - EARTH_RADIUS_KM)


@dataclass(frozen=True)
class ConstellationSpec:
    """Static description of one constellation (one block of Table 3)."""

    name: str
    operator_region: str
    shells: Tuple[ShellSpec, ...]
    radio: DtSRadioProfile
    norad_base: int

    @property
    def satellite_count(self) -> int:
        return sum(shell.count for shell in self.shells)


@dataclass(frozen=True)
class Constellation:
    """A concrete constellation: generated satellites plus metadata."""

    spec: ConstellationSpec
    satellites: Tuple[Satellite, ...]

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def radio(self) -> DtSRadioProfile:
        return self.spec.radio

    def __len__(self) -> int:
        return len(self.satellites)

    def __iter__(self):
        return iter(self.satellites)

    def satellite_by_norad(self, norad_id: int) -> Satellite:
        for sat in self.satellites:
            if sat.norad_id == norad_id:
                return sat
        raise KeyError(f"no satellite {norad_id} in {self.name}")

    def footprint_areas_km2(self) -> Dict[str, float]:
        """Mean footprint area per shell (reproduces Table 3 column 5)."""
        return {shell.name: footprint_area_km2(shell.mean_altitude_km)
                for shell in self.spec.shells}


# ----------------------------------------------------------------------
# Paper Table 3, verbatim orbital structure.
# ----------------------------------------------------------------------
CONSTELLATION_SPECS: Dict[str, ConstellationSpec] = {
    "tianqi": ConstellationSpec(
        name="Tianqi",
        operator_region="China",
        shells=(
            ShellSpec("TQ-A", count=16, altitude_min_km=815.7,
                      altitude_max_km=897.5, inclination_deg=49.97),
            ShellSpec("TQ-B", count=4, altitude_min_km=544.0,
                      altitude_max_km=556.9, inclination_deg=35.00),
            ShellSpec("TQ-C", count=2, altitude_min_km=441.9,
                      altitude_max_km=493.0, inclination_deg=97.61),
        ),
        radio=DtSRadioProfile(frequency_hz=400.45e6, spreading_factor=10,
                              beacon_period_s=5.0, beacon_eirp_dbm=10.5,
                              uplink_max_eirp_dbm=25.0),
        norad_base=44100,
    ),
    "fossa": ConstellationSpec(
        name="FOSSA",
        operator_region="EU",
        shells=(
            ShellSpec("FOSSA", count=3, altitude_min_km=508.7,
                      altitude_max_km=512.0, inclination_deg=97.36),
        ),
        radio=DtSRadioProfile(frequency_hz=401.7e6, spreading_factor=11,
                              beacon_period_s=30.0, beacon_eirp_dbm=9.5),
        norad_base=52700,
    ),
    "pico": ConstellationSpec(
        name="PICO",
        operator_region="US",
        shells=(
            ShellSpec("PICO", count=9, altitude_min_km=507.9,
                      altitude_max_km=522.1, inclination_deg=97.72),
        ),
        radio=DtSRadioProfile(frequency_hz=436.26e6, spreading_factor=10,
                              beacon_period_s=20.0, beacon_eirp_dbm=9.5),
        norad_base=51000,
    ),
    "cstp": ConstellationSpec(
        name="CSTP",
        operator_region="Russia",
        shells=(
            ShellSpec("CSTP", count=5, altitude_min_km=468.3,
                      altitude_max_km=523.7, inclination_deg=97.45),
        ),
        radio=DtSRadioProfile(frequency_hz=437.985e6, spreading_factor=10,
                              beacon_period_s=25.0, beacon_eirp_dbm=9.0),
        norad_base=53500,
    ),
}


def build_constellation(name: str,
                        epochyr: int = 24,
                        epochdays: float = 245.0,
                        seed: int = 7,
                        spec: Optional[ConstellationSpec] = None,
                        ) -> Constellation:
    """Instantiate a constellation's satellites from its spec.

    ``name`` is case-insensitive and must be one of
    ``tianqi | fossa | pico | cstp`` unless an explicit ``spec`` is given.
    """
    if spec is None:
        key = name.lower()
        if key not in CONSTELLATION_SPECS:
            raise KeyError(
                f"unknown constellation {name!r}; "
                f"choose from {sorted(CONSTELLATION_SPECS)}")
        spec = CONSTELLATION_SPECS[key]

    satellites: List[Satellite] = []
    norad = spec.norad_base
    for shell in spec.shells:
        tles = generate_shell_tles(shell, epochyr=epochyr,
                                   epochdays=epochdays,
                                   norad_base=norad, seed=seed)
        for tle in tles:
            satellites.append(Satellite(
                tle=tle.with_name(f"{spec.name}-{tle.name}"),
                constellation_name=spec.name,
                radio=spec.radio,
                shell_name=shell.name))
        norad += shell.count
    return Constellation(spec=spec, satellites=tuple(satellites))


def build_all_constellations(epochyr: int = 24, epochdays: float = 245.0,
                             seed: int = 7) -> Dict[str, Constellation]:
    """Build the four measured constellations (39 satellites total)."""
    return {key: build_constellation(key, epochyr=epochyr,
                                     epochdays=epochdays, seed=seed)
            for key in CONSTELLATION_SPECS}
