"""Satellite footprint geometry.

A satellite's footprint is the spherical cap of the Earth from which the
satellite is above the local elevation mask.  Paper Table 3 quotes these
areas per constellation; we recompute them from altitude.
"""

from __future__ import annotations

import math

from ..orbits.constants import DEG2RAD, EARTH_RADIUS_KM

__all__ = [
    "earth_central_angle_rad",
    "footprint_area_km2",
    "footprint_radius_km",
    "slant_range_km",
]


def earth_central_angle_rad(altitude_km: float,
                            min_elevation_deg: float = 0.0,
                            earth_radius_km: float = EARTH_RADIUS_KM) -> float:
    """Half-angle of the visibility cap at the Earth's centre.

    For elevation mask ``e`` and altitude ``h``:
    ``lambda = acos(Re cos(e) / (Re + h)) - e``.
    """
    if altitude_km <= 0.0:
        raise ValueError("altitude must be positive")
    el = min_elevation_deg * DEG2RAD
    ratio = earth_radius_km * math.cos(el) / (earth_radius_km + altitude_km)
    return math.acos(ratio) - el


def footprint_area_km2(altitude_km: float,
                       min_elevation_deg: float = 0.0,
                       earth_radius_km: float = EARTH_RADIUS_KM) -> float:
    """Area (km^2) of the Earth surface that can see the satellite."""
    lam = earth_central_angle_rad(altitude_km, min_elevation_deg,
                                  earth_radius_km)
    return 2.0 * math.pi * earth_radius_km ** 2 * (1.0 - math.cos(lam))


def footprint_radius_km(altitude_km: float,
                        min_elevation_deg: float = 0.0,
                        earth_radius_km: float = EARTH_RADIUS_KM) -> float:
    """Great-circle radius (km) of the footprint cap."""
    lam = earth_central_angle_rad(altitude_km, min_elevation_deg,
                                  earth_radius_km)
    return earth_radius_km * lam


def slant_range_km(altitude_km: float, elevation_deg: float,
                   earth_radius_km: float = EARTH_RADIUS_KM) -> float:
    """Slant range (km) to a satellite at the given elevation angle.

    Law-of-cosines solution on the Earth-centre triangle; this is the
    distance that drives free-space path loss in the link budget.
    """
    if altitude_km <= 0.0:
        raise ValueError("altitude must be positive")
    if not -5.0 <= elevation_deg <= 90.0:
        raise ValueError("elevation out of range")
    el = elevation_deg * DEG2RAD
    re = earth_radius_km
    rs = re + altitude_km
    return math.sqrt(rs * rs - (re * math.cos(el)) ** 2) - re * math.sin(el)
