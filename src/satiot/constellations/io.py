"""Catalog import/export in standard 3-line TLE format.

Lets a constellation built from paper Table 3 be archived, diffed and
re-loaded — or replaced wholesale with real element sets fetched from
CelesTrak when network access exists.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union


from ..orbits.tle import format_tle, parse_tle_file
from .catalog import Constellation, ConstellationSpec, DtSRadioProfile, \
    Satellite

__all__ = ["export_tle_file", "import_tle_file"]


def export_tle_file(constellation: Constellation,
                    path: Union[str, Path]) -> int:
    """Write the constellation's element sets as a named 3-line file.

    Returns the number of satellites written.
    """
    path = Path(path)
    lines = []
    for satellite in constellation:
        line1, line2 = format_tle(satellite.tle)
        lines.extend([satellite.name, line1, line2])
    path.write_text("\n".join(lines) + "\n")
    return len(constellation)


def import_tle_file(path: Union[str, Path],
                    name: str,
                    radio: DtSRadioProfile,
                    operator_region: str = "imported",
                    validate_checksum: bool = True) -> Constellation:
    """Build a constellation from an external TLE file.

    All satellites share the given DtS radio profile — matching how a
    real operator runs one beacon configuration per fleet.
    """
    path = Path(path)
    with path.open() as fh:
        tles = parse_tle_file(fh, validate_checksum=validate_checksum)
    if not tles:
        raise ValueError(f"no element sets found in {path}")
    spec = ConstellationSpec(
        name=name, operator_region=operator_region, shells=(),
        radio=radio, norad_base=min(t.norad_id for t in tles))
    satellites = tuple(
        Satellite(tle=tle if tle.name else tle.with_name(
            f"{name}-{i + 1:02d}"),
            constellation_name=name, radio=radio)
        for i, tle in enumerate(tles))
    return Constellation(spec=spec, satellites=satellites)
