"""Constellation catalog and synthetic TLE generation (paper Table 3)."""

from .catalog import (CONSTELLATION_SPECS, Constellation, DtSRadioProfile,
                      Satellite, build_all_constellations,
                      build_constellation)
from .footprint import (earth_central_angle_rad, footprint_area_km2,
                        footprint_radius_km, slant_range_km)
from .shells import ShellSpec, generate_shell_tles

__all__ = [
    "CONSTELLATION_SPECS", "Constellation", "DtSRadioProfile", "Satellite",
    "build_all_constellations", "build_constellation",
    "earth_central_angle_rad", "footprint_area_km2", "footprint_radius_km",
    "slant_range_km",
    "ShellSpec", "generate_shell_tles",
]
