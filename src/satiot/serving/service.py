"""Domain logic behind the serving endpoints (batch-first API).

:class:`ConstellationService` answers three question shapes, each as a
*batch* handler (lists in, lists out) so the micro-batcher can coalesce
concurrent requests into shared array work:

* ``passes_batch`` — upcoming contact windows per observer;
* ``presence_batch`` — availability statistics (coverage fraction,
  window/gap structure) derived from the same windows;
* ``link_budget_batch`` — instantaneous per-satellite geometry, RSSI
  breakdown, link margin, Doppler and airtime at one instant.

Batched requests that share query parameters are grouped and answered
through the fleet fast path
(:meth:`satiot.runtime.EphemerisCache.find_passes_fleet`): the whole
constellation is propagated as one struct-of-arrays
:class:`~satiot.orbits.sgp4_batch.SGP4Batch` call over the shared
grid, with GMST and the TEME→ECEF conversion computed once per group
rather than once per satellite (set ``SATIOT_BATCH_SGP4=0`` to fall
back to the per-satellite multi-observer sweep).  A group of one falls
back to the serial per-observer path — by the batch layer's
bit-identity contract all paths produce identical windows and share
cache entries, so mixing them is safe.

All handlers are synchronous and thread-safe under the serving layer's
single-worker executor (one batch in flight at a time per batcher).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..constellations.catalog import (CONSTELLATION_SPECS, Constellation,
                                      build_constellation)
from ..core.stats import merge_intervals, total_length
from ..econ.providers import ProviderSpec, get_provider, provider_names
from ..orbits.doppler import doppler_shift_hz
from ..orbits.frames import GeodeticPoint
from ..orbits.passes import ContactWindow, observer_geometry
from ..orbits.sgp4_batch import batching_enabled
from ..orbits.timebase import Epoch
from ..orbits.topocentric import ecef_states, look_angles_from_ecef
from ..phy.link_budget import LinkBudget
from ..phy.lora import LoRaModulation, sensitivity_dbm
from ..runtime.ephemeris_cache import EphemerisCache
from ..twin.clock import SimClock, parse_time_query
from .cache import quantize_coord

__all__ = ["CompareRequest", "ConstellationService", "LinkBudgetRequest",
           "PassesRequest", "PresenceRequest", "DEFAULT_CONSTELLATION"]

DEFAULT_CONSTELLATION = "tianqi"
MAX_HORIZON_S = 7 * 86400.0


def _get_float(params: dict, key: str, default: float) -> float:
    value = params.get(key, default)
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"parameter {key!r} must be a number, "
                         f"got {value!r}") from exc


def _get_int(params: dict, key: str, default: int) -> int:
    value = params.get(key, default)
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"parameter {key!r} must be an integer, "
                         f"got {value!r}") from exc


@dataclass(frozen=True)
class _ObserverRequest:
    """Common observer/constellation fields of all query shapes."""

    latitude_deg: float
    longitude_deg: float
    altitude_km: float = 0.0
    constellation: str = DEFAULT_CONSTELLATION

    def observer(self) -> GeodeticPoint:
        return GeodeticPoint(self.latitude_deg, self.longitude_deg,
                             self.altitude_km)

    def site_dict(self) -> dict:
        return {"latitude_deg": self.latitude_deg,
                "longitude_deg": self.longitude_deg,
                "altitude_km": self.altitude_km}

    @staticmethod
    def _base_kwargs(params: dict,
                     known: Optional[Sequence[str]] = None) -> dict:
        constellation = str(params.get("constellation",
                                       DEFAULT_CONSTELLATION)).lower()
        # With ``known`` (the serving layer passes its loaded names,
        # which may include catalog-built constellations), validate
        # against what can actually be answered; without it, fall back
        # to the built-in Table-3 specs.
        valid = sorted(known) if known is not None \
            else sorted(CONSTELLATION_SPECS)
        if constellation not in valid:
            raise ValueError(
                f"unknown constellation {constellation!r}; choose from "
                f"{valid}")
        if "lat" not in params or "lon" not in params:
            raise ValueError("parameters 'lat' and 'lon' are required")
        kwargs = {
            "latitude_deg": _get_float(params, "lat", 0.0),
            "longitude_deg": _get_float(params, "lon", 0.0),
            "altitude_km": _get_float(params, "alt_km", 0.0),
            "constellation": constellation,
        }
        if not -90.0 <= kwargs["latitude_deg"] <= 90.0:
            raise ValueError("lat must be within [-90, 90]")
        if not -180.0 <= kwargs["longitude_deg"] <= 180.0:
            raise ValueError("lon must be within [-180, 180]")
        if not -0.5 <= kwargs["altitude_km"] <= 50.0:
            raise ValueError("alt_km must be within [-0.5, 50]")
        return kwargs

    def _quantized_site(self, decimals: int) -> Tuple[float, float, float]:
        return (quantize_coord(self.latitude_deg, decimals),
                quantize_coord(self.longitude_deg, decimals),
                quantize_coord(self.altitude_km, decimals))


def _resolve_start(params: dict, constellation: str,
                   clock: Optional[SimClock],
                   epochs: Optional[Dict[str, Epoch]],
                   horizon_s: float,
                   allow_next: bool = True) -> Tuple[float, str]:
    """Resolve the ``start=`` parameter of a time-windowed query.

    The resulting window ``[start, start + horizon]`` must stay inside
    the serving horizon, so the offset itself is bounded by what is
    left after the horizon — the parser enforces it in one place.
    """
    epoch = (epochs or {}).get(constellation)
    return parse_time_query(params.get("start"), clock=clock,
                            epoch=epoch,
                            horizon_s=MAX_HORIZON_S - horizon_s,
                            allow_next=allow_next)


@dataclass(frozen=True)
class PassesRequest(_ObserverRequest):
    """``/v1/passes``: contact windows over a prediction horizon."""

    horizon_s: float = 86400.0
    min_elevation_deg: float = 10.0
    max_passes: int = 0          # 0 = unlimited
    start_s: float = 0.0         # window start, seconds past the epoch

    @classmethod
    def from_params(cls, params: dict,
                    known: Optional[Sequence[str]] = None,
                    clock: Optional[SimClock] = None,
                    epochs: Optional[Dict[str, Epoch]] = None,
                    ) -> "PassesRequest":
        kwargs = cls._base_kwargs(params, known=known)
        kwargs["horizon_s"] = _get_float(params, "horizon_s", 86400.0)
        kwargs["min_elevation_deg"] = _get_float(
            params, "min_elevation_deg", 10.0)
        kwargs["max_passes"] = _get_int(params, "max_passes", 0)
        if not 0.0 < kwargs["horizon_s"] <= MAX_HORIZON_S:
            raise ValueError(
                f"horizon_s must be in (0, {MAX_HORIZON_S:.0f}]")
        if not -10.0 <= kwargs["min_elevation_deg"] < 90.0:
            raise ValueError("min_elevation_deg must be in [-10, 90)")
        if kwargs["max_passes"] < 0:
            raise ValueError("max_passes must be non-negative")
        kwargs["start_s"], mode = _resolve_start(
            params, kwargs["constellation"], clock, epochs,
            kwargs["horizon_s"])
        if mode == "next":
            # "the next pass from now": one window, from the clock.
            kwargs["max_passes"] = 1
        return cls(**kwargs)

    def group_key(self) -> tuple:
        return ("passes", self.constellation, self.horizon_s,
                self.min_elevation_deg, self.start_s)

    def cache_key(self, decimals: int = 2) -> tuple:
        return ("passes", self.constellation,
                self._quantized_site(decimals), self.horizon_s,
                self.min_elevation_deg, self.max_passes, self.start_s)


@dataclass(frozen=True)
class PresenceRequest(_ObserverRequest):
    """``/v1/presence``: availability statistics over a horizon."""

    horizon_s: float = 86400.0
    min_elevation_deg: float = 10.0
    start_s: float = 0.0

    @classmethod
    def from_params(cls, params: dict,
                    known: Optional[Sequence[str]] = None,
                    clock: Optional[SimClock] = None,
                    epochs: Optional[Dict[str, Epoch]] = None,
                    ) -> "PresenceRequest":
        kwargs = cls._base_kwargs(params, known=known)
        kwargs["horizon_s"] = _get_float(params, "horizon_s", 86400.0)
        kwargs["min_elevation_deg"] = _get_float(
            params, "min_elevation_deg", 10.0)
        if not 0.0 < kwargs["horizon_s"] <= MAX_HORIZON_S:
            raise ValueError(
                f"horizon_s must be in (0, {MAX_HORIZON_S:.0f}]")
        if not -10.0 <= kwargs["min_elevation_deg"] < 90.0:
            raise ValueError("min_elevation_deg must be in [-10, 90)")
        kwargs["start_s"], _ = _resolve_start(
            params, kwargs["constellation"], clock, epochs,
            kwargs["horizon_s"], allow_next=False)
        return cls(**kwargs)

    def group_key(self) -> tuple:
        return ("presence", self.constellation, self.horizon_s,
                self.min_elevation_deg, self.start_s)

    def cache_key(self, decimals: int = 2) -> tuple:
        return ("presence", self.constellation,
                self._quantized_site(decimals), self.horizon_s,
                self.min_elevation_deg, self.start_s)


@dataclass(frozen=True)
class LinkBudgetRequest(_ObserverRequest):
    """``/v1/link_budget``: instantaneous per-satellite link state."""

    t_offset_s: float = 0.0
    min_elevation_deg: float = 0.0
    spreading_factor: int = 0    # 0 = constellation default
    payload_bytes: int = 0       # 0 = constellation beacon payload
    raining: bool = False

    @classmethod
    def from_params(cls, params: dict,
                    known: Optional[Sequence[str]] = None,
                    clock: Optional[SimClock] = None,
                    epochs: Optional[Dict[str, Epoch]] = None,
                    ) -> "LinkBudgetRequest":
        kwargs = cls._base_kwargs(params, known=known)
        if str(params.get("t_offset_s", "")).strip().lower() == "now":
            if clock is None:
                raise ValueError(
                    "t_offset_s='now' needs the server's real-time "
                    "clock; start it with --realtime")
            params = dict(params, t_offset_s=clock.query_offset_s())
        kwargs["t_offset_s"] = _get_float(params, "t_offset_s", 0.0)
        kwargs["min_elevation_deg"] = _get_float(
            params, "min_elevation_deg", 0.0)
        kwargs["spreading_factor"] = _get_int(
            params, "spreading_factor", 0)
        kwargs["payload_bytes"] = _get_int(params, "payload_bytes", 0)
        raining = params.get("raining", False)
        if isinstance(raining, str):
            raining = raining.strip().lower() in ("1", "true", "yes")
        kwargs["raining"] = bool(raining)
        if not 0.0 <= kwargs["t_offset_s"] <= MAX_HORIZON_S:
            raise ValueError(
                f"t_offset_s must be in [0, {MAX_HORIZON_S:.0f}]")
        if not -10.0 <= kwargs["min_elevation_deg"] < 90.0:
            raise ValueError("min_elevation_deg must be in [-10, 90)")
        if kwargs["spreading_factor"] and \
                not 5 <= kwargs["spreading_factor"] <= 12:
            raise ValueError("spreading_factor must be in 5..12 (or 0)")
        if not 0 <= kwargs["payload_bytes"] <= 255:
            raise ValueError("payload_bytes must be in 0..255")
        return cls(**kwargs)

    def group_key(self) -> tuple:
        return ("link_budget", self.constellation, self.t_offset_s)

    def cache_key(self, decimals: int = 2) -> tuple:
        return ("link_budget", self.constellation,
                self._quantized_site(decimals), self.t_offset_s,
                self.min_elevation_deg, self.spreading_factor,
                self.payload_bytes, self.raining)


@dataclass(frozen=True)
class CompareRequest:
    """``/v1/compare``: one deployment question, several providers.

    Not an :class:`_ObserverRequest` — the selector is a *provider*
    list (registry names), not a loaded constellation name.
    """

    latitude_deg: float
    longitude_deg: float
    altitude_km: float = 0.0
    providers: Tuple[str, ...] = ()
    horizon_s: float = 86400.0
    min_elevation_deg: float = 10.0
    start_s: float = 0.0
    packets_per_day: float = 48.0
    payload_bytes: int = 20

    def observer(self) -> GeodeticPoint:
        return GeodeticPoint(self.latitude_deg, self.longitude_deg,
                             self.altitude_km)

    def site_dict(self) -> dict:
        return {"latitude_deg": self.latitude_deg,
                "longitude_deg": self.longitude_deg,
                "altitude_km": self.altitude_km}

    def _quantized_site(self, decimals: int) -> Tuple[float, float, float]:
        return (quantize_coord(self.latitude_deg, decimals),
                quantize_coord(self.longitude_deg, decimals),
                quantize_coord(self.altitude_km, decimals))

    @classmethod
    def from_params(cls, params: dict,
                    known: Optional[Sequence[str]] = None,
                    clock: Optional[SimClock] = None,
                    epochs: Optional[Dict[str, Epoch]] = None,
                    ) -> "CompareRequest":
        valid = sorted(known) if known is not None \
            else sorted(provider_names())
        raw = str(params.get("providers", "")).strip()
        if raw:
            names: List[str] = []
            for token in raw.split(","):
                name = token.strip().lower()
                if not name:
                    continue
                if name not in valid:
                    raise ValueError(
                        f"unknown provider {name!r}; choose from "
                        f"{valid}")
                if name not in names:
                    names.append(name)
            if not names:
                raise ValueError("providers list is empty")
        else:
            names = list(valid)
        if "lat" not in params or "lon" not in params:
            raise ValueError("parameters 'lat' and 'lon' are required")
        kwargs = {
            "latitude_deg": _get_float(params, "lat", 0.0),
            "longitude_deg": _get_float(params, "lon", 0.0),
            "altitude_km": _get_float(params, "alt_km", 0.0),
            "providers": tuple(names),
        }
        if not -90.0 <= kwargs["latitude_deg"] <= 90.0:
            raise ValueError("lat must be within [-90, 90]")
        if not -180.0 <= kwargs["longitude_deg"] <= 180.0:
            raise ValueError("lon must be within [-180, 180]")
        if not -0.5 <= kwargs["altitude_km"] <= 50.0:
            raise ValueError("alt_km must be within [-0.5, 50]")
        kwargs["horizon_s"] = _get_float(params, "horizon_s", 86400.0)
        kwargs["min_elevation_deg"] = _get_float(
            params, "min_elevation_deg", 10.0)
        kwargs["packets_per_day"] = _get_float(
            params, "packets_per_day", 48.0)
        kwargs["payload_bytes"] = _get_int(params, "payload_bytes", 20)
        if not 0.0 < kwargs["horizon_s"] <= MAX_HORIZON_S:
            raise ValueError(
                f"horizon_s must be in (0, {MAX_HORIZON_S:.0f}]")
        if not -10.0 <= kwargs["min_elevation_deg"] < 90.0:
            raise ValueError("min_elevation_deg must be in [-10, 90)")
        if not 0.0 < kwargs["packets_per_day"] <= 86400.0:
            raise ValueError("packets_per_day must be in (0, 86400]")
        if not 1 <= kwargs["payload_bytes"] <= 1024:
            raise ValueError("payload_bytes must be in 1..1024")
        # Providers are all built on one shared synthetic epoch, so an
        # ISO start has no single constellation to resolve against —
        # numeric offsets and 'now' cover the compare use cases.
        kwargs["start_s"], _ = parse_time_query(
            params.get("start"), clock=clock,
            horizon_s=MAX_HORIZON_S - kwargs["horizon_s"],
            allow_next=False)
        return cls(**kwargs)

    def group_key(self) -> tuple:
        return ("compare", self.providers, self.horizon_s,
                self.min_elevation_deg, self.start_s,
                self.packets_per_day, self.payload_bytes)

    def cache_key(self, decimals: int = 2) -> tuple:
        return ("compare", self.providers,
                self._quantized_site(decimals), self.horizon_s,
                self.min_elevation_deg, self.start_s,
                self.packets_per_day, self.payload_bytes)


class ConstellationService:
    """Answers pass/presence/link-budget queries over shared ephemerides."""

    def __init__(self,
                 constellations: Sequence[str] = (DEFAULT_CONSTELLATION,),
                 ephemeris: Optional[EphemerisCache] = None,
                 coarse_step_s: float = 30.0,
                 refine: str = "interp",
                 refine_tol_s: float = 0.5,
                 epochyr: int = 24, epochdays: float = 245.0,
                 seed: int = 7,
                 extra: Sequence[Constellation] = (),
                 providers: Optional[Sequence[str]] = None,
                 realtime: bool = False) -> None:
        if coarse_step_s <= 0:
            raise ValueError("coarse_step_s must be positive")
        self.coarse_step_s = float(coarse_step_s)
        # Digital-twin mode: consecutive ``start=now`` queries produce
        # strictly growing spans, so even single-observer groups are
        # routed through the constellation-batched fleet path — that is
        # the path whose grids the ephemeris tier extends incrementally.
        self.realtime = bool(realtime)
        self.refine = refine
        self.refine_tol_s = float(refine_tol_s)
        self.ephemeris = ephemeris or EphemerisCache()
        self._epochyr = int(epochyr)
        self._epochdays = float(epochdays)
        self._seed = int(seed)
        self._constellations: Dict[str, Constellation] = {}
        self._epochs: Dict[str, Epoch] = {}
        # Providers the /v1/compare endpoint may select (None = every
        # registered one).  Kept strictly apart from the constellation
        # map: loading the swarm provider must not make "swarm" a valid
        # /v1/passes constellation nor appear in /healthz.  Their
        # constellations are synthesized lazily on first comparison.
        names = provider_names() if providers is None else \
            [str(p).strip().lower() for p in providers]
        self._providers: Dict[str, ProviderSpec] = {
            name: get_provider(name) for name in names}
        self._provider_consts: Dict[str,
                                    Tuple[Constellation, Epoch]] = {}
        for name in constellations:
            const = build_constellation(name, epochyr=epochyr,
                                        epochdays=epochdays, seed=seed)
            key = const.name.lower()
            self._constellations[key] = const
            self._epochs[key] = const.satellites[0].tle.epoch
        # Pre-built constellations (e.g. catalog selections via
        # satiot.catalog.constellation_from_catalog) served alongside
        # the named Table-3 builds.  Their reference instant is the
        # newest member epoch — catalog element sets need not share one.
        for const in extra:
            key = const.name.lower()
            if key in self._constellations:
                raise ValueError(
                    f"constellation name {const.name!r} already loaded")
            self._constellations[key] = const
            self._epochs[key] = Epoch(
                max(sat.tle.epoch.jd for sat in const.satellites))
        if not self._constellations:
            raise ValueError("no constellations loaded")

    # ------------------------------------------------------------------
    @property
    def constellation_names(self) -> List[str]:
        return sorted(self._constellations)

    @property
    def provider_names(self) -> List[str]:
        return sorted(self._providers)

    @property
    def epochs(self) -> Dict[str, Epoch]:
        """Per-constellation reference epochs (for time-query parsing)."""
        return dict(self._epochs)

    def constellation(self, name: str) -> Constellation:
        try:
            return self._constellations[name.lower()]
        except KeyError as exc:
            raise ValueError(
                f"constellation {name!r} not loaded; available: "
                f"{self.constellation_names}") from exc

    def epoch(self, name: str) -> Epoch:
        self.constellation(name)
        return self._epochs[name.lower()]

    def _provider_constellation(self, name: str,
                                ) -> Tuple[Constellation, Epoch]:
        """The (lazily synthesized) fleet of one registered provider.

        A provider whose constellation is already loaded for regular
        serving (tianqi, typically) reuses that build — identical
        objects, shared ephemeris cache entries.
        """
        cached = self._provider_consts.get(name)
        if cached is not None:
            return cached
        prov = self._providers[name]
        key = prov.constellation.name.lower()
        if key in self._constellations:
            built = (self._constellations[key], self._epochs[key])
        else:
            const = build_constellation(
                prov.constellation.name, epochyr=self._epochyr,
                epochdays=self._epochdays, seed=self._seed,
                spec=prov.constellation)
            built = (const, const.satellites[0].tle.epoch)
        self._provider_consts[name] = built
        return built

    # ------------------------------------------------------------------
    # Shared pass computation
    # ------------------------------------------------------------------
    def _windows_for_group(self, constellation: str,
                           observers: Sequence[GeodeticPoint],
                           horizon_s: float, min_elevation_deg: float,
                           start_s: float = 0.0,
                           ) -> List[List[ContactWindow]]:
        const = self.constellation(constellation)
        epoch = self.epoch(constellation)
        return self._windows_for(const, epoch, observers, horizon_s,
                                 min_elevation_deg, start_s)

    def _windows_for(self, const: Constellation, epoch: Epoch,
                     observers: Sequence[GeodeticPoint],
                     horizon_s: float, min_elevation_deg: float,
                     start_s: float = 0.0,
                     ) -> List[List[ContactWindow]]:
        """Merged, rise-sorted windows of the whole constellation for
        each observer of a parameter-homogeneous group.

        A non-zero ``start_s`` widens the predicted span to
        ``[0, start_s + horizon_s]``: window times stay relative to the
        constellation epoch (the payload layer clips), and consecutive
        ``now`` queries keep extending the *same* coarse grid — the
        ephemeris tier serves them via incremental extension instead
        of recomputing per quantum.
        """
        horizon_s = float(start_s) + float(horizon_s)
        per_observer: List[List[ContactWindow]] = \
            [[] for _ in observers]
        if len(observers) == 1 and not (self.realtime
                                        and batching_enabled()):
            # Serial per-observer path: identical results by the batch
            # layer's bit-identity contract, and the honest baseline for
            # the unbatched serving mode.  Realtime twins skip it — only
            # the constellation-batched path below publishes the grids
            # the incremental extension tier grows.
            for sat in const:
                windows = self.ephemeris.find_passes(
                    sat.propagator, observers[0], epoch, horizon_s,
                    coarse_step_s=self.coarse_step_s,
                    min_elevation_deg=min_elevation_deg,
                    refine_tol_s=self.refine_tol_s, refine=self.refine)
                per_observer[0].extend(windows)
        elif batching_enabled():
            # Fleet flush: all N satellites x M observers through one
            # constellation-batched propagation, one GMST/ECEF pass and
            # one shared observer-geometry precompute.  Extension stays
            # satellite-major, so responses are byte-identical to the
            # per-satellite loop below (stable rise-time sort).
            geometry = observer_geometry(observers)
            per_sat = self.ephemeris.find_passes_fleet(
                [sat.propagator for sat in const], observers, epoch,
                horizon_s, coarse_step_s=self.coarse_step_s,
                min_elevation_deg=min_elevation_deg,
                refine_tol_s=self.refine_tol_s, refine=self.refine,
                geometry=geometry)
            for rows in per_sat:
                for windows, acc in zip(rows, per_observer):
                    acc.extend(windows)
        else:
            geometry = observer_geometry(observers)
            for sat in const:
                rows = self.ephemeris.find_passes_multi(
                    sat.propagator, observers, epoch, horizon_s,
                    coarse_step_s=self.coarse_step_s,
                    min_elevation_deg=min_elevation_deg,
                    refine_tol_s=self.refine_tol_s, refine=self.refine,
                    geometry=geometry)
                for windows, acc in zip(rows, per_observer):
                    acc.extend(windows)
        for acc in per_observer:
            acc.sort(key=lambda w: w.rise_s)
        return per_observer

    @staticmethod
    def _group_indices(requests: Sequence[object]) -> Dict[tuple,
                                                           List[int]]:
        groups: Dict[tuple, List[int]] = {}
        for index, request in enumerate(requests):
            groups.setdefault(request.group_key(), []).append(index)
        return groups

    # ------------------------------------------------------------------
    # /v1/passes
    # ------------------------------------------------------------------
    def passes_batch(self, requests: Sequence[PassesRequest],
                     ) -> List[dict]:
        results: List[Optional[dict]] = [None] * len(requests)
        for _, indices in self._group_indices(requests).items():
            group = [requests[i] for i in indices]
            observers = [r.observer() for r in group]
            per_observer = self._windows_for_group(
                group[0].constellation, observers, group[0].horizon_s,
                group[0].min_elevation_deg, group[0].start_s)
            for request, index, windows in zip(group, indices,
                                               per_observer):
                results[index] = self._passes_payload(request, windows)
        return results  # type: ignore[return-value]

    def _passes_payload(self, request: PassesRequest,
                        windows: Sequence[ContactWindow]) -> dict:
        const = self.constellation(request.constellation)
        epoch = self.epoch(request.constellation)
        if request.start_s:
            # Windows are computed over [0, start + horizon]; keep the
            # ones still in progress (or later) at the start instant.
            windows = [w for w in windows if w.set_s > request.start_s]
        if request.max_passes:
            windows = windows[:request.max_passes]
        names = {sat.tle.norad_id: sat.name for sat in const}
        passes = [{
            "satellite": names.get(w.norad_id, str(w.norad_id)),
            "norad_id": w.norad_id,
            "rise_s": round(w.rise_s, 3),
            "set_s": round(w.set_s, 3),
            "duration_s": round(w.duration_s, 3),
            "culmination_s": round(w.culmination_s, 3),
            "max_elevation_deg": round(w.max_elevation_deg, 3),
        } for w in windows]
        payload = {
            "site": request.site_dict(),
            "constellation": const.name,
            "epoch": epoch.isoformat(),
            "horizon_s": request.horizon_s,
            "min_elevation_deg": request.min_elevation_deg,
            "count": len(passes),
            "next_pass": passes[0] if passes else None,
            "passes": passes,
        }
        if request.start_s:
            payload["start_s"] = round(request.start_s, 3)
        return payload

    # ------------------------------------------------------------------
    # /v1/presence
    # ------------------------------------------------------------------
    def presence_batch(self, requests: Sequence[PresenceRequest],
                       ) -> List[dict]:
        results: List[Optional[dict]] = [None] * len(requests)
        for _, indices in self._group_indices(requests).items():
            group = [requests[i] for i in indices]
            observers = [r.observer() for r in group]
            per_observer = self._windows_for_group(
                group[0].constellation, observers, group[0].horizon_s,
                group[0].min_elevation_deg, group[0].start_s)
            for request, index, windows in zip(group, indices,
                                               per_observer):
                results[index] = self._presence_payload(request, windows)
        return results  # type: ignore[return-value]

    @staticmethod
    def _coverage(windows: Sequence[ContactWindow], start_s: float,
                  horizon_s: float,
                  ) -> Tuple[List[Tuple[float, float]], float,
                             List[float]]:
        """Merged coverage of ``[start, start + horizon]``: the merged
        interval list, the covered seconds, and the gap lengths —
        shared by presence and compare so the two endpoints can never
        disagree on availability."""
        end = start_s + horizon_s
        merged = merge_intervals(
            (max(start_s, w.rise_s), min(end, w.set_s))
            for w in windows if w.set_s > start_s and w.rise_s < end)
        covered = total_length(merged)
        gaps: List[float] = []
        cursor = start_s
        for lo, hi in merged:
            if lo > cursor:
                gaps.append(lo - cursor)
            cursor = max(cursor, hi)
        if cursor < end:
            gaps.append(end - cursor)
        return merged, covered, gaps

    def _presence_payload(self, request: PresenceRequest,
                          windows: Sequence[ContactWindow]) -> dict:
        horizon = request.horizon_s
        merged, covered, gaps = self._coverage(windows,
                                               request.start_s, horizon)
        payload = {
            "site": request.site_dict(),
            "constellation": request.constellation,
            "horizon_s": horizon,
            "min_elevation_deg": request.min_elevation_deg,
            "coverage_fraction": round(covered / horizon, 6),
            "covered_s": round(covered, 3),
            "windows": len(merged),
            "raw_passes": len(windows),
            "mean_window_s": round(covered / len(merged), 3)
            if merged else 0.0,
            "max_gap_s": round(max(gaps), 3) if gaps else 0.0,
            "mean_gap_s": round(sum(gaps) / len(gaps), 3)
            if gaps else 0.0,
        }
        if request.start_s:
            payload["start_s"] = round(request.start_s, 3)
        return payload

    # ------------------------------------------------------------------
    # /v1/compare
    # ------------------------------------------------------------------
    def compare_batch(self, requests: Sequence[CompareRequest],
                      ) -> List[dict]:
        """One geometry pass per provider, shared across the group.

        Requests with identical comparison parameters coalesce: each
        selected provider's fleet is propagated **once** for all
        observers of the group (the same fleet fast path the other
        endpoints use), then per-request payloads are derived from the
        shared windows.
        """
        results: List[Optional[dict]] = [None] * len(requests)
        for _, indices in self._group_indices(requests).items():
            group = [requests[i] for i in indices]
            observers = [r.observer() for r in group]
            lead = group[0]
            per_provider: Dict[str, List[List[ContactWindow]]] = {}
            for name in lead.providers:
                const, epoch = self._provider_constellation(name)
                per_provider[name] = self._windows_for(
                    const, epoch, observers, lead.horizon_s,
                    lead.min_elevation_deg, lead.start_s)
            for pos, (request, index) in enumerate(zip(group, indices)):
                results[index] = self._compare_payload(
                    request,
                    {name: per_provider[name][pos]
                     for name in lead.providers})
        return results  # type: ignore[return-value]

    def _compare_payload(self, request: CompareRequest,
                         windows_by_provider: Dict[
                             str, List[ContactWindow]]) -> dict:
        horizon = request.horizon_s
        entries: List[dict] = []
        for name in request.providers:
            prov = self._providers[name]
            const, _ = self._provider_constellation(name)
            merged, covered, gaps = self._coverage(
                windows_by_provider[name], request.start_s, horizon)

            # Latency: a reading born at a uniformly random instant
            # waits (gap remaining)/2; averaging over the horizon gives
            # sum(g^2)/(2*H).  Retransmission overhead follows the MAC:
            # a geometric retry chain with per-packet loss p costs
            # p/(1-p) expected extra attempts (capped by the retry
            # budget), each a full backoff period.
            mean_wait = sum(g * g for g in gaps) / (2.0 * horizon)
            loss = prov.mac.satellite_loss_probability
            expected_retx = min(loss / (1.0 - loss),
                                float(prov.mac.max_retransmissions))
            retx_overhead = expected_retx * prov.mac.retry_backoff_s
            mean_uplink = (mean_wait + prov.mac.turnaround_s
                           + retx_overhead)

            # Energy: airtime of one maximally-packed frame times the
            # frames actually transmitted per day (billing fragments +
            # expected retries) at the radio's max uplink EIRP.
            radio = prov.constellation.radio
            modulation = LoRaModulation(
                spreading_factor=radio.spreading_factor,
                bandwidth_hz=radio.bandwidth_hz,
                coding_rate=radio.coding_rate,
                preamble_symbols=radio.preamble_symbols,
                explicit_header=radio.explicit_header,
                low_data_rate_optimize=radio.low_data_rate_optimize)
            frame_bytes = min(request.payload_bytes,
                              prov.costs.max_payload_bytes)
            airtime = modulation.airtime_s(frame_bytes)
            frames = prov.costs.packets_for_payload(
                request.payload_bytes)
            tx_per_day = (request.packets_per_day * frames
                          * (1.0 + expected_retx))
            tx_power_w = 10.0 ** ((radio.uplink_max_eirp_dbm
                                   - 30.0) / 10.0)
            energy_j_per_day = tx_power_w * airtime * tx_per_day

            monthly = prov.costs.monthly_data_cost_usd(
                request.packets_per_day, request.payload_bytes)
            entries.append({
                "provider": name,
                "display_name": prov.display_name,
                "constellation": prov.constellation.name,
                "satellites": sum(shell.count for shell
                                  in prov.constellation.shells),
                "availability": {
                    "coverage_fraction": round(covered / horizon, 6),
                    "covered_s": round(covered, 3),
                    "windows": len(merged),
                    "mean_window_s": round(covered / len(merged), 3)
                    if merged else 0.0,
                    "max_gap_s": round(max(gaps), 3) if gaps else 0.0,
                    "mean_gap_s": round(sum(gaps) / len(gaps), 3)
                    if gaps else 0.0,
                },
                "latency": {
                    "mean_wait_s": round(mean_wait, 3),
                    "max_wait_s": round(max(gaps), 3) if gaps else 0.0,
                    "retx_overhead_s": round(retx_overhead, 3),
                    "mean_uplink_latency_s": round(mean_uplink, 3),
                },
                "energy": {
                    "airtime_s": round(airtime, 6),
                    "tx_per_day": round(tx_per_day, 3),
                    "energy_j_per_day": round(energy_j_per_day, 6),
                },
                "cost": {
                    "device_usd": round(prov.costs.device_cost_usd, 4),
                    "monthly_usd": round(monthly, 4),
                    "usd_per_thousand_packets": round(
                        prov.costs.usd_per_thousand_packets, 4),
                    "tco_12mo_usd": round(
                        prov.costs.device_cost_usd + 12.0 * monthly, 4),
                },
            })
        cheapest = min(entries,
                       key=lambda e: e["cost"]["monthly_usd"])
        most_available = max(
            entries,
            key=lambda e: e["availability"]["coverage_fraction"])
        payload = {
            "site": request.site_dict(),
            "horizon_s": horizon,
            "min_elevation_deg": request.min_elevation_deg,
            "packets_per_day": request.packets_per_day,
            "payload_bytes": request.payload_bytes,
            "providers": entries,
            "cheapest": cheapest["provider"],
            "most_available": most_available["provider"],
        }
        if request.start_s:
            payload["start_s"] = round(request.start_s, 3)
        return payload

    # ------------------------------------------------------------------
    # /v1/link_budget
    # ------------------------------------------------------------------
    def link_budget_batch(self, requests: Sequence[LinkBudgetRequest],
                          ) -> List[dict]:
        results: List[Optional[dict]] = [None] * len(requests)
        for _, indices in self._group_indices(requests).items():
            group = [requests[i] for i in indices]
            const = self.constellation(group[0].constellation)
            epoch = self.epoch(group[0].constellation)
            t = group[0].t_offset_s
            # Observer-independent work, once per group: propagate every
            # satellite to t and convert the stacked states to ECEF in
            # one vectorized call (shared instant → shared GMST).
            r_teme = np.empty((len(const), 3))
            v_teme = np.empty((len(const), 3))
            for row, sat in enumerate(const):
                r, v = self.ephemeris.propagation_grid(
                    sat.propagator, epoch, [t])
                r_teme[row] = r[0]
                v_teme[row] = v[0]
            r_ecef, v_ecef = ecef_states(r_teme, v_teme,
                                         epoch.offset_jd(t))
            for request, index in zip(group, indices):
                results[index] = self._link_budget_payload(
                    request, const, r_ecef, v_ecef)
        return results  # type: ignore[return-value]

    def _link_budget_payload(self, request: LinkBudgetRequest,
                             const: Constellation,
                             r_ecef: np.ndarray,
                             v_ecef: np.ndarray) -> dict:
        radio = const.radio
        sf = request.spreading_factor or radio.spreading_factor
        payload_bytes = request.payload_bytes or \
            radio.beacon_payload_bytes
        budget = LinkBudget(eirp_dbm=radio.beacon_eirp_dbm,
                            frequency_hz=radio.frequency_hz)
        modulation = LoRaModulation(
            spreading_factor=sf, bandwidth_hz=radio.bandwidth_hz,
            coding_rate=radio.coding_rate,
            preamble_symbols=radio.preamble_symbols,
            explicit_header=radio.explicit_header,
            low_data_rate_optimize=radio.low_data_rate_optimize)
        sensitivity = sensitivity_dbm(sf, radio.bandwidth_hz)
        airtime = modulation.airtime_s(payload_bytes)

        angles = look_angles_from_ecef(request.observer(),
                                       r_ecef, v_ecef)
        elevation = np.atleast_1d(np.asarray(angles.elevation_deg))
        visible = np.flatnonzero(
            elevation >= request.min_elevation_deg)
        sats = const.satellites
        entries: List[dict] = []
        if visible.size:
            azimuth = np.atleast_1d(np.asarray(angles.azimuth_deg))
            rng = np.atleast_1d(np.asarray(angles.range_km))
            rate = np.atleast_1d(np.asarray(angles.range_rate_km_s))
            parts = budget.components(rng[visible], elevation[visible],
                                      raining=request.raining)
            rssi = np.atleast_1d(np.asarray(parts["rssi_dbm"], float))
            # Components may be scalar (e.g. rain when not raining):
            # broadcast them to one value per visible satellite.
            fspl = np.broadcast_to(
                np.asarray(parts["fspl_db"], float), rssi.shape)
            excess = np.broadcast_to(
                np.asarray(parts["excess_db"], float), rssi.shape)
            rain = np.broadcast_to(
                np.asarray(parts["rain_db"], float), rssi.shape)
            doppler = np.atleast_1d(np.asarray(doppler_shift_hz(
                rate[visible], radio.frequency_hz)))
            for pos, sat_index in enumerate(visible):
                sat = sats[int(sat_index)]
                entries.append({
                    "satellite": sat.name,
                    "norad_id": sat.tle.norad_id,
                    "elevation_deg": round(float(
                        elevation[sat_index]), 3),
                    "azimuth_deg": round(float(azimuth[sat_index]), 3),
                    "range_km": round(float(rng[sat_index]), 3),
                    "range_rate_km_s": round(float(
                        rate[sat_index]), 6),
                    "rssi_dbm": round(float(rssi[pos]), 3),
                    "fspl_db": round(float(fspl[pos]), 3),
                    "excess_loss_db": round(float(excess[pos]), 3),
                    "rain_loss_db": round(float(rain[pos]), 3),
                    "link_margin_db": round(float(rssi[pos])
                                            - sensitivity, 3),
                    "doppler_hz": round(float(doppler[pos]), 1),
                })
            entries.sort(key=lambda e: e["rssi_dbm"], reverse=True)
        return {
            "site": request.site_dict(),
            "constellation": const.name,
            "t_offset_s": request.t_offset_s,
            "min_elevation_deg": request.min_elevation_deg,
            "spreading_factor": sf,
            "payload_bytes": payload_bytes,
            "sensitivity_dbm": round(sensitivity, 3),
            "airtime_s": round(airtime, 6),
            "raining": request.raining,
            "visible_count": len(entries),
            "best": entries[0] if entries else None,
            "satellites": entries,
        }
